//! Incremental 3D Delaunay tetrahedralization (Bowyer–Watson) and its
//! Voronoi dual.
//!
//! The paper computes Voronoi cells with Qhull; its successor library also
//! emits Delaunay tessellations. This crate provides an independent,
//! from-scratch Delaunay implementation used two ways:
//!
//! * **cross-validation** — Voronoi cells extracted from the Delaunay dual
//!   must match the half-space-clipping cells computed by `tess`
//!   (two independent algorithms, one answer);
//! * **Delaunay output mode** — the extension listed in DESIGN.md §6.
//!
//! Robustness comes from the exact `orient3d` / `insphere` predicates in
//! the `geometry` crate, so grid-like (cospherical) particle arrangements
//! from early simulation time steps are handled without perturbation hacks.

pub mod bowyer_watson;
pub mod voronoi_dual;

pub use bowyer_watson::{Delaunay, DelaunayError};
pub use voronoi_dual::DualCell;
