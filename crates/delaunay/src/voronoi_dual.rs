//! Voronoi cells as the dual of the Delaunay tetrahedralization.
//!
//! Each real input point's Voronoi cell has one vertex per incident
//! Delaunay tetrahedron — the tet's circumcenter. A cell is *finite* only
//! when no incident tetrahedron touches a virtual (enclosing-tet) vertex;
//! infinite cells are reported as `None`, mirroring how `tess` drops
//! incomplete cells at block boundaries.

use geometry::measures::tetra_circumcenter;
use geometry::quickhull::convex_hull;
use geometry::Vec3;

use crate::bowyer_watson::Delaunay;

/// A finite Voronoi cell extracted from the dual.
#[derive(Debug, Clone)]
pub struct DualCell {
    /// The site (input point id).
    pub site: u32,
    /// Circumcenters of the incident tetrahedra = the cell's vertices.
    pub vertices: Vec<Vec3>,
}

impl DualCell {
    /// Cell volume via the convex hull of the dual vertices (the cell is
    /// convex, so its hull *is* the cell). `None` for degenerate vertex
    /// sets.
    pub fn volume(&self) -> Option<f64> {
        convex_hull(&self.vertices, 1e-9).ok().map(|h| h.volume())
    }

    /// Cell surface area via the hull.
    pub fn surface_area(&self) -> Option<f64> {
        convex_hull(&self.vertices, 1e-9)
            .ok()
            .map(|h| h.surface_area())
    }
}

/// Extract the finite Voronoi cell of real point `site`, or `None` when the
/// cell is unbounded (touches the enclosing tetrahedron).
pub fn voronoi_cell(dt: &Delaunay, site: u32) -> Option<DualCell> {
    assert!(
        (site as usize) < dt.num_points(),
        "site must be a real point"
    );
    if dt.duplicate_of(site).is_some() {
        return None;
    }
    let tets = dt.tets_around(site);
    if tets.is_empty() {
        return None;
    }
    let mut vertices = Vec::with_capacity(tets.len());
    for ti in tets {
        let v = dt.tet_vertices(ti);
        if v.iter().any(|&x| dt.is_virtual(x)) {
            return None; // unbounded cell
        }
        let c = tetra_circumcenter(
            dt.point(v[0]),
            dt.point(v[1]),
            dt.point(v[2]),
            dt.point(v[3]),
        )?;
        vertices.push(c);
    }
    Some(DualCell { site, vertices })
}

/// Extract every finite cell.
pub fn all_finite_cells(dt: &Delaunay) -> Vec<DualCell> {
    (0..dt.num_points() as u32)
        .filter_map(|s| voronoi_cell(dt, s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn lattice_interior_cell_is_unit_cube() {
        let n = 5;
        let pts: Vec<Vec3> = (0..n)
            .flat_map(|k| {
                (0..n)
                    .flat_map(move |j| (0..n).map(move |i| Vec3::new(i as f64, j as f64, k as f64)))
            })
            .collect();
        let dt = Delaunay::new(&pts).unwrap();
        // center point (2,2,2) has id 2 + 5*(2 + 5*2) = 62
        let cell = voronoi_cell(&dt, 62).expect("interior cell is finite");
        let vol = cell.volume().expect("non-degenerate");
        assert!((vol - 1.0).abs() < 1e-6, "vol {vol}");
        let area = cell.surface_area().unwrap();
        assert!((area - 6.0).abs() < 1e-6, "area {area}");
    }

    #[test]
    fn boundary_cells_are_infinite() {
        let pts = vec![
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 1.0, 1.0),
        ];
        let dt = Delaunay::new(&pts).unwrap();
        // every point is on the convex hull → all cells unbounded
        for s in 0..5 {
            assert!(voronoi_cell(&dt, s).is_none(), "site {s}");
        }
    }

    #[test]
    fn cell_vertices_are_equidistant_witnesses() {
        // Dual vertices are circumcenters: each is equidistant from the
        // site and 3 other points, and no point is closer.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let pts: Vec<Vec3> = (0..80)
            .map(|_| {
                Vec3::new(
                    rng.gen_range(0.0..4.0),
                    rng.gen_range(0.0..4.0),
                    rng.gen_range(0.0..4.0),
                )
            })
            .collect();
        let dt = Delaunay::new(&pts).unwrap();
        let cells = all_finite_cells(&dt);
        assert!(!cells.is_empty());
        for cell in cells.iter().take(10) {
            let site = pts[cell.site as usize];
            for &v in cell.vertices.iter().take(6) {
                let r = v.dist(site);
                // no input point may be strictly closer to the dual vertex
                // than the site (allowing ties on the circumsphere)
                for &q in &pts {
                    assert!(v.dist(q) > r - 1e-7, "closer point to dual vertex");
                }
            }
        }
    }

    #[test]
    fn finite_cell_volumes_are_positive_and_bounded() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let pts: Vec<Vec3> = (0..120)
            .map(|_| {
                Vec3::new(
                    rng.gen_range(0.0..5.0),
                    rng.gen_range(0.0..5.0),
                    rng.gen_range(0.0..5.0),
                )
            })
            .collect();
        let dt = Delaunay::new(&pts).unwrap();
        let cells = all_finite_cells(&dt);
        assert!(
            cells.len() > 10,
            "expect interior cells, got {}",
            cells.len()
        );
        for c in &cells {
            if let Some(v) = c.volume() {
                // Cells near the hull are finite but can extend well beyond
                // the point cloud; only positivity and finiteness are
                // guaranteed here.
                assert!(v > 0.0 && v.is_finite(), "volume {v}");
            }
        }
        // A cell whose every dual vertex lies inside the sample box is a
        // genuinely interior cell and must be smaller than the box.
        let interior: Vec<&DualCell> = cells
            .iter()
            .filter(|c| {
                c.vertices.iter().all(|v| {
                    (0.0..5.0).contains(&v.x)
                        && (0.0..5.0).contains(&v.y)
                        && (0.0..5.0).contains(&v.z)
                })
            })
            .collect();
        assert!(!interior.is_empty());
        for c in interior {
            let v = c.volume().unwrap();
            assert!(v > 0.0 && v < 125.0, "interior volume {v}");
        }
    }
}
