//! Incremental Bowyer–Watson tetrahedralization with exact predicates.
//!
//! Points are inserted one at a time into an initially huge enclosing
//! tetrahedron. For each point: locate the containing tetrahedron by
//! walking, grow the *cavity* of tetrahedra whose circumsphere contains the
//! point, repair the cavity until it is star-shaped from the point, and
//! retriangulate by connecting the point to every cavity boundary face.

use std::collections::HashMap;

use geometry::predicates::{insphere, orient3d, Orientation};
use geometry::{Aabb, Vec3};

/// Sentinel "no neighbor" id.
const NONE: u32 = u32::MAX;

/// One tetrahedron: vertex ids plus the adjacent tet across the face
/// opposite each vertex.
#[derive(Debug, Clone, Copy)]
struct Tet {
    v: [u32; 4],
    adj: [u32; 4],
    alive: bool,
}

/// Errors from triangulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DelaunayError {
    /// Fewer than one input point.
    Empty,
    /// A point fell outside the enclosing tetrahedron (non-finite input).
    OutOfBounds(usize),
}

impl std::fmt::Display for DelaunayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DelaunayError::Empty => write!(f, "no input points"),
            DelaunayError::OutOfBounds(i) => write!(
                f,
                "point {i} is outside the enclosing tetrahedron (non-finite?)"
            ),
        }
    }
}

impl std::error::Error for DelaunayError {}

/// A 3D Delaunay tetrahedralization.
#[derive(Debug)]
pub struct Delaunay {
    /// Input points followed by the 4 enclosing-tet vertices.
    points: Vec<Vec3>,
    /// Number of *real* (input) points; ids >= this are virtual.
    nreal: usize,
    tets: Vec<Tet>,
    /// A live tet id to start walks from.
    last_alive: u32,
    /// For each duplicate input index, the index of its first occurrence.
    duplicate_of: Vec<Option<u32>>,
}

impl Delaunay {
    /// Triangulate `points`. Exact duplicates are tolerated (they map to the
    /// first occurrence and generate no tetrahedra).
    pub fn new(points: &[Vec3]) -> Result<Self, DelaunayError> {
        if points.is_empty() {
            return Err(DelaunayError::Empty);
        }
        let bbox = Aabb::from_points(points).expect("non-empty");
        let c = bbox.center();
        let r = (bbox.extent().norm() * 0.5).max(1.0);
        // Huge regular-ish tetrahedron; inscribed sphere radius ~ 33 r·K/100.
        let k = 1000.0 * r;
        let big = [
            c + Vec3::new(k, k, k),
            c + Vec3::new(k, -k, -k),
            c + Vec3::new(-k, k, -k),
            c + Vec3::new(-k, -k, k),
        ];

        let nreal = points.len();
        let mut all_points = points.to_vec();
        all_points.extend_from_slice(&big);
        let bid = |i: usize| (nreal + i) as u32;

        // Orient the first tet positively.
        let mut v0 = [bid(0), bid(1), bid(2), bid(3)];
        if orient3d(big[0], big[1], big[2], big[3]) == Orientation::Negative {
            v0.swap(0, 1);
        }
        debug_assert_eq!(
            orient3d(
                all_points[v0[0] as usize],
                all_points[v0[1] as usize],
                all_points[v0[2] as usize],
                all_points[v0[3] as usize]
            ),
            Orientation::Positive
        );

        let mut dt = Delaunay {
            points: all_points,
            nreal,
            tets: vec![Tet {
                v: v0,
                adj: [NONE; 4],
                alive: true,
            }],
            last_alive: 0,
            duplicate_of: vec![None; nreal],
        };

        for i in 0..nreal {
            dt.insert(i as u32)?;
        }
        Ok(dt)
    }

    /// Number of real input points.
    pub fn num_points(&self) -> usize {
        self.nreal
    }

    /// Coordinates of point `v` (real or virtual).
    pub fn point(&self, v: u32) -> Vec3 {
        self.points[v as usize]
    }

    /// `true` when vertex id `v` is one of the four virtual enclosing
    /// vertices.
    pub fn is_virtual(&self, v: u32) -> bool {
        (v as usize) >= self.nreal
    }

    /// All live tetrahedra made of real vertices only.
    pub fn tetrahedra(&self) -> Vec<[u32; 4]> {
        self.tets
            .iter()
            .filter(|t| t.alive && t.v.iter().all(|&v| !self.is_virtual(v)))
            .map(|t| t.v)
            .collect()
    }

    /// All live tetrahedra, including those touching virtual vertices.
    pub fn all_tetrahedra(&self) -> Vec<[u32; 4]> {
        self.tets.iter().filter(|t| t.alive).map(|t| t.v).collect()
    }

    /// The first-occurrence id for a duplicate input point, if `i` was a
    /// duplicate.
    pub fn duplicate_of(&self, i: u32) -> Option<u32> {
        self.duplicate_of[i as usize]
    }

    fn tet_points(&self, t: &Tet) -> [Vec3; 4] {
        [
            self.points[t.v[0] as usize],
            self.points[t.v[1] as usize],
            self.points[t.v[2] as usize],
            self.points[t.v[3] as usize],
        ]
    }

    /// Oriented face opposite vertex slot `i`: the returned triple has the
    /// remaining vertex on its `Positive` side.
    fn face_opposite(&self, tet: &Tet, i: usize) -> [u32; 3] {
        let others: Vec<u32> = (0..4).filter(|&j| j != i).map(|j| tet.v[j]).collect();
        let mut f = [others[0], others[1], others[2]];
        let opp = self.points[tet.v[i] as usize];
        if orient3d(
            self.points[f[0] as usize],
            self.points[f[1] as usize],
            self.points[f[2] as usize],
            opp,
        ) == Orientation::Negative
        {
            f.swap(1, 2);
        }
        f
    }

    /// Walk from a live tet to one whose closed interior contains `p`.
    fn locate(&self, p: Vec3) -> Result<u32, DelaunayError> {
        let mut cur = self.last_alive;
        debug_assert!(self.tets[cur as usize].alive);
        let mut steps = 0usize;
        let limit = 8 * (self.tets.len() + 16);
        'walk: loop {
            steps += 1;
            if steps > limit {
                // should be impossible in a convex triangulation
                return Err(DelaunayError::OutOfBounds(usize::MAX));
            }
            let tet = self.tets[cur as usize];
            for i in 0..4 {
                let f = self.face_opposite(&tet, i);
                // p strictly beyond this face → step across.
                if orient3d(
                    self.points[f[0] as usize],
                    self.points[f[1] as usize],
                    self.points[f[2] as usize],
                    p,
                ) == Orientation::Negative
                {
                    let next = tet.adj[i];
                    if next == NONE {
                        return Err(DelaunayError::OutOfBounds(usize::MAX));
                    }
                    cur = next;
                    continue 'walk;
                }
            }
            return Ok(cur);
        }
    }

    fn insert(&mut self, pid: u32) -> Result<(), DelaunayError> {
        let p = self.points[pid as usize];
        let start = match self.locate(p) {
            Ok(t) => t,
            Err(_) => return Err(DelaunayError::OutOfBounds(pid as usize)),
        };

        // Exact duplicate? Map and skip.
        for &v in &self.tets[start as usize].v {
            if self.points[v as usize] == p && v != pid {
                self.duplicate_of[pid as usize] = Some(v);
                return Ok(());
            }
        }

        // Grow the cavity: tets whose circumsphere strictly contains p.
        let mut in_cavity = vec![false; self.tets.len()];
        let mut cavity: Vec<u32> = vec![start];
        in_cavity[start as usize] = true;
        let mut stack = vec![start];
        while let Some(t) = stack.pop() {
            let tet = self.tets[t as usize];
            for i in 0..4 {
                let n = tet.adj[i];
                if n == NONE || in_cavity[n as usize] {
                    continue;
                }
                let nt = self.tets[n as usize];
                let [a, b, c, d] = self.tet_points(&nt);
                if insphere(a, b, c, d, p) == Orientation::Positive {
                    in_cavity[n as usize] = true;
                    cavity.push(n);
                    stack.push(n);
                }
            }
        }

        // Repair until star-shaped: every boundary face must see p strictly
        // on its cavity side; otherwise absorb the offending neighbor.
        // Boundary face list: (face oriented toward cavity, outside tet id).
        let boundary = loop {
            let mut boundary: Vec<([u32; 3], u32)> = Vec::new();
            let mut grew = false;
            for idx in 0..cavity.len() {
                let t = cavity[idx];
                let tet = self.tets[t as usize];
                for i in 0..4 {
                    let n = tet.adj[i];
                    if n != NONE && in_cavity[n as usize] {
                        continue;
                    }
                    // face opposite slot i, oriented with interior vertex
                    // (and hence the cavity) on the Positive side
                    let f = self.face_opposite(&tet, i);
                    let o = orient3d(
                        self.points[f[0] as usize],
                        self.points[f[1] as usize],
                        self.points[f[2] as usize],
                        p,
                    );
                    if o != Orientation::Positive {
                        // p is on or beyond this boundary face: cavity is not
                        // star-shaped; absorb the neighbor if possible.
                        if n == NONE {
                            return Err(DelaunayError::OutOfBounds(pid as usize));
                        }
                        in_cavity[n as usize] = true;
                        cavity.push(n);
                        grew = true;
                        break;
                    }
                    boundary.push((f, n));
                }
                if grew {
                    break;
                }
            }
            if !grew {
                break boundary;
            }
        };

        // Kill cavity tets.
        for &t in &cavity {
            self.tets[t as usize].alive = false;
        }

        // Create one new tet per boundary face.
        let mut new_ids: Vec<u32> = Vec::with_capacity(boundary.len());
        // Map from sorted face triple to (tet id, slot) for wiring new-new
        // adjacency via shared (edge, apex=p) faces: every internal face of
        // the new star contains p plus one boundary edge.
        let mut edge_map: HashMap<(u32, u32), Vec<(u32, usize)>> = HashMap::new();
        for (f, outside) in boundary {
            let id = self.tets.len() as u32;
            // tet (f0, f1, f2, p): p on the Positive side of f ⇒ positive
            // orientation.
            let tet = Tet {
                v: [f[0], f[1], f[2], pid],
                adj: [NONE, NONE, NONE, outside],
                // adj[3] (face opposite p = the boundary face f) = outside tet
                alive: true,
            };
            self.tets.push(tet);
            in_cavity.push(false);
            new_ids.push(id);
            // fix the outside tet's back-pointer
            if outside != NONE {
                let out = &mut self.tets[outside as usize];
                // find the slot of `out` whose opposite face is f
                let fs: [u32; 3] = {
                    let mut s = f;
                    s.sort_unstable();
                    s
                };
                for i in 0..4 {
                    let mut of: Vec<u32> = (0..4).filter(|&j| j != i).map(|j| out.v[j]).collect();
                    of.sort_unstable();
                    if of == fs {
                        out.adj[i] = id;
                        break;
                    }
                }
            }
            // register p-containing faces via their boundary edges
            for (a, b) in [(f[0], f[1]), (f[1], f[2]), (f[2], f[0])] {
                let key = (a.min(b), a.max(b));
                // slot of the vertex opposite this internal face: the face
                // is (a, b, p); opposite vertex is the third f vertex
                let third = f.iter().copied().find(|&x| x != a && x != b).unwrap();
                let slot = [f[0], f[1], f[2], pid]
                    .iter()
                    .position(|&x| x == third)
                    .unwrap();
                edge_map.entry(key).or_default().push((id, slot));
            }
        }
        // Wire new-new adjacency: each boundary edge is shared by exactly
        // two new tets.
        for (_, v) in edge_map {
            debug_assert_eq!(v.len(), 2, "each cavity boundary edge borders two faces");
            let (t1, s1) = v[0];
            let (t2, s2) = v[1];
            self.tets[t1 as usize].adj[s1] = t2;
            self.tets[t2 as usize].adj[s2] = t1;
        }

        self.last_alive = *new_ids.last().expect("cavity had boundary faces");
        Ok(())
    }

    /// Ids of the real points adjacent (by a Delaunay edge) to real point
    /// `v`.
    pub fn neighbors_of(&self, v: u32) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for t in &self.tets {
            if !t.alive || !t.v.contains(&v) {
                continue;
            }
            for &u in &t.v {
                if u != v && !self.is_virtual(u) && !out.contains(&u) {
                    out.push(u);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Test helper: verify the empty-circumsphere property for every live
    /// all-real tetrahedron against every real point. O(n·t) — use on small
    /// inputs only.
    pub fn check_delaunay(&self) -> bool {
        for t in &self.tets {
            if !t.alive || t.v.iter().any(|&v| self.is_virtual(v)) {
                continue;
            }
            let [a, b, c, d] = self.tet_points(t);
            for pid in 0..self.nreal as u32 {
                if t.v.contains(&pid) {
                    continue;
                }
                if insphere(a, b, c, d, self.points[pid as usize]) == Orientation::Positive {
                    return false;
                }
            }
        }
        true
    }

    /// Test helper: every live tet is positively oriented and adjacency is
    /// mutual.
    pub fn check_topology(&self) -> bool {
        for (ti, t) in self.tets.iter().enumerate() {
            if !t.alive {
                continue;
            }
            let [a, b, c, d] = self.tet_points(t);
            if orient3d(a, b, c, d) != Orientation::Positive {
                return false;
            }
            for i in 0..4 {
                let n = t.adj[i];
                if n == NONE {
                    continue;
                }
                let nt = &self.tets[n as usize];
                if !nt.alive {
                    return false;
                }
                if !nt.adj.contains(&(ti as u32)) {
                    return false;
                }
            }
        }
        true
    }

    /// Live tets (with liveness filtering) that contain vertex `v`,
    /// as indices into the internal tet array.
    pub(crate) fn tets_around(&self, v: u32) -> Vec<usize> {
        self.tets
            .iter()
            .enumerate()
            .filter(|(_, t)| t.alive && t.v.contains(&v))
            .map(|(i, _)| i)
            .collect()
    }

    pub(crate) fn tet_vertices(&self, ti: usize) -> [u32; 4] {
        self.tets[ti].v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::measures::tetra_volume;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn total_volume(dt: &Delaunay) -> f64 {
        dt.tetrahedra()
            .iter()
            .map(|&[a, b, c, d]| tetra_volume(dt.point(a), dt.point(b), dt.point(c), dt.point(d)))
            .sum()
    }

    #[test]
    fn single_tetrahedron() {
        let pts = vec![
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ];
        let dt = Delaunay::new(&pts).unwrap();
        assert_eq!(dt.tetrahedra().len(), 1);
        assert!(dt.check_topology());
        assert!(dt.check_delaunay());
        assert!((total_volume(&dt) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn cube_corners_cospherical() {
        // All 8 corners lie on one sphere: the ultimate degenerate case.
        let pts: Vec<Vec3> = Aabb::cube(1.0).corners().to_vec();
        let dt = Delaunay::new(&pts).unwrap();
        assert!(dt.check_topology());
        assert!(dt.check_delaunay());
        // union of real tets fills the cube
        assert!(
            (total_volume(&dt) - 1.0).abs() < 1e-9,
            "vol {}",
            total_volume(&dt)
        );
    }

    #[test]
    fn regular_grid_is_handled() {
        let n = 3;
        let pts: Vec<Vec3> = (0..n)
            .flat_map(|i| {
                (0..n)
                    .flat_map(move |j| (0..n).map(move |k| Vec3::new(i as f64, j as f64, k as f64)))
            })
            .collect();
        let dt = Delaunay::new(&pts).unwrap();
        assert!(dt.check_topology());
        assert!(dt.check_delaunay());
        assert!(
            (total_volume(&dt) - 8.0).abs() < 1e-9,
            "vol {}",
            total_volume(&dt)
        );
    }

    #[test]
    fn random_points_satisfy_empty_circumsphere() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        for n in [10usize, 40, 120] {
            let pts: Vec<Vec3> = (0..n)
                .map(|_| {
                    Vec3::new(
                        rng.gen_range(0.0..10.0),
                        rng.gen_range(0.0..10.0),
                        rng.gen_range(0.0..10.0),
                    )
                })
                .collect();
            let dt = Delaunay::new(&pts).unwrap();
            assert!(dt.check_topology(), "n={n}");
            assert!(dt.check_delaunay(), "n={n}");
            // volume equals the convex hull volume
            let hull = geometry::convex_hull(&pts, 1e-9).unwrap();
            assert!(
                (total_volume(&dt) - hull.volume()).abs() < 1e-6 * hull.volume(),
                "n={n}: {} vs {}",
                total_volume(&dt),
                hull.volume()
            );
        }
    }

    #[test]
    fn duplicates_are_mapped() {
        let pts = vec![
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 0.0, 0.0), // duplicate of 1
        ];
        let dt = Delaunay::new(&pts).unwrap();
        assert_eq!(dt.duplicate_of(4), Some(1));
        assert_eq!(dt.duplicate_of(1), None);
        assert_eq!(dt.tetrahedra().len(), 1);
    }

    #[test]
    fn neighbors_in_a_lattice() {
        // Center of a 3x3x3 lattice: Delaunay neighbors include the 6
        // face-adjacent points.
        let n = 3;
        let pts: Vec<Vec3> = (0..n)
            .flat_map(|k| {
                (0..n)
                    .flat_map(move |j| (0..n).map(move |i| Vec3::new(i as f64, j as f64, k as f64)))
            })
            .collect();
        let dt = Delaunay::new(&pts).unwrap();
        let center = 13u32; // (1,1,1)
        let nbrs = dt.neighbors_of(center);
        for face_nbr in [4u32, 10, 12, 14, 16, 22] {
            assert!(nbrs.contains(&face_nbr), "missing {face_nbr} in {nbrs:?}");
        }
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(Delaunay::new(&[]).unwrap_err(), DelaunayError::Empty);
    }

    #[test]
    fn collinear_and_coplanar_inputs_do_not_crash() {
        // These have no 3D triangulation of real tets, but insertion into
        // the big tet must still succeed with valid topology.
        let line: Vec<Vec3> = (0..5).map(|i| Vec3::new(i as f64, 0.0, 0.0)).collect();
        let dt = Delaunay::new(&line).unwrap();
        assert!(dt.check_topology());
        assert_eq!(dt.tetrahedra().len(), 0);

        let plane: Vec<Vec3> = (0..3)
            .flat_map(|i| (0..3).map(move |j| Vec3::new(i as f64, j as f64, 0.0)))
            .collect();
        let dt = Delaunay::new(&plane).unwrap();
        assert!(dt.check_topology());
        assert_eq!(dt.tetrahedra().len(), 0);
    }
}
