//! The in-situ cosmology tools framework (Figure 4).
//!
//! The paper wraps tess in a framework that "runs various analysis tools at
//! selected time steps, saves results to parallel storage" and is driven by
//! a configuration file next to the simulation input deck. This crate
//! provides exactly that:
//!
//! * [`tool::AnalysisTool`] — the common analysis interface the paper says
//!   all tools will be incorporated under,
//! * [`config`] — the cosmology-tools configuration (which tools run, at
//!   which cadence), parsed from a simple input-deck format,
//! * [`runner::InSituRunner`] — drives the simulation and invokes the
//!   scheduled tools at the right time steps,
//! * [`tools`] — the level-1 analyses named in Figure 4: the Voronoi
//!   tessellation (via `tess`), a friends-of-friends halo finder, a
//!   multistream / velocity-dispersion classifier, and in-situ summary
//!   statistics.

pub mod config;
pub mod runner;
pub mod tool;
pub mod tools;

pub use config::{FrameworkConfig, ServiceDirective, ToolSchedule};
pub use runner::InSituRunner;
pub use tool::{AnalysisTool, ToolContext, ToolReport};
pub use tools::halo_finder::{FofHalo, FofParams, HaloFinderTool};
pub use tools::multistream::MultistreamTool;
pub use tools::serve_tool::ServeTool;
pub use tools::stats_tool::StatsTool;
pub use tools::tess_tool::TessTool;
pub use tools::voids_tool::VoidsTool;
