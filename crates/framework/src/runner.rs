//! The in-situ runner: advances the simulation and fires scheduled tools.
//!
//! "Various tools will be turned on through the configuration file for the
//! simulation, and the frequency of their execution will also be
//! configurable. Upon each time step, the input particles will be sent to
//! the appropriate analysis tools." (§III-B)

use diy::comm::World;
use hacc::Simulation;

use crate::config::FrameworkConfig;
use crate::tool::{AnalysisTool, ToolContext, ToolReport};

/// Owns the configured tools and drives the simulation+analysis loop.
pub struct InSituRunner {
    pub config: FrameworkConfig,
    tools: Vec<Box<dyn AnalysisTool>>,
}

impl InSituRunner {
    pub fn new(config: FrameworkConfig) -> Self {
        InSituRunner {
            config,
            tools: Vec::new(),
        }
    }

    /// Register a tool instance. Tools without a schedule entry never fire.
    pub fn register(&mut self, tool: Box<dyn AnalysisTool>) {
        self.tools.push(tool);
    }

    /// Borrow a registered tool back (for reading its accumulated results).
    pub fn tool(&self, name: &str) -> Option<&dyn AnalysisTool> {
        self.tools
            .iter()
            .find(|t| t.name() == name)
            .map(|b| b.as_ref())
    }

    /// Run `nsteps` simulation steps, invoking scheduled tools after each
    /// step (collective). Returns all tool reports in firing order.
    pub fn run(
        &mut self,
        world: &mut World,
        sim: &mut Simulation,
        nsteps: usize,
    ) -> Vec<ToolReport> {
        // A `trace` directive in the deck overrides whatever TESS_TRACE
        // resolved to (the config file is the run's source of truth).
        if let Some(mode) = self.config.trace {
            diy::trace::set_trace_mode(mode);
        }
        let mut reports = Vec::new();
        for _ in 0..nsteps {
            sim.step(world);
            let step = sim.step_count;
            let ctx = ToolContext {
                sim,
                step,
                a: sim.a,
                output_dir: self.config.output_dir.clone(),
            };
            for tool in &mut self.tools {
                let fires = self
                    .config
                    .schedule_for(tool.name())
                    .map(|s| s.fires_at(step, nsteps))
                    .unwrap_or(false);
                if fires {
                    // one metrics span per tool firing, e.g. "tool:tess"
                    let _span = world.metrics().phase(format!("tool:{}", tool.name()));
                    reports.push(tool.run(world, &ctx));
                }
            }
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tools::halo_finder::{FofParams, HaloFinderTool};
    use crate::tools::stats_tool::StatsTool;
    use crate::tools::tess_tool::TessTool;
    use diy::comm::Runtime;
    use hacc::SimParams;

    fn test_config(dir: &std::path::Path) -> FrameworkConfig {
        FrameworkConfig::parse(&format!(
            "tool tess every=5 last=true\n\
             tool stats every=2\n\
             tool halos at=10\n\
             output_dir {}\n",
            dir.display()
        ))
        .unwrap()
    }

    #[test]
    fn tools_fire_on_schedule() {
        let dir = std::env::temp_dir().join("framework-runner-test");
        std::fs::create_dir_all(&dir).unwrap();
        let reports = Runtime::run(2, |w| {
            let params = SimParams {
                np: 8,
                box_size: 8.0,
                a_init: 0.1,
                a_final: 0.6,
                nsteps: 10,
                seed: 3,
                initial_delta_rms: 0.2,
                spectrum: hacc::power::PowerSpectrum::default(),
                solver: Default::default(),
            };
            let mut sim = hacc::Simulation::init(w, params, 8);
            let mut runner = InSituRunner::new(test_config(&dir));
            runner.register(Box::new(TessTool::new(
                tess::TessParams::default().with_ghost(2.0),
            )));
            runner.register(Box::new(StatsTool::new()));
            runner.register(Box::new(HaloFinderTool::new(FofParams {
                linking_length: 0.3,
                min_size: 3,
            })));
            runner.run(w, &mut sim, 10)
        });
        let r = &reports[0];
        let fired: Vec<(&str, usize)> = r.iter().map(|rep| (rep.tool.as_str(), rep.step)).collect();
        // stats at 2,4,6,8,10; tess at 5,10; halos at 10
        assert_eq!(
            fired
                .iter()
                .filter(|(t, _)| *t == "stats")
                .map(|(_, s)| *s)
                .collect::<Vec<_>>(),
            vec![2, 4, 6, 8, 10]
        );
        assert_eq!(
            fired
                .iter()
                .filter(|(t, _)| *t == "tess")
                .map(|(_, s)| *s)
                .collect::<Vec<_>>(),
            vec![5, 10]
        );
        assert_eq!(
            fired
                .iter()
                .filter(|(t, _)| *t == "halos")
                .map(|(_, s)| *s)
                .collect::<Vec<_>>(),
            vec![10]
        );
        // both ranks saw identical report sequences
        assert_eq!(reports[0].len(), reports[1].len());
        // the tess artifacts exist and are readable
        let f5 = dir.join("tess_step5.bin");
        let blocks = tess::io::read_tessellation(&f5).unwrap();
        assert_eq!(blocks.len(), 8);
        let cells: usize = blocks.iter().map(|b| b.cells.len()).sum();
        assert!(cells > 0);
    }

    #[test]
    fn serve_tool_keeps_a_resident_mesh_across_fires() {
        use crate::tools::serve_tool::ServeTool;
        let dir = std::env::temp_dir().join("framework-runner-test3");
        std::fs::create_dir_all(&dir).unwrap();
        let reports = Runtime::run(2, |w| {
            let params = SimParams {
                np: 8,
                box_size: 8.0,
                a_init: 0.1,
                a_final: 0.6,
                nsteps: 10,
                seed: 3,
                initial_delta_rms: 0.2,
                spectrum: hacc::power::PowerSpectrum::default(),
                solver: Default::default(),
            };
            let mut sim = hacc::Simulation::init(w, params, 8);
            let cfg = FrameworkConfig::parse(&format!(
                "service workers=2 batch=32\n\
                 tool serve every=5\n\
                 output_dir {}\n",
                dir.display()
            ))
            .unwrap();
            let tool = ServeTool::from_config(
                tess::TessParams::default(),
                &cfg,
                cfg.schedule_for("serve").unwrap(),
            );
            let mut runner = InSituRunner::new(cfg);
            runner.register(Box::new(tool));
            runner.run(w, &mut sim, 10)
        });
        for rank_reports in &reports {
            assert_eq!(rank_reports.len(), 2); // steps 5 and 10
            assert!(rank_reports.iter().all(|r| r.tool == "serve"));
        }
        // Rank 0 hosts the service: the first fire spawns it (epoch 1), the
        // second pushes the evolved snapshot as an update (epoch 2).
        let summaries: Vec<&str> = reports[0].iter().map(|r| r.summary.as_str()).collect();
        assert!(summaries[0].contains("epoch 1"), "{}", summaries[0]);
        assert!(summaries[1].contains("epoch 2"), "{}", summaries[1]);
        assert!(summaries.iter().all(|s| s.contains("serving")));
        // Non-root ranks only feed the gather.
        assert!(reports[1]
            .iter()
            .all(|r| r.summary.contains("service hosted on rank 0")));
    }

    #[test]
    fn unscheduled_tools_never_fire() {
        let dir = std::env::temp_dir().join("framework-runner-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let reports = Runtime::run(1, |w| {
            let params = SimParams {
                np: 8,
                box_size: 8.0,
                a_init: 0.1,
                a_final: 0.2,
                nsteps: 3,
                seed: 3,
                initial_delta_rms: 0.1,
                spectrum: hacc::power::PowerSpectrum::default(),
                solver: Default::default(),
            };
            let mut sim = hacc::Simulation::init(w, params, 1);
            let cfg = FrameworkConfig::parse("tool stats every=1\n").unwrap();
            let mut runner = InSituRunner::new(FrameworkConfig {
                output_dir: dir.clone(),
                ..cfg
            });
            runner.register(Box::new(StatsTool::new()));
            // tess registered but not scheduled
            runner.register(Box::new(TessTool::new(
                tess::TessParams::default().with_ghost(2.0),
            )));
            runner.run(w, &mut sim, 3)
        });
        assert!(reports[0].iter().all(|r| r.tool == "stats"));
        assert_eq!(reports[0].len(), 3);
    }
}
