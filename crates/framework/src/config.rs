//! Cosmology-tools configuration (the file next to the simulation input
//! deck in Figure 4).
//!
//! Format: one directive per line, `#` comments.
//!
//! ```text
//! # run the tessellation every 10 steps and at the final step
//! tool tess       every=10  last=true
//! tool halos      at=50,100
//! tool stats      every=25
//! output_dir out/
//! ```

use std::collections::BTreeSet;
use std::path::PathBuf;

use diy::decomposition::DecompScheme;
use diy::trace::TraceMode;

/// When a tool runs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ToolSchedule {
    pub name: String,
    /// Run every `n` steps (step % n == 0, step > 0).
    pub every: Option<usize>,
    /// Run at these explicit steps.
    pub at: BTreeSet<usize>,
    /// Always run at the final step.
    pub last: bool,
    /// Ghost-zone directive for tessellating tools: `auto`,
    /// `auto:<factor>`, `adaptive`, `adaptive:<factor>[:<rounds>]`, or an
    /// explicit radius in domain units. `None` keeps the tool's default.
    pub ghost: Option<GhostDirective>,
    /// Output-mode directive for tessellating tools: `merged` (accumulate
    /// the whole rank's mesh, then write) or `stream[:<path>]`
    /// (bounded-memory: tessellate, write, and drop block by block).
    /// `None` keeps the tool's default (merged).
    pub output: Option<OutputDirective>,
}

/// Parsed `output=` option of a `tool` line.
#[derive(Debug, Clone, PartialEq)]
pub enum OutputDirective {
    /// Accumulate the merged mesh in memory, then write it collectively.
    Merged,
    /// Bounded-memory streaming via `tess::tessellate_streaming`; the
    /// optional path overrides the tool's default `tess_step{N}.stream.bin`
    /// file name inside `output_dir` (a `{step}` placeholder, when present,
    /// is replaced by the step number so repeated firings don't clobber).
    Stream { path: Option<String> },
}

impl OutputDirective {
    fn parse(value: &str) -> Result<Self, String> {
        match value.split_once(':') {
            None => match value {
                "merged" => Ok(OutputDirective::Merged),
                "stream" => Ok(OutputDirective::Stream { path: None }),
                _ => Err(format!(
                    "output must be merged|stream[:<path>], got '{value}'"
                )),
            },
            Some(("stream", path)) if !path.is_empty() => Ok(OutputDirective::Stream {
                path: Some(path.to_string()),
            }),
            Some(_) => Err(format!(
                "output must be merged|stream[:<path>], got '{value}'"
            )),
        }
    }
}

/// Parsed `ghost=` option of a `tool` line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GhostDirective {
    Explicit(f64),
    Auto {
        factor: Option<f64>,
    },
    Adaptive {
        initial_factor: Option<f64>,
        max_rounds: Option<usize>,
    },
}

impl GhostDirective {
    fn parse(value: &str) -> Result<Self, String> {
        let mut parts = value.split(':');
        let head = parts.next().unwrap_or("");
        let args: Vec<&str> = parts.collect();
        let float = |s: &str| -> Result<f64, String> {
            s.parse().map_err(|_| format!("bad ghost number '{s}'"))
        };
        match head {
            "auto" => match args.as_slice() {
                [] => Ok(GhostDirective::Auto { factor: None }),
                [f] => Ok(GhostDirective::Auto {
                    factor: Some(float(f)?),
                }),
                _ => Err(format!("ghost auto takes one factor, got '{value}'")),
            },
            "adaptive" => match args.as_slice() {
                [] => Ok(GhostDirective::Adaptive {
                    initial_factor: None,
                    max_rounds: None,
                }),
                [f] => Ok(GhostDirective::Adaptive {
                    initial_factor: Some(float(f)?),
                    max_rounds: None,
                }),
                [f, r] => Ok(GhostDirective::Adaptive {
                    initial_factor: Some(float(f)?),
                    max_rounds: Some(r.parse().map_err(|_| format!("bad ghost rounds '{r}'"))?),
                }),
                _ => Err(format!(
                    "ghost adaptive takes factor[:rounds], got '{value}'"
                )),
            },
            _ if args.is_empty() => Ok(GhostDirective::Explicit(float(head)?)),
            _ => Err(format!("bad ghost value '{value}'")),
        }
    }
}

impl ToolSchedule {
    /// Should the tool fire at `step` of a run with `nsteps` total?
    pub fn fires_at(&self, step: usize, nsteps: usize) -> bool {
        if self.last && step == nsteps {
            return true;
        }
        if self.at.contains(&step) {
            return true;
        }
        if let Some(n) = self.every {
            if n > 0 && step > 0 && step.is_multiple_of(n) {
                return true;
            }
        }
        false
    }
}

/// Sizing of the resident mesh service, from a
/// `service workers=<n> batch=<n>` directive (both options optional).
/// Consumed by the `serve` tool (see `tools::serve_tool`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceDirective {
    /// Query worker threads.
    pub workers: Option<usize>,
    /// Max requests drained per batch.
    pub batch: Option<usize>,
}

/// Parsed framework configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FrameworkConfig {
    pub tools: Vec<ToolSchedule>,
    pub output_dir: PathBuf,
    /// Flight-recorder mode from a `trace off|spans|full` directive;
    /// `None` leaves the `TESS_TRACE` environment resolution in charge.
    pub trace: Option<TraceMode>,
    /// Resident-service sizing from a `service` directive.
    pub service: Option<ServiceDirective>,
    /// Block decomposition scheme from a `decomp regular|kd[:<sample>]`
    /// directive; `None` leaves the `TESS_DECOMP` env resolution in charge.
    pub decomp: Option<DecompScheme>,
    /// Telemetry exposition file from a `telemetry <path>` directive:
    /// tools that host live instruments (the `serve` tool) rewrite this
    /// file (relative paths land in `output_dir`; a `{step}` placeholder
    /// is replaced by the firing step) with the Prometheus text
    /// exposition each time they fire. `None` disables the export.
    pub telemetry: Option<String>,
}

/// Configuration parse errors (line number + message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "config line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl FrameworkConfig {
    /// Parse the input-deck text.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut cfg = FrameworkConfig {
            tools: Vec::new(),
            output_dir: PathBuf::from("."),
            trace: None,
            service: None,
            decomp: None,
            telemetry: None,
        };
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |m: String| ConfigError {
                line: lineno + 1,
                message: m,
            };
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("tool") => {
                    let name = parts
                        .next()
                        .ok_or_else(|| err("tool needs a name".into()))?
                        .to_string();
                    let mut sched = ToolSchedule {
                        name,
                        ..Default::default()
                    };
                    for opt in parts {
                        let (key, value) = opt
                            .split_once('=')
                            .ok_or_else(|| err(format!("expected key=value, got '{opt}'")))?;
                        match key {
                            "every" => {
                                sched.every = Some(
                                    value
                                        .parse()
                                        .map_err(|_| err(format!("bad every value '{value}'")))?,
                                )
                            }
                            "at" => {
                                for s in value.split(',') {
                                    sched.at.insert(
                                        s.parse()
                                            .map_err(|_| err(format!("bad at value '{s}'")))?,
                                    );
                                }
                            }
                            "last" => {
                                sched.last = value
                                    .parse()
                                    .map_err(|_| err(format!("bad last value '{value}'")))?
                            }
                            "ghost" => {
                                sched.ghost = Some(GhostDirective::parse(value).map_err(err)?)
                            }
                            "output" => {
                                sched.output = Some(OutputDirective::parse(value).map_err(err)?)
                            }
                            _ => return Err(err(format!("unknown option '{key}'"))),
                        }
                    }
                    cfg.tools.push(sched);
                }
                Some("service") => {
                    let mut dir = ServiceDirective::default();
                    for opt in parts {
                        let (key, value) = opt
                            .split_once('=')
                            .ok_or_else(|| err(format!("expected key=value, got '{opt}'")))?;
                        let n: usize = value
                            .parse()
                            .map_err(|_| err(format!("bad {key} value '{value}'")))?;
                        if n == 0 {
                            return Err(err(format!("{key} must be positive")));
                        }
                        match key {
                            "workers" => dir.workers = Some(n),
                            "batch" => dir.batch = Some(n),
                            _ => return Err(err(format!("unknown service option '{key}'"))),
                        }
                    }
                    cfg.service = Some(dir);
                }
                // accept both `decomp kd` and the single-token `decomp=kd`
                Some(tok) if tok == "decomp" || tok.starts_with("decomp=") => {
                    let value = match tok.split_once('=') {
                        Some((_, v)) => v,
                        None => parts
                            .next()
                            .ok_or_else(|| err("decomp needs regular|kd[:<sample>]".into()))?,
                    };
                    cfg.decomp = Some(
                        DecompScheme::parse(value)
                            .ok_or_else(|| err(format!("bad decomp scheme '{value}'")))?,
                    );
                }
                Some("output_dir") => {
                    let dir = parts
                        .next()
                        .ok_or_else(|| err("output_dir needs a path".into()))?;
                    cfg.output_dir = PathBuf::from(dir);
                }
                // accept both `telemetry p.prom` and `telemetry=p.prom`
                Some(tok) if tok == "telemetry" || tok.starts_with("telemetry=") => {
                    let value = match tok.split_once('=') {
                        Some((_, v)) => v,
                        None => parts
                            .next()
                            .ok_or_else(|| err("telemetry needs a path".into()))?,
                    };
                    if value.is_empty() {
                        return Err(err("telemetry needs a path".into()));
                    }
                    cfg.telemetry = Some(value.to_string());
                }
                // accept both `trace full` and the single-token `trace=full`
                Some(tok) if tok == "trace" || tok.starts_with("trace=") => {
                    let value = match tok.split_once('=') {
                        Some((_, v)) => v,
                        None => parts
                            .next()
                            .ok_or_else(|| err("trace needs off|spans|full".into()))?,
                    };
                    cfg.trace = Some(
                        value
                            .parse()
                            .map_err(|_| err(format!("bad trace mode '{value}'")))?,
                    );
                }
                Some(other) => return Err(err(format!("unknown directive '{other}'"))),
                None => unreachable!("empty lines skipped"),
            }
        }
        Ok(cfg)
    }

    pub fn schedule_for(&self, name: &str) -> Option<&ToolSchedule> {
        self.tools.iter().find(|t| t.name == name)
    }

    /// The decomposition scheme this run should use: the `decomp`
    /// directive when present, otherwise the `TESS_DECOMP` env resolution
    /// (the config file is the run's source of truth, like `trace`).
    pub fn decomp_scheme(&self) -> DecompScheme {
        self.decomp.unwrap_or_else(DecompScheme::from_env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_example() {
        let cfg = FrameworkConfig::parse(
            "# comment\n\
             tool tess every=10 last=true\n\
             tool halos at=50,100\n\
             tool stats every=25   # trailing comment\n\
             output_dir out/\n",
        )
        .unwrap();
        assert_eq!(cfg.tools.len(), 3);
        assert_eq!(cfg.output_dir, PathBuf::from("out/"));
        let tess = cfg.schedule_for("tess").unwrap();
        assert_eq!(tess.every, Some(10));
        assert!(tess.last);
        let halos = cfg.schedule_for("halos").unwrap();
        assert_eq!(halos.at, [50, 100].into_iter().collect());
    }

    #[test]
    fn schedule_semantics() {
        let s = ToolSchedule {
            name: "x".into(),
            every: Some(10),
            at: [7].into_iter().collect(),
            last: true,
            ghost: None,
            output: None,
        };
        assert!(!s.fires_at(0, 100), "step 0 never fires via every");
        assert!(s.fires_at(10, 100));
        assert!(s.fires_at(7, 100));
        assert!(!s.fires_at(11, 100));
        assert!(s.fires_at(100, 100));
        // 'last' applies even off-cadence
        let s2 = ToolSchedule {
            name: "y".into(),
            last: true,
            ..Default::default()
        };
        assert!(s2.fires_at(33, 33));
        assert!(!s2.fires_at(32, 33));
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "tool",
            "tool x every=abc",
            "tool x at=1,zz",
            "tool x strange=1",
            "frobnicate 3",
            "tool x every",
            "tool x ghost=bogus",
            "tool x ghost=auto:zz",
            "tool x ghost=adaptive:2.5:x",
            "tool x ghost=adaptive:1:2:3",
            "tool x ghost=3.0:7",
            "tool x output=bogus",
            "tool x output=stream:",
            "tool x output=merged:path",
            "trace",
            "trace verbose",
            "trace=bogus",
            "decomp",
            "decomp hilbert",
            "decomp=kd:x",
            "telemetry",
            "telemetry=",
        ] {
            let e = FrameworkConfig::parse(bad).unwrap_err();
            assert_eq!(e.line, 1, "{bad}");
        }
    }

    #[test]
    fn parses_ghost_directives() {
        let cfg = FrameworkConfig::parse(
            "tool a every=1 ghost=2.5\n\
             tool b every=1 ghost=auto\n\
             tool c every=1 ghost=auto:4\n\
             tool d every=1 ghost=adaptive\n\
             tool e every=1 ghost=adaptive:1.5\n\
             tool f every=1 ghost=adaptive:1.5:6\n\
             tool g every=1\n",
        )
        .unwrap();
        let g = |n: &str| cfg.schedule_for(n).unwrap().ghost;
        assert_eq!(g("a"), Some(GhostDirective::Explicit(2.5)));
        assert_eq!(g("b"), Some(GhostDirective::Auto { factor: None }));
        assert_eq!(g("c"), Some(GhostDirective::Auto { factor: Some(4.0) }));
        assert_eq!(
            g("d"),
            Some(GhostDirective::Adaptive {
                initial_factor: None,
                max_rounds: None
            })
        );
        assert_eq!(
            g("e"),
            Some(GhostDirective::Adaptive {
                initial_factor: Some(1.5),
                max_rounds: None
            })
        );
        assert_eq!(
            g("f"),
            Some(GhostDirective::Adaptive {
                initial_factor: Some(1.5),
                max_rounds: Some(6)
            })
        );
        assert_eq!(g("g"), None);
    }

    #[test]
    fn parses_output_directives() {
        let cfg = FrameworkConfig::parse(
            "tool a every=1 output=merged\n\
             tool b every=1 output=stream\n\
             tool c every=1 output=stream:mesh_{step}.bin\n\
             tool d every=1\n",
        )
        .unwrap();
        let o = |n: &str| cfg.schedule_for(n).unwrap().output.clone();
        assert_eq!(o("a"), Some(OutputDirective::Merged));
        assert_eq!(o("b"), Some(OutputDirective::Stream { path: None }));
        assert_eq!(
            o("c"),
            Some(OutputDirective::Stream {
                path: Some("mesh_{step}.bin".into())
            })
        );
        assert_eq!(o("d"), None);
    }

    #[test]
    fn parses_trace_directive() {
        for (text, want) in [
            ("trace off", TraceMode::Off),
            ("trace spans", TraceMode::Spans),
            ("trace full", TraceMode::Full),
            ("trace=full", TraceMode::Full),
            ("trace full   # comment", TraceMode::Full),
        ] {
            let cfg = FrameworkConfig::parse(text).unwrap();
            assert_eq!(cfg.trace, Some(want), "{text}");
        }
        assert_eq!(FrameworkConfig::parse("").unwrap().trace, None);
    }

    #[test]
    fn parses_service_directive() {
        let cfg = FrameworkConfig::parse("service workers=3 batch=32\n").unwrap();
        assert_eq!(
            cfg.service,
            Some(ServiceDirective {
                workers: Some(3),
                batch: Some(32)
            })
        );
        let cfg = FrameworkConfig::parse("service\n").unwrap();
        assert_eq!(cfg.service, Some(ServiceDirective::default()));
        assert_eq!(FrameworkConfig::parse("").unwrap().service, None);
        for bad in [
            "service workers=0",
            "service workers=abc",
            "service depth=4",
            "service workers",
        ] {
            let e = FrameworkConfig::parse(bad).unwrap_err();
            assert_eq!(e.line, 1, "{bad}");
        }
    }

    #[test]
    fn parses_decomp_directive() {
        for (text, want) in [
            ("decomp regular", DecompScheme::Regular),
            (
                "decomp kd",
                DecompScheme::Kd {
                    sample: DecompScheme::DEFAULT_KD_SAMPLE,
                },
            ),
            ("decomp kd:2048", DecompScheme::Kd { sample: 2048 }),
            ("decomp=kd:2048", DecompScheme::Kd { sample: 2048 }),
        ] {
            let cfg = FrameworkConfig::parse(text).unwrap();
            assert_eq!(cfg.decomp, Some(want), "{text}");
            assert_eq!(cfg.decomp_scheme(), want, "{text}");
        }
        assert_eq!(FrameworkConfig::parse("").unwrap().decomp, None);
    }

    #[test]
    fn parses_telemetry_directive() {
        for text in [
            "telemetry metrics_{step}.prom",
            "telemetry=metrics_{step}.prom",
        ] {
            let cfg = FrameworkConfig::parse(text).unwrap();
            assert_eq!(
                cfg.telemetry.as_deref(),
                Some("metrics_{step}.prom"),
                "{text}"
            );
        }
        assert_eq!(FrameworkConfig::parse("").unwrap().telemetry, None);
    }

    #[test]
    fn empty_config_is_valid() {
        let cfg = FrameworkConfig::parse("\n  \n# only comments\n").unwrap();
        assert!(cfg.tools.is_empty());
    }
}
