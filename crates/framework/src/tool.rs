//! The common analysis-tool interface.

use std::path::PathBuf;

use diy::comm::World;
use hacc::Simulation;

/// What a tool sees when invoked: the live simulation state at one step.
pub struct ToolContext<'a> {
    pub sim: &'a Simulation,
    /// Simulation step index at invocation time.
    pub step: usize,
    /// Scale factor at invocation time.
    pub a: f64,
    /// Directory for tool outputs (shared across ranks).
    pub output_dir: PathBuf,
}

/// One tool invocation's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolReport {
    pub tool: String,
    pub step: usize,
    /// Human-readable one-liner for the run log.
    pub summary: String,
    /// Files the tool wrote (rank 0's view).
    pub artifacts: Vec<PathBuf>,
}

/// A level-1 in-situ analysis (Figure 4). `run` is collective: every rank
/// of `world` calls it at the same step.
pub trait AnalysisTool: Send {
    fn name(&self) -> &str;

    fn run(&mut self, world: &mut World, ctx: &ToolContext<'_>) -> ToolReport;
}
