//! In-situ void finding: tessellation + distributed connected-component
//! labeling inside the simulation loop.
//!
//! The paper's §V future work: "we are also considering moving more
//! postprocessing tasks in situ, such as connected component labeling,
//! Minkowski functionals, and histogram summary statistics" — this tool
//! does the first, and feeds the temporal tracker
//! ([`postprocess::tracking`]) with a component snapshot per invocation.

use std::collections::BTreeMap;

use diy::comm::World;
use geometry::Vec3;
use postprocess::components::{label_components_parallel, Components};
use postprocess::tracking::{classify_events, Event};
use tess::{tessellate, TessParams};

use crate::tool::{AnalysisTool, ToolContext, ToolReport};

/// In-situ void finder with step-to-step tracking.
pub struct VoidsTool {
    pub tess_params: TessParams,
    /// Absolute minimum cell volume for a void member.
    pub min_volume: f64,
    /// Minimum shared cells for a temporal link.
    pub min_overlap: u64,
    /// (step, components) snapshots.
    pub snapshots: Vec<(usize, Components)>,
    /// Events between consecutive snapshots.
    pub events: Vec<(usize, Vec<Event>)>,
}

impl VoidsTool {
    pub fn new(tess_params: TessParams, min_volume: f64) -> Self {
        VoidsTool {
            tess_params,
            min_volume,
            min_overlap: 1,
            snapshots: Vec::new(),
            events: Vec::new(),
        }
    }
}

impl AnalysisTool for VoidsTool {
    fn name(&self) -> &str {
        "voids"
    }

    fn run(&mut self, world: &mut World, ctx: &ToolContext<'_>) -> ToolReport {
        let sim = ctx.sim;
        let local: BTreeMap<u64, Vec<(u64, Vec3)>> = sim
            .blocks
            .iter()
            .map(|(&gid, ps)| (gid, ps.iter().map(|p| (p.id, p.pos)).collect()))
            .collect();
        let result = tessellate(world, &sim.dec, &sim.asn, &local, &self.tess_params);
        let mut comps =
            label_components_parallel(world, &sim.dec, &sim.asn, &result.blocks, self.min_volume);
        // globalize the site→label map so temporal tracking sees the same
        // picture on every rank regardless of particle migration
        let local_labels: Vec<(u64, u64)> = comps.labels.iter().map(|(&s, &l)| (s, l)).collect();
        let all_labels = world.all_gather(&local_labels);
        comps.labels = all_labels.into_iter().flatten().collect();

        let mut summary = format!(
            "step {}: {} voids above {:.2} (Mpc/h)^3, largest {} cells",
            ctx.step,
            comps.num_components(),
            self.min_volume,
            comps.by_volume().first().map(|(_, s)| s.cells).unwrap_or(0),
        );
        if let Some((_, prev)) = self.snapshots.last() {
            let ev = classify_events(prev, &comps, self.min_overlap);
            let births = ev
                .iter()
                .filter(|e| matches!(e, Event::Birth { .. }))
                .count();
            let deaths = ev
                .iter()
                .filter(|e| matches!(e, Event::Death { .. }))
                .count();
            let merges = ev
                .iter()
                .filter(|e| matches!(e, Event::Merge { .. }))
                .count();
            let splits = ev
                .iter()
                .filter(|e| matches!(e, Event::Split { .. }))
                .count();
            summary.push_str(&format!(
                "; since last: {births} births, {deaths} deaths, {merges} merges, {splits} splits"
            ));
            self.events.push((ctx.step, ev));
        }
        self.snapshots.push((ctx.step, comps));

        ToolReport {
            tool: self.name().to_string(),
            step: ctx.step,
            summary,
            artifacts: vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FrameworkConfig;
    use crate::runner::InSituRunner;
    use diy::comm::Runtime;
    use hacc::SimParams;

    #[test]
    fn voids_tool_tracks_components_in_situ() {
        let dir = std::env::temp_dir().join("voids-tool-test");
        std::fs::create_dir_all(&dir).unwrap();
        let reports = Runtime::run(2, |w| {
            let params = SimParams {
                np: 16,
                ..SimParams::paper_like(16)
            };
            let mut sim = hacc::Simulation::init(w, params, 8);
            let cfg = FrameworkConfig::parse(&format!(
                "tool voids every=5\noutput_dir {}\n",
                dir.display()
            ))
            .unwrap();
            let mut runner = InSituRunner::new(cfg);
            runner.register(Box::new(VoidsTool::new(
                TessParams::default().with_ghost(4.0),
                1.5,
            )));
            runner.run(w, &mut sim, 15)
        });
        for r in &reports {
            let voids: Vec<_> = r.iter().filter(|rep| rep.tool == "voids").collect();
            assert_eq!(voids.len(), 3, "steps 5, 10, 15");
            // second and later invocations report tracking events
            assert!(
                voids[1].summary.contains("since last"),
                "{}",
                voids[1].summary
            );
        }
        // all ranks agree on the summaries (same global component view)
        assert_eq!(
            reports[0].iter().map(|r| &r.summary).collect::<Vec<_>>(),
            reports[1].iter().map(|r| &r.summary).collect::<Vec<_>>()
        );
    }
}
