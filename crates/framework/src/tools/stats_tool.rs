//! In-situ summary statistics (the paper's §V: "moving more postprocessing
//! tasks in situ, such as … histogram summary statistics").
//!
//! Computes the CIC density-contrast field of the live particles and
//! reports the histogram moments that Figure 11 tracks over time.

use diy::comm::World;
use fft3d::Grid3;
use postprocess::Histogram;

use crate::tool::{AnalysisTool, ToolContext, ToolReport};

/// One snapshot of in-situ statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSnapshot {
    pub step: usize,
    pub a: f64,
    pub mean: f64,
    pub variance: f64,
    pub skewness: f64,
    pub kurtosis: f64,
}

/// In-situ grid-density statistics tool.
#[derive(Default)]
pub struct StatsTool {
    pub snapshots: Vec<StatsSnapshot>,
}

impl StatsTool {
    pub fn new() -> Self {
        Self::default()
    }
}

impl AnalysisTool for StatsTool {
    fn name(&self) -> &str {
        "stats"
    }

    fn run(&mut self, world: &mut World, ctx: &ToolContext<'_>) -> ToolReport {
        let sim = ctx.sim;
        let ng = sim.params.np;

        // Local CIC deposit, merged across ranks (same pattern as the
        // gravity solve).
        let mut rho = Grid3::new([ng, ng, ng], 0.0);
        let local_pos: Vec<geometry::Vec3> = sim.local_particles().map(|p| p.pos).collect();
        hacc::cic::deposit(&mut rho, &local_pos);
        let summed = diy::reduce::all_reduce_merge(world, rho.data().to_vec(), |mut a, b| {
            for (x, y) in a.iter_mut().zip(&b) {
                *x += *y;
            }
            a
        });

        let mean = sim.params.total_particles() as f64 / (ng * ng * ng) as f64;
        let h = Histogram::auto_range(
            &summed.iter().map(|&m| m / mean - 1.0).collect::<Vec<f64>>(),
            100,
        );
        let snap = StatsSnapshot {
            step: ctx.step,
            a: ctx.a,
            mean: h.mean(),
            variance: h.variance(),
            skewness: h.skewness(),
            kurtosis: h.kurtosis(),
        };
        self.snapshots.push(snap);
        ToolReport {
            tool: self.name().to_string(),
            step: ctx.step,
            summary: format!(
                "step {}: δ-grid variance {:.4}, skewness {:.2}, kurtosis {:.2}",
                ctx.step, snap.variance, snap.skewness, snap.kurtosis
            ),
            artifacts: vec![],
        }
    }
}
