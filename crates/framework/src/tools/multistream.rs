//! Multistream-region classifier (Figure 4's "multistream detection").
//!
//! The real multistream analysis (Shandarin et al., the paper's [8])
//! counts Lagrangian stream crossings; here we use the standard
//! velocity-dispersion proxy: grid cells where the local momentum
//! dispersion is large host multiple matter streams (collapsed,
//! shell-crossed regions), while single-stream cells are voids or coherent
//! flows. The substitution is documented in DESIGN.md.

use diy::comm::World;
use fft3d::Grid3;

use crate::tool::{AnalysisTool, ToolContext, ToolReport};

/// Multistream classification summary for one step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultistreamSnapshot {
    pub step: usize,
    /// Fraction of occupied grid cells classified multistream.
    pub multistream_fraction: f64,
    /// Mean momentum dispersion over occupied cells.
    pub mean_dispersion: f64,
}

/// Velocity-dispersion-based multistream detector.
#[derive(Default)]
pub struct MultistreamTool {
    /// Dispersion threshold relative to the mean (cells above are
    /// multistream). 1.0 = mean.
    pub relative_threshold: f64,
    pub snapshots: Vec<MultistreamSnapshot>,
}

impl MultistreamTool {
    pub fn new(relative_threshold: f64) -> Self {
        MultistreamTool {
            relative_threshold,
            snapshots: Vec::new(),
        }
    }
}

impl AnalysisTool for MultistreamTool {
    fn name(&self) -> &str {
        "multistream"
    }

    fn run(&mut self, world: &mut World, ctx: &ToolContext<'_>) -> ToolReport {
        let sim = ctx.sim;
        let ng = sim.params.np;
        // Accumulate per-cell count, Σp, Σ|p|² on nearest-grid-point cells.
        let mut count = Grid3::new([ng, ng, ng], 0.0f64);
        let mut psum = vec![Grid3::new([ng, ng, ng], 0.0f64); 3];
        let mut p2sum = Grid3::new([ng, ng, ng], 0.0f64);
        for p in sim.local_particles() {
            let i = (p.pos.x as isize, p.pos.y as isize, p.pos.z as isize);
            let idx = count.idx_wrapped(i.0, i.1, i.2);
            count.data_mut()[idx] += 1.0;
            for (d, g) in psum.iter_mut().enumerate() {
                g.data_mut()[idx] += p.mom[d];
            }
            p2sum.data_mut()[idx] += p.mom.norm2();
        }
        // merge the four grids across ranks in one payload
        let mut payload: Vec<f64> = Vec::with_capacity(5 * count.len());
        payload.extend_from_slice(count.data());
        for g in &psum {
            payload.extend_from_slice(g.data());
        }
        payload.extend_from_slice(p2sum.data());
        let merged = diy::reduce::all_reduce_merge(world, payload, |mut a, b| {
            for (x, y) in a.iter_mut().zip(&b) {
                *x += *y;
            }
            a
        });

        let n3 = ng * ng * ng;
        let mut dispersions: Vec<f64> = Vec::new();
        for i in 0..n3 {
            let c = merged[i];
            if c < 1.0 {
                continue;
            }
            let mean2 = (0..3)
                .map(|d| {
                    let m = merged[(1 + d) * n3 + i] / c;
                    m * m
                })
                .sum::<f64>();
            let sigma2 = (merged[4 * n3 + i] / c - mean2).max(0.0);
            dispersions.push(sigma2);
        }
        let mean_disp = if dispersions.is_empty() {
            0.0
        } else {
            dispersions.iter().sum::<f64>() / dispersions.len() as f64
        };
        let threshold = self.relative_threshold * mean_disp;
        let multi = dispersions.iter().filter(|&&d| d > threshold).count();
        let frac = if dispersions.is_empty() {
            0.0
        } else {
            multi as f64 / dispersions.len() as f64
        };

        let snap = MultistreamSnapshot {
            step: ctx.step,
            multistream_fraction: frac,
            mean_dispersion: mean_disp,
        };
        self.snapshots.push(snap);
        ToolReport {
            tool: self.name().to_string(),
            step: ctx.step,
            summary: format!(
                "step {}: {:.1}% of occupied cells multistream (mean σ² {:.3e})",
                ctx.step,
                100.0 * frac,
                mean_disp
            ),
            artifacts: vec![],
        }
    }
}
