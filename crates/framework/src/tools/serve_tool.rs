//! The resident mesh service as a framework tool ("service mode").
//!
//! At each scheduled step the live particles are gathered to rank 0,
//! which hosts a [`tess::MeshService`] (with its own small resident rank
//! machine, independent of the simulation's ranks). The first fire spawns
//! the service; later fires push the new particle snapshot as an update —
//! so between steps the last certified mesh stays resident and queryable.
//! Each fire also runs a probe batch (a point lookup at every block
//! center plus a whole-domain region summary) and reports the published
//! epoch, cell count, and probe latency.

use diy::comm::World;
use diy::decomposition::DecompScheme;
use geometry::Vec3;
use tess::{Answer, MeshService, Query, ServiceConfig, TessParams, Update};

use crate::config::{FrameworkConfig, ServiceDirective, ToolSchedule};
use crate::tool::{AnalysisTool, ToolContext, ToolReport};
use crate::tools::tess_tool::ghost_spec_from_directive;

/// Hosts the resident mesh service on rank 0 (see module docs).
pub struct ServeTool {
    pub params: TessParams,
    /// Query worker threads for the service.
    pub workers: usize,
    /// Max requests drained per batch.
    pub batch: usize,
    /// Resident ranks of the service's private update machine.
    pub service_ranks: usize,
    /// Decomposition scheme for the service's resident blocks.
    pub decomp: DecompScheme,
    /// Per-fire record: (step, epoch published, cells served).
    pub history: Vec<(usize, u64, u64)>,
    /// Prometheus exposition file rewritten per fire (from the config's
    /// `telemetry` directive; `{step}` expands to the firing step).
    pub telemetry_path: Option<String>,
    service: Option<MeshService>,
}

impl ServeTool {
    pub fn new(params: TessParams) -> Self {
        ServeTool {
            params,
            workers: 2,
            batch: 64,
            service_ranks: 2,
            decomp: DecompScheme::Regular,
            history: Vec::new(),
            telemetry_path: None,
            service: None,
        }
    }

    /// `new`, with the schedule's `ghost=` directive overriding
    /// `params.ghost`, the config's `service` directive sizing the
    /// worker pool / batch cap, and the config's `decomp` directive
    /// choosing the service's block decomposition scheme.
    pub fn from_config(params: TessParams, cfg: &FrameworkConfig, sched: &ToolSchedule) -> Self {
        let mut tool = ServeTool::new(params);
        if let Some(d) = sched.ghost {
            tool.params.ghost = ghost_spec_from_directive(d);
        }
        let ServiceDirective { workers, batch } = cfg.service.unwrap_or_default();
        if let Some(w) = workers {
            tool.workers = w;
        }
        if let Some(b) = batch {
            tool.batch = b;
        }
        tool.decomp = cfg.decomp_scheme();
        tool.telemetry_path = cfg.telemetry.clone();
        tool
    }

    /// The hosted service (rank 0 only, after the first fire).
    pub fn service(&self) -> Option<&MeshService> {
        self.service.as_ref()
    }
}

impl AnalysisTool for ServeTool {
    fn name(&self) -> &str {
        "serve"
    }

    fn run(&mut self, world: &mut World, ctx: &ToolContext<'_>) -> ToolReport {
        let sim = ctx.sim;
        let mine: Vec<(u64, Vec3)> = sim
            .blocks
            .values()
            .flat_map(|ps| ps.iter().map(|p| (p.id, p.pos)))
            .collect();
        let gathered = world.gather(0, &mine);
        let Some(per_rank) = gathered else {
            return ToolReport {
                tool: self.name().to_string(),
                step: ctx.step,
                summary: format!("step {}: service hosted on rank 0", ctx.step),
                artifacts: Vec::new(),
            };
        };
        let all: Vec<(u64, Vec3)> = per_rank.into_iter().flatten().collect();
        let particles = all.len();

        let (epoch, cells) = match &self.service {
            Some(svc) => {
                let rep = svc.update(Update::Snapshot(all));
                (rep.epoch, rep.cells)
            }
            None => {
                let cfg = ServiceConfig::new(self.service_ranks, sim.dec.nblocks())
                    .with_workers(self.workers)
                    .with_batch_max(self.batch)
                    .with_params(self.params)
                    .with_decomp(self.decomp);
                let svc = MeshService::spawn(sim.dec.domain, sim.dec.periodic, &all, cfg);
                let snap = svc.snapshot();
                let out = (snap.epoch, snap.total_cells);
                self.service = Some(svc);
                out
            }
        };
        let svc = self.service.as_ref().expect("service hosted");

        // Probe batch: one lookup per block center, then the whole domain.
        let pending: Vec<_> = (0..sim.dec.nblocks() as u64)
            .map(|gid| {
                let b = sim.dec.block_bounds(gid);
                let c = Vec3::new(
                    0.5 * (b.min.x + b.max.x),
                    0.5 * (b.min.y + b.max.y),
                    0.5 * (b.min.z + b.max.z),
                );
                svc.submit(Query::Point(c)).expect("service open")
            })
            .collect();
        let mut lat_ns: Vec<u64> = pending.into_iter().map(|p| p.wait().latency_ns).collect();
        lat_ns.sort_unstable();
        let p50_us = lat_ns[lat_ns.len() / 2] as f64 / 1e3;
        let whole = svc
            .query(Query::Region(sim.dec.domain))
            .expect("service open");
        let Answer::Region(region) = whole.answer else {
            unreachable!("region query returns a region answer")
        };

        self.history.push((ctx.step, epoch, cells));

        // Per-fire telemetry export: advance the epoch (so rolling
        // quantiles window per fire) and rewrite the exposition file.
        let mut artifacts = Vec::new();
        if let Some(tpl) = &self.telemetry_path {
            let rel = tpl.replace("{step}", &ctx.step.to_string());
            let path = if std::path::Path::new(&rel).is_absolute() {
                std::path::PathBuf::from(rel)
            } else {
                ctx.output_dir.join(rel)
            };
            diy::telemetry::advance_epoch();
            match std::fs::write(&path, diy::telemetry::render_prometheus()) {
                Ok(()) => artifacts.push(path),
                Err(e) => diy::log_error!("serve: telemetry export {}: {e}", path.display()),
            }
        }

        ToolReport {
            tool: self.name().to_string(),
            step: ctx.step,
            summary: format!(
                "step {}: epoch {epoch} serving {cells} cells from {particles} particles \
                 (domain volume {:.3}, probe p50 {p50_us:.0}us)",
                ctx.step, region.volume,
            ),
            artifacts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_sizes_the_service() {
        let cfg = FrameworkConfig::parse(
            "service workers=5 batch=16\n\
             decomp kd:2048\n\
             telemetry serve_{step}.prom\n\
             tool serve every=2 ghost=auto:3\n",
        )
        .unwrap();
        let t = ServeTool::from_config(
            TessParams::default(),
            &cfg,
            cfg.schedule_for("serve").unwrap(),
        );
        assert_eq!(t.workers, 5);
        assert_eq!(t.batch, 16);
        assert_eq!(t.params.ghost, tess::GhostSpec::Auto { factor: 3.0 });
        assert_eq!(t.decomp, DecompScheme::Kd { sample: 2048 });
        assert_eq!(t.telemetry_path.as_deref(), Some("serve_{step}.prom"));
        // no service directive → defaults
        let cfg2 = FrameworkConfig::parse("tool serve every=1\n").unwrap();
        let t2 = ServeTool::from_config(
            TessParams::default(),
            &cfg2,
            cfg2.schedule_for("serve").unwrap(),
        );
        assert_eq!((t2.workers, t2.batch), (2, 64));
    }
}
