//! Friends-of-friends (FOF) halo finder.
//!
//! Figure 4 lists halo finders as the first in-situ analysis; HACC's
//! production finder is FOF-based (Woodring et al., the paper's [18]).
//! Two particles are *friends* when closer than the linking length
//! `b × mean spacing` (b ≈ 0.2 classically); halos are the transitive
//! closure with at least `min_size` members.
//!
//! Distribution strategy: ghost particles within the linking length are
//! exchanged (the same machinery as the tessellation's ghost zone), each
//! rank runs a local union-find over own+ghost particles, and group labels
//! (minimum member id) are propagated across ranks to a fixed point.
//! Halo centers use the per-dimension circular mean, which is exact for
//! compact groups in a periodic box and merges trivially across ranks.

use std::collections::{BTreeMap, HashMap};

use diy::comm::World;
use diy::exchange::NeighborExchange;
use geometry::Vec3;
use hacc::Simulation;
use tess::ghost::exchange_ghosts;
use tess::grid::CandidateGrid;

use crate::tool::{AnalysisTool, ToolContext, ToolReport};

/// FOF parameters.
#[derive(Debug, Clone, Copy)]
pub struct FofParams {
    /// Linking length in domain units (absolute, not b).
    pub linking_length: f64,
    /// Minimum members for a group to count as a halo.
    pub min_size: usize,
}

impl Default for FofParams {
    fn default() -> Self {
        // b = 0.2 at unit mean spacing, the classic choice
        FofParams {
            linking_length: 0.2,
            min_size: 10,
        }
    }
}

/// One halo.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FofHalo {
    /// Group label: the minimum particle id in the halo.
    pub label: u64,
    pub count: u64,
    /// Center of mass (periodic circular mean), wrapped into the box.
    pub center: Vec3,
}

struct UnionFind(Vec<u32>);

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind((0..n as u32).collect())
    }
    fn find(&mut self, x: u32) -> u32 {
        let mut r = x;
        while self.0[r as usize] != r {
            r = self.0[r as usize];
        }
        let mut c = x;
        while self.0[c as usize] != r {
            let n = self.0[c as usize];
            self.0[c as usize] = r;
            c = n;
        }
        r
    }
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.0[ra.max(rb) as usize] = ra.min(rb);
        }
    }
}

/// Distributed FOF over the simulation's current particles (collective).
/// Returns the same halo list on every rank, sorted by decreasing size.
pub fn find_halos(world: &mut World, sim: &Simulation, params: &FofParams) -> Vec<FofHalo> {
    let ell = params.linking_length;
    let ell2 = ell * ell;
    let dec = &sim.dec;
    let asn = &sim.asn;

    // Own particles per block, and ghosts within the linking length.
    let local: BTreeMap<u64, Vec<(u64, Vec3)>> = sim
        .blocks
        .iter()
        .map(|(&gid, ps)| (gid, ps.iter().map(|p| (p.id, p.pos)).collect()))
        .collect();
    let ghosts = exchange_ghosts(world, dec, asn, &local, ell);

    // Flatten: own first, then ghosts.
    let mut ids: Vec<u64> = Vec::new();
    let mut pts: Vec<Vec3> = Vec::new();
    let mut n_own_per_block: Vec<(u64, usize)> = Vec::new();
    for (&gid, ps) in &local {
        n_own_per_block.push((gid, ps.len()));
        for &(id, p) in ps {
            ids.push(id);
            pts.push(p);
        }
    }
    let n_own = pts.len();
    for ps in ghosts.values() {
        for &(id, p) in ps {
            ids.push(id);
            pts.push(p);
        }
    }

    // Local union-find over pairs within the linking length.
    let region = geometry::Aabb::from_points(&pts)
        .unwrap_or(dec.domain)
        .grown(1e-9);
    let grid = CandidateGrid::build(region, &pts, 2.0);
    let mut uf = UnionFind::new(pts.len());
    let mut ring = Vec::new();
    for i in 0..pts.len() {
        let p = pts[i];
        for r in 0..=grid.max_ring() {
            if grid.ring_min_distance(r) > ell {
                break;
            }
            grid.ring_candidates(p, r, &mut ring);
            for &j in &ring {
                if (j as usize) > i && pts[j as usize].dist2(p) <= ell2 {
                    uf.union(i as u32, j);
                }
            }
        }
    }

    // Group labels: minimum global id over local members, refined by
    // cross-rank propagation through ghost copies.
    #[allow(unused_assignments)]
    let mut group_label: HashMap<u32, u64> = HashMap::new();
    let compute_labels = |uf: &mut UnionFind, extra: &HashMap<u64, u64>| -> HashMap<u32, u64> {
        let mut m: HashMap<u32, u64> = HashMap::new();
        for (i, &id) in ids.iter().enumerate() {
            let r = uf.find(i as u32);
            let candidate = extra.get(&id).copied().unwrap_or(id);
            let e = m.entry(r).or_insert(u64::MAX);
            *e = (*e).min(candidate);
        }
        m
    };
    // best-known label per particle id (from remote ranks)
    let mut known: HashMap<u64, u64> = HashMap::new();
    let ex = NeighborExchange::new(dec, asn);
    let owned_gids: Vec<u64> = local.keys().copied().collect();
    loop {
        group_label = compute_labels(&mut uf, &known);
        // send each ghost's group label toward its owner (via all neighbor
        // blocks; the owner recognizes its own ids)
        let mut outgoing: Vec<(u64, (u64, u64))> = Vec::new();
        for i in n_own..ids.len() {
            let label = group_label[&uf.find(i as u32)];
            for &gid in &owned_gids {
                for link in dec.neighbors(gid) {
                    outgoing.push((link.gid, (ids[i], label)));
                }
            }
        }
        outgoing.sort_unstable();
        outgoing.dedup();
        let incoming = ex.exchange(world, outgoing);
        let mut changed = false;
        let own_set: HashMap<u64, ()> = ids[..n_own].iter().map(|&i| (i, ())).collect();
        for (_, items) in incoming {
            for (id, label) in items {
                if own_set.contains_key(&id) {
                    let e = known.entry(id).or_insert(u64::MAX);
                    if label < *e {
                        *e = label;
                        changed = true;
                    }
                }
            }
        }
        let any = world.all_reduce(changed as u64, |a, b| a.max(b));
        if any == 0 {
            break;
        }
    }

    // Per-label partials from OWN particles only (ghosts counted by their
    // owners): count + circular sums per dimension.
    let box_len = dec.domain.extent();
    let tau = 2.0 * std::f64::consts::PI;
    let mut partial: BTreeMap<u64, (u64, [f64; 6])> = BTreeMap::new();
    for i in 0..n_own {
        let label = group_label[&uf.find(i as u32)];
        let e = partial.entry(label).or_insert((0, [0.0; 6]));
        e.0 += 1;
        for d in 0..3 {
            let theta = tau * (pts[i][d] - dec.domain.min[d]) / box_len[d];
            e.1[2 * d] += theta.cos();
            e.1[2 * d + 1] += theta.sin();
        }
    }
    let rows: Vec<(u64, (u64, [f64; 6]))> = partial.into_iter().collect();
    let merged = diy::reduce::all_reduce_merge(world, rows, |a, b| {
        let mut m: BTreeMap<u64, (u64, [f64; 6])> = a.into_iter().collect();
        for (label, (c, s)) in b {
            let e = m.entry(label).or_insert((0, [0.0; 6]));
            e.0 += c;
            for (acc, v) in e.1.iter_mut().zip(s) {
                *acc += v;
            }
        }
        m.into_iter().collect()
    });

    let mut halos: Vec<FofHalo> = merged
        .into_iter()
        .filter(|(_, (count, _))| *count >= params.min_size as u64)
        .map(|(label, (count, s))| {
            let mut center = Vec3::ZERO;
            for d in 0..3 {
                let theta = s[2 * d + 1].atan2(s[2 * d]);
                let frac = theta.rem_euclid(tau) / tau;
                center[d] = dec.domain.min[d] + frac * box_len[d];
            }
            FofHalo {
                label,
                count,
                center,
            }
        })
        .collect();
    halos.sort_by(|a, b| b.count.cmp(&a.count).then(a.label.cmp(&b.label)));
    halos
}

/// The halo finder as a schedulable framework tool.
pub struct HaloFinderTool {
    pub params: FofParams,
    /// Halo catalogs per step (label → halos).
    pub catalogs: Vec<(usize, Vec<FofHalo>)>,
}

impl HaloFinderTool {
    pub fn new(params: FofParams) -> Self {
        HaloFinderTool {
            params,
            catalogs: Vec::new(),
        }
    }
}

impl AnalysisTool for HaloFinderTool {
    fn name(&self) -> &str {
        "halos"
    }

    fn run(&mut self, world: &mut World, ctx: &ToolContext<'_>) -> ToolReport {
        let halos = find_halos(world, ctx.sim, &self.params);
        let largest = halos.first().map(|h| h.count).unwrap_or(0);
        let summary = format!(
            "step {}: {} halos (≥{} particles), largest {}",
            ctx.step,
            halos.len(),
            self.params.min_size,
            largest
        );
        self.catalogs.push((ctx.step, halos));
        ToolReport {
            tool: self.name().to_string(),
            step: ctx.step,
            summary,
            artifacts: vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diy::comm::Runtime;
    use hacc::{SimParams, Simulation};

    /// Brute-force FOF for validation.
    fn brute_fof(pts: &[Vec3], box_len: f64, ell: f64) -> Vec<Vec<usize>> {
        let n = pts.len();
        let mut uf = UnionFind::new(n);
        let b = geometry::Aabb::cube(box_len);
        for i in 0..n {
            for j in i + 1..n {
                if b.periodic_dist(pts[i], pts[j]) <= ell {
                    uf.union(i as u32, j as u32);
                }
            }
        }
        let mut groups: HashMap<u32, Vec<usize>> = HashMap::new();
        for i in 0..n {
            groups.entry(uf.find(i as u32)).or_default().push(i);
        }
        let mut v: Vec<Vec<usize>> = groups.into_values().collect();
        v.sort_by_key(|g| std::cmp::Reverse(g.len()));
        v
    }

    /// Tiny deterministic particle pattern with two obvious clusters.
    fn clustered_sim(world: &mut World, nranks_blocks: usize) -> Simulation {
        // start from a simulation but overwrite particle positions
        let params = SimParams {
            np: 8,
            box_size: 8.0,
            a_init: 0.1,
            a_final: 1.0,
            nsteps: 10,
            seed: 5,
            initial_delta_rms: 0.0,
            spectrum: hacc::power::PowerSpectrum::default(),
            solver: Default::default(),
        };
        let mut sim = Simulation::init(world, params, nranks_blocks);
        // positions: cluster A around (1,1,1), cluster B around (6.5, 6.5, 6.5)
        // spanning the block seams when 8 blocks are used
        for ps in sim.blocks.values_mut() {
            ps.clear();
        }
        let place = |id: u64, p: Vec3, sim: &mut Simulation| {
            let gid = sim.dec.block_of_point(p);
            if let Some(v) = sim.blocks.get_mut(&gid) {
                v.push(hacc::Particle {
                    id,
                    pos: p,
                    mom: Vec3::ZERO,
                });
            }
        };
        let mut id = 0;
        for i in 0..12 {
            let offset = 0.05 * i as f64;
            place(id, Vec3::new(0.9 + offset, 1.0, 1.0), &mut sim);
            id += 1;
        }
        for i in 0..15 {
            let offset = 0.05 * i as f64;
            // straddles the center seam at 4.0 in all dims? place along a line
            place(id, Vec3::new(3.7 + offset, 4.0, 4.0), &mut sim);
            id += 1;
        }
        // isolated particles (no halo)
        place(id, Vec3::new(6.5, 1.0, 6.5), &mut sim);
        sim
    }

    #[test]
    fn finds_two_halos_across_block_seams() {
        for nranks in [1usize, 2, 4] {
            let halos = Runtime::run(nranks, |w| {
                let sim = clustered_sim(w, 8);
                find_halos(
                    w,
                    &sim,
                    &FofParams {
                        linking_length: 0.12,
                        min_size: 5,
                    },
                )
            });
            for h in &halos {
                assert_eq!(h.len(), 2, "nranks={nranks}: {h:?}");
                assert_eq!(h[0].count, 15);
                assert_eq!(h[1].count, 12);
                assert_eq!(h[1].label, 0);
                assert_eq!(h[0].label, 12);
                // centers near cluster centers
                assert!(
                    (h[1].center - Vec3::new(1.175, 1.0, 1.0)).norm() < 0.01,
                    "{:?}",
                    h[1]
                );
                assert!(
                    (h[0].center - Vec3::new(4.05, 4.0, 4.0)).norm() < 0.01,
                    "{:?}",
                    h[0]
                );
            }
        }
    }

    #[test]
    fn matches_brute_force_on_random_points() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(8);
        let pts: Vec<Vec3> = (0..150)
            .map(|_| {
                Vec3::new(
                    rng.gen_range(0.0..8.0),
                    rng.gen_range(0.0..8.0),
                    rng.gen_range(0.0..8.0),
                )
            })
            .collect();
        let expected = brute_fof(&pts, 8.0, 0.6);
        let expected_sizes: Vec<usize> = expected
            .iter()
            .map(|g| g.len())
            .filter(|&s| s >= 3)
            .collect();

        let pts2 = pts.clone();
        let halos = Runtime::run(2, move |w| {
            let params = SimParams {
                np: 8,
                box_size: 8.0,
                a_init: 0.1,
                a_final: 1.0,
                nsteps: 1,
                seed: 1,
                initial_delta_rms: 0.0,
                spectrum: hacc::power::PowerSpectrum::default(),
                solver: Default::default(),
            };
            let mut sim = Simulation::init(w, params, 8);
            for ps in sim.blocks.values_mut() {
                ps.clear();
            }
            for (i, &p) in pts2.iter().enumerate() {
                let gid = sim.dec.block_of_point(p);
                if let Some(v) = sim.blocks.get_mut(&gid) {
                    v.push(hacc::Particle {
                        id: i as u64,
                        pos: p,
                        mom: Vec3::ZERO,
                    });
                }
            }
            find_halos(
                w,
                &sim,
                &FofParams {
                    linking_length: 0.6,
                    min_size: 3,
                },
            )
        });
        let got_sizes: Vec<usize> = halos[0].iter().map(|h| h.count as usize).collect();
        assert_eq!(got_sizes, expected_sizes);
    }

    #[test]
    fn halo_across_periodic_seam_has_wrapped_center() {
        let halos = Runtime::run(1, |w| {
            let params = SimParams {
                np: 8,
                box_size: 8.0,
                a_init: 0.1,
                a_final: 1.0,
                nsteps: 1,
                seed: 1,
                initial_delta_rms: 0.0,
                spectrum: hacc::power::PowerSpectrum::default(),
                solver: Default::default(),
            };
            let mut sim = Simulation::init(w, params, 8);
            for ps in sim.blocks.values_mut() {
                ps.clear();
            }
            // cluster straddling x = 0 (periodic seam)
            for (i, dx) in [-0.2f64, -0.1, -0.05, 0.05, 0.1, 0.2].iter().enumerate() {
                let x = (dx + 8.0) % 8.0;
                let p = Vec3::new(x, 4.0, 4.0);
                let gid = sim.dec.block_of_point(p);
                sim.blocks.get_mut(&gid).unwrap().push(hacc::Particle {
                    id: i as u64,
                    pos: p,
                    mom: Vec3::ZERO,
                });
            }
            find_halos(
                w,
                &sim,
                &FofParams {
                    linking_length: 0.2,
                    min_size: 4,
                },
            )
        });
        let h = &halos[0];
        assert_eq!(h.len(), 1, "{h:?}");
        assert_eq!(h[0].count, 6);
        // circular mean lands near x ≈ 0 (mod 8)
        let x = h[0].center.x;
        assert!(!(0.1..=7.9).contains(&x), "center.x = {x}");
    }
}
