//! The level-1 analysis tools named in Figure 4.

pub mod halo_finder;
pub mod multistream;
pub mod serve_tool;
pub mod stats_tool;
pub mod tess_tool;
pub mod voids_tool;
