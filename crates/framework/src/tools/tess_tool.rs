//! The Voronoi tessellation as a framework tool: tessellate the live
//! particles and write the mesh to parallel storage.

use std::collections::BTreeMap;

use diy::comm::World;
use geometry::Vec3;
use tess::{tessellate, tessellate_streaming, GhostSpec, TessParams, AUTO_GHOST_FACTOR};

use crate::config::{GhostDirective, OutputDirective, ToolSchedule};
use crate::tool::{AnalysisTool, ToolContext, ToolReport};

/// Runs `tess` at scheduled steps and writes `tess_step{N}.bin` (merged)
/// or `tess_step{N}.stream.bin` (bounded-memory streaming).
pub struct TessTool {
    pub params: TessParams,
    /// `output=stream:<path>` file-name override (inside `output_dir`; a
    /// `{step}` placeholder is replaced with the step number).
    pub stream_path: Option<String>,
    /// Global stats per invocation (step, stats, ghost used).
    pub history: Vec<(usize, tess::TessStats, f64)>,
}

impl TessTool {
    pub fn new(params: TessParams) -> Self {
        TessTool {
            params,
            stream_path: None,
            history: Vec::new(),
        }
    }

    /// `new`, with the schedule's `ghost=` and `output=` directives (if
    /// any) overriding `params.ghost` / `params.streaming`.
    pub fn from_schedule(params: TessParams, sched: &ToolSchedule) -> Self {
        let mut params = params;
        if let Some(d) = sched.ghost {
            params.ghost = ghost_spec_from_directive(d);
        }
        let mut stream_path = None;
        match &sched.output {
            Some(OutputDirective::Merged) => params.streaming = false,
            Some(OutputDirective::Stream { path }) => {
                params.streaming = true;
                stream_path = path.clone();
            }
            None => {}
        }
        TessTool {
            params,
            stream_path,
            history: Vec::new(),
        }
    }
}

/// Map a config-file ghost directive to a [`GhostSpec`], filling omitted
/// fields with the library defaults.
pub fn ghost_spec_from_directive(d: GhostDirective) -> GhostSpec {
    match d {
        GhostDirective::Explicit(g) => GhostSpec::Explicit(g),
        GhostDirective::Auto { factor } => GhostSpec::Auto {
            factor: factor.unwrap_or(AUTO_GHOST_FACTOR),
        },
        GhostDirective::Adaptive {
            initial_factor,
            max_rounds,
        } => {
            let GhostSpec::Adaptive {
                initial_factor: def_f,
                max_rounds: def_r,
            } = GhostSpec::adaptive()
            else {
                unreachable!("adaptive() returns Adaptive")
            };
            GhostSpec::Adaptive {
                initial_factor: initial_factor.unwrap_or(def_f),
                max_rounds: max_rounds.unwrap_or(def_r),
            }
        }
    }
}

impl AnalysisTool for TessTool {
    fn name(&self) -> &str {
        "tess"
    }

    fn run(&mut self, world: &mut World, ctx: &ToolContext<'_>) -> ToolReport {
        let sim = ctx.sim;
        let local: BTreeMap<u64, Vec<(u64, Vec3)>> = sim
            .blocks
            .iter()
            .map(|(&gid, ps)| (gid, ps.iter().map(|p| (p.id, p.pos)).collect()))
            .collect();
        if self.params.streaming {
            return self.run_streaming(world, ctx, &local);
        }
        let result = tessellate(world, &sim.dec, &sim.asn, &local, &self.params);
        let stats = tess::driver::global_stats(world, result.stats);

        // Global candidates-per-cell distribution: merge every rank's
        // log-bucket histogram (collective — each rank gets the sum).
        let cand = world
            .metrics()
            .snapshot()
            .hists
            .get(tess::driver::HIST_CANDIDATES)
            .cloned()
            .unwrap_or_default();
        let cand = diy::reduce::all_reduce_merge(world, cand, |mut a, b| {
            a.merge(&b);
            a
        });

        std::fs::create_dir_all(&ctx.output_dir).ok();
        let path = ctx.output_dir.join(format!("tess_step{}.bin", ctx.step));
        let bytes =
            tess::io::write_tessellation(world, &path, &result.blocks).expect("tessellation write");

        self.history.push((ctx.step, stats, result.ghost_used));
        let mut summary = format!(
            "step {}: {} cells ({} incomplete dropped, ghost {:.2} in {} round{}, \
             {:.1} candidates/cell, {} reused), {} bytes",
            ctx.step,
            stats.cells,
            stats.incomplete,
            result.ghost_used,
            stats.ghost_rounds,
            if stats.ghost_rounds == 1 { "" } else { "s" },
            stats.candidates_tested as f64 / stats.cells_computed.max(1) as f64,
            stats.cells_reused,
            bytes
        );
        if cand.n() > 0 {
            summary.push_str(&format!(
                ", candidates/cell dist {} (p50 {:.0}, max {:.0})",
                cand.sparkline(),
                cand.quantile(0.5),
                cand.max()
            ));
        }
        ToolReport {
            tool: self.name().to_string(),
            step: ctx.step,
            summary,
            artifacts: vec![path],
        }
    }
}

impl TessTool {
    /// Bounded-memory path: tessellate, write, and drop block by block via
    /// [`tess::tessellate_streaming`]; the merged mesh never exists in
    /// memory, but the file content is bit-identical to the merged mode's.
    fn run_streaming(
        &mut self,
        world: &mut World,
        ctx: &ToolContext<'_>,
        local: &BTreeMap<u64, Vec<(u64, Vec3)>>,
    ) -> ToolReport {
        let sim = ctx.sim;
        std::fs::create_dir_all(&ctx.output_dir).ok();
        let name = match &self.stream_path {
            Some(p) => p.replace("{step}", &ctx.step.to_string()),
            None => format!("tess_step{}.stream.bin", ctx.step),
        };
        let path = ctx.output_dir.join(name);
        let s = tessellate_streaming(world, &sim.dec, &sim.asn, local, &self.params, &path)
            .expect("streaming tessellation write");
        let stats = tess::driver::global_stats(world, s.stats);
        self.history.push((ctx.step, stats, s.ghost_used));
        let summary = format!(
            "step {}: streamed {} cells in {} blocks ({} incomplete dropped, ghost {:.2} in {} \
             round{}), {} payload bytes / {} file bytes",
            ctx.step,
            stats.cells,
            s.blocks_written,
            stats.incomplete,
            s.ghost_used,
            stats.ghost_rounds,
            if stats.ghost_rounds == 1 { "" } else { "s" },
            s.payload_bytes,
            s.file_bytes
        );
        ToolReport {
            tool: self.name().to_string(),
            step: ctx.step,
            summary,
            artifacts: vec![path],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FrameworkConfig;

    #[test]
    fn schedule_ghost_overrides_params() {
        let cfg = FrameworkConfig::parse(
            "tool tess every=1 ghost=adaptive:1.25:3\n\
             tool other every=1 ghost=7.5\n\
             tool plain every=1\n",
        )
        .unwrap();
        let base = TessParams::default().with_ghost(2.0);
        let t = TessTool::from_schedule(base, cfg.schedule_for("tess").unwrap());
        assert_eq!(
            t.params.ghost,
            GhostSpec::Adaptive {
                initial_factor: 1.25,
                max_rounds: 3
            }
        );
        let o = TessTool::from_schedule(base, cfg.schedule_for("other").unwrap());
        assert_eq!(o.params.ghost, GhostSpec::Explicit(7.5));
        // no directive → the tool's own params win
        let p = TessTool::from_schedule(base, cfg.schedule_for("plain").unwrap());
        assert_eq!(p.params.ghost, GhostSpec::Explicit(2.0));
    }

    #[test]
    fn schedule_output_selects_streaming() {
        let cfg = FrameworkConfig::parse(
            "tool a every=1 output=stream\n\
             tool b every=1 output=stream:mesh_{step}.bin\n\
             tool c every=1 output=merged\n\
             tool d every=1\n",
        )
        .unwrap();
        let base = TessParams::default();
        let a = TessTool::from_schedule(base, cfg.schedule_for("a").unwrap());
        assert!(a.params.streaming);
        assert_eq!(a.stream_path, None);
        let b = TessTool::from_schedule(base, cfg.schedule_for("b").unwrap());
        assert!(b.params.streaming);
        assert_eq!(b.stream_path.as_deref(), Some("mesh_{step}.bin"));
        // explicit merged overrides even streaming-enabled params
        let c = TessTool::from_schedule(base.with_streaming(), cfg.schedule_for("c").unwrap());
        assert!(!c.params.streaming);
        // no directive → the tool's own params win
        let d = TessTool::from_schedule(base.with_streaming(), cfg.schedule_for("d").unwrap());
        assert!(d.params.streaming);
    }

    #[test]
    fn directive_defaults_fill_in_library_values() {
        assert_eq!(
            ghost_spec_from_directive(GhostDirective::Auto { factor: None }),
            GhostSpec::Auto {
                factor: AUTO_GHOST_FACTOR
            }
        );
        assert_eq!(
            ghost_spec_from_directive(GhostDirective::Adaptive {
                initial_factor: None,
                max_rounds: None
            }),
            GhostSpec::adaptive()
        );
    }
}
