//! The Voronoi tessellation as a framework tool: tessellate the live
//! particles and write the mesh to parallel storage.

use std::collections::BTreeMap;

use diy::comm::World;
use geometry::Vec3;
use tess::{tessellate, GhostSpec, TessParams, AUTO_GHOST_FACTOR};

use crate::config::{GhostDirective, ToolSchedule};
use crate::tool::{AnalysisTool, ToolContext, ToolReport};

/// Runs `tess` at scheduled steps and writes `tess_step{N}.bin`.
pub struct TessTool {
    pub params: TessParams,
    /// Global stats per invocation (step, stats, ghost used).
    pub history: Vec<(usize, tess::TessStats, f64)>,
}

impl TessTool {
    pub fn new(params: TessParams) -> Self {
        TessTool {
            params,
            history: Vec::new(),
        }
    }

    /// `new`, with the schedule's `ghost=` directive (if any) overriding
    /// `params.ghost`.
    pub fn from_schedule(params: TessParams, sched: &ToolSchedule) -> Self {
        let mut params = params;
        if let Some(d) = sched.ghost {
            params.ghost = ghost_spec_from_directive(d);
        }
        TessTool::new(params)
    }
}

/// Map a config-file ghost directive to a [`GhostSpec`], filling omitted
/// fields with the library defaults.
pub fn ghost_spec_from_directive(d: GhostDirective) -> GhostSpec {
    match d {
        GhostDirective::Explicit(g) => GhostSpec::Explicit(g),
        GhostDirective::Auto { factor } => GhostSpec::Auto {
            factor: factor.unwrap_or(AUTO_GHOST_FACTOR),
        },
        GhostDirective::Adaptive {
            initial_factor,
            max_rounds,
        } => {
            let GhostSpec::Adaptive {
                initial_factor: def_f,
                max_rounds: def_r,
            } = GhostSpec::adaptive()
            else {
                unreachable!("adaptive() returns Adaptive")
            };
            GhostSpec::Adaptive {
                initial_factor: initial_factor.unwrap_or(def_f),
                max_rounds: max_rounds.unwrap_or(def_r),
            }
        }
    }
}

impl AnalysisTool for TessTool {
    fn name(&self) -> &str {
        "tess"
    }

    fn run(&mut self, world: &mut World, ctx: &ToolContext<'_>) -> ToolReport {
        let sim = ctx.sim;
        let local: BTreeMap<u64, Vec<(u64, Vec3)>> = sim
            .blocks
            .iter()
            .map(|(&gid, ps)| (gid, ps.iter().map(|p| (p.id, p.pos)).collect()))
            .collect();
        let result = tessellate(world, &sim.dec, &sim.asn, &local, &self.params);
        let stats = tess::driver::global_stats(world, result.stats);

        // Global candidates-per-cell distribution: merge every rank's
        // log-bucket histogram (collective — each rank gets the sum).
        let cand = world
            .metrics()
            .snapshot()
            .hists
            .get(tess::driver::HIST_CANDIDATES)
            .cloned()
            .unwrap_or_default();
        let cand = diy::reduce::all_reduce_merge(world, cand, |mut a, b| {
            a.merge(&b);
            a
        });

        std::fs::create_dir_all(&ctx.output_dir).ok();
        let path = ctx.output_dir.join(format!("tess_step{}.bin", ctx.step));
        let bytes =
            tess::io::write_tessellation(world, &path, &result.blocks).expect("tessellation write");

        self.history.push((ctx.step, stats, result.ghost_used));
        let mut summary = format!(
            "step {}: {} cells ({} incomplete dropped, ghost {:.2} in {} round{}, \
             {:.1} candidates/cell, {} reused), {} bytes",
            ctx.step,
            stats.cells,
            stats.incomplete,
            result.ghost_used,
            stats.ghost_rounds,
            if stats.ghost_rounds == 1 { "" } else { "s" },
            stats.candidates_tested as f64 / stats.cells_computed.max(1) as f64,
            stats.cells_reused,
            bytes
        );
        if cand.n() > 0 {
            summary.push_str(&format!(
                ", candidates/cell dist {} (p50 {:.0}, max {:.0})",
                cand.sparkline(),
                cand.quantile(0.5),
                cand.max()
            ));
        }
        ToolReport {
            tool: self.name().to_string(),
            step: ctx.step,
            summary,
            artifacts: vec![path],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FrameworkConfig;

    #[test]
    fn schedule_ghost_overrides_params() {
        let cfg = FrameworkConfig::parse(
            "tool tess every=1 ghost=adaptive:1.25:3\n\
             tool other every=1 ghost=7.5\n\
             tool plain every=1\n",
        )
        .unwrap();
        let base = TessParams::default().with_ghost(2.0);
        let t = TessTool::from_schedule(base, cfg.schedule_for("tess").unwrap());
        assert_eq!(
            t.params.ghost,
            GhostSpec::Adaptive {
                initial_factor: 1.25,
                max_rounds: 3
            }
        );
        let o = TessTool::from_schedule(base, cfg.schedule_for("other").unwrap());
        assert_eq!(o.params.ghost, GhostSpec::Explicit(7.5));
        // no directive → the tool's own params win
        let p = TessTool::from_schedule(base, cfg.schedule_for("plain").unwrap());
        assert_eq!(p.params.ghost, GhostSpec::Explicit(2.0));
    }

    #[test]
    fn directive_defaults_fill_in_library_values() {
        assert_eq!(
            ghost_spec_from_directive(GhostDirective::Auto { factor: None }),
            GhostSpec::Auto {
                factor: AUTO_GHOST_FACTOR
            }
        );
        assert_eq!(
            ghost_spec_from_directive(GhostDirective::Adaptive {
                initial_factor: None,
                max_rounds: None
            }),
            GhostSpec::adaptive()
        );
    }
}
