//! The Voronoi tessellation as a framework tool: tessellate the live
//! particles and write the mesh to parallel storage.

use std::collections::BTreeMap;

use diy::comm::World;
use geometry::Vec3;
use tess::{tessellate, TessParams};

use crate::tool::{AnalysisTool, ToolContext, ToolReport};

/// Runs `tess` at scheduled steps and writes `tess_step{N}.bin`.
pub struct TessTool {
    pub params: TessParams,
    /// Global stats per invocation (step, stats, ghost used).
    pub history: Vec<(usize, tess::TessStats, f64)>,
}

impl TessTool {
    pub fn new(params: TessParams) -> Self {
        TessTool {
            params,
            history: Vec::new(),
        }
    }
}

impl AnalysisTool for TessTool {
    fn name(&self) -> &str {
        "tess"
    }

    fn run(&mut self, world: &mut World, ctx: &ToolContext<'_>) -> ToolReport {
        let sim = ctx.sim;
        let local: BTreeMap<u64, Vec<(u64, Vec3)>> = sim
            .blocks
            .iter()
            .map(|(&gid, ps)| (gid, ps.iter().map(|p| (p.id, p.pos)).collect()))
            .collect();
        let result = tessellate(world, &sim.dec, &sim.asn, &local, &self.params);
        let stats = tess::driver::global_stats(world, result.stats);

        std::fs::create_dir_all(&ctx.output_dir).ok();
        let path = ctx.output_dir.join(format!("tess_step{}.bin", ctx.step));
        let bytes =
            tess::io::write_tessellation(world, &path, &result.blocks).expect("tessellation write");

        self.history.push((ctx.step, stats, result.ghost_used));
        ToolReport {
            tool: self.name().to_string(),
            step: ctx.step,
            summary: format!(
                "step {}: {} cells ({} incomplete dropped, ghost {:.2}), {} bytes",
                ctx.step, stats.cells, stats.incomplete, result.ghost_used, bytes
            ),
            artifacts: vec![path],
        }
    }
}
