//! Complex numbers (f64), just enough for FFT work.

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        Complex::new(theta.cos(), theta.sin())
    }

    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm2(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm2().sqrt()
    }

    /// Multiply by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, o: Complex) {
        *self = *self + o;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, o: Complex) {
        *self = *self - o;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, s: f64) -> Complex {
        self.scale(s)
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, o: Complex) {
        *self = *self * o;
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        assert_eq!(a * 2.0, Complex::new(2.0, 4.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::I * Complex::I, Complex::new(-1.0, 0.0));
    }

    #[test]
    fn angle_and_conj() {
        let w = Complex::from_angle(PI / 2.0);
        assert!((w - Complex::I).abs() < 1e-15);
        assert!((w.conj() + Complex::I).abs() < 1e-15);
        assert!((Complex::from_angle(0.3).abs() - 1.0).abs() < 1e-15);
    }
}
