//! Minimal 3D FFT for the particle-mesh Poisson solver.
//!
//! HACC's spectral solver needs nothing more than forward/inverse complex
//! transforms on power-of-two grids, so that is exactly what this crate
//! provides: an iterative radix-2 Cooley–Tukey FFT ([`Fft`]) applied along
//! each axis of a [`Grid3`]. Written from scratch (no external FFT crate)
//! and validated against a naive O(n²) DFT.

pub mod complex;
pub mod fft;
pub mod grid;

pub use complex::Complex;
pub use fft::Fft;
pub use grid::Grid3;

/// Forward 3D FFT in place (no normalization).
pub fn fft3_forward(grid: &mut Grid3<Complex>) {
    transform3(grid, false);
}

/// Inverse 3D FFT in place, normalized by 1/N³ so
/// `fft3_inverse(fft3_forward(x)) == x`.
pub fn fft3_inverse(grid: &mut Grid3<Complex>) {
    transform3(grid, true);
    let scale = 1.0 / grid.len() as f64;
    for v in grid.data_mut() {
        *v = *v * scale;
    }
}

fn transform3(grid: &mut Grid3<Complex>, inverse: bool) {
    let [nx, ny, nz] = grid.dims();
    let plans = [Fft::new(nx), Fft::new(ny), Fft::new(nz)];

    // Transform along x (contiguous).
    let mut line = vec![Complex::ZERO; nx];
    for k in 0..nz {
        for j in 0..ny {
            for (i, slot) in line.iter_mut().enumerate() {
                *slot = grid[(i, j, k)];
            }
            plans[0].transform(&mut line, inverse);
            for (i, &v) in line.iter().enumerate() {
                grid[(i, j, k)] = v;
            }
        }
    }
    // Along y.
    let mut line = vec![Complex::ZERO; ny];
    for k in 0..nz {
        for i in 0..nx {
            for (j, slot) in line.iter_mut().enumerate() {
                *slot = grid[(i, j, k)];
            }
            plans[1].transform(&mut line, inverse);
            for (j, &v) in line.iter().enumerate() {
                grid[(i, j, k)] = v;
            }
        }
    }
    // Along z.
    let mut line = vec![Complex::ZERO; nz];
    for j in 0..ny {
        for i in 0..nx {
            for (k, slot) in line.iter_mut().enumerate() {
                *slot = grid[(i, j, k)];
            }
            plans[2].transform(&mut line, inverse);
            for (k, &v) in line.iter().enumerate() {
                grid[(i, j, k)] = v;
            }
        }
    }
}

/// Signed integer frequency for bin `i` of an `n`-point transform:
/// `0, 1, …, n/2, -(n/2-1), …, -1`.
#[inline]
pub fn freq(i: usize, n: usize) -> i64 {
    if i <= n / 2 {
        i as i64
    } else {
        i as i64 - n as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_grid(n: usize, seed: u64) -> Grid3<Complex> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut g = Grid3::new([n, n, n], Complex::ZERO);
        for v in g.data_mut() {
            *v = Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
        }
        g
    }

    #[test]
    fn roundtrip_recovers_input() {
        let orig = random_grid(8, 3);
        let mut g = orig.clone();
        fft3_forward(&mut g);
        fft3_inverse(&mut g);
        for (a, b) in g.data().iter().zip(orig.data()) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn delta_function_transforms_to_constant() {
        let mut g = Grid3::new([4, 4, 4], Complex::ZERO);
        g[(0, 0, 0)] = Complex::new(1.0, 0.0);
        fft3_forward(&mut g);
        for v in g.data() {
            assert!((*v - Complex::new(1.0, 0.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn plane_wave_transforms_to_delta() {
        // e^{2πi·kx·x/n} concentrates all power in bin (kx, 0, 0).
        let n = 8;
        let kx = 3;
        let mut g = Grid3::new([n, n, n], Complex::ZERO);
        for i in 0..n {
            let phase = 2.0 * std::f64::consts::PI * (kx * i) as f64 / n as f64;
            let v = Complex::new(phase.cos(), phase.sin());
            for j in 0..n {
                for k in 0..n {
                    g[(i, j, k)] = v;
                }
            }
        }
        fft3_forward(&mut g);
        let total = (n * n * n) as f64;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let expect = if (i, j, k) == (kx, 0, 0) { total } else { 0.0 };
                    assert!(
                        (g[(i, j, k)] - Complex::new(expect, 0.0)).abs() < 1e-9,
                        "bin ({i},{j},{k}) = {:?}",
                        g[(i, j, k)]
                    );
                }
            }
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let orig = random_grid(8, 11);
        let mut g = orig.clone();
        fft3_forward(&mut g);
        let spatial: f64 = orig.data().iter().map(|v| v.norm2()).sum();
        let spectral: f64 = g.data().iter().map(|v| v.norm2()).sum();
        assert!((spectral / g.len() as f64 - spatial).abs() < 1e-9 * spatial.max(1.0));
    }

    #[test]
    fn real_input_has_hermitian_spectrum() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let n = 8;
        let mut g = Grid3::new([n, n, n], Complex::ZERO);
        for v in g.data_mut() {
            *v = Complex::new(rng.gen_range(-1.0..1.0), 0.0);
        }
        fft3_forward(&mut g);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let conj_bin = g[((n - i) % n, (n - j) % n, (n - k) % n)];
                    assert!((g[(i, j, k)] - conj_bin.conj()).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn freq_layout() {
        assert_eq!(freq(0, 8), 0);
        assert_eq!(freq(1, 8), 1);
        assert_eq!(freq(4, 8), 4);
        assert_eq!(freq(5, 8), -3);
        assert_eq!(freq(7, 8), -1);
    }
}
