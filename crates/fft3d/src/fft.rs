//! Iterative radix-2 Cooley–Tukey FFT with precomputed twiddle factors.

use crate::complex::Complex;

/// A reusable FFT plan for a fixed power-of-two length.
pub struct Fft {
    n: usize,
    /// Twiddles for the forward transform: `e^{-2πik/n}` for `k < n/2`.
    twiddles: Vec<Complex>,
}

impl Fft {
    /// Build a plan for length `n` (must be a power of two, `n >= 1`).
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "FFT length {n} must be a power of two");
        let twiddles = (0..n / 2)
            .map(|k| Complex::from_angle(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        Fft { n, twiddles }
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place transform. `inverse` selects the conjugate transform
    /// (WITHOUT the 1/n normalization; callers normalize once).
    pub fn transform(&self, data: &mut [Complex], inverse: bool) {
        assert_eq!(data.len(), self.n, "data length must match the plan");
        let n = self.n;
        if n <= 1 {
            return;
        }

        // Bit-reversal permutation.
        let shift = usize::BITS - n.trailing_zeros();
        for i in 0..n {
            let j = i.reverse_bits() >> shift;
            if i < j {
                data.swap(i, j);
            }
        }

        // Butterflies.
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let step = n / len; // stride into the twiddle table
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let mut w = self.twiddles[k * step];
                    if inverse {
                        w = w.conj();
                    }
                    let a = data[start + k];
                    let b = data[start + k + half] * w;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
            }
            len *= 2;
        }
    }
}

/// Naive O(n²) DFT used as the correctness oracle in tests.
pub fn dft_naive(input: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = input.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &x) in input.iter().enumerate() {
                let theta = sign * 2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc += x * Complex::from_angle(theta);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        let _ = Fft::new(12);
    }

    #[test]
    fn matches_naive_dft() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for n in [1usize, 2, 4, 8, 16, 64, 256] {
            let input: Vec<Complex> = (0..n)
                .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let mut fast = input.clone();
            Fft::new(n).transform(&mut fast, false);
            let slow = dft_naive(&input, false);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((*a - *b).abs() < 1e-9 * n as f64, "n={n}");
            }
        }
    }

    #[test]
    fn inverse_matches_naive_inverse() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 32;
        let input: Vec<Complex> = (0..n)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let mut fast = input.clone();
        Fft::new(n).transform(&mut fast, true);
        let slow = dft_naive(&input, true);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn forward_then_inverse_is_identity_times_n() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 64;
        let input: Vec<Complex> = (0..n)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let plan = Fft::new(n);
        let mut data = input.clone();
        plan.transform(&mut data, false);
        plan.transform(&mut data, true);
        for (a, b) in data.iter().zip(&input) {
            assert!((a.scale(1.0 / n as f64) - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn linearity() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let n = 16;
        let x: Vec<Complex> = (0..n)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), 0.0))
            .collect();
        let y: Vec<Complex> = (0..n)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), 0.0))
            .collect();
        let plan = Fft::new(n);
        let mut fx = x.clone();
        let mut fy = y.clone();
        plan.transform(&mut fx, false);
        plan.transform(&mut fy, false);
        let sum: Vec<Complex> = x.iter().zip(&y).map(|(a, b)| *a + *b).collect();
        let mut fsum = sum;
        plan.transform(&mut fsum, false);
        for i in 0..n {
            assert!((fsum[i] - (fx[i] + fy[i])).abs() < 1e-12);
        }
    }
}
