//! Dense 3D grid storage with (i, j, k) indexing, x fastest.

use std::ops::{Index, IndexMut};

/// A dense `nx × ny × nz` grid stored in a flat vector (x fastest).
#[derive(Debug, Clone, PartialEq)]
pub struct Grid3<T> {
    dims: [usize; 3],
    data: Vec<T>,
}

impl<T: Clone> Grid3<T> {
    pub fn new(dims: [usize; 3], fill: T) -> Self {
        let len = dims[0] * dims[1] * dims[2];
        Grid3 {
            dims,
            data: vec![fill; len],
        }
    }
}

impl<T> Grid3<T> {
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.dims[0] && j < self.dims[1] && k < self.dims[2]);
        i + self.dims[0] * (j + self.dims[1] * k)
    }

    /// Index with periodic wrapping of negative / overflowing coordinates.
    #[inline]
    pub fn idx_wrapped(&self, i: isize, j: isize, k: isize) -> usize {
        let w = |v: isize, n: usize| -> usize { v.rem_euclid(n as isize) as usize };
        self.idx(w(i, self.dims[0]), w(j, self.dims[1]), w(k, self.dims[2]))
    }

    pub fn data(&self) -> &[T] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Iterate `(i, j, k, &value)`.
    pub fn iter_indexed(&self) -> impl Iterator<Item = (usize, usize, usize, &T)> {
        let [nx, ny, _] = self.dims;
        self.data.iter().enumerate().map(move |(n, v)| {
            let i = n % nx;
            let j = (n / nx) % ny;
            let k = n / (nx * ny);
            (i, j, k, v)
        })
    }
}

impl<T> Index<(usize, usize, usize)> for Grid3<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j, k): (usize, usize, usize)) -> &T {
        &self.data[self.idx(i, j, k)]
    }
}

impl<T> IndexMut<(usize, usize, usize)> for Grid3<T> {
    #[inline]
    fn index_mut(&mut self, (i, j, k): (usize, usize, usize)) -> &mut T {
        let n = self.idx(i, j, k);
        &mut self.data[n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_layout_x_fastest() {
        let mut g = Grid3::new([2, 3, 4], 0u32);
        g[(1, 0, 0)] = 1;
        g[(0, 1, 0)] = 2;
        g[(0, 0, 1)] = 3;
        assert_eq!(g.data()[1], 1);
        assert_eq!(g.data()[2], 2);
        assert_eq!(g.data()[6], 3);
        assert_eq!(g.len(), 24);
    }

    #[test]
    fn wrapped_indexing() {
        let g = Grid3::new([4, 4, 4], 0u8);
        assert_eq!(g.idx_wrapped(-1, 0, 0), g.idx(3, 0, 0));
        assert_eq!(g.idx_wrapped(4, 0, 0), g.idx(0, 0, 0));
        assert_eq!(g.idx_wrapped(-5, 9, -4), g.idx(3, 1, 0));
    }

    #[test]
    fn iter_indexed_visits_all() {
        let g = Grid3::new([2, 2, 2], 1.0f64);
        let mut count = 0;
        for (i, j, k, &v) in g.iter_indexed() {
            assert!(i < 2 && j < 2 && k < 2);
            assert_eq!(v, 1.0);
            count += 1;
        }
        assert_eq!(count, 8);
    }
}
