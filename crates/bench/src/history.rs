//! Bench-history ledger: one JSON line per benchmark run, appended to
//! `BENCH_HISTORY.jsonl` at the repo root.
//!
//! The headline harnesses (`perf_smoke`, `bench_service`) append one
//! [`HistoryRow`] each time they complete, so the repo accumulates a
//! trend of its own performance across commits. `bench_trend` reads the
//! ledger back and fails when the newest row regresses more than 30%
//! against the median of the previous runs (see that binary's docs for
//! the direction/noise-floor rules).
//!
//! Schema (one object per line, no blank lines):
//!
//! ```json
//! {"t_unix_s": 1754610000, "bench": "perf_smoke", "label": "n20000",
//!  "git": "0395112", "metrics": {"stream_cells_per_sec": 61000.0}}
//! ```
//!
//! `metrics` keys carry their own improvement direction by suffix:
//! `*_per_sec` is higher-better, `*_ms` / `*_ns` is lower-better,
//! anything else is informational (tracked, never gated).

use std::io::Write;
use std::path::{Path, PathBuf};

use crate::json::{self, Value};

/// File name of the ledger, at [`crate::repo_root`].
pub const HISTORY_FILE: &str = "BENCH_HISTORY.jsonl";

/// One benchmark run's summary.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRow {
    /// Unix timestamp (seconds) when the row was appended.
    pub t_unix_s: u64,
    /// Which harness produced the row (`perf_smoke`, `bench_service`).
    pub bench: String,
    /// Configuration label within the harness (rows are trended per
    /// `(bench, label)` group).
    pub label: String,
    /// Short commit id at run time (`unknown` outside a git checkout).
    pub git: String,
    /// Named measurements; direction encoded in the key suffix.
    pub metrics: Vec<(String, f64)>,
}

impl HistoryRow {
    /// A row stamped with the current time and commit.
    pub fn now(bench: &str, label: &str, metrics: Vec<(String, f64)>) -> HistoryRow {
        let t_unix_s = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        HistoryRow {
            t_unix_s,
            bench: bench.to_string(),
            label: label.to_string(),
            git: git_short_head(),
            metrics,
        }
    }

    /// Render as one JSON line (no trailing newline).
    pub fn render(&self) -> String {
        let metrics = self
            .metrics
            .iter()
            .map(|(k, v)| format!("\"{}\": {}", json::escape(k), fmt_num(*v)))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"t_unix_s\": {}, \"bench\": \"{}\", \"label\": \"{}\", \
             \"git\": \"{}\", \"metrics\": {{{metrics}}}}}",
            self.t_unix_s,
            json::escape(&self.bench),
            json::escape(&self.label),
            json::escape(&self.git),
        )
    }
}

/// JSON numbers must be finite; non-finite measurements degrade to 0.
fn fmt_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn git_short_head() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(crate::repo_root())
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The ledger's canonical path: `BENCH_HISTORY.jsonl` at the repo root.
pub fn history_path() -> PathBuf {
    crate::repo_root().join(HISTORY_FILE)
}

/// Append one row to the ledger at `path` (created if absent). The row is
/// validated through the same schema check `read_history` applies, so a
/// harness can never write a line `bench_trend` would then reject.
pub fn append_history_row(path: &Path, row: &HistoryRow) -> Result<(), String> {
    let line = row.render();
    let parsed = json::parse(&line).map_err(|e| format!("history row: {e}"))?;
    validate_row(&parsed).map_err(|e| format!("history row: {e}"))?;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    writeln!(f, "{line}").map_err(|e| format!("{}: {e}", path.display()))
}

/// Read and schema-check the whole ledger. Errors carry the 1-based line
/// number. A missing file reads as an empty history.
pub fn read_history(path: &Path) -> Result<Vec<HistoryRow>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        rows.push(validate_row(&v).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(rows)
}

/// Check one parsed line against the row schema.
pub fn validate_row(v: &Value) -> Result<HistoryRow, String> {
    let keys = v.keys();
    if keys != vec!["t_unix_s", "bench", "label", "git", "metrics"] {
        return Err(format!(
            "expected keys [t_unix_s, bench, label, git, metrics], got {keys:?}"
        ));
    }
    let num = |k: &str| {
        v.get(k)
            .and_then(Value::as_num)
            .ok_or_else(|| format!("'{k}' must be a number"))
    };
    let st = |k: &str| {
        v.get(k)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("'{k}' must be a string"))
    };
    let t = num("t_unix_s")?;
    if t < 0.0 || t.fract() != 0.0 {
        return Err(format!(
            "'t_unix_s' must be a non-negative integer, got {t}"
        ));
    }
    let metrics = match v.get("metrics") {
        Some(Value::Obj(members)) if !members.is_empty() => {
            let mut out = Vec::with_capacity(members.len());
            for (k, mv) in members {
                let n = mv
                    .as_num()
                    .ok_or_else(|| format!("metric '{k}' must be a number"))?;
                if !n.is_finite() {
                    return Err(format!("metric '{k}' must be finite"));
                }
                out.push((k.clone(), n));
            }
            out
        }
        _ => return Err("'metrics' must be a non-empty object of numbers".into()),
    };
    Ok(HistoryRow {
        t_unix_s: t as u64,
        bench: st("bench")?,
        label: st("label")?,
        git: st("git")?,
        metrics,
    })
}

/// Improvement direction of a metric, by name suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    HigherBetter,
    LowerBetter,
    /// Tracked but never gated.
    Informational,
}

/// `*_per_sec` is higher-better; `*_ms`/`*_ns` is lower-better.
pub fn direction(metric: &str) -> Direction {
    if metric.ends_with("_per_sec") {
        Direction::HigherBetter
    } else if metric.ends_with("_ms") || metric.ends_with("_ns") {
        Direction::LowerBetter
    } else {
        Direction::Informational
    }
}

/// Median of a non-empty slice (mean of the middle pair when even).
pub fn median(values: &[f64]) -> f64 {
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> HistoryRow {
        HistoryRow {
            t_unix_s: 1_754_610_000,
            bench: "perf_smoke".into(),
            label: "n2\"000".into(),
            git: "abc1234".into(),
            metrics: vec![
                ("stream_cells_per_sec".into(), 61234.5),
                ("p99_ms".into(), 1.75),
            ],
        }
    }

    #[test]
    fn row_renders_and_round_trips() {
        let r = row();
        let line = r.render();
        let v = json::parse(&line).unwrap();
        assert_eq!(validate_row(&v).unwrap(), r);
    }

    #[test]
    fn append_and_read_round_trip() {
        let dir = std::env::temp_dir().join(format!("bench_history_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_HISTORY.jsonl");
        let _ = std::fs::remove_file(&path);
        assert_eq!(read_history(&path).unwrap(), Vec::new());
        append_history_row(&path, &row()).unwrap();
        append_history_row(&path, &row()).unwrap();
        let rows = read_history(&path).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], row());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn validate_rejects_bad_rows() {
        for bad in [
            r#"{"bench": "x"}"#,
            r#"{"t_unix_s": -5, "bench": "x", "label": "l", "git": "g", "metrics": {"a": 1}}"#,
            r#"{"t_unix_s": 1.5, "bench": "x", "label": "l", "git": "g", "metrics": {"a": 1}}"#,
            r#"{"t_unix_s": 1, "bench": "x", "label": "l", "git": "g", "metrics": {}}"#,
            r#"{"t_unix_s": 1, "bench": "x", "label": "l", "git": "g", "metrics": {"a": "x"}}"#,
            r#"{"t_unix_s": 1, "bench": 7, "label": "l", "git": "g", "metrics": {"a": 1}}"#,
            r#"{"t_unix_s": 1, "bench": "x", "label": "l", "git": "g", "metrics": {"a": 1}, "x": 1}"#,
        ] {
            let v = json::parse(bad).unwrap();
            assert!(validate_row(&v).is_err(), "{bad}");
        }
    }

    #[test]
    fn read_reports_line_numbers() {
        let dir = std::env::temp_dir().join(format!("bench_history_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_HISTORY.jsonl");
        std::fs::write(&path, format!("{}\nnot json\n", row().render())).unwrap();
        let err = read_history(&path).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn directions_by_suffix() {
        assert_eq!(direction("stream_cells_per_sec"), Direction::HigherBetter);
        assert_eq!(direction("requests_per_sec"), Direction::HigherBetter);
        assert_eq!(direction("p99_ms"), Direction::LowerBetter);
        assert_eq!(direction("latency_ns"), Direction::LowerBetter);
        assert_eq!(direction("cells"), Direction::Informational);
    }

    #[test]
    fn median_handles_even_and_odd() {
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[1.0, 9.0]), 5.0);
        assert_eq!(median(&[9.0, 1.0, 5.0]), 5.0);
        assert_eq!(median(&[4.0, 1.0, 9.0, 5.0]), 4.5);
    }
}
