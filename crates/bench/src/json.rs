//! Minimal recursive-descent JSON parser for validating the bench
//! artifacts (`BENCH_TESS.json`). Not a general-purpose library: no
//! serde, no streaming — just enough to load a small trusted document
//! into a tree and walk it with typed accessors. Parse errors carry the
//! byte offset so a schema checker can point at the problem.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Key order preserved (insertion order of the document).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Keys of an object, in document order.
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Value::Obj(members) => members.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// Compact single-line JSON rendering (used to re-splice parsed
    /// entries back into a composed document).
    pub fn render(&self) -> String {
        match self {
            Value::Null => "null".into(),
            Value::Bool(b) => b.to_string(),
            Value::Num(n) if n.fract() == 0.0 && n.abs() < 1e15 => format!("{}", *n as i64),
            Value::Num(n) => format!("{n}"),
            Value::Str(s) => format!("\"{}\"", escape(s)),
            Value::Arr(items) => format!(
                "[{}]",
                items
                    .iter()
                    .map(Value::render)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            Value::Obj(members) => format!(
                "{{{}}}",
                members
                    .iter()
                    .map(|(k, v)| format!("\"{}\": {}", escape(k), v.render()))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        }
    }
}

/// Escape `s` for embedding inside a JSON string literal: quotes,
/// backslashes, and all control characters (named escapes where JSON has
/// one, `\u00XX` otherwise). Used both by [`Value::render`] and by the
/// hand-rolled section writers in the harness, so labels containing
/// quotes or newlines can never produce a malformed `BENCH_TESS.json`.
/// Delegates to [`diy::telemetry::json_escape`] so the bench artifacts
/// and the telemetry snapshot share one escaping implementation.
pub fn escape(s: &str) -> String {
    diy::telemetry::json_escape(s)
}

/// Parse error: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (rejects trailing garbage).
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let mut code = self.hex4()?;
                            // A high surrogate pairs with an immediately
                            // following \uDC00..\uDFFF low surrogate
                            // (standard serializers emit non-BMP chars
                            // this way); unpaired surrogates decode to
                            // U+FFFD.
                            if (0xD800..=0xDBFF).contains(&code)
                                && self.bytes.get(self.pos..self.pos + 2) == Some(b"\\u".as_slice())
                            {
                                let save = self.pos;
                                self.pos += 2;
                                match self.hex4() {
                                    Ok(low) if (0xDC00..=0xDFFF).contains(&low) => {
                                        code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    }
                                    _ => self.pos = save,
                                }
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // copy one UTF-8 scalar (the document is valid UTF-8:
                    // it came from a &str)
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    /// Four hex digits of a `\u` escape; advances past them on success.
    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(
            r#"{"entries": [{"label": "a", "wall_s": 1.5e-2, "ok": true}],
                "service": {"p50_ms": -0.25, "notes": "a\"b\n"},
                "empty": [], "none": null}"#,
        )
        .unwrap();
        assert_eq!(v.keys(), vec!["entries", "service", "empty", "none"]);
        let e = &v.get("entries").unwrap().as_arr().unwrap()[0];
        assert_eq!(e.get("label").unwrap().as_str(), Some("a"));
        assert_eq!(e.get("wall_s").unwrap().as_num(), Some(1.5e-2));
        assert_eq!(e.get("ok"), Some(&Value::Bool(true)));
        let s = v.get("service").unwrap();
        assert_eq!(s.get("p50_ms").unwrap().as_num(), Some(-0.25));
        assert_eq!(s.get("notes").unwrap().as_str(), Some("a\"b\n"));
        assert_eq!(v.get("empty").unwrap().as_arr(), Some(&[][..]));
        assert_eq!(v.get("none"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn render_roundtrips() {
        let src = r#"{"a": [1, -2.5, "x\"y"], "b": {"c": true, "d": null}}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.render(), src);
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn decodes_unicode_escapes_and_surrogate_pairs() {
        // BMP escape, a non-BMP char as a UTF-16 surrogate pair (the form
        // standard serializers emit), and raw UTF-8 passthrough.
        let v = parse("\"\\u0041\\ud83d\\ude00 ok \\u00e9é\"").unwrap();
        assert_eq!(v.as_str(), Some("A\u{1F600} ok éé"));
        // Unpaired surrogates degrade to U+FFFD without derailing the
        // rest of the string.
        let lone = parse(r#""\ud83dx""#).unwrap();
        assert_eq!(lone.as_str(), Some("\u{fffd}x"));
        let high_then_bmp = parse(r#""\ud83dA""#).unwrap();
        assert_eq!(high_then_bmp.as_str(), Some("\u{fffd}A"));
        let lone_low = parse(r#""\ude00""#).unwrap();
        assert_eq!(lone_low.as_str(), Some("\u{fffd}"));
        // Truncated pair tail is still a parse error, not a panic.
        assert!(parse(r#""\ud83d\u00""#).is_err());
    }

    #[test]
    fn escape_neutralizes_hostile_strings() {
        let hostile = "a\"b\\c\nd\te\rf\u{1}g";
        let rendered = Value::Str(hostile.to_string()).render();
        assert_eq!(rendered, "\"a\\\"b\\\\c\\nd\\te\\rf\\u0001g\"");
        assert_eq!(parse(&rendered).unwrap().as_str(), Some(hostile));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\": }",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\": 1} extra",
            "[--3]",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn roundtrips_the_real_bench_doc_shape() {
        let doc = crate::compose_bench_doc(
            Some("[\n    {\"label\": \"x\", \"cells\": 10}\n  ]"),
            Some("{\"requests\": 5}"),
            Some("[\n    {\"mode\": \"stream\"}\n  ]"),
            Some("{\"source\": \"bench_obs\"}"),
        );
        let v = parse(&doc).unwrap();
        assert_eq!(v.keys(), vec!["entries", "service", "memory", "telemetry"]);
        assert_eq!(
            v.get("memory").unwrap().as_arr().unwrap()[0]
                .get("mode")
                .unwrap()
                .as_str(),
            Some("stream")
        );
    }
}
