//! Shared machinery for the per-table/per-figure benchmark harnesses.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4). This library holds the common pieces: evolved
//! particle sets, distributed run drivers, timing reduction, and plain-text
//! table output.
//!
//! ## Timing methodology
//!
//! Ranks are threads, usually oversubscribed on far fewer cores than the
//! BG/P partitions the paper uses, so the harnesses report **per-rank
//! thread-CPU time reduced with max across ranks** (the critical path) —
//! see `diy::timing`. Shapes (scaling slopes, component breakdowns) are
//! comparable with the paper; absolute numbers are not.

pub mod corpus;
pub mod history;
pub mod json;

use std::collections::BTreeMap;

use diy::comm::World;
use diy::decomposition::{Assignment, Decomposition};
use geometry::Vec3;
use hacc::{SimParams, Simulation};

/// The paper's small-scale workload: `np³` particles at 1 Mpc/h spacing
/// evolved `nsteps` of 100 total; returns `(id, position)` for all
/// particles (serial convenience; deterministic).
pub fn evolved_particles(np: usize, nsteps: usize) -> Vec<(u64, Vec3)> {
    let params = SimParams::paper_like(np);
    let cosmo = hacc::Cosmology::default();
    let ic = hacc::ic::zeldovich(
        &hacc::ic::IcParams {
            np,
            box_size: params.box_size,
            seed: params.seed,
            delta_rms: params.initial_delta_rms,
            spectrum: params.spectrum,
        },
        &cosmo,
        params.a_init,
    );
    let solver = hacc::PmSolver::new(np, cosmo);
    let mut pos = ic.positions;
    let mut mom = ic.momenta;
    for k in 0..nsteps {
        solver.step(&mut pos, &mut mom, params.a_at(k), params.da_at(k));
    }
    pos.into_iter()
        .enumerate()
        .map(|(i, p)| (i as u64, p))
        .collect()
}

/// Split a global particle list into the per-block map each rank feeds to
/// `tess::tessellate`.
pub fn partition_particles(
    particles: &[(u64, Vec3)],
    dec: &Decomposition,
    asn: &Assignment,
    rank: usize,
) -> BTreeMap<u64, Vec<(u64, Vec3)>> {
    let mut local: BTreeMap<u64, Vec<(u64, Vec3)>> =
        asn.blocks_of_rank(rank).map(|g| (g, Vec::new())).collect();
    for &(id, p) in particles {
        let gid = dec.block_of_point(p);
        if let Some(v) = local.get_mut(&gid) {
            v.push((id, p));
        }
    }
    local
}

/// Max across ranks (the critical-path reduction for thread-CPU times).
pub fn max_over_ranks(world: &mut World, v: f64) -> f64 {
    world.all_reduce(v, f64::max)
}

/// Cell fingerprint used by the bit-identity oracles: (volume bits, area
/// bits, face neighbors).
pub type CellBits = (u64, u64, Vec<u64>);

/// Flatten merged mesh blocks to a site-id → fingerprint map, asserting
/// each cell is published exactly once.
pub fn mesh_bits(blocks: &BTreeMap<u64, tess::MeshBlock>) -> BTreeMap<u64, CellBits> {
    let mut mesh = BTreeMap::new();
    for b in blocks.values() {
        for c in &b.cells {
            let bits = (
                c.volume.to_bits(),
                c.area.to_bits(),
                c.faces.iter().map(|f| f.neighbor).collect(),
            );
            assert!(
                mesh.insert(b.site_id_of(c), bits).is_none(),
                "cell duplicated"
            );
        }
    }
    mesh
}

/// One arm of the clustered-corpus decomposition A/B (see
/// [`run_decomp_ab`]).
pub struct DecompAbArm {
    pub mesh: BTreeMap<u64, CellBits>,
    pub stats: tess::TessStats,
    pub ghost_bytes: u64,
    /// Per-phase thread-CPU seconds, max across ranks.
    pub exchange_s: f64,
    pub voronoi_s: f64,
    /// Modeled parallel wall clock: `exchange_s + voronoi_s`. Ranks are
    /// threads sharing cores on the CI box, so elapsed time cannot show a
    /// balance win; the per-phase max-over-ranks thread-CPU sum — the
    /// slowest rank's critical path — is what a rank-per-core machine
    /// would see, and is what the A/B gates on.
    pub modeled_s: f64,
    /// Max/mean per-rank particle count (1.0 = perfectly balanced).
    pub imbalance: f64,
}

impl DecompAbArm {
    /// Cells per modeled-parallel-wall second — the A/B headline number.
    pub fn cells_per_sec(&self) -> f64 {
        self.stats.cells as f64 / self.modeled_s
    }
}

/// Run one decomposition arm of the clustered A/B: tessellate `particles`
/// at `nranks` ranks (one block per rank) under `scheme`, with weighted
/// block→rank assignment for the k-d scheme, the streamed kernel, and the
/// multi-round adaptive ghost protocol. `reps` repeats keep the best
/// (smallest) modeled wall; the mesh and imbalance are deterministic.
/// Call under `rayon::set_max_parallelism(1)` so per-rank thread-CPU
/// attribution is exact.
pub fn run_decomp_ab(
    particles: &[(u64, Vec3)],
    side: f64,
    nranks: usize,
    scheme: diy::decomposition::DecompScheme,
    reps: usize,
) -> DecompAbArm {
    use diy::decomposition::{BalanceStats, DecompScheme};
    use diy::metrics::collect_report;
    let domain = geometry::Aabb::cube(side);
    let mut best: Option<DecompAbArm> = None;
    for _ in 0..reps.max(1) {
        let rows = diy::comm::Runtime::run(nranks, move |world| {
            let positions: Vec<Vec3> = particles.iter().map(|&(_, p)| p).collect();
            let dec = scheme.build(domain, nranks, [true; 3], &positions);
            let asn = match scheme {
                DecompScheme::Regular => Assignment::new(nranks, world.nranks()),
                DecompScheme::Kd { .. } => {
                    let mut weights = vec![0u64; nranks];
                    for &p in &positions {
                        weights[dec.block_of_point(p) as usize] += 1;
                    }
                    Assignment::weighted(&weights, world.nranks())
                }
            };
            let imbalance = BalanceStats::measure(&dec, &asn, &positions).rank_imbalance();
            let local = partition_particles(particles, &dec, &asn, world.rank());
            let params = tess::TessParams {
                ghost: tess::GhostSpec::Adaptive {
                    initial_factor: 0.5,
                    max_rounds: 8,
                },
                incremental_retess: true,
                kernel: tess::KernelMode::Stream,
                ..tess::TessParams::default()
            };
            let r = tess::tessellate(world, &dec, &asn, &local, &params);
            let stats = tess::driver::global_stats(world, r.stats);
            let report = collect_report(world);
            assert!(report.is_conserved(), "transport conservation violated");
            let (_, ghost_bytes) = report.tag_traffic_where(tess::ghost::is_ghost_tag);
            (r.blocks, stats, ghost_bytes, report, imbalance)
        });
        let mut blocks = BTreeMap::new();
        let mut first = None;
        for (b, stats, ghost_bytes, report, imbalance) in rows {
            blocks.extend(b);
            if first.is_none() {
                first = Some((stats, ghost_bytes, report, imbalance));
            }
        }
        let mesh = mesh_bits(&blocks);
        let (stats, ghost_bytes, report, imbalance) = first.expect("at least one rank");
        let exchange_s = report.cpu_max(tess::driver::PHASE_GHOST_EXCHANGE);
        let voronoi_s = report.cpu_max(tess::driver::PHASE_VORONOI);
        let arm = DecompAbArm {
            mesh,
            stats,
            ghost_bytes,
            exchange_s,
            voronoi_s,
            modeled_s: exchange_s + voronoi_s,
            imbalance,
        };
        if best.as_ref().is_none_or(|b| arm.modeled_s < b.modeled_s) {
            best = Some(arm);
        }
    }
    best.unwrap()
}

/// Initialize and advance a distributed simulation. Its cost lands in the
/// world's metrics under the [`hacc::PHASE_SIM`] span; read it back from
/// [`diy::metrics::collect_report`].
pub fn run_sim(world: &mut World, params: SimParams, nblocks: usize, nsteps: usize) -> Simulation {
    let mut sim = Simulation::init(world, params, nblocks);
    sim.run_steps(world, nsteps);
    sim
}

/// Fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells.to_vec());
    }

    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..ncol {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format seconds with sensible precision.
pub fn secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{:.1}ms", s * 1e3)
    }
}

/// Format byte counts.
pub fn bytes_h(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2}GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2}MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{b}B")
    }
}

/// Like [`evolved_particles`] but cached on disk under the bench output
/// directory, so the figure harnesses that share a workload do not rerun
/// the simulation.
pub fn evolved_particles_cached(np: usize, nsteps: usize) -> Vec<(u64, Vec3)> {
    use diy::codec::{Decode, Encode};
    let params = SimParams::paper_like(np);
    let tag = (params.initial_delta_rms * 1000.0) as u64;
    let path = output_dir().join(format!(
        "particles_np{np}_steps{nsteps}_seed{}_d{tag}.cache",
        params.seed
    ));
    if let Ok(bytes) = std::fs::read(&path) {
        if let Ok(v) = Vec::<(u64, Vec3)>::from_bytes(&bytes) {
            if v.len() == np * np * np {
                return v;
            }
        }
    }
    let v = evolved_particles(np, nsteps);
    std::fs::write(&path, v.to_bytes()).ok();
    v
}

/// One tessellation measurement destined for `BENCH_TESS.json`.
pub struct TessBenchEntry {
    /// Configuration label, e.g. `table2_np16_r4`.
    pub label: String,
    /// Cell kernel the run used (`"ring"` or `"stream"`).
    pub kernel: String,
    /// Globally merged tessellation counters.
    pub stats: tess::TessStats,
    /// Wall-clock seconds of the `tessellate` call (max across ranks).
    pub wall_s: f64,
    /// Ghost-exchange traffic in bytes (from the per-tag transport counters).
    pub ghost_bytes: u64,
    /// Per-phase thread-CPU seconds, max across ranks (critical path).
    pub exchange_s: f64,
    pub voronoi_s: f64,
    pub output_s: f64,
    /// Decomposition scheme label (`"regular"` or `"kd"`).
    pub decomp: String,
    /// Max/mean per-rank particle count (1.0 = perfectly balanced).
    pub imbalance: f64,
}

/// Render benchmark entries as the machine-readable `BENCH_TESS.json`
/// document: throughput (cells/sec), kernel work (candidates tested per
/// computed cell, cells recomputed vs reused, reuse fraction), ghost
/// traffic, and the per-phase breakdown. Schema documented in DESIGN.md.
pub fn tess_bench_json(entries: &[TessBenchEntry]) -> String {
    compose_bench_doc(Some(&tess_bench_entries_json(entries)), None, None, None)
}

/// Render just the `entries` array of `BENCH_TESS.json`.
pub fn tess_bench_entries_json(entries: &[TessBenchEntry]) -> String {
    let mut out = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        let s = &e.stats;
        let cells_per_sec = if e.wall_s > 0.0 {
            s.cells as f64 / e.wall_s
        } else {
            0.0
        };
        let cand_per_cell = if s.cells_computed > 0 {
            s.candidates_tested as f64 / s.cells_computed as f64
        } else {
            0.0
        };
        let touched = s.cells_computed + s.cells_reused;
        let reuse_fraction = if touched > 0 {
            s.cells_reused as f64 / touched as f64
        } else {
            0.0
        };
        let sep = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!(
            concat!(
                "    {{\"label\": \"{}\", \"kernel\": \"{}\", \"decomp\": \"{}\", ",
                "\"imbalance\": {:.4}, \"cells\": {}, \"wall_s\": {:.6}, ",
                "\"cells_per_sec\": {:.3}, \"candidates_per_cell\": {:.3}, ",
                "\"prefilter_skipped\": {}, ",
                "\"cells_computed\": {}, \"cells_reused\": {}, ",
                "\"reuse_fraction\": {:.6}, ",
                "\"ghost_rounds\": {}, \"ghost_bytes\": {}, ",
                "\"exchange_s\": {:.6}, \"voronoi_s\": {:.6}, \"output_s\": {:.6}}}{}\n"
            ),
            json::escape(&e.label),
            json::escape(&e.kernel),
            json::escape(&e.decomp),
            e.imbalance,
            s.cells,
            e.wall_s,
            cells_per_sec,
            cand_per_cell,
            s.prefilter_skipped,
            s.cells_computed,
            s.cells_reused,
            reuse_fraction,
            s.ghost_rounds,
            e.ghost_bytes,
            e.exchange_s,
            e.voronoi_s,
            e.output_s,
            sep,
        ));
    }
    out.push_str("  ]");
    out
}

/// One resident-service measurement destined for the `service` section of
/// `BENCH_TESS.json` — the second headline number beside cells/sec.
pub struct ServiceBenchEntry {
    pub label: String,
    /// Total requests answered during the measured window.
    pub requests: u64,
    /// Wall-clock seconds of the measured window.
    pub wall_s: f64,
    /// Client-observed request latency quantiles, milliseconds.
    pub p50_ms: f64,
    pub p99_ms: f64,
    /// Batches drained and duplicate requests coalesced by the workers.
    pub batches: u64,
    pub coalesced: u64,
    /// Mesh updates applied (epochs published) while serving.
    pub updates: u64,
    pub epochs: u64,
    /// Decomposition scheme label (`"regular"` or `"kd"`).
    pub decomp: String,
    /// Max/mean per-rank particle count at spawn (1.0 = balanced).
    pub imbalance: f64,
}

/// Render the `service` section object for `BENCH_TESS.json`.
pub fn service_bench_json(e: &ServiceBenchEntry) -> String {
    let rps = if e.wall_s > 0.0 {
        e.requests as f64 / e.wall_s
    } else {
        0.0
    };
    let mean_batch = if e.batches > 0 {
        e.requests as f64 / e.batches as f64
    } else {
        0.0
    };
    format!(
        concat!(
            "{{\"label\": \"{}\", \"decomp\": \"{}\", \"imbalance\": {:.4}, ",
            "\"requests\": {}, \"wall_s\": {:.6}, ",
            "\"requests_per_sec\": {:.3}, \"p50_ms\": {:.6}, \"p99_ms\": {:.6}, ",
            "\"batches\": {}, \"mean_batch\": {:.3}, \"coalesced\": {}, ",
            "\"updates\": {}, \"epochs\": {}}}"
        ),
        json::escape(&e.label),
        json::escape(&e.decomp),
        e.imbalance,
        e.requests,
        e.wall_s,
        rps,
        e.p50_ms,
        e.p99_ms,
        e.batches,
        mean_batch,
        e.coalesced,
        e.updates,
        e.epochs,
    )
}

/// One memory measurement destined for the `memory` section of
/// `BENCH_TESS.json`: a streaming vs accumulate arm of the bounded-memory
/// A/B, or one point of the fig10 memory sweep.
pub struct MemoryBenchEntry {
    pub label: String,
    /// Output mode the run used (`"stream"` or `"accumulate"`).
    pub mode: String,
    pub nranks: usize,
    pub particles: u64,
    pub cells: u64,
    /// Allocator high-water mark over the measured window (bytes,
    /// process-wide, from `diy::mem` after `reset_peak`).
    pub peak_live_bytes: u64,
    /// Kernel-reported peak RSS (`VmHWM`, kB; 0 off Linux).
    pub peak_rss_kb: u64,
    /// Serialized mesh payload bytes in the culled output file.
    pub payload_bytes: u64,
    /// Total output file bytes including framing.
    pub file_bytes: u64,
    pub wall_s: f64,
}

/// Render one `memory` entry as a single-line JSON object.
fn memory_entry_json(e: &MemoryBenchEntry) -> String {
    let bpp = if e.particles > 0 {
        e.payload_bytes as f64 / e.particles as f64
    } else {
        0.0
    };
    format!(
        concat!(
            "{{\"label\": \"{}\", \"mode\": \"{}\", \"nranks\": {}, ",
            "\"particles\": {}, \"cells\": {}, ",
            "\"peak_live_bytes\": {}, \"peak_rss_kb\": {}, ",
            "\"payload_bytes\": {}, \"file_bytes\": {}, ",
            "\"bytes_per_particle\": {:.3}, \"wall_s\": {:.6}}}"
        ),
        json::escape(&e.label),
        json::escape(&e.mode),
        e.nranks,
        e.particles,
        e.cells,
        e.peak_live_bytes,
        e.peak_rss_kb,
        e.payload_bytes,
        e.file_bytes,
        bpp,
        e.wall_s,
    )
}

/// Compose pre-rendered single-line entry objects into the `memory`
/// section array (the two-space indent matches `compose_bench_doc`).
fn memory_section_json(rendered: &[String]) -> String {
    if rendered.is_empty() {
        return "[]".to_string();
    }
    format!("[\n    {}\n  ]", rendered.join(",\n    "))
}

/// Render the `memory` section array for `BENCH_TESS.json`.
pub fn memory_bench_json(entries: &[MemoryBenchEntry]) -> String {
    memory_section_json(&entries.iter().map(memory_entry_json).collect::<Vec<_>>())
}

/// Write the `memory` section of `BENCH_TESS.json` (bench output dir and
/// repo root), preserving the `entries` and `service` sections **and** any
/// existing memory entries whose label does not start with
/// `replace_prefix` — so the memory gate and the fig10 sweep can each own
/// their slice of the section without clobbering the other. Returns the
/// paths written.
pub fn write_bench_memory_json(
    entries: &[MemoryBenchEntry],
    replace_prefix: &str,
) -> Vec<std::path::PathBuf> {
    let mut written = Vec::new();
    for path in [
        output_dir().join("BENCH_TESS.json"),
        repo_root().join("BENCH_TESS.json"),
    ] {
        let existing = std::fs::read_to_string(&path).unwrap_or_default();
        let entries_raw = extract_json_section(&existing, "entries");
        let service = extract_json_section(&existing, "service");
        // keep foreign memory entries (other bins' label prefixes)
        let kept: Vec<String> = extract_json_section(&existing, "memory")
            .and_then(|raw| json::parse(&raw).ok())
            .and_then(|v| v.as_arr().map(|a| a.to_vec()))
            .unwrap_or_default()
            .iter()
            .filter(|e| {
                e.get("label")
                    .and_then(|l| l.as_str())
                    .is_some_and(|l| !l.starts_with(replace_prefix))
            })
            .map(json::Value::render)
            .collect();
        let mut rendered: Vec<String> = entries.iter().map(memory_entry_json).collect();
        rendered.extend(kept);
        let memory = memory_section_json(&rendered);
        let telemetry = extract_json_section(&existing, "telemetry");
        let doc = compose_bench_doc(
            entries_raw.as_deref(),
            service.as_deref(),
            Some(&memory),
            telemetry.as_deref(),
        );
        if std::fs::write(&path, doc).is_ok() {
            written.push(path);
        }
    }
    written
}

/// Extract the raw balanced `[...]`/`{...}` value of a top-level `"key"` in
/// a JSON document, string-aware. `None` if absent or malformed.
pub fn extract_json_section(doc: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let open = rest.chars().next()?;
    let close = match open {
        '[' => ']',
        '{' => '}',
        _ => return None,
    };
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escape = false;
    for (i, c) in rest.char_indices() {
        if in_str {
            if escape {
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            c if c == open => depth += 1,
            c if c == close => {
                depth -= 1;
                if depth == 0 {
                    return Some(rest[..=i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Compose the full `BENCH_TESS.json` document from its sections. Any
/// section may be absent (`entries` defaults to `[]`).
pub fn compose_bench_doc(
    entries_raw: Option<&str>,
    service_raw: Option<&str>,
    memory_raw: Option<&str>,
    telemetry_raw: Option<&str>,
) -> String {
    let mut out = String::from("{\n  \"entries\": ");
    out.push_str(entries_raw.unwrap_or("[]"));
    if let Some(s) = service_raw {
        out.push_str(",\n  \"service\": ");
        out.push_str(s);
    }
    if let Some(m) = memory_raw {
        out.push_str(",\n  \"memory\": ");
        out.push_str(m);
    }
    if let Some(t) = telemetry_raw {
        out.push_str(",\n  \"telemetry\": ");
        out.push_str(t);
    }
    out.push_str("\n}\n");
    out
}

/// Write the `telemetry` section of `BENCH_TESS.json` (bench output dir
/// and repo root), preserving the other sections in each file. Returns
/// the paths written.
pub fn write_bench_telemetry_json(telemetry_raw: &str) -> Vec<std::path::PathBuf> {
    let mut written = Vec::new();
    for path in [
        output_dir().join("BENCH_TESS.json"),
        repo_root().join("BENCH_TESS.json"),
    ] {
        let existing = std::fs::read_to_string(&path).unwrap_or_default();
        let entries = extract_json_section(&existing, "entries");
        let service = extract_json_section(&existing, "service");
        let memory = extract_json_section(&existing, "memory");
        let doc = compose_bench_doc(
            entries.as_deref(),
            service.as_deref(),
            memory.as_deref(),
            Some(telemetry_raw),
        );
        if std::fs::write(&path, doc).is_ok() {
            written.push(path);
        }
    }
    written
}

/// Write the `service` section of `BENCH_TESS.json` (bench output dir and
/// repo root), preserving any existing `entries` and `memory` sections in
/// each file. Returns the paths written.
pub fn write_bench_service_json(entry: &ServiceBenchEntry) -> Vec<std::path::PathBuf> {
    let service = service_bench_json(entry);
    let mut written = Vec::new();
    for path in [
        output_dir().join("BENCH_TESS.json"),
        repo_root().join("BENCH_TESS.json"),
    ] {
        let existing = std::fs::read_to_string(&path).unwrap_or_default();
        let entries = extract_json_section(&existing, "entries");
        let memory = extract_json_section(&existing, "memory");
        let telemetry = extract_json_section(&existing, "telemetry");
        let doc = compose_bench_doc(
            entries.as_deref(),
            Some(&service),
            memory.as_deref(),
            telemetry.as_deref(),
        );
        if std::fs::write(&path, doc).is_ok() {
            written.push(path);
        }
    }
    written
}

/// The workspace root (two levels above this crate's manifest).
pub fn repo_root() -> std::path::PathBuf {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    root.canonicalize().unwrap_or(root)
}

/// Write the `entries` section of `BENCH_TESS.json` to the bench output
/// dir **and** the repo root, so CI and dashboards find the latest numbers
/// at a fixed path without knowing `BENCH_OUT`. Any existing `service`
/// section in each file is preserved. Returns the paths written.
pub fn write_bench_tess_json(entries: &[TessBenchEntry]) -> Vec<std::path::PathBuf> {
    let entries_raw = tess_bench_entries_json(entries);
    let mut written = Vec::new();
    for path in [
        output_dir().join("BENCH_TESS.json"),
        repo_root().join("BENCH_TESS.json"),
    ] {
        let existing = std::fs::read_to_string(&path).unwrap_or_default();
        let service = extract_json_section(&existing, "service");
        let memory = extract_json_section(&existing, "memory");
        let telemetry = extract_json_section(&existing, "telemetry");
        let doc = compose_bench_doc(
            Some(&entries_raw),
            service.as_deref(),
            memory.as_deref(),
            telemetry.as_deref(),
        );
        if std::fs::write(&path, doc).is_ok() {
            written.push(path);
        }
    }
    written
}

/// Print each non-empty distribution in `report` as a one-line sparkline
/// with count / median / max annotations.
pub fn print_report_hists(report: &diy::metrics::RunReport) {
    for nh in &report.hists {
        let h = &nh.hist;
        if h.n() == 0 {
            continue;
        }
        println!(
            "  {:<28} {}  n={} p50={:.3e} max={:.3e}",
            nh.name,
            h.sparkline(),
            h.n(),
            h.quantile(0.5),
            h.max()
        );
    }
}

/// Where harness binaries drop artifacts (SVGs, data files).
pub fn output_dir() -> std::path::PathBuf {
    let dir = std::path::PathBuf::from(
        std::env::var("BENCH_OUT").unwrap_or_else(|_| "bench-out".to_string()),
    );
    std::fs::create_dir_all(&dir).expect("create bench output dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::Aabb;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "longheader"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["333".into(), "4".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(
            lines[1].chars().filter(|&c| c == '-').count(),
            lines[1].len()
        );
        assert!(lines[2].ends_with("2"));
    }

    #[test]
    fn partition_covers_all_particles() {
        let particles = evolved_particles(8, 2);
        assert_eq!(particles.len(), 512);
        let dec = Decomposition::regular(Aabb::cube(8.0), 8, [true; 3]);
        let asn = Assignment::new(8, 2);
        let total: usize = (0..2)
            .map(|rank| {
                partition_particles(&particles, &dec, &asn, rank)
                    .values()
                    .map(Vec::len)
                    .sum::<usize>()
            })
            .sum();
        assert_eq!(total, 512);
    }

    #[test]
    fn json_sections_roundtrip() {
        let e = ServiceBenchEntry {
            label: "svc".into(),
            requests: 1000,
            wall_s: 0.5,
            p50_ms: 0.2,
            p99_ms: 1.5,
            batches: 40,
            coalesced: 12,
            updates: 2,
            epochs: 3,
            decomp: "kd".into(),
            imbalance: 1.08,
        };
        let svc = service_bench_json(&e);
        assert!(svc.contains("\"requests_per_sec\": 2000.000"));
        assert!(svc.contains("\"mean_batch\": 25.000"));

        let entries = "[\n    {\"label\": \"a{]b\", \"wall_s\": 1.0}\n  ]";
        let mem = memory_bench_json(&[MemoryBenchEntry {
            label: "m".into(),
            mode: "stream".into(),
            nranks: 8,
            particles: 1000,
            cells: 900,
            peak_live_bytes: 1 << 20,
            peak_rss_kb: 4096,
            payload_bytes: 50_000,
            file_bytes: 51_000,
            wall_s: 0.25,
        }]);
        assert!(mem.contains("\"bytes_per_particle\": 50.000"));
        let tele = "{\"source\": \"bench_obs\", \"overhead_pct\": 1.25}";
        let doc = compose_bench_doc(Some(entries), Some(&svc), Some(&mem), Some(tele));
        // All sections extract back verbatim, braces in strings and all.
        assert_eq!(
            extract_json_section(&doc, "entries").as_deref(),
            Some(entries)
        );
        assert_eq!(
            extract_json_section(&doc, "service").as_deref(),
            Some(svc.as_str())
        );
        assert_eq!(
            extract_json_section(&doc, "memory").as_deref(),
            Some(mem.as_str())
        );
        assert_eq!(
            extract_json_section(&doc, "telemetry").as_deref(),
            Some(tele)
        );
        // Re-splicing one section preserves the others.
        let doc2 = compose_bench_doc(
            extract_json_section(&doc, "entries").as_deref(),
            Some("{\"label\": \"new\"}"),
            extract_json_section(&doc, "memory").as_deref(),
            extract_json_section(&doc, "telemetry").as_deref(),
        );
        assert_eq!(
            extract_json_section(&doc2, "entries").as_deref(),
            Some(entries)
        );
        assert_eq!(
            extract_json_section(&doc2, "service").as_deref(),
            Some("{\"label\": \"new\"}")
        );
        assert_eq!(
            extract_json_section(&doc2, "memory").as_deref(),
            Some(mem.as_str())
        );
        assert_eq!(
            extract_json_section(&doc2, "telemetry").as_deref(),
            Some(tele)
        );
        assert_eq!(extract_json_section("{}", "entries"), None);
        assert_eq!(extract_json_section("", "service"), None);
    }

    #[test]
    fn memory_section_merge_shapes_stay_valid_json() {
        // The write path merges freshly rendered entries with kept foreign
        // ones; every combination — including zero new entries, the shape
        // that used to splice a leading comma — must stay parseable.
        let kept = json::parse(r#"{"label": "fig10_a", "mode": "stream"}"#)
            .unwrap()
            .render();
        let fresh = memory_entry_json(&MemoryBenchEntry {
            label: "memgate \"odd\"\nlabel".into(),
            mode: "accumulate".into(),
            nranks: 1,
            particles: 10,
            cells: 9,
            peak_live_bytes: 1,
            peak_rss_kb: 1,
            payload_bytes: 1000,
            file_bytes: 1100,
            wall_s: 0.1,
        });
        for rendered in [
            vec![],
            vec![kept.clone()],
            vec![fresh.clone()],
            vec![fresh.clone(), kept.clone()],
        ] {
            let section = memory_section_json(&rendered);
            let v = json::parse(&section).expect("merged memory section parses");
            assert_eq!(v.as_arr().unwrap().len(), rendered.len());
        }
        assert_eq!(memory_bench_json(&[]), "[]");
        // The hostile label survives a parse round-trip intact.
        let v = json::parse(&fresh).unwrap();
        assert_eq!(
            v.get("label").and_then(|l| l.as_str()),
            Some("memgate \"odd\"\nlabel")
        );
    }

    #[test]
    fn tess_bench_json_wraps_entries_array() {
        let doc = tess_bench_json(&[]);
        assert_eq!(
            extract_json_section(&doc, "entries").as_deref(),
            Some("[\n  ]")
        );
        assert_eq!(extract_json_section(&doc, "service"), None);
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(0.0123), "12.3ms");
        assert_eq!(secs(2.5), "2.50");
        assert_eq!(secs(150.0), "150");
        assert_eq!(bytes_h(512), "512B");
        assert_eq!(bytes_h(2048), "2.0KiB");
        assert_eq!(bytes_h(3 << 20), "3.00MiB");
    }
}
