//! trace_export — flight-recorder smoke: traced run, Chrome-trace export,
//! overhead gate.
//!
//! Runs the perf_smoke workload (np16 evolved particles, 8 blocks on 4
//! ranks, multi-round adaptive ghost) once untraced and once under
//! `TESS_TRACE=full`, best-of-3 wall each, then asserts:
//!
//! 1. **Overhead** — the traced wall time stays within 10% (+0.1 s noise
//!    floor) of the untraced wall time.
//! 2. **Non-interference** — both runs produce a bit-identical merged mesh.
//! 3. **Export** — the merged per-rank traces render to Chrome-trace JSON
//!    that validates (parses, balanced B/E pairs per track, monotonic
//!    timestamps), with one pid per rank, ghost-round markers, and pool
//!    worker tasks on their own tids.
//! 4. **Codec** — `Vec<RankTrace>` round-trips bit-exactly through the
//!    binary codec.
//!
//! Artifact: `bench-out/trace_np16_r4.trace.json` — open it at
//! ui.perfetto.dev ("Open trace file") or chrome://tracing.

use std::collections::BTreeMap;
use std::time::Instant;

use bench_harness::{evolved_particles_cached, output_dir, partition_particles};
use diy::codec::{Decode, Encode};
use diy::comm::Runtime;
use diy::trace::{
    chrome_trace_json, collect_traces, set_trace_mode, validate_chrome_trace, EventKind, RankTrace,
    TraceMode,
};
use geometry::Aabb;
use rayon::set_max_parallelism;
use tess::{tessellate, GhostSpec, TessParams};

const NP: usize = 16;
const NSTEPS: usize = 100;
const NBLOCKS: usize = 8;
const NRANKS: usize = 4;
const GHOST: GhostSpec = GhostSpec::Adaptive {
    initial_factor: 0.5,
    max_rounds: 8,
};
/// Best-of-N wall-clock to damp scheduler noise on a busy CI box.
const REPS: usize = 3;

type CellBits = (u64, u64, Vec<u64>);
type Decomp = diy::decomposition::Decomposition;

struct ModeRun {
    wall_s: f64,
    mesh: BTreeMap<u64, CellBits>,
    traces: Vec<RankTrace>,
}

fn run_mode(particles: &[(u64, geometry::Vec3)], dec: &Decomp, mode: TraceMode) -> ModeRun {
    set_trace_mode(mode);
    let mut best: Option<ModeRun> = None;
    for _ in 0..REPS {
        let rows = Runtime::run(NRANKS, move |world| {
            let asn = diy::decomposition::Assignment::new(NBLOCKS, world.nranks());
            let local = partition_particles(particles, dec, &asn, world.rank());
            let params = TessParams {
                ghost: GHOST,
                ..TessParams::default()
            };
            let t0 = Instant::now();
            let r = tessellate(world, dec, &asn, &local, &params);
            let wall = world.all_reduce(t0.elapsed().as_secs_f64(), f64::max);
            // Collective: every rank participates, root gets the merge.
            let traces = collect_traces(world);
            let mesh: Vec<(u64, CellBits)> = r
                .blocks
                .values()
                .flat_map(|b| {
                    b.cells
                        .iter()
                        .map(|c| {
                            (
                                b.site_id_of(c),
                                (
                                    c.volume.to_bits(),
                                    c.area.to_bits(),
                                    c.faces.iter().map(|f| f.neighbor).collect(),
                                ),
                            )
                        })
                        .collect::<Vec<_>>()
                })
                .collect();
            (wall, mesh, traces)
        });
        let mut mesh = BTreeMap::new();
        for (id, bits) in rows.iter().flat_map(|(_, m, _)| m.iter().cloned()) {
            assert!(mesh.insert(id, bits).is_none(), "cell {id} duplicated");
        }
        let wall = rows[0].0;
        let traces = rows
            .into_iter()
            .find_map(|(_, _, t)| t)
            .expect("root rank returns the merged trace");
        if best.as_ref().is_none_or(|b| wall < b.wall_s) {
            best = Some(ModeRun {
                wall_s: wall,
                mesh,
                traces,
            });
        }
    }
    best.unwrap()
}

fn main() {
    let particles = evolved_particles_cached(NP, NSTEPS);
    let dec = Decomp::regular(Aabb::cube(NP as f64), NBLOCKS, [true; 3]);
    let threads = std::env::var("TESS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4usize);
    set_max_parallelism(threads.max(2));

    let off = run_mode(&particles, &dec, TraceMode::Off);
    let full = run_mode(&particles, &dec, TraceMode::Full);
    set_trace_mode(TraceMode::Off);

    // Gate 2: tracing must not perturb the mesh.
    assert_eq!(
        full.mesh, off.mesh,
        "traced run produced a different mesh than the untraced run"
    );

    // Gate 1: < 10% overhead, with a small absolute floor for timer noise
    // on a workload this short.
    let overhead = full.wall_s / off.wall_s - 1.0;
    println!(
        "trace_export: untraced {:.3}s, traced {:.3}s ({:+.1}% overhead)",
        off.wall_s,
        full.wall_s,
        overhead * 100.0
    );
    assert!(
        full.wall_s <= off.wall_s * 1.10 + 0.1,
        "tracing overhead too high: {:.3}s traced vs {:.3}s untraced",
        full.wall_s,
        off.wall_s
    );

    // The untraced trace must be empty; the traced one must cover every
    // rank and contain the landmarks the exporter promises.
    assert_eq!(off.traces.len(), NRANKS);
    assert!(off.traces.iter().all(|t| t.events.is_empty()));
    let traces = &full.traces;
    assert_eq!(traces.len(), NRANKS, "one trace per rank");
    let total: usize = traces.iter().map(|t| t.events.len()).sum();
    assert!(total > 0, "traced run recorded no events");
    let has_ghost_round_mark = traces.iter().any(|t| {
        t.events
            .iter()
            .any(|e| e.kind == EventKind::Mark && t.name(e.name) == "ghost_round")
    });
    assert!(has_ghost_round_mark, "no ghost-round markers in the trace");
    let pool_tasks: usize = traces
        .iter()
        .flat_map(|t| &t.events)
        .filter(|e| e.kind == EventKind::PoolTask)
        .count();
    assert!(pool_tasks > 0, "no pool task events in the trace");
    for t in traces {
        assert_eq!(
            t.emitted,
            t.events.len() as u64 + t.dropped,
            "rank {}: emitted != recorded + dropped",
            t.rank
        );
    }

    // Gate 4: binary codec round-trip.
    let bytes = traces.to_bytes();
    let back = Vec::<RankTrace>::from_bytes(&bytes).expect("trace codec decode");
    assert_eq!(&back, traces, "trace codec round-trip mismatch");

    // Gate 3: Chrome-trace export validates and lands on disk.
    let json = chrome_trace_json(traces);
    let n_events = validate_chrome_trace(&json)
        .unwrap_or_else(|e| panic!("exported Chrome trace invalid: {e}"));
    let path = output_dir().join(format!("trace_np{NP}_r{NRANKS}.trace.json"));
    std::fs::write(&path, &json).expect("write trace json");
    println!(
        "trace_export: {} events ({} pool tasks) -> {} ({} bytes, {n_events} trace records) — OK",
        total,
        pool_tasks,
        path.display(),
        json.len()
    );
}
