//! Figure 10 — strong and weak scaling of the tessellation.
//!
//! Paper setup: strong scaling for 128³–1024³ particles over 128–16384
//! processes; weak scaling at 16384 particles/process. Total tessellation
//! time including the write. Reported efficiencies: strong 30–41%, weak
//! 86%.
//!
//! Scaled default here: strong scaling for 16³ and 32³ over 1–8 ranks;
//! weak scaling holding particles/rank fixed at 16³/1 → 32³/8 (→ 64³/64
//! with BENCH_FULL=1). Times are thread-CPU critical path, so the curves
//! measure algorithmic scaling even on a single-core host.
//!
//! Expected shape: strong-scaling curves slope down with less-than-ideal
//! efficiency (duplicated ghost work grows with block count); weak scaling
//! per particle is near flat.

use std::collections::BTreeMap;
use std::time::Instant;

use bench_harness::{bytes_h, output_dir, secs, write_bench_memory_json, MemoryBenchEntry, Table};
use diy::comm::Runtime;
use diy::metrics::collect_report;
use geometry::Vec3;
use hacc::SimParams;
use tess::{tessellate, TessParams, PHASE_GHOST_EXCHANGE, PHASE_OUTPUT, PHASE_VORONOI};

/// One tessellation (including write), returning the critical-path seconds
/// summed over the tessellation phases of the merged run report.
fn tess_time(np: usize, nsteps: usize, nranks: usize) -> f64 {
    let params = SimParams::paper_like(np);
    let out = output_dir().join(format!("fig10_np{np}_r{nranks}.tess"));
    let times = Runtime::run(nranks, |world| {
        let sim = bench_harness::run_sim(world, params, nranks, nsteps);
        let local: BTreeMap<u64, Vec<(u64, Vec3)>> = sim
            .blocks
            .iter()
            .map(|(&gid, ps)| (gid, ps.iter().map(|p| (p.id, p.pos)).collect()))
            .collect();
        let r = tessellate(
            world,
            &sim.dec,
            &sim.asn,
            &local,
            &TessParams::default().with_ghost(4.0).with_min_volume(0.2),
        );
        tess::io::write_tessellation(world, &out, &r.blocks).expect("write");
        let report = collect_report(world);
        report.cpu_max(PHASE_GHOST_EXCHANGE)
            + report.cpu_max(PHASE_VORONOI)
            + report.cpu_max(PHASE_OUTPUT)
    });
    times[0]
}

/// One bounded-memory streaming tessellation of the same workload,
/// recording the allocator high-water mark over the run, the process
/// `VmHWM`, and the real serialized byte counts the writer reports.
fn memory_point(np: usize, nsteps: usize, nranks: usize) -> MemoryBenchEntry {
    let params = SimParams::paper_like(np);
    let out = output_dir().join(format!("fig10_mem_np{np}_r{nranks}.tess"));
    let out_ref = &out;
    diy::mem::reset_peak();
    let before = diy::mem::stats();
    let t0 = Instant::now();
    let rows = Runtime::run(nranks, |world| {
        let sim = bench_harness::run_sim(world, params, nranks, nsteps);
        let local: BTreeMap<u64, Vec<(u64, Vec3)>> = sim
            .blocks
            .iter()
            .map(|(&gid, ps)| (gid, ps.iter().map(|p| (p.id, p.pos)).collect()))
            .collect();
        let s = tess::tessellate_streaming(
            world,
            &sim.dec,
            &sim.asn,
            &local,
            &TessParams::default().with_ghost(4.0).with_min_volume(0.2),
            out_ref,
        )
        .expect("streaming write");
        let stats = tess::driver::global_stats(world, s.stats);
        (stats.cells, s.payload_bytes, s.file_bytes)
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let after = diy::mem::stats();
    let (_, peak_rss_kb) = diy::mem::proc_status_kb();
    let (cells, payload_bytes, file_bytes) = rows[0];
    MemoryBenchEntry {
        label: format!("fig10_np{np}_r{nranks}"),
        mode: "stream".into(),
        nranks,
        particles: (np * np * np) as u64,
        cells,
        peak_live_bytes: after
            .peak_live_bytes
            .saturating_sub(before.live_bytes.min(after.peak_live_bytes)),
        peak_rss_kb,
        payload_bytes,
        file_bytes,
        wall_s,
    }
}

fn main() {
    let full = std::env::var("BENCH_FULL").is_ok();
    println!("# Figure 10: strong and weak scaling of tessellation (incl. write)");

    // Strong scaling.
    let mut strong = Table::new(&[
        "Particles",
        "Ranks",
        "TessTime(s)",
        "Speedup",
        "Efficiency%",
    ]);
    let sizes: Vec<(usize, usize)> = if full {
        vec![(16, 20), (32, 20), (64, 5)]
    } else {
        vec![(16, 20), (32, 20)]
    };
    for &(np, nsteps) in &sizes {
        let mut base = None;
        for nranks in [1usize, 2, 4, 8] {
            let t = tess_time(np, nsteps, nranks);
            let b = *base.get_or_insert(t);
            let speedup = b / t;
            let eff = 100.0 * speedup / nranks as f64;
            strong.row(&[
                format!("{np}^3"),
                nranks.to_string(),
                secs(t),
                format!("{speedup:.2}"),
                format!("{eff:.0}"),
            ]);
        }
    }
    println!("## Strong scaling (paper efficiency: 30-41%)");
    strong.print();

    // Weak scaling: fixed particles/rank (factor-8 steps, like the paper).
    let mut weak = Table::new(&[
        "Particles",
        "Ranks",
        "Particles/rank",
        "TessTime(s)",
        "Time/particle(us)",
        "Efficiency%",
    ]);
    let weak_configs: Vec<(usize, usize, usize)> = if full {
        vec![(16, 1, 20), (32, 8, 20), (64, 64, 5)]
    } else {
        vec![(16, 1, 20), (32, 8, 20)]
    };
    let mut base_per_particle = None;
    for &(np, nranks, nsteps) in &weak_configs {
        let t = tess_time(np, nsteps, nranks);
        let n = (np * np * np) as f64;
        let per = t / n * 1e6;
        // weak efficiency: ideal time is flat, i.e. per-particle time
        // scales as 1/ranks
        let b = *base_per_particle.get_or_insert(per);
        let ideal = b / nranks as f64;
        let eff = 100.0 * ideal / per;
        weak.row(&[
            format!("{np}^3"),
            nranks.to_string(),
            format!("{}", (np * np * np) / nranks),
            secs(t),
            format!("{per:.2}"),
            format!("{eff:.0}"),
        ]);
    }
    println!("## Weak scaling (paper efficiency: 86%)");
    weak.print();

    // Memory sweep: the same workloads through the bounded-memory
    // streaming driver, recording allocator peak, VmHWM, and the real
    // serialized byte counts (culled, min_volume 0.2). Lands in the
    // `memory` section of BENCH_TESS.json under fig10_* labels.
    let mut mem = Table::new(&[
        "Particles",
        "Ranks",
        "PeakAlloc",
        "VmHWM(kB)",
        "Bytes/particle",
        "Wall(s)",
    ]);
    let mem_configs: Vec<(usize, usize, usize)> = if full {
        vec![(16, 20, 4), (32, 20, 8), (64, 5, 8)]
    } else {
        vec![(16, 20, 4), (32, 20, 8)]
    };
    let mut entries = Vec::new();
    for &(np, nsteps, nranks) in &mem_configs {
        let e = memory_point(np, nsteps, nranks);
        mem.row(&[
            format!("{np}^3"),
            nranks.to_string(),
            bytes_h(e.peak_live_bytes),
            e.peak_rss_kb.to_string(),
            format!("{:.1}", e.payload_bytes as f64 / e.particles as f64),
            secs(e.wall_s),
        ]);
        entries.push(e);
    }
    println!("## Memory sweep (streaming output, culled; paper: ~100 B/particle culled)");
    mem.print();
    for p in write_bench_memory_json(&entries, "fig10_") {
        println!("wrote {}", p.display());
    }
}
