//! Figure 10 — strong and weak scaling of the tessellation.
//!
//! Paper setup: strong scaling for 128³–1024³ particles over 128–16384
//! processes; weak scaling at 16384 particles/process. Total tessellation
//! time including the write. Reported efficiencies: strong 30–41%, weak
//! 86%.
//!
//! Scaled default here: strong scaling for 16³ and 32³ over 1–8 ranks;
//! weak scaling holding particles/rank fixed at 16³/1 → 32³/8 (→ 64³/64
//! with BENCH_FULL=1). Times are thread-CPU critical path, so the curves
//! measure algorithmic scaling even on a single-core host.
//!
//! Expected shape: strong-scaling curves slope down with less-than-ideal
//! efficiency (duplicated ghost work grows with block count); weak scaling
//! per particle is near flat.

use std::collections::BTreeMap;

use bench_harness::{output_dir, secs, Table};
use diy::comm::Runtime;
use diy::metrics::collect_report;
use geometry::Vec3;
use hacc::SimParams;
use tess::{tessellate, TessParams, PHASE_GHOST_EXCHANGE, PHASE_OUTPUT, PHASE_VORONOI};

/// One tessellation (including write), returning the critical-path seconds
/// summed over the tessellation phases of the merged run report.
fn tess_time(np: usize, nsteps: usize, nranks: usize) -> f64 {
    let params = SimParams::paper_like(np);
    let out = output_dir().join(format!("fig10_np{np}_r{nranks}.tess"));
    let times = Runtime::run(nranks, |world| {
        let sim = bench_harness::run_sim(world, params, nranks, nsteps);
        let local: BTreeMap<u64, Vec<(u64, Vec3)>> = sim
            .blocks
            .iter()
            .map(|(&gid, ps)| (gid, ps.iter().map(|p| (p.id, p.pos)).collect()))
            .collect();
        let r = tessellate(
            world,
            &sim.dec,
            &sim.asn,
            &local,
            &TessParams::default().with_ghost(4.0).with_min_volume(0.2),
        );
        tess::io::write_tessellation(world, &out, &r.blocks).expect("write");
        let report = collect_report(world);
        report.cpu_max(PHASE_GHOST_EXCHANGE)
            + report.cpu_max(PHASE_VORONOI)
            + report.cpu_max(PHASE_OUTPUT)
    });
    times[0]
}

fn main() {
    let full = std::env::var("BENCH_FULL").is_ok();
    println!("# Figure 10: strong and weak scaling of tessellation (incl. write)");

    // Strong scaling.
    let mut strong = Table::new(&[
        "Particles",
        "Ranks",
        "TessTime(s)",
        "Speedup",
        "Efficiency%",
    ]);
    let sizes: Vec<(usize, usize)> = if full {
        vec![(16, 20), (32, 20), (64, 5)]
    } else {
        vec![(16, 20), (32, 20)]
    };
    for &(np, nsteps) in &sizes {
        let mut base = None;
        for nranks in [1usize, 2, 4, 8] {
            let t = tess_time(np, nsteps, nranks);
            let b = *base.get_or_insert(t);
            let speedup = b / t;
            let eff = 100.0 * speedup / nranks as f64;
            strong.row(&[
                format!("{np}^3"),
                nranks.to_string(),
                secs(t),
                format!("{speedup:.2}"),
                format!("{eff:.0}"),
            ]);
        }
    }
    println!("## Strong scaling (paper efficiency: 30-41%)");
    strong.print();

    // Weak scaling: fixed particles/rank (factor-8 steps, like the paper).
    let mut weak = Table::new(&[
        "Particles",
        "Ranks",
        "Particles/rank",
        "TessTime(s)",
        "Time/particle(us)",
        "Efficiency%",
    ]);
    let weak_configs: Vec<(usize, usize, usize)> = if full {
        vec![(16, 1, 20), (32, 8, 20), (64, 64, 5)]
    } else {
        vec![(16, 1, 20), (32, 8, 20)]
    };
    let mut base_per_particle = None;
    for &(np, nranks, nsteps) in &weak_configs {
        let t = tess_time(np, nsteps, nranks);
        let n = (np * np * np) as f64;
        let per = t / n * 1e6;
        // weak efficiency: ideal time is flat, i.e. per-particle time
        // scales as 1/ranks
        let b = *base_per_particle.get_or_insert(per);
        let ideal = b / nranks as f64;
        let eff = 100.0 * ideal / per;
        weak.row(&[
            format!("{np}^3"),
            nranks.to_string(),
            format!("{}", (np * np * np) / nranks),
            secs(t),
            format!("{per:.2}"),
            format!("{eff:.0}"),
        ]);
    }
    println!("## Weak scaling (paper efficiency: 86%)");
    weak.print();
}
