//! Table II — in-situ performance data.
//!
//! Paper setup: 128³–1024³ particles on 128–16384 BG/P nodes; columns are
//! total / simulation / tessellation times, the tessellation broken into
//! particle exchange, Voronoi computation, and output, plus output size,
//! with the smallest 10% of the volume range culled.
//!
//! Scaled default here: 16³ and 32³ (64³ with BENCH_FULL=1) over 1–8
//! ranks, one block per rank (the paper's configuration). Every breakdown
//! column is derived from the merged [`diy::metrics::RunReport`]: per-phase
//! thread-CPU seconds reduced with max across ranks (critical path) — see
//! `bench_harness` docs. Each configuration's full report is also written
//! as machine-readable JSON next to the tessellation file.
//!
//! Expected shape (paper): tessellation is 1–10% of total time; exchange
//! time negligible; the serial Voronoi computation dominates tessellation
//! and scales well with rank count; output time grows with problem size.

use std::collections::BTreeMap;
use std::time::Instant;

use bench_harness::{
    bytes_h, corpus::ClusterSpec, output_dir, run_decomp_ab, secs, write_bench_tess_json, Table,
    TessBenchEntry,
};
use diy::comm::{Runtime, World};
use diy::decomposition::DecompScheme;
use diy::metrics::collect_report;
use geometry::Vec3;
use hacc::SimParams;
use postprocess::VolumeFilter;
use tess::ghost::is_ghost_tag;
use tess::{tessellate, GhostSpec, TessParams, PHASE_GHOST_EXCHANGE, PHASE_OUTPUT, PHASE_VORONOI};

/// Ghost mode from `BENCH_GHOST`: `adaptive`, `auto`, or an explicit
/// radius (default: the fixed radius 4.0 the paper-like setup uses).
fn ghost_from_env() -> GhostSpec {
    match std::env::var("BENCH_GHOST").ok().as_deref() {
        Some("adaptive") => GhostSpec::adaptive(),
        Some("auto") => GhostSpec::default(),
        Some(v) => GhostSpec::Explicit(v.parse().expect("BENCH_GHOST: adaptive|auto|<radius>")),
        None => GhostSpec::Explicit(4.0),
    }
}

/// Max/mean per-rank particle count (1.0 = perfectly balanced).
fn rank_imbalance(world: &mut World, local: &BTreeMap<u64, Vec<(u64, Vec3)>>) -> f64 {
    let mine: f64 = local.values().map(|v| v.len() as f64).sum();
    let max = world.all_reduce(mine, f64::max);
    let total = world.all_reduce(mine, |a, b| a + b);
    if total > 0.0 {
        max * world.nranks() as f64 / total
    } else {
        1.0
    }
}

fn main() {
    let full = std::env::var("BENCH_FULL").is_ok();
    let ghost = ghost_from_env();
    let mut configs: Vec<(usize, usize, Vec<usize>)> =
        vec![(16, 100, vec![1, 2, 4, 8]), (32, 50, vec![1, 2, 4, 8])];
    if full {
        configs.push((64, 10, vec![2, 4, 8, 16]));
    }

    println!("# Table II: in-situ performance (thread-CPU critical path; see DESIGN.md)");
    println!("# ghost mode: {ghost:?} (override with BENCH_GHOST=adaptive|auto|<radius>)");
    let mut bench_entries: Vec<TessBenchEntry> = Vec::new();
    let mut table = Table::new(&[
        "Particles",
        "Steps",
        "Processes",
        "Total(s)",
        "Sim(s)",
        "TessTotal(s)",
        "Exchange(s)",
        "Voronoi(s)",
        "Output(s)",
        "OutputSize",
    ]);

    for (np, nsteps, rank_list) in configs {
        for nranks in rank_list {
            let out_path = output_dir().join(format!("table2_np{np}_r{nranks}.tess"));
            let params = SimParams::paper_like(np);
            let rows = Runtime::run(nranks, |world| {
                // simulation phase (recorded under the "sim" span)
                let sim = bench_harness::run_sim(world, params, nranks, nsteps);

                // tessellation phase with the paper's 10%-of-range cull:
                // the paper uses a fixed threshold; we use 10% of the
                // small-scale characteristic range [0, 2] (Mpc/h)³ → 0.2.
                let local: BTreeMap<u64, Vec<(u64, Vec3)>> = sim
                    .blocks
                    .iter()
                    .map(|(&gid, ps)| (gid, ps.iter().map(|p| (p.id, p.pos)).collect()))
                    .collect();
                let tess_params = TessParams {
                    ghost,
                    ..TessParams::default().with_min_volume(0.2)
                };
                let t0 = Instant::now();
                let result = tessellate(world, &sim.dec, &sim.asn, &local, &tess_params);
                let wall = world.all_reduce(t0.elapsed().as_secs_f64(), f64::max);
                let stats = tess::driver::global_stats(world, result.stats);
                let imbalance = rank_imbalance(world, &local);

                let bytes =
                    tess::io::write_tessellation(world, &out_path, &result.blocks).expect("write");
                (collect_report(world), bytes, stats, wall, imbalance)
            });
            let (report, bytes, stats, tess_wall, imbalance) = &rows[0];
            let sim_s = report.cpu_max(hacc::PHASE_SIM);
            let exch = report.cpu_max(PHASE_GHOST_EXCHANGE);
            let comp = report.cpu_max(PHASE_VORONOI);
            let outp = report.cpu_max(PHASE_OUTPUT);
            let tess_total = exch + comp + outp;
            assert!(report.is_conserved(), "transport conservation violated");
            table.row(&[
                format!("{np}^3"),
                nsteps.to_string(),
                nranks.to_string(),
                secs(sim_s + tess_total),
                secs(sim_s),
                secs(tess_total),
                secs(exch),
                secs(comp),
                secs(outp),
                bytes_h(*bytes),
            ]);
            let json_path = output_dir().join(format!("table2_np{np}_r{nranks}.report.json"));
            std::fs::write(&json_path, report.to_json()).expect("write report json");
            let (_, ghost_bytes) = report.tag_traffic_where(is_ghost_tag);
            bench_entries.push(TessBenchEntry {
                label: format!("table2_np{np}_r{nranks}"),
                kernel: tess::KernelMode::from_env().as_str().into(),
                stats: *stats,
                wall_s: *tess_wall,
                ghost_bytes,
                exchange_s: exch,
                voronoi_s: comp,
                output_s: outp,
                decomp: "regular".into(),
                imbalance: *imbalance,
            });
            // sanity echo of what survived the cull
            let blocks = tess::io::read_tessellation(&out_path).expect("read back");
            let kept: usize = blocks.iter().map(|b| b.cells.len()).sum();
            let filter = VolumeFilter::at_least(0.2);
            let all_pass = blocks
                .iter()
                .all(|b| b.cells.iter().all(|c| filter.keeps(c.volume)));
            assert!(all_pass, "culled file must only hold cells above threshold");
            eprintln!(
                "  np={np} ranks={nranks}: {kept} cells kept above 0.2 (Mpc/h)^3; report: {}",
                json_path.display()
            );
        }
    }
    table.print();

    // One configuration through the adaptive multi-round incremental path,
    // so the ghost_rounds / reuse counters are live in the committed
    // BENCH_TESS.json — the fixed-radius entries above are single-round by
    // construction, leaving those columns dead.
    {
        let (np, nsteps, nranks) = (16usize, 100usize, 4usize);
        let params = SimParams::paper_like(np);
        let rows = Runtime::run(nranks, move |world| {
            let sim = bench_harness::run_sim(world, params, nranks, nsteps);
            let local: BTreeMap<u64, Vec<(u64, Vec3)>> = sim
                .blocks
                .iter()
                .map(|(&gid, ps)| (gid, ps.iter().map(|p| (p.id, p.pos)).collect()))
                .collect();
            let tess_params = TessParams {
                ghost: GhostSpec::Adaptive {
                    initial_factor: 0.5,
                    max_rounds: 8,
                },
                incremental_retess: true,
                ..TessParams::default().with_min_volume(0.2)
            };
            let t0 = Instant::now();
            let result = tessellate(world, &sim.dec, &sim.asn, &local, &tess_params);
            let wall = world.all_reduce(t0.elapsed().as_secs_f64(), f64::max);
            let stats = tess::driver::global_stats(world, result.stats);
            let imbalance = rank_imbalance(world, &local);
            (collect_report(world), stats, wall, imbalance)
        });
        let (report, stats, wall, imbalance) = &rows[0];
        assert!(
            stats.ghost_rounds > 1,
            "adaptive entry ran only one ghost round"
        );
        assert!(
            stats.cells_reused > 0,
            "adaptive entry reused no cells — the incremental path is dead"
        );
        let (_, ghost_bytes) = report.tag_traffic_where(is_ghost_tag);
        eprintln!(
            "  adaptive incremental np{np} r{nranks}: {} ghost rounds, {} reused / {} computed",
            stats.ghost_rounds, stats.cells_reused, stats.cells_computed
        );
        bench_entries.push(TessBenchEntry {
            label: format!("table2_np{np}_r{nranks}_adaptive_incr"),
            kernel: tess::KernelMode::from_env().as_str().into(),
            stats: *stats,
            wall_s: *wall,
            ghost_bytes,
            exchange_s: report.cpu_max(PHASE_GHOST_EXCHANGE),
            voronoi_s: report.cpu_max(PHASE_VORONOI),
            output_s: report.cpu_max(PHASE_OUTPUT),
            decomp: "regular".into(),
            imbalance: *imbalance,
        });
    }

    // Clustered-corpus decomposition A/B: regular vs particle-balanced k-d
    // at 8 ranks on the corner-heavy halo corpus. perf_smoke gates these
    // numbers in CI; here they land in the table and the JSON. Modeled
    // parallel wall = max-over-ranks thread-CPU per phase (the slowest
    // rank's critical path), with the cell-kernel pool pinned to 1 thread.
    let spec = ClusterSpec::corner_heavy(16.0, 24, 40, 42);
    let corpus = spec.generate();
    let prev = rayon::set_max_parallelism(1);
    let arms = [
        ("regular", DecompScheme::Regular),
        (
            "kd",
            DecompScheme::Kd {
                sample: DecompScheme::DEFAULT_KD_SAMPLE,
            },
        ),
    ]
    .map(|(label, scheme)| (label, run_decomp_ab(&corpus, spec.side, 8, scheme, 2)));
    rayon::set_max_parallelism(prev);
    let mut ab = Table::new(&[
        "Decomp",
        "Ranks",
        "Imbalance",
        "Exchange(s)",
        "Voronoi(s)",
        "Modeled(s)",
        "Cells/s",
    ]);
    for (label, arm) in &arms {
        ab.row(&[
            (*label).to_string(),
            "8".to_string(),
            format!("{:.2}", arm.imbalance),
            secs(arm.exchange_s),
            secs(arm.voronoi_s),
            secs(arm.modeled_s),
            format!("{:.0}", arm.cells_per_sec()),
        ]);
        bench_entries.push(TessBenchEntry {
            label: format!("table2_clustered_r8_{label}"),
            kernel: "stream".into(),
            stats: arm.stats,
            wall_s: arm.modeled_s,
            ghost_bytes: arm.ghost_bytes,
            exchange_s: arm.exchange_s,
            voronoi_s: arm.voronoi_s,
            output_s: 0.0,
            decomp: (*label).into(),
            imbalance: arm.imbalance,
        });
    }
    println!(
        "\n# Clustered-corpus decomposition A/B (modeled parallel wall: max-over-ranks thread-CPU)"
    );
    ab.print();

    for path in write_bench_tess_json(&bench_entries) {
        eprintln!("# machine-readable results: {}", path.display());
    }
}
