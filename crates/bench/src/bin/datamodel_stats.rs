//! §III-C2 — data-model size accounting.
//!
//! Paper numbers (HACC simulations): ~15 faces/cell, ~5 vertices/face,
//! ~35 total vertex references/cell, ~7 new deduplicated vertices per
//! cell; full tessellation ≈ 450 bytes/particle, culled ≈ 100
//! bytes/particle (vs a 40 byte/particle HACC checkpoint); ~7% of bytes
//! are floating-point geometry, ~93% connectivity.

use std::collections::BTreeMap;

use bench_harness::{evolved_particles_cached, Table};
use diy::comm::Runtime;
use geometry::Aabb;
use tess::{tessellate_serial, TessParams};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Real serialized sizes: write the block through the collective mesh
/// writer and read the index back — payload from the file's block records,
/// total including header/footer/trailer framing from the file length.
fn disk_bytes(label: &str, block: &tess::MeshBlock) -> (u64, u64) {
    let path = bench_harness::output_dir().join(format!("datamodel_{label}.tess"));
    let blocks: BTreeMap<u64, tess::MeshBlock> = [(block.gid, block.clone())].into_iter().collect();
    let blocks_ref = &blocks;
    let path_ref = &path;
    let file_bytes = Runtime::run(1, |w| {
        tess::io::write_tessellation(w, path_ref, blocks_ref).expect("mesh write")
    })[0];
    let payload: u64 = diy::io::read_index(&path)
        .expect("mesh index")
        .iter()
        .map(|r| r.len)
        .sum();
    (payload, file_bytes)
}

fn report(label: &str, block: &tess::MeshBlock, nparticles: usize, table: &mut Table) {
    let cells = block.cells.len().max(1);
    let faces: usize = block.num_faces();
    let vert_refs: usize = block
        .cells
        .iter()
        .flat_map(|c| c.faces.iter())
        .map(|f| f.verts.len())
        .sum();
    let (payload, file_bytes) = disk_bytes(label, block);
    let (geom, conn) = block.size_breakdown();
    table.row(&[
        label.to_string(),
        block.cells.len().to_string(),
        format!("{:.1}", faces as f64 / cells as f64),
        format!("{:.1}", vert_refs as f64 / faces.max(1) as f64),
        format!("{:.1}", vert_refs as f64 / cells as f64),
        format!("{:.1}", block.verts.len() as f64 / cells as f64),
        format!("{:.0}", payload as f64 / nparticles as f64),
        format!("{:.0}", file_bytes as f64 / nparticles as f64),
        format!("{:.1}", 100.0 * geom as f64 / (geom + conn) as f64),
        format!("{:.1}", 100.0 * conn as f64 / (geom + conn) as f64),
    ]);
}

fn main() {
    let np = env_usize("BENCH_NP", 32);
    let nsteps = env_usize("BENCH_STEPS", 100);
    println!("# Data model stats ({np}^3 particles, t = {nsteps}); paper: ~15 faces/cell, ~5 verts/face, ~450 B/particle full, ~100 culled, 7%/93% geometry/connectivity");

    let particles = evolved_particles_cached(np, nsteps);
    let domain = Aabb::cube(np as f64);
    let nparticles = particles.len();

    let mut table = Table::new(&[
        "Output",
        "Cells",
        "Faces/cell",
        "Verts/face",
        "VertRefs/cell",
        "NewVerts/cell",
        "Bytes/particle",
        "FileB/particle",
        "Geom%",
        "Conn%",
    ]);

    let (full, _) = tessellate_serial(&particles, domain, [false; 3], &TessParams::default());
    report("full", &full, nparticles, &mut table);

    // the paper's usual mode: cull the smallest 10% of the volume range
    let vmax = full.cells.iter().map(|c| c.volume).fold(0.0, f64::max);
    let vmin = full
        .cells
        .iter()
        .map(|c| c.volume)
        .fold(f64::INFINITY, f64::min);
    let threshold = vmin + 0.1 * (vmax - vmin);
    let (culled, _) = tessellate_serial(
        &particles,
        domain,
        [false; 3],
        &TessParams::default().with_min_volume(threshold),
    );
    report("culled10%", &culled, nparticles, &mut table);
    table.print();
    println!("# HACC checkpoint baseline: 40 bytes/particle (positions+velocities+id)");
}
