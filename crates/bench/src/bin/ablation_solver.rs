//! Ablation: rank-0 spectral solve vs. distributed slab FFT.
//!
//! DESIGN.md documents the reduce-to-rank-0 Poisson solve as a serial
//! bottleneck standing in for HACC's distributed spectral solver; the
//! `hacc::slabfft` module removes it. This harness measures both per-step
//! critical-path times over rank counts: the Rank0 curve should flatten
//! (Amdahl) while the Slab curve keeps scaling the FFT work.

use bench_harness::{max_over_ranks, secs, Table};
use diy::comm::Runtime;
use diy::timing::ThreadTimer;
use hacc::sim::SolverKind;
use hacc::{SimParams, Simulation};

fn step_time(np: usize, nranks: usize, solver: SolverKind, nsteps: usize) -> f64 {
    let params = SimParams {
        solver,
        ..SimParams::paper_like(np)
    };
    let times = Runtime::run(nranks, |world| {
        let mut sim = Simulation::init(world, params, nranks.max(2));
        // warm-up step excluded from timing
        sim.step(world);
        let mut t = ThreadTimer::new();
        t.start();
        sim.run_steps(world, nsteps);
        t.stop();
        max_over_ranks(world, t.seconds() / nsteps as f64)
    });
    times[0]
}

fn main() {
    let np = std::env::var("BENCH_NP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let nsteps = 5;
    println!("# Ablation: gravity-step time per step, Rank0 vs Slab solver ({np}^3)");
    let mut table = Table::new(&["Ranks", "Rank0(s/step)", "Slab(s/step)", "Slab/Rank0"]);
    for nranks in [1usize, 2, 4, 8] {
        let t0 = step_time(np, nranks, SolverKind::Rank0, nsteps);
        let t1 = step_time(np, nranks, SolverKind::Slab, nsteps);
        table.row(&[
            nranks.to_string(),
            secs(t0),
            secs(t1),
            format!("{:.2}", t1 / t0),
        ]);
    }
    table.print();
    println!("# expectation: Rank0 flattens with ranks (serial FFT); Slab keeps scaling");
}
