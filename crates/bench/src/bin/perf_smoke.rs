//! CI perf smoke: the small Table II workload, threaded + incremental vs
//! the seed-equivalent baseline (1-wide pool, full per-round recompute).
//!
//! Three gates, any failure exits non-zero:
//!
//! 1. **Correctness** — both modes produce a bit-identical merged mesh and
//!    the transport conservation invariant holds.
//! 2. **Relative throughput** — the optimized mode must clear 2× the
//!    baseline's cells/sec on the multi-round adaptive config (the
//!    incremental re-tessellation gain; on multi-core hardware the pool
//!    adds on top of it).
//! 3. **Absolute regression** — cells/sec must stay within 30% of the
//!    committed `crates/bench/perf_baseline.json`. Regenerate that file
//!    with `PERF_BASELINE_WRITE=1` after an intentional perf change.
//!
//! Both measurements land in `BENCH_TESS.json` under the bench output dir.

use std::collections::BTreeMap;
use std::time::Instant;

use bench_harness::{
    evolved_particles_cached, partition_particles, print_report_hists, write_bench_tess_json,
    TessBenchEntry,
};
use diy::comm::Runtime;
use diy::metrics::collect_report;
use geometry::Aabb;
use rayon::set_max_parallelism;
use tess::ghost::is_ghost_tag;
use tess::{tessellate, GhostSpec, TessParams};

const NP: usize = 16;
const NSTEPS: usize = 100;
const NBLOCKS: usize = 8;
const NRANKS: usize = 4;
/// Small initial radius so the adaptive loop needs several growth rounds —
/// the regime the incremental path optimizes.
const GHOST: GhostSpec = GhostSpec::Adaptive {
    initial_factor: 0.5,
    max_rounds: 8,
};
/// Best-of-N wall-clock to damp scheduler noise on a busy CI box.
const REPS: usize = 3;

/// Cell fingerprint: (volume bits, area bits, face neighbors).
type CellBits = (u64, u64, Vec<u64>);

struct ModeRun {
    mesh: BTreeMap<u64, CellBits>,
    stats: tess::TessStats,
    ghost_bytes: u64,
    wall_s: f64,
    report: diy::metrics::RunReport,
}

fn run_mode(particles: &[(u64, geometry::Vec3)], dec: &Decomp, incremental: bool) -> ModeRun {
    let mut best: Option<ModeRun> = None;
    for _ in 0..REPS {
        let rows = Runtime::run(NRANKS, move |world| {
            let asn = diy::decomposition::Assignment::new(NBLOCKS, world.nranks());
            let local = partition_particles(particles, dec, &asn, world.rank());
            let params = TessParams {
                ghost: GHOST,
                incremental_retess: incremental,
                ..TessParams::default()
            };
            let t0 = Instant::now();
            let r = tessellate(world, dec, &asn, &local, &params);
            let wall = world.all_reduce(t0.elapsed().as_secs_f64(), f64::max);
            let stats = tess::driver::global_stats(world, r.stats);
            let report = collect_report(world);
            assert!(report.is_conserved(), "transport conservation violated");
            let (_, ghost_bytes) = report.tag_traffic_where(is_ghost_tag);
            let mesh: Vec<(u64, CellBits)> = r
                .blocks
                .values()
                .flat_map(|b| {
                    b.cells
                        .iter()
                        .map(|c| {
                            (
                                b.site_id_of(c),
                                (
                                    c.volume.to_bits(),
                                    c.area.to_bits(),
                                    c.faces.iter().map(|f| f.neighbor).collect(),
                                ),
                            )
                        })
                        .collect::<Vec<_>>()
                })
                .collect();
            (mesh, stats, ghost_bytes, wall, report)
        });
        let mut mesh = BTreeMap::new();
        for (id, bits) in rows.iter().flat_map(|(m, ..)| m.iter().cloned()) {
            assert!(mesh.insert(id, bits).is_none(), "cell {id} duplicated");
        }
        let (_, stats, ghost_bytes, wall, report) = rows.into_iter().next().unwrap();
        if best.as_ref().is_none_or(|b| wall < b.wall_s) {
            best = Some(ModeRun {
                mesh,
                stats,
                ghost_bytes,
                wall_s: wall,
                report,
            });
        }
    }
    best.unwrap()
}

type Decomp = diy::decomposition::Decomposition;

/// Extract `"key": <number>` from a flat JSON document (the baseline file
/// is written by this binary, so the shape is known).
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = doc.find(&pat)? + pat.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let particles = evolved_particles_cached(NP, NSTEPS);
    let dec = Decomp::regular(Aabb::cube(NP as f64), NBLOCKS, [true; 3]);

    // Seed-equivalent baseline: sequential kernel, full per-round recompute.
    let prev = set_max_parallelism(1);
    let baseline = run_mode(&particles, &dec, false);
    // Optimized path at the CI thread count (TESS_THREADS, default 4).
    let threads = std::env::var("TESS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4usize);
    set_max_parallelism(threads.max(2));
    let optimized = run_mode(&particles, &dec, true);
    set_max_parallelism(prev);

    // Gate 1: bit-identical meshes.
    assert_eq!(
        optimized.mesh, baseline.mesh,
        "optimized mesh differs from the sequential full-recompute baseline"
    );
    assert_eq!(optimized.stats.cells, baseline.stats.cells);
    assert!(
        optimized.stats.cells_reused > 0,
        "incremental mode reused nothing — not exercising the resume path"
    );

    let cps = |r: &ModeRun| r.stats.cells as f64 / r.wall_s;
    let (base_cps, opt_cps) = (cps(&baseline), cps(&optimized));
    let speedup = opt_cps / base_cps;
    println!(
        "perf_smoke: baseline {base_cps:.0} cells/s ({} computed), optimized {opt_cps:.0} cells/s ({} computed, {} reused), speedup {speedup:.2}x over {} rounds",
        baseline.stats.cells_computed,
        optimized.stats.cells_computed,
        optimized.stats.cells_reused,
        optimized.stats.ghost_rounds,
    );

    let entries = [
        TessBenchEntry {
            label: "perf_smoke_baseline_seq_full".into(),
            stats: baseline.stats,
            wall_s: baseline.wall_s,
            ghost_bytes: baseline.ghost_bytes,
            exchange_s: 0.0,
            voronoi_s: 0.0,
            output_s: 0.0,
        },
        TessBenchEntry {
            label: format!("perf_smoke_threads{threads}_incremental"),
            stats: optimized.stats,
            wall_s: optimized.wall_s,
            ghost_bytes: optimized.ghost_bytes,
            exchange_s: 0.0,
            voronoi_s: 0.0,
            output_s: 0.0,
        },
    ];
    for path in write_bench_tess_json(&entries) {
        println!("perf_smoke: wrote {}", path.display());
    }

    // Distribution sparklines from the optimized run's merged report.
    println!("perf_smoke: distributions (optimized run):");
    print_report_hists(&optimized.report);

    // Gate 2: the optimized path must clear 2x the in-run baseline.
    assert!(
        speedup >= 2.0,
        "optimized path is only {speedup:.2}x the sequential full-recompute baseline (need 2x)"
    );

    // Gate 3: absolute regression against the committed baseline.
    let baseline_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("perf_baseline.json");
    if std::env::var("PERF_BASELINE_WRITE").is_ok() {
        let doc = format!(
            "{{\n  \"config\": \"np{NP} steps{NSTEPS} blocks{NBLOCKS} ranks{NRANKS} adaptive0.5\",\n  \"cells_per_sec\": {opt_cps:.1},\n  \"speedup_vs_seq_full\": {speedup:.2}\n}}\n"
        );
        std::fs::write(&baseline_path, doc).expect("write perf_baseline.json");
        println!(
            "perf_smoke: baseline rewritten at {}",
            baseline_path.display()
        );
        return;
    }
    let doc = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", baseline_path.display()));
    let committed = json_number(&doc, "cells_per_sec").expect("cells_per_sec in baseline");
    assert!(
        opt_cps >= 0.7 * committed,
        "cells/sec regressed >30%: {opt_cps:.0} now vs {committed:.0} committed \
         (rerun with PERF_BASELINE_WRITE=1 if intentional)"
    );
    println!("perf_smoke: {opt_cps:.0} cells/s vs committed {committed:.0} — OK");
}
