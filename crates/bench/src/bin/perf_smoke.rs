//! CI perf smoke: the small Table II workload in three configurations —
//!
//!   A. `ring` kernel, sequential, full per-round recompute (seed-equivalent)
//!   B. `ring` kernel, threaded + incremental
//!   C. `stream` kernel, threaded + incremental (the default production path)
//!
//! Gates, any failure exits non-zero:
//!
//! 1. **Correctness** — all three configurations produce a bit-identical
//!    merged mesh and the transport conservation invariant holds.
//! 2. **Kernel work** — the streamed kernel (C) must clip at most half the
//!    candidates per computed cell of the ring scan (B) on the identical
//!    workload, and its support-function prefilter must actually fire.
//!    Candidate counts are deterministic, so this gate is noise-free.
//! 3. **Relative throughput** — C must clear 2× the sequential baseline's
//!    cells/sec and must not fall behind the ring scan (>10% tolerance for
//!    scheduler noise; the candidate gate is the load-bearing one).
//! 4. **Absolute regression** — C's cells/sec must stay within 30% of the
//!    committed `crates/bench/perf_baseline.json`. Regenerate that file
//!    with `PERF_BASELINE_WRITE=1` after an intentional perf change.
//!
//! All three measurements land in `BENCH_TESS.json` under the bench output
//! dir and the repo root.

use std::collections::BTreeMap;
use std::time::Instant;

use bench_harness::{
    corpus::ClusterSpec, evolved_particles_cached, partition_particles, print_report_hists,
    run_decomp_ab, write_bench_tess_json, DecompAbArm, TessBenchEntry,
};
use diy::comm::Runtime;
use diy::decomposition::{Assignment, BalanceStats, DecompScheme};
use diy::metrics::collect_report;
use geometry::Aabb;
use rayon::set_max_parallelism;
use tess::ghost::is_ghost_tag;
use tess::{tessellate, GhostSpec, KernelMode, TessParams};

const NP: usize = 16;
const NSTEPS: usize = 100;
const NBLOCKS: usize = 8;
const NRANKS: usize = 4;
/// Small initial radius so the adaptive loop needs several growth rounds —
/// the regime the incremental path optimizes.
const GHOST: GhostSpec = GhostSpec::Adaptive {
    initial_factor: 0.5,
    max_rounds: 8,
};
/// Best-of-N wall-clock to damp scheduler noise on a busy CI box.
const REPS: usize = 3;

/// Cell fingerprint: (volume bits, area bits, face neighbors).
type CellBits = (u64, u64, Vec<u64>);

struct ModeRun {
    mesh: BTreeMap<u64, CellBits>,
    stats: tess::TessStats,
    ghost_bytes: u64,
    wall_s: f64,
    report: diy::metrics::RunReport,
}

fn run_mode(
    particles: &[(u64, geometry::Vec3)],
    dec: &Decomp,
    kernel: KernelMode,
    incremental: bool,
) -> ModeRun {
    let mut best: Option<ModeRun> = None;
    for _ in 0..REPS {
        let rows = Runtime::run(NRANKS, move |world| {
            let asn = diy::decomposition::Assignment::new(NBLOCKS, world.nranks());
            let local = partition_particles(particles, dec, &asn, world.rank());
            let params = TessParams {
                ghost: GHOST,
                incremental_retess: incremental,
                kernel,
                ..TessParams::default()
            };
            let t0 = Instant::now();
            let r = tessellate(world, dec, &asn, &local, &params);
            let wall = world.all_reduce(t0.elapsed().as_secs_f64(), f64::max);
            // Exercise the output phase (outside the timed window) so the
            // per-phase breakdown in BENCH_TESS.json has a real output_s.
            let out_path = bench_harness::output_dir().join("perf_smoke_mesh.bin");
            tess::io::write_tessellation(world, &out_path, &r.blocks).expect("write mesh");
            let stats = tess::driver::global_stats(world, r.stats);
            let report = collect_report(world);
            assert!(report.is_conserved(), "transport conservation violated");
            let (_, ghost_bytes) = report.tag_traffic_where(is_ghost_tag);
            let mesh: Vec<(u64, CellBits)> = r
                .blocks
                .values()
                .flat_map(|b| {
                    b.cells
                        .iter()
                        .map(|c| {
                            (
                                b.site_id_of(c),
                                (
                                    c.volume.to_bits(),
                                    c.area.to_bits(),
                                    c.faces.iter().map(|f| f.neighbor).collect(),
                                ),
                            )
                        })
                        .collect::<Vec<_>>()
                })
                .collect();
            (mesh, stats, ghost_bytes, wall, report)
        });
        let mut mesh = BTreeMap::new();
        for (id, bits) in rows.iter().flat_map(|(m, ..)| m.iter().cloned()) {
            assert!(mesh.insert(id, bits).is_none(), "cell {id} duplicated");
        }
        let (_, stats, ghost_bytes, wall, report) = rows.into_iter().next().unwrap();
        if best.as_ref().is_none_or(|b| wall < b.wall_s) {
            best = Some(ModeRun {
                mesh,
                stats,
                ghost_bytes,
                wall_s: wall,
                report,
            });
        }
    }
    best.unwrap()
}

type Decomp = diy::decomposition::Decomposition;

const AB_RANKS: usize = 8;

/// Extract `"key": <number>` from a flat JSON document (the baseline file
/// is written by this binary, so the shape is known).
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = doc.find(&pat)? + pat.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn cand_per_cell(r: &ModeRun) -> f64 {
    r.stats.candidates_tested as f64 / r.stats.cells_computed.max(1) as f64
}

fn main() {
    let particles = evolved_particles_cached(NP, NSTEPS);
    let dec = Decomp::regular(Aabb::cube(NP as f64), NBLOCKS, [true; 3]);
    let main_imb = {
        let positions: Vec<geometry::Vec3> = particles.iter().map(|&(_, p)| p).collect();
        BalanceStats::measure(&dec, &Assignment::new(NBLOCKS, NRANKS), &positions).rank_imbalance()
    };

    // A: seed-equivalent baseline — ring scan, 1-wide pool, full recompute.
    let prev = set_max_parallelism(1);
    let baseline = run_mode(&particles, &dec, KernelMode::Ring, false);
    // B and C: the optimized path at the CI thread count (TESS_THREADS,
    // default 4), ring scan vs streamed kernel on the identical workload.
    let threads = std::env::var("TESS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4usize);
    set_max_parallelism(threads.max(2));
    let ring = run_mode(&particles, &dec, KernelMode::Ring, true);
    let stream = run_mode(&particles, &dec, KernelMode::Stream, true);
    set_max_parallelism(prev);

    // Gate 1: bit-identical meshes across pool width, incremental reuse,
    // and — the kernel-equivalence invariant — the candidate kernel itself.
    assert_eq!(
        ring.mesh, baseline.mesh,
        "ring incremental mesh differs from the sequential full-recompute baseline"
    );
    assert_eq!(
        stream.mesh, baseline.mesh,
        "streamed-kernel mesh differs from the ring-scan baseline"
    );
    assert_eq!(stream.stats.cells, baseline.stats.cells);
    assert!(
        stream.stats.cells_reused > 0,
        "incremental mode reused nothing — not exercising the resume path"
    );

    // Gate 2: kernel work. Deterministic counters, no timing noise.
    let (ring_cand, stream_cand) = (cand_per_cell(&ring), cand_per_cell(&stream));
    assert_eq!(ring.stats.cells_computed, stream.stats.cells_computed);
    assert!(
        stream_cand * 2.0 <= ring_cand,
        "stream kernel clipped {stream_cand:.1} candidates/cell vs ring {ring_cand:.1} — need at least 2x fewer"
    );
    assert!(
        stream.stats.prefilter_skipped > 0,
        "stream prefilter never fired"
    );

    let cps = |r: &ModeRun| r.stats.cells as f64 / r.wall_s;
    let (base_cps, ring_cps, stream_cps) = (cps(&baseline), cps(&ring), cps(&stream));
    let speedup = stream_cps / base_cps;
    println!(
        "perf_smoke: baseline {base_cps:.0} cells/s ({} computed), ring {ring_cps:.0} cells/s, stream {stream_cps:.0} cells/s ({} computed, {} reused), speedup {speedup:.2}x over {} rounds",
        baseline.stats.cells_computed,
        stream.stats.cells_computed,
        stream.stats.cells_reused,
        stream.stats.ghost_rounds,
    );
    println!(
        "perf_smoke: candidates/cell ring {ring_cand:.1} vs stream {stream_cand:.1} ({:.2}x fewer), {} prefilter-skipped",
        ring_cand / stream_cand,
        stream.stats.prefilter_skipped,
    );

    // Per-phase thread-CPU seconds (max across ranks) from the RunReport
    // spans; the gate below keeps them from silently regressing to 0.0.
    let entry = |label: &str, kernel: &str, r: &ModeRun| {
        let e = TessBenchEntry {
            label: label.into(),
            kernel: kernel.into(),
            stats: r.stats,
            wall_s: r.wall_s,
            ghost_bytes: r.ghost_bytes,
            exchange_s: r.report.cpu_max(tess::driver::PHASE_GHOST_EXCHANGE),
            voronoi_s: r.report.cpu_max(tess::driver::PHASE_VORONOI),
            output_s: r.report.cpu_max(tess::driver::PHASE_OUTPUT),
            decomp: "regular".into(),
            imbalance: main_imb,
        };
        assert!(
            e.exchange_s > 0.0 && e.voronoi_s > 0.0 && e.output_s > 0.0,
            "{label}: per-phase seconds must be non-zero (exchange {:.6}, voronoi {:.6}, output {:.6})",
            e.exchange_s,
            e.voronoi_s,
            e.output_s
        );
        e
    };
    let mut entries = vec![
        entry("perf_smoke_baseline_seq_full", "ring", &baseline),
        entry(
            &format!("perf_smoke_ring_threads{threads}_incremental"),
            "ring",
            &ring,
        ),
        entry(
            &format!("perf_smoke_stream_threads{threads}_incremental"),
            "stream",
            &stream,
        ),
    ];

    // ---- Clustered-corpus decomposition A/B: the headline k-d gate ----
    // A corner-heavy halo corpus makes the regular grid pathological (one
    // octant owns most of the mass, so the slowest rank sets the wall
    // clock) while the particle-balanced k-d scheme spreads the same work
    // evenly. Ranks are threads sharing cores here, so the A/B gates on
    // the modeled parallel wall clock (see AbRun::modeled_s) with the
    // cell-kernel pool pinned to one thread so per-rank thread-CPU
    // attribution is exact. Both schemes must publish the bit-identical
    // merged mesh — decomposition is a perf axis AND a correctness oracle.
    let spec = ClusterSpec::corner_heavy(16.0, 24, 40, 42);
    let corpus = spec.generate();
    let prev = set_max_parallelism(1);
    let reg = run_decomp_ab(&corpus, spec.side, AB_RANKS, DecompScheme::Regular, REPS);
    let kd = run_decomp_ab(
        &corpus,
        spec.side,
        AB_RANKS,
        DecompScheme::Kd {
            sample: DecompScheme::DEFAULT_KD_SAMPLE,
        },
        REPS,
    );
    set_max_parallelism(prev);
    println!(
        "perf_smoke: clustered A/B cells regular {} (incomplete {}, rounds {}, imbalance {:.2}), kd {} (incomplete {}, rounds {}, imbalance {:.2})",
        reg.stats.cells,
        reg.stats.incomplete,
        reg.stats.ghost_rounds,
        reg.imbalance,
        kd.stats.cells,
        kd.stats.incomplete,
        kd.stats.ghost_rounds,
        kd.imbalance,
    );
    assert_eq!(reg.stats.incomplete, 0, "regular arm dropped cells");
    assert_eq!(kd.stats.incomplete, 0, "kd arm dropped cells");
    assert_eq!(
        kd.mesh, reg.mesh,
        "clustered mesh differs between decomposition schemes"
    );
    let (reg_cps, kd_cps) = (reg.cells_per_sec(), kd.cells_per_sec());
    let kd_speedup = kd_cps / reg_cps;
    println!(
        "perf_smoke: clustered A/B at {AB_RANKS} ranks ({} particles): regular {:.0} cells/s (imbalance {:.2}), kd {:.0} cells/s (imbalance {:.2}), kd speedup {kd_speedup:.2}x (modeled parallel wall)",
        corpus.len(),
        reg_cps,
        reg.imbalance,
        kd_cps,
        kd.imbalance,
    );
    assert!(
        reg.imbalance >= 3.0,
        "clustered corpus is not adversarial enough: regular imbalance {:.2} (need >=3x)",
        reg.imbalance
    );
    assert!(
        kd.imbalance <= 1.25,
        "kd decomposition left imbalance {:.2} (need <=1.25x)",
        kd.imbalance
    );
    assert!(
        kd_speedup >= 1.4,
        "kd is only {kd_speedup:.2}x regular on the clustered corpus (need 1.4x)"
    );
    let ab_entry = |label: &str, r: &DecompAbArm, decomp: &str| TessBenchEntry {
        label: label.into(),
        kernel: "stream".into(),
        stats: r.stats,
        wall_s: r.modeled_s,
        ghost_bytes: r.ghost_bytes,
        exchange_s: r.exchange_s,
        voronoi_s: r.voronoi_s,
        output_s: 0.0,
        decomp: decomp.into(),
        imbalance: r.imbalance,
    };
    entries.push(ab_entry(
        &format!("perf_smoke_clustered_r{AB_RANKS}_regular"),
        &reg,
        "regular",
    ));
    entries.push(ab_entry(
        &format!("perf_smoke_clustered_r{AB_RANKS}_kd"),
        &kd,
        "kd",
    ));

    for path in write_bench_tess_json(&entries) {
        println!("perf_smoke: wrote {}", path.display());
    }

    // Distribution sparklines from the streamed run's merged report.
    println!("perf_smoke: distributions (stream run):");
    print_report_hists(&stream.report);

    // Gate 3: relative throughput.
    assert!(
        speedup >= 2.0,
        "stream path is only {speedup:.2}x the sequential full-recompute baseline (need 2x)"
    );
    assert!(
        stream_cps >= 0.9 * ring_cps,
        "stream kernel fell behind the ring scan: {stream_cps:.0} vs {ring_cps:.0} cells/s"
    );

    // Gate 4: absolute regression against the committed baseline.
    let baseline_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("perf_baseline.json");
    if std::env::var("PERF_BASELINE_WRITE").is_ok() {
        let doc = format!(
            "{{\n  \"config\": \"np{NP} steps{NSTEPS} blocks{NBLOCKS} ranks{NRANKS} adaptive0.5 stream\",\n  \"cells_per_sec\": {stream_cps:.1},\n  \"candidates_per_cell\": {stream_cand:.1},\n  \"speedup_vs_seq_full\": {speedup:.2}\n}}\n"
        );
        std::fs::write(&baseline_path, doc).expect("write perf_baseline.json");
        println!(
            "perf_smoke: baseline rewritten at {}",
            baseline_path.display()
        );
        return;
    }
    let doc = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", baseline_path.display()));
    let committed = json_number(&doc, "cells_per_sec").expect("cells_per_sec in baseline");
    assert!(
        stream_cps >= 0.7 * committed,
        "cells/sec regressed >30%: {stream_cps:.0} now vs {committed:.0} committed \
         (rerun with PERF_BASELINE_WRITE=1 if intentional)"
    );
    println!("perf_smoke: {stream_cps:.0} cells/s vs committed {committed:.0} — OK");

    // Ledger row for bench_trend's cross-run regression gate.
    let row = bench_harness::history::HistoryRow::now(
        "perf_smoke",
        &format!("np{NP}_steps{NSTEPS}_r{NRANKS}_stream"),
        vec![
            ("stream_cells_per_sec".into(), stream_cps),
            ("candidates_per_cell".into(), stream_cand),
            ("speedup_vs_seq_full".into(), speedup),
        ],
    );
    let ledger = bench_harness::history::history_path();
    bench_harness::history::append_history_row(&ledger, &row)
        .unwrap_or_else(|e| panic!("perf_smoke: {e}"));
    println!("perf_smoke: history row appended to {}", ledger.display());
}
