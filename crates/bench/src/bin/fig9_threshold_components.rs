//! Figure 9 — progressive volume thresholding reveals voids.
//!
//! Paper setup: the 32³ test box; culling cells below minimum-volume
//! thresholds of 0.0, 0.5, 0.75, and 1.0 (Mpc/h)³ reveals a small number
//! (≈7–10) of distinct connected components — the voids.
//!
//! Expected shape: at 0 the tessellation is one connected blob; as the
//! threshold rises the surviving large cells split into a handful of
//! distinct components whose count first rises then falls as voids vanish.

use bench_harness::{evolved_particles_cached, output_dir, Table};
use geometry::Aabb;
use postprocess::render::{render_to_file, RenderOptions};
use postprocess::{label_components_serial, minkowski_functionals};
use std::collections::HashSet;
use tess::{tessellate_serial, TessParams};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let np = env_usize("BENCH_NP", 32);
    let nsteps = env_usize("BENCH_STEPS", 100);
    println!("# Figure 9: threshold → connected components ({np}^3, t = {nsteps})");

    let particles = evolved_particles_cached(np, nsteps);
    let domain = Aabb::cube(np as f64);
    let (block, _) = tessellate_serial(&particles, domain, [false; 3], &TessParams::default());
    let blocks = vec![block];

    let mut table = Table::new(&[
        "MinVolume",
        "CellsKept",
        "Components",
        "Components>=2cells",
        "LargestCells",
        "LargestVolume",
        "LargestGenus",
    ]);
    for threshold in [0.0, 0.5, 0.75, 1.0] {
        let comps = label_components_serial(&blocks, threshold);
        let kept: u64 = comps.summaries.values().map(|s| s.cells).sum();
        let multi = comps.summaries.values().filter(|s| s.cells >= 2).count();
        let (largest_cells, largest_vol, genus) = comps
            .by_volume()
            .first()
            .map(|(label, s)| {
                let sites: HashSet<u64> = comps
                    .labels
                    .iter()
                    .filter(|(_, &l)| l == *label)
                    .map(|(&s, _)| s)
                    .collect();
                let m = minkowski_functionals(&blocks, &sites, &domain);
                (s.cells, s.volume, m.genus)
            })
            .unwrap_or((0, 0.0, 0.0));
        table.row(&[
            format!("{threshold:.2}"),
            kept.to_string(),
            comps.num_components().to_string(),
            multi.to_string(),
            largest_cells.to_string(),
            format!("{largest_vol:.1}"),
            format!("{genus:.1}"),
        ]);

        let svg = output_dir().join(format!("fig9_threshold_{threshold:.2}.svg"));
        render_to_file(
            &blocks,
            &RenderOptions {
                vmin: threshold,
                zmin: 0.25 * np as f64,
                zmax: 0.5 * np as f64,
                ..RenderOptions::default()
            },
            &svg,
        )
        .expect("render");
        println!("# threshold {threshold:.2}: wrote {}", svg.display());
    }
    table.print();
    println!("# paper: thresholds 0.5–1.0 reveal ~7-10 distinct voids");
}
