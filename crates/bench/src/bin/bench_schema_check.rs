//! Schema gate for `BENCH_TESS.json` (the machine-readable bench
//! artifact dashboards and CI diff against). Validates the generated file
//! at the repo root — or the path given as the first argument — against
//! the schema documented in DESIGN.md:
//!
//! * top level: an object with `entries` (required array) and optional
//!   `service` (object) / `memory` (array) / `telemetry` (object)
//!   sections, nothing else;
//! * every `entries` element carries the full measurement key set
//!   (label/kernel/decomp/imbalance through the per-phase seconds);
//! * `service` carries the resident-service counters and latencies;
//! * every `memory` element carries the streaming-vs-accumulate memory
//!   counters with `mode` in {stream, accumulate};
//! * `telemetry` carries the observability gate's numbers (`bench_obs`):
//!   A/B overhead, exposition series count, rolling-quantile bucket error.
//!
//! Any violation prints the offending path and exits non-zero, so a
//! harness emitting a malformed or incomplete document fails CI instead of
//! silently shipping a truncated artifact.

use bench_harness::json::{parse, Value};

/// Accumulates violations instead of failing fast, so one run reports
/// every problem in the file.
struct Checker {
    errors: Vec<String>,
}

impl Checker {
    fn err(&mut self, at: &str, msg: String) {
        self.errors.push(format!("{at}: {msg}"));
    }

    /// Require `key` on `obj`, returning it for further checks.
    fn want<'v>(&mut self, at: &str, obj: &'v Value, key: &str) -> Option<&'v Value> {
        let v = obj.get(key);
        if v.is_none() {
            self.err(at, format!("missing required key \"{key}\""));
        }
        v
    }

    fn want_str(&mut self, at: &str, obj: &Value, key: &str, allowed: Option<&[&str]>) {
        if let Some(v) = self.want(at, obj, key) {
            match v.as_str() {
                None => self.err(at, format!("\"{key}\" must be a string")),
                Some(s) => {
                    if let Some(allowed) = allowed {
                        if !allowed.contains(&s) {
                            self.err(
                                at,
                                format!("\"{key}\" is \"{s}\", expected one of {allowed:?}"),
                            );
                        }
                    }
                }
            }
        }
    }

    /// A finite, non-negative number (every schema field is a count,
    /// byte total, ratio, or seconds — all >= 0).
    fn want_num(&mut self, at: &str, obj: &Value, key: &str) {
        if let Some(v) = self.want(at, obj, key) {
            match v.as_num() {
                None => self.err(at, format!("\"{key}\" must be a number")),
                Some(n) if !n.is_finite() || n < 0.0 => {
                    self.err(at, format!("\"{key}\" is {n}, expected finite and >= 0"))
                }
                Some(_) => {}
            }
        }
    }

    fn no_extras(&mut self, at: &str, obj: &Value, allowed: &[&str]) {
        for k in obj.keys() {
            if !allowed.contains(&k) {
                self.err(at, format!("unknown key \"{k}\""));
            }
        }
    }
}

const ENTRY_NUMS: &[&str] = &[
    "imbalance",
    "cells",
    "wall_s",
    "cells_per_sec",
    "candidates_per_cell",
    "prefilter_skipped",
    "cells_computed",
    "cells_reused",
    "reuse_fraction",
    "ghost_rounds",
    "ghost_bytes",
    "exchange_s",
    "voronoi_s",
    "output_s",
];

const SERVICE_NUMS: &[&str] = &[
    "imbalance",
    "requests",
    "wall_s",
    "requests_per_sec",
    "p50_ms",
    "p99_ms",
    "batches",
    "mean_batch",
    "coalesced",
    "updates",
    "epochs",
];

const TELEMETRY_NUMS: &[&str] = &[
    "nranks",
    "particles",
    "cells",
    "wall_off_s",
    "wall_on_s",
    "overhead_pct",
    "exposition_series",
    "quantile_bucket_err",
];

const MEMORY_NUMS: &[&str] = &[
    "nranks",
    "particles",
    "cells",
    "peak_live_bytes",
    "peak_rss_kb",
    "payload_bytes",
    "file_bytes",
    "bytes_per_particle",
    "wall_s",
];

fn check(doc: &Value) -> Vec<String> {
    let mut c = Checker { errors: Vec::new() };
    if !matches!(doc, Value::Obj(_)) {
        return vec!["top level: must be an object".into()];
    }
    c.no_extras(
        "top level",
        doc,
        &["entries", "service", "memory", "telemetry"],
    );

    match c.want("top level", doc, "entries").and_then(Value::as_arr) {
        None => {
            if doc.get("entries").is_some() {
                c.err("top level", "\"entries\" must be an array".into());
            }
        }
        Some(entries) => {
            for (i, e) in entries.iter().enumerate() {
                let label = e
                    .get("label")
                    .and_then(Value::as_str)
                    .unwrap_or("<unlabeled>");
                let at = format!("entries[{i}] ({label})");
                c.want_str(&at, e, "label", None);
                c.want_str(&at, e, "kernel", Some(&["ring", "stream"]));
                c.want_str(&at, e, "decomp", Some(&["regular", "kd"]));
                for k in ENTRY_NUMS {
                    c.want_num(&at, e, k);
                }
                let allowed: Vec<&str> = ["label", "kernel", "decomp"]
                    .into_iter()
                    .chain(ENTRY_NUMS.iter().copied())
                    .collect();
                c.no_extras(&at, e, &allowed);
            }
        }
    }

    if let Some(s) = doc.get("service") {
        let at = "service";
        if !matches!(s, Value::Obj(_)) {
            c.err(at, "must be an object".into());
        } else {
            c.want_str(at, s, "label", None);
            c.want_str(at, s, "decomp", Some(&["regular", "kd"]));
            for k in SERVICE_NUMS {
                c.want_num(at, s, k);
            }
            let allowed: Vec<&str> = ["label", "decomp"]
                .into_iter()
                .chain(SERVICE_NUMS.iter().copied())
                .collect();
            c.no_extras(at, s, &allowed);
        }
    }

    if let Some(m) = doc.get("memory") {
        match m.as_arr() {
            None => c.err("memory", "must be an array".into()),
            Some(items) => {
                for (i, e) in items.iter().enumerate() {
                    let label = e
                        .get("label")
                        .and_then(Value::as_str)
                        .unwrap_or("<unlabeled>");
                    let at = format!("memory[{i}] ({label})");
                    c.want_str(&at, e, "label", None);
                    c.want_str(&at, e, "mode", Some(&["stream", "accumulate"]));
                    for k in MEMORY_NUMS {
                        c.want_num(&at, e, k);
                    }
                    let allowed: Vec<&str> = ["label", "mode"]
                        .into_iter()
                        .chain(MEMORY_NUMS.iter().copied())
                        .collect();
                    c.no_extras(&at, e, &allowed);
                }
            }
        }
    }
    if let Some(t) = doc.get("telemetry") {
        let at = "telemetry";
        if !matches!(t, Value::Obj(_)) {
            c.err(at, "must be an object".into());
        } else {
            c.want_str(at, t, "source", Some(&["bench_obs"]));
            for k in TELEMETRY_NUMS {
                c.want_num(at, t, k);
            }
            let allowed: Vec<&str> = ["source"]
                .into_iter()
                .chain(TELEMETRY_NUMS.iter().copied())
                .collect();
            c.no_extras(at, t, &allowed);
        }
    }
    c.errors
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| bench_harness::repo_root().join("BENCH_TESS.json"));
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_schema_check: cannot read {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    let doc = match parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!(
                "bench_schema_check: {} is not valid JSON: {e}",
                path.display()
            );
            std::process::exit(1);
        }
    };
    let errors = check(&doc);
    if !errors.is_empty() {
        eprintln!(
            "bench_schema_check: {} violates the BENCH_TESS schema:",
            path.display()
        );
        for e in &errors {
            eprintln!("  {e}");
        }
        std::process::exit(1);
    }
    let n_entries = doc
        .get("entries")
        .and_then(Value::as_arr)
        .map_or(0, <[Value]>::len);
    let n_memory = doc
        .get("memory")
        .and_then(Value::as_arr)
        .map_or(0, <[Value]>::len);
    println!(
        "bench_schema_check: {} ok ({n_entries} entries, service {}, {n_memory} memory entries, \
         telemetry {})",
        path.display(),
        if doc.get("service").is_some() {
            "present"
        } else {
            "absent"
        },
        if doc.get("telemetry").is_some() {
            "present"
        } else {
            "absent"
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(text: &str) -> Vec<String> {
        check(&parse(text).unwrap())
    }

    #[test]
    fn accepts_the_composed_document_shape() {
        let mem = bench_harness::memory_bench_json(&[bench_harness::MemoryBenchEntry {
            label: "m".into(),
            mode: "stream".into(),
            nranks: 8,
            particles: 100,
            cells: 90,
            peak_live_bytes: 1,
            peak_rss_kb: 2,
            payload_bytes: 3,
            file_bytes: 4,
            wall_s: 0.1,
        }]);
        let entries = bench_harness::tess_bench_entries_json(&[bench_harness::TessBenchEntry {
            label: "e".into(),
            kernel: "stream".into(),
            stats: Default::default(),
            wall_s: 1.0,
            ghost_bytes: 0,
            exchange_s: 0.1,
            voronoi_s: 0.2,
            output_s: 0.3,
            decomp: "kd".into(),
            imbalance: 1.0,
        }]);
        let tele = concat!(
            "{\"source\": \"bench_obs\", \"nranks\": 4, \"particles\": 4096, ",
            "\"cells\": 4096, \"wall_off_s\": 0.5, \"wall_on_s\": 0.51, ",
            "\"overhead_pct\": 2.0, \"exposition_series\": 40, ",
            "\"quantile_bucket_err\": 0}"
        );
        let text = bench_harness::compose_bench_doc(Some(&entries), None, Some(&mem), Some(tele));
        assert_eq!(doc(&text), Vec::<String>::new());
    }

    #[test]
    fn flags_schema_violations() {
        // missing required entry keys
        let errs = doc(r#"{"entries": [{"label": "x"}]}"#);
        assert!(
            errs.iter()
                .any(|e| e.contains("missing required key \"kernel\"")),
            "{errs:?}"
        );
        // bad enum
        let errs = doc(r#"{"entries": [], "memory": [{"label": "m", "mode": "both"}]}"#);
        assert!(
            errs.iter().any(|e| e.contains("expected one of")),
            "{errs:?}"
        );
        // unknown keys, wrong types, negative numbers
        let errs = doc(r#"{"entries": [], "bogus": 1}"#);
        assert!(
            errs.iter().any(|e| e.contains("unknown key \"bogus\"")),
            "{errs:?}"
        );
        let errs = doc(r#"{"entries": "nope"}"#);
        assert!(
            errs.iter().any(|e| e.contains("must be an array")),
            "{errs:?}"
        );
        let errs =
            doc(r#"{"entries": [], "service": {"label": "s", "decomp": "kd", "imbalance": -1}}"#);
        assert!(
            errs.iter().any(|e| e.contains("expected finite and >= 0")),
            "{errs:?}"
        );
        // telemetry: wrong shape, bad source, missing/unknown keys
        let errs = doc(r#"{"entries": [], "telemetry": []}"#);
        assert!(
            errs.iter().any(|e| e.contains("must be an object")),
            "{errs:?}"
        );
        let errs = doc(r#"{"entries": [], "telemetry": {"source": "elsewhere"}}"#);
        assert!(
            errs.iter().any(|e| e.contains("expected one of")),
            "{errs:?}"
        );
        assert!(
            errs.iter()
                .any(|e| e.contains("missing required key \"overhead_pct\"")),
            "{errs:?}"
        );
        let errs = doc(r#"{"entries": [], "telemetry": {"source": "bench_obs", "extra": 1}}"#);
        assert!(
            errs.iter().any(|e| e.contains("unknown key \"extra\"")),
            "{errs:?}"
        );
        // entries section entirely absent
        let errs = doc("{}");
        assert!(
            errs.iter()
                .any(|e| e.contains("missing required key \"entries\"")),
            "{errs:?}"
        );
    }
}
