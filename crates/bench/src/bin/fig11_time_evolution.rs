//! Figure 11 — time-varying void evolution.
//!
//! Paper setup: 32³ particles, tessellation output every 10 steps of 100;
//! the figure shows the cells and the cell density-contrast histograms at
//! t = 11, 21, 31 with skewness 1.6 → 2 → 4.5 and kurtosis 4.1 → 5.5 → 23,
//! and the range of δ expanding over time.
//!
//! Expected shape: near-symmetric distribution at early times, then
//! growing skewness/kurtosis as perturbation theory breaks down; small
//! cells multiply while large cells grow.

use bench_harness::{evolved_particles_cached, output_dir, Table};
use geometry::Aabb;
use postprocess::render::{render_to_file, RenderOptions};
use postprocess::{density_contrast, Histogram};
use tess::{tessellate_serial, TessParams};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let np = env_usize("BENCH_NP", 32);
    println!("# Figure 11: void evolution over time ({np}^3 particles)");
    let domain = Aabb::cube(np as f64);
    let mean_density = 1.0; // np³ particles in an np³ box

    let mut table = Table::new(&[
        "Step",
        "Cells",
        "DeltaMin",
        "DeltaMax",
        "Skewness",
        "Kurtosis",
        "PaperSkew",
        "PaperKurt",
    ]);
    let paper = [(11usize, 1.6, 4.1), (21, 2.0, 5.5), (31, 4.5, 23.0)];
    for &(step, pskew, pkurt) in &paper {
        let particles = evolved_particles_cached(np, step);
        let (block, _) = tessellate_serial(&particles, domain, [false; 3], &TessParams::default());
        let blocks = vec![block];
        let field = density_contrast(&blocks, mean_density);
        let deltas = field.contrasts();
        let h = Histogram::auto_range(&deltas, 100);
        let lo = deltas.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = deltas.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        table.row(&[
            step.to_string(),
            deltas.len().to_string(),
            format!("{lo:.2}"),
            format!("{hi:.2}"),
            format!("{:.2}", h.skewness()),
            format!("{:.1}", h.kurtosis()),
            format!("{pskew}"),
            format!("{pkurt}"),
        ]);

        let svg = output_dir().join(format!("fig11_step{step}.svg"));
        let slab = RenderOptions {
            zmin: 0.25 * np as f64,
            zmax: 0.5 * np as f64,
            ..RenderOptions::default()
        };
        render_to_file(&blocks, &slab, &svg).expect("render");
        let csv: String = h.rows().iter().map(|(c, n)| format!("{c},{n}\n")).collect();
        std::fs::write(
            output_dir().join(format!("fig11_delta_hist_step{step}.csv")),
            csv,
        )
        .expect("csv");
    }
    table.print();
    println!("# expectation: range of δ expands; skewness and kurtosis increase with time");
}
