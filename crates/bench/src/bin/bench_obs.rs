//! Observability gate (`obs` CI stage): proves the telemetry layer is
//! honest and free.
//!
//! 1. **Neutrality** — tessellating the perf-smoke workload at 4 ranks
//!    with telemetry mirrors enabled produces a mesh bit-identical to the
//!    telemetry-off run. Instrumentation must never perturb results.
//! 2. **Overhead** — the telemetry-on wall clock (best of `REPS`) stays
//!    within 5% of telemetry-off, plus an absolute noise floor for short
//!    runs on loaded CI boxes.
//! 3. **Exposition round-trip** — one registry snapshot rendered as
//!    Prometheus text re-parses, and every counter/gauge survives with
//!    its exact value; the JSON rendering of the same snapshot parses and
//!    agrees on the series count.
//! 4. **Rolling quantiles** — a windowed histogram's rolling p99 lands
//!    within one log2 bucket of the exact p99 of the samples currently in
//!    its window, both while filling and after rotating past an old
//!    distribution.
//!
//! The measurements land in the `telemetry` section of `BENCH_TESS.json`
//! (preserving the other sections), which `bench_schema_check` validates.

use std::collections::BTreeMap;
use std::time::Instant;

use bench_harness::{
    evolved_particles_cached, mesh_bits, partition_particles, write_bench_telemetry_json, CellBits,
};
use diy::comm::Runtime;
use diy::decomposition::{Assignment, DecompScheme};
use diy::telemetry::{
    self, parse_exposition, prom_name, render_json_from, render_prometheus_from, MetricValue,
    WindowedHistogram,
};
use geometry::{Aabb, Vec3};
use tess::{tessellate, GhostSpec, TessParams};

const NP: usize = 16;
const NSTEPS: usize = 100;
const NBLOCKS: usize = 8;
const NRANKS: usize = 4;
/// Best-of-N walls to damp scheduler noise.
const REPS: usize = 3;
/// Relative overhead bound plus an absolute floor (seconds): a ~1s run on
/// a busy CI box jitters more than 5% all by itself.
const OVERHEAD_FRAC: f64 = 0.05;
const OVERHEAD_FLOOR_S: f64 = 0.10;

fn params() -> TessParams {
    TessParams {
        ghost: GhostSpec::Adaptive {
            initial_factor: 0.5,
            max_rounds: 8,
        },
        ..TessParams::default()
    }
}

/// Tessellate the workload once at `NRANKS` ranks; returns (mesh, cells,
/// wall seconds).
fn run_once(particles: &[(u64, Vec3)]) -> (BTreeMap<u64, CellBits>, u64, f64) {
    let domain = Aabb::cube(NP as f64);
    let t0 = Instant::now();
    let rows = Runtime::run(NRANKS, move |world| {
        let positions: Vec<Vec3> = particles.iter().map(|&(_, p)| p).collect();
        let dec = DecompScheme::Regular.build(domain, NBLOCKS, [true; 3], &positions);
        let asn = Assignment::new(NBLOCKS, world.nranks());
        let local = partition_particles(particles, &dec, &asn, world.rank());
        let r = tessellate(world, &dec, &asn, &local, &params());
        (r.blocks, r.stats.cells)
    });
    let wall = t0.elapsed().as_secs_f64();
    let mut blocks = BTreeMap::new();
    let mut cells = 0;
    for (b, c) in rows {
        blocks.extend(b);
        cells += c;
    }
    (mesh_bits(&blocks), cells, wall)
}

/// Best-of-`REPS` wall for one telemetry setting; the mesh must be
/// identical across reps (it is deterministic), so return the first.
fn run_best(particles: &[(u64, Vec3)], enabled: bool) -> (BTreeMap<u64, CellBits>, u64, f64) {
    let prev = telemetry::set_enabled(enabled);
    let (mesh, cells, mut best) = run_once(particles);
    for _ in 1..REPS {
        let (m, _, w) = run_once(particles);
        assert_eq!(m, mesh, "tessellation is not deterministic across reps");
        best = best.min(w);
    }
    telemetry::set_enabled(prev);
    (mesh, cells, best)
}

/// Deterministic splitmix64 for reproducible histogram samples.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// The log2 bucket a positive value falls in (matches `LogHistogram`'s
/// binning: bucket e covers [2^e, 2^(e+1))).
fn bucket_of(v: f64) -> i32 {
    v.log2().floor() as i32
}

/// Exact quantile by sorting (the oracle the histogram approximates).
fn exact_quantile(samples: &[f64], q: f64) -> f64 {
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[((v.len() - 1) as f64 * q) as usize]
}

/// Gate 4: rolling p99 within one log2 bucket of the exact p99 over the
/// samples currently windowed. Returns the worst bucket error seen.
fn check_rolling_quantiles() -> i32 {
    let mut worst = 0i32;
    let mut check = |hist: &WindowedHistogram, live: &[f64], what: &str| {
        let rolling = hist.rolling();
        for q in [0.5, 0.99] {
            let approx = rolling.quantile(q);
            let exact = exact_quantile(live, q);
            let err = (bucket_of(approx) - bucket_of(exact)).abs();
            worst = worst.max(err);
            assert!(
                err <= 1,
                "{what}: rolling q{q} = {approx:.1} is {err} log2 buckets from exact {exact:.1}"
            );
        }
    };

    // Filling phase: window 8, four epochs of a wide log-uniform spread —
    // everything observed is still in the window.
    let mut hist = WindowedHistogram::new(8);
    let mut live: Vec<f64> = Vec::new();
    for epoch in 0..4u64 {
        for i in 0..2000u64 {
            // log-uniform over ~[1, 2^20]
            let v = (2.0f64).powf((mix(epoch * 10_000 + i) % 2000) as f64 / 100.0) + 1.0;
            hist.observe(v);
            live.push(v);
        }
        hist.advance();
    }
    check(&hist, &live, "filling");

    // Rotation phase: push 8 epochs of a much faster distribution; the
    // slow samples above must age out of the rolling view entirely.
    live.clear();
    for epoch in 0..8u64 {
        for i in 0..2000u64 {
            let v = 8.0 + (mix(0xF00D + epoch * 10_000 + i) % 64) as f64;
            hist.observe(v);
            live.push(v);
        }
        hist.advance();
    }
    check(&hist, &live, "rotated");
    // The cumulative total still remembers everything.
    assert_eq!(hist.total().n(), 4 * 2000 + 8 * 2000);
    worst
}

/// Gate 3: one snapshot, two renderers, one parser. Returns the series
/// count of the exposition.
fn check_exposition_roundtrip() -> usize {
    // Make sure some instruments of every kind exist, whatever ran before.
    telemetry::counter("obs.check_runs", &[("gate", "roundtrip")]).inc();
    telemetry::gauge("obs.check_gauge", &[]).set(2.5);
    let h = telemetry::histogram("obs.check_lat_ns", &[("kind", "point")]);
    for i in 1..=100u64 {
        h.observe_u64(i * 1000);
    }

    let samples = telemetry::snapshot();
    let expo = render_prometheus_from(&samples);
    let parsed = parse_exposition(&expo).expect("exposition must re-parse");

    // Every counter/gauge survives the round-trip with its exact value.
    let mut scalar = 0usize;
    for s in &samples {
        let name = prom_name(&s.name);
        let want = match &s.value {
            MetricValue::Counter(v) => *v as f64,
            MetricValue::Gauge(v) => *v,
            MetricValue::Hist(_) => continue,
        };
        let hit = parsed.iter().find(|p| {
            p.name == name
                && p.labels
                    == s.labels
                        .iter()
                        .map(|(k, v)| (prom_name(k), v.clone()))
                        .collect::<Vec<_>>()
        });
        let hit = hit.unwrap_or_else(|| panic!("series {name} lost in the exposition"));
        assert_eq!(hit.value, want, "series {name} value drifted");
        scalar += 1;
    }
    assert!(scalar > 0, "snapshot had no counters/gauges");
    // Histograms surface as quantile rows plus _sum/_count.
    assert!(
        parsed.iter().any(|p| p.name == "obs_check_lat_ns"
            && p.labels.contains(&("quantile".into(), "0.99".into()))),
        "histogram quantile rows missing"
    );

    // The JSON rendering of the SAME snapshot parses and agrees on count.
    let doc = bench_harness::json::parse(&render_json_from(&samples)).expect("telemetry JSON");
    let metrics = doc
        .get("metrics")
        .and_then(bench_harness::json::Value::as_arr)
        .expect("metrics array");
    assert_eq!(metrics.len(), samples.len(), "JSON snapshot dropped series");

    parsed.len()
}

fn main() {
    let particles = evolved_particles_cached(NP, NSTEPS);

    // Gates 1+2: A/B at 4 ranks.
    let (mesh_off, cells, wall_off) = run_best(&particles, false);
    let (mesh_on, _, wall_on) = run_best(&particles, true);
    assert_eq!(
        mesh_on, mesh_off,
        "telemetry-on mesh differs from telemetry-off"
    );
    println!(
        "bench_obs: mesh bit-identical with telemetry on/off ({} cells at {NRANKS} ranks)",
        mesh_off.len()
    );
    let overhead_pct = 100.0 * (wall_on - wall_off) / wall_off;
    assert!(
        wall_on <= (1.0 + OVERHEAD_FRAC) * wall_off + OVERHEAD_FLOOR_S,
        "telemetry overhead too high: {wall_on:.3}s on vs {wall_off:.3}s off ({overhead_pct:+.1}%)"
    );
    println!(
        "bench_obs: wall {wall_off:.3}s off, {wall_on:.3}s on ({overhead_pct:+.1}%, bound {:.0}% + {OVERHEAD_FLOOR_S:.2}s) — OK",
        100.0 * OVERHEAD_FRAC
    );

    // Gate 3.
    let series = check_exposition_roundtrip();
    println!("bench_obs: exposition round-trip preserved all scalar series ({series} series) — OK");

    // Gate 4.
    let bucket_err = check_rolling_quantiles();
    println!(
        "bench_obs: rolling p50/p99 within one log2 bucket of exact (worst {bucket_err}) — OK"
    );

    let section = format!(
        concat!(
            "{{\"source\": \"bench_obs\", \"nranks\": {}, \"particles\": {}, ",
            "\"cells\": {}, \"wall_off_s\": {:.6}, \"wall_on_s\": {:.6}, ",
            "\"overhead_pct\": {:.3}, \"exposition_series\": {}, ",
            "\"quantile_bucket_err\": {}}}"
        ),
        NRANKS,
        particles.len(),
        cells,
        wall_off,
        wall_on,
        overhead_pct.max(0.0),
        series,
        bucket_err,
    );
    for path in write_bench_telemetry_json(&section) {
        println!("bench_obs: wrote {}", path.display());
    }
}
