//! Figure 8 — histogram of cell volume at t = 99.
//!
//! Paper setup: 32³ particles evolved 100 steps; 100 bins over
//! [0.02, 2] (Mpc/h)³, bin width 0.02; reported skewness 8.9, kurtosis 85,
//! and the observation that 75% of cells fall in the smallest 10% of the
//! volume range.
//!
//! Expected shape: strongly right-skewed distribution, most mass at tiny
//! volumes with a long thin tail.

use bench_harness::{evolved_particles_cached, output_dir, Table};
use geometry::Aabb;
use postprocess::Histogram;
use tess::{tessellate_serial, TessParams};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let np = env_usize("BENCH_NP", 32);
    let nsteps = env_usize("BENCH_STEPS", 100);
    println!("# Figure 8: cell volume histogram ({np}^3 particles, t = {nsteps})");

    let particles = evolved_particles_cached(np, nsteps);
    let (block, stats) = tessellate_serial(
        &particles,
        Aabb::cube(np as f64),
        [false; 3],
        &TessParams::default(),
    );
    println!(
        "# {} cells ({} incomplete dropped)",
        stats.cells, stats.incomplete
    );

    let volumes: Vec<f64> = block.cells.iter().map(|c| c.volume).collect();
    // paper's binning
    let h = Histogram::from_samples(volumes.iter().copied(), 0.02, 2.0, 100);
    println!("# 100 bins, range [0.02, 2], bin width 0.02");
    println!("# skewness {:.2}  (paper: 8.9)", h.skewness());
    println!("# kurtosis {:.1}  (paper: 85)", h.kurtosis());
    println!(
        "# fraction of in-range cells in smallest 10% of the range: {:.1}%",
        100.0 * h.fraction_below(0.1)
    );
    let below = volumes.iter().filter(|&&v| v < 0.1 * 2.0).count();
    println!(
        "# fraction of ALL cells with volume below 10% of the range (0.2): {:.1}%  (paper: 75%)",
        100.0 * below as f64 / volumes.len() as f64
    );
    println!(
        "# cells below 0.02 (off-histogram small cells): {}",
        h.outliers
    );

    let mut table = Table::new(&["BinCenter", "Count"]);
    for (center, count) in h.rows() {
        table.row(&[format!("{center:.3}"), count.to_string()]);
    }
    let csv_path = output_dir().join("fig8_histogram.csv");
    let csv: String = h.rows().iter().map(|(c, n)| format!("{c},{n}\n")).collect();
    std::fs::write(&csv_path, csv).expect("write csv");
    println!("# full histogram written to {}", csv_path.display());

    // print a compact view: every 5th bin
    let mut compact = Table::new(&["BinCenter", "Count", "Bar"]);
    let max = h.rows().iter().map(|r| r.1).max().unwrap_or(1).max(1);
    for (center, count) in h.rows().iter().step_by(5) {
        let bar = "#".repeat((count * 40 / max) as usize);
        compact.row(&[format!("{center:.2}"), count.to_string(), bar]);
    }
    compact.print();
}
