//! Resident-service throughput smoke: the second headline number beside
//! cells/sec — requests/sec with p50/p99 latency from a mixed
//! query/update run against [`tess::MeshService`].
//!
//! The run: spawn the service on the perf-smoke workload (np16, 8 blocks,
//! 4 resident ranks), hammer it from `CLIENTS` threads with a mixed
//! point/box/region stream while the main thread applies a particle-delta
//! update mid-flight, then gate on:
//!
//! 1. **Bit-identity** — the post-update published mesh must equal a
//!    from-scratch recompute of the final particle set, bit for bit.
//! 2. **Epoch consistency** — every response carries epoch 1 or 2 (the
//!    only certified snapshots this run publishes).
//! 3. **Accounting** — every accepted request is answered exactly once
//!    (`enqueued == answered`, no rejects, distinct ids).
//! 4. **Latency** — client-observed p99 must stay under `SERVICE_P99_MS`
//!    (default 500 ms — a smoke bound for loaded CI boxes, not a perf
//!    target).
//!
//! The measurement lands in the `service` section of `BENCH_TESS.json`
//! (preserving the `entries` section written by `perf_smoke`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use bench_harness::{
    evolved_particles_cached, partition_particles, write_bench_service_json, ServiceBenchEntry,
};
use diy::comm::Runtime;
use geometry::{Aabb, Vec3};
use tess::{tessellate, GhostSpec, MeshService, Query, ServiceConfig, TessParams, Update};

const NP: usize = 16;
const NSTEPS: usize = 100;
const NBLOCKS: usize = 8;
const NRANKS: usize = 4;
const WORKERS: usize = 2;
const CLIENTS: usize = 4;
const REQS_PER_CLIENT: usize = 500;
/// Fraction (1/MOVE_EVERY) of particles displaced by the mid-run update.
const MOVE_EVERY: u64 = 20;

/// Cell fingerprint: (volume bits, area bits, face neighbors).
type CellBits = (u64, u64, Vec<u64>);

fn mesh_bits(blocks: &BTreeMap<u64, tess::MeshBlock>) -> BTreeMap<u64, CellBits> {
    let mut mesh = BTreeMap::new();
    for b in blocks.values() {
        for c in &b.cells {
            let bits = (
                c.volume.to_bits(),
                c.area.to_bits(),
                c.faces.iter().map(|f| f.neighbor).collect(),
            );
            assert!(
                mesh.insert(b.site_id_of(c), bits).is_none(),
                "cell duplicated"
            );
        }
    }
    mesh
}

/// Deterministic splitmix64 — the workload must not depend on wall clock.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn unit(seed: u64) -> f64 {
    (mix(seed) >> 11) as f64 / (1u64 << 53) as f64
}

fn params() -> TessParams {
    TessParams {
        ghost: GhostSpec::Adaptive {
            initial_factor: 0.5,
            max_rounds: 8,
        },
        ..TessParams::default()
    }
}

fn main() {
    let box_size = NP as f64;
    let domain = Aabb::cube(box_size);
    let particles = evolved_particles_cached(NP, NSTEPS);

    // The mid-run delta, built up front so the from-scratch reference uses
    // bit-identical positions.
    let upserts: Vec<(u64, Vec3)> = particles
        .iter()
        .filter(|(id, _)| id % MOVE_EVERY == 0)
        .map(|&(id, p)| {
            let j = |axis: u64| (unit(id * 3 + axis) - 0.5) * 0.1;
            let wrap = |x: f64| x.rem_euclid(box_size);
            (
                id,
                Vec3::new(wrap(p.x + j(0)), wrap(p.y + j(1)), wrap(p.z + j(2))),
            )
        })
        .collect();
    let mut final_particles = particles.clone();
    for &(id, p) in &upserts {
        final_particles[id as usize] = (id, p);
    }

    let svc = MeshService::spawn(
        domain,
        [true; 3],
        &particles,
        ServiceConfig::new(NRANKS, NBLOCKS)
            .with_workers(WORKERS)
            .with_params(params()),
    );
    println!(
        "bench_service: epoch {} published, {} cells, {} indexed sites",
        svc.epoch(),
        svc.snapshot().total_cells,
        svc.snapshot().indexed_sites()
    );

    // Mixed query fire-hose from CLIENTS threads; one delta update lands
    // mid-flight from the main thread.
    let bad_epochs = AtomicU64::new(0);
    let t0 = Instant::now();
    let mut latencies: Vec<u64> = Vec::new();
    let mut ids: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        let svc = &svc;
        let bad_epochs = &bad_epochs;
        let mut handles = Vec::new();
        for client in 0..CLIENTS {
            handles.push(scope.spawn(move || {
                let mut lats = Vec::with_capacity(REQS_PER_CLIENT);
                let mut ids = Vec::with_capacity(REQS_PER_CLIENT);
                for i in 0..REQS_PER_CLIENT {
                    let seed = (client * REQS_PER_CLIENT + i) as u64;
                    let q = match mix(seed) % 10 {
                        0 => {
                            let lo = Vec3::new(
                                unit(seed ^ 1) * box_size * 0.75,
                                unit(seed ^ 2) * box_size * 0.75,
                                unit(seed ^ 3) * box_size * 0.75,
                            );
                            let ext = 1.0 + unit(seed ^ 4) * 3.0;
                            Query::BoxCells(Aabb::new(lo, lo + Vec3::splat(ext)))
                        }
                        1 => {
                            let lo = Vec3::new(
                                unit(seed ^ 5) * box_size * 0.5,
                                unit(seed ^ 6) * box_size * 0.5,
                                unit(seed ^ 7) * box_size * 0.5,
                            );
                            Query::Region(Aabb::new(lo, lo + Vec3::splat(box_size * 0.5)))
                        }
                        _ => Query::Point(Vec3::new(
                            unit(seed ^ 8) * box_size,
                            unit(seed ^ 9) * box_size,
                            unit(seed ^ 10) * box_size,
                        )),
                    };
                    let r = svc.query(q).expect("service open");
                    if r.epoch != 1 && r.epoch != 2 {
                        bad_epochs.fetch_add(1, Ordering::Relaxed);
                    }
                    lats.push(r.latency_ns);
                    ids.push(r.id);
                }
                (lats, ids)
            }));
        }
        let update_report = svc.update(Update::Delta {
            upserts: upserts.clone(),
            removes: Vec::new(),
        });
        println!(
            "bench_service: update published epoch {} ({} particles moved, tess {:.2}s)",
            update_report.epoch,
            upserts.len(),
            update_report.tess_wall_s
        );
        for h in handles {
            let (lats, cids) = h.join().expect("client thread");
            latencies.extend(lats);
            ids.extend(cids);
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();

    let stats = svc.shutdown();
    let hists = svc.hists();
    let total = (CLIENTS * REQS_PER_CLIENT) as u64;

    // Gate 3: exactly-once accounting.
    assert_eq!(bad_epochs.load(Ordering::Relaxed), 0, "invalid epochs seen");
    assert_eq!(latencies.len() as u64, total);
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len() as u64, total, "duplicate request ids");
    assert_eq!(
        stats.enqueued, stats.answered,
        "requests dropped: {stats:?}"
    );
    assert_eq!(stats.rejected, 0);
    assert!(stats.enqueued >= total);
    assert_eq!(hists.latency_ns.n(), stats.answered);

    // Gate 1: post-update mesh is bit-identical to a from-scratch
    // recompute of the final particle set.
    let service_mesh = mesh_bits(&svc.snapshot().blocks);
    assert_eq!(svc.snapshot().epoch, 2);
    let final_ref = &final_particles;
    let rows = Runtime::run(NRANKS, move |world| {
        let dec = diy::decomposition::Decomposition::regular(domain, NBLOCKS, [true; 3]);
        let asn = diy::decomposition::Assignment::new(NBLOCKS, world.nranks());
        let local = partition_particles(final_ref, &dec, &asn, world.rank());
        let r = tessellate(world, &dec, &asn, &local, &params());
        r.blocks
    });
    let mut scratch_blocks = BTreeMap::new();
    for blocks in rows {
        scratch_blocks.extend(blocks);
    }
    let scratch_mesh = mesh_bits(&scratch_blocks);
    assert_eq!(
        service_mesh, scratch_mesh,
        "post-update service mesh differs from from-scratch recompute"
    );
    println!(
        "bench_service: post-update mesh bit-identical to from-scratch recompute ({} cells)",
        service_mesh.len()
    );

    // Latency quantiles from the exact client-side samples.
    latencies.sort_unstable();
    let q = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize] as f64 / 1e6;
    let (p50_ms, p99_ms) = (q(0.50), q(0.99));
    let rps = total as f64 / wall_s;
    println!(
        "bench_service: {total} requests in {wall_s:.3}s = {rps:.0} req/s, p50 {p50_ms:.3}ms p99 {p99_ms:.3}ms, {} batches (mean {:.1}), {} coalesced, queue-depth p50 {:.0}",
        stats.batches,
        stats.answered as f64 / stats.batches.max(1) as f64,
        stats.coalesced,
        hists.queue_depth.quantile(0.5),
    );

    let entry = ServiceBenchEntry {
        label: format!("bench_service_np{NP}_r{NRANKS}_w{WORKERS}"),
        requests: total,
        wall_s,
        p50_ms,
        p99_ms,
        batches: stats.batches,
        coalesced: stats.coalesced,
        updates: 1,
        epochs: stats.epochs_published,
    };
    for path in write_bench_service_json(&entry) {
        println!("bench_service: wrote {}", path.display());
    }

    // Gate 4: p99 latency bound.
    let bound_ms: f64 = std::env::var("SERVICE_P99_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500.0);
    assert!(
        p99_ms <= bound_ms,
        "p99 point-lookup latency {p99_ms:.1}ms exceeds the {bound_ms:.0}ms bound"
    );
    println!("bench_service: p99 {p99_ms:.3}ms within {bound_ms:.0}ms bound — OK");
}
