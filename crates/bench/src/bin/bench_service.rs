//! Resident-service throughput smoke: the second headline number beside
//! cells/sec — requests/sec with p50/p99 latency from a mixed
//! query/update run against [`tess::MeshService`].
//!
//! The run: spawn the service on the perf-smoke workload (np16, 8 blocks,
//! 4 resident ranks), hammer it from `CLIENTS` threads with a mixed
//! point/box/region stream while the main thread applies a particle-delta
//! update mid-flight, then gate on:
//!
//! 1. **Bit-identity** — the post-update published mesh must equal a
//!    from-scratch recompute of the final particle set, bit for bit.
//! 2. **Epoch consistency** — every response carries epoch 1 or 2 (the
//!    only certified snapshots this run publishes).
//! 3. **Accounting** — every accepted request is answered exactly once
//!    (`enqueued == answered`, no rejects, distinct ids).
//! 4. **Latency** — client-observed p99 must stay under `SERVICE_P99_MS`
//!    (default 500 ms — a smoke bound for loaded CI boxes, not a perf
//!    target).
//!
//! The measurement lands in the `service` section of `BENCH_TESS.json`
//! (preserving the `entries` section written by `perf_smoke`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use bench_harness::{
    evolved_particles_cached, partition_particles, write_bench_service_json, ServiceBenchEntry,
};
use diy::comm::Runtime;
use diy::decomposition::{Assignment, BalanceStats, DecompScheme};
use geometry::{Aabb, Vec3};
use tess::{tessellate, GhostSpec, MeshService, Query, ServiceConfig, TessParams, Update};

const NP: usize = 16;
const NSTEPS: usize = 100;
const NBLOCKS: usize = 8;
const NRANKS: usize = 4;
const WORKERS: usize = 2;
const CLIENTS: usize = 4;
const REQS_PER_CLIENT: usize = 500;
/// Fraction (1/MOVE_EVERY) of particles displaced by the mid-run update.
const MOVE_EVERY: u64 = 20;
/// Every 4th request draws its seed from this many shared values, so
/// bit-equal queries recur across clients and the workers' batch
/// coalescing actually fires (gated below).
const DUP_POOL: u64 = 8;

/// Cell fingerprint: (volume bits, area bits, face neighbors).
type CellBits = (u64, u64, Vec<u64>);

fn mesh_bits(blocks: &BTreeMap<u64, tess::MeshBlock>) -> BTreeMap<u64, CellBits> {
    let mut mesh = BTreeMap::new();
    for b in blocks.values() {
        for c in &b.cells {
            let bits = (
                c.volume.to_bits(),
                c.area.to_bits(),
                c.faces.iter().map(|f| f.neighbor).collect(),
            );
            assert!(
                mesh.insert(b.site_id_of(c), bits).is_none(),
                "cell duplicated"
            );
        }
    }
    mesh
}

/// Deterministic splitmix64 — the workload must not depend on wall clock.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn unit(seed: u64) -> f64 {
    (mix(seed) >> 11) as f64 / (1u64 << 53) as f64
}

fn params() -> TessParams {
    TessParams {
        ghost: GhostSpec::Adaptive {
            initial_factor: 0.5,
            max_rounds: 8,
        },
        ..TessParams::default()
    }
}

fn main() {
    let box_size = NP as f64;
    let domain = Aabb::cube(box_size);
    let particles = evolved_particles_cached(NP, NSTEPS);

    // The mid-run delta, built up front so the from-scratch reference uses
    // bit-identical positions.
    let upserts: Vec<(u64, Vec3)> = particles
        .iter()
        .filter(|(id, _)| id % MOVE_EVERY == 0)
        .map(|&(id, p)| {
            let j = |axis: u64| (unit(id * 3 + axis) - 0.5) * 0.1;
            let wrap = |x: f64| x.rem_euclid(box_size);
            (
                id,
                Vec3::new(wrap(p.x + j(0)), wrap(p.y + j(1)), wrap(p.z + j(2))),
            )
        })
        .collect();
    let mut final_particles = particles.clone();
    for &(id, p) in &upserts {
        final_particles[id as usize] = (id, p);
    }

    // Decomposition A/B: the service runs the TESS_DECOMP scheme (default
    // regular); the from-scratch oracle below runs under the same scheme,
    // and a second recompute under the OTHER scheme checks that every cell
    // certified by both is bit-identical. Report both schemes'
    // spawn-snapshot imbalance.
    let decomp = DecompScheme::from_env();
    let scratch_decomp = match decomp {
        DecompScheme::Regular => DecompScheme::Kd {
            sample: DecompScheme::DEFAULT_KD_SAMPLE,
        },
        DecompScheme::Kd { .. } => DecompScheme::Regular,
    };
    let positions: Vec<Vec3> = particles.iter().map(|&(_, p)| p).collect();
    let imbalance_of = |scheme: DecompScheme| {
        let dec = scheme.build(domain, NBLOCKS, [true; 3], &positions);
        let weights: Vec<u64> = {
            let mut w = vec![0u64; NBLOCKS];
            for &p in &positions {
                w[dec.block_of_point(p) as usize] += 1;
            }
            w
        };
        let asn = match scheme {
            DecompScheme::Regular => Assignment::new(NBLOCKS, NRANKS),
            DecompScheme::Kd { .. } => Assignment::weighted(&weights, NRANKS),
        };
        BalanceStats::measure(&dec, &asn, &positions).rank_imbalance()
    };
    let imbalance = imbalance_of(decomp);
    println!(
        "bench_service: decomp {} rank imbalance {imbalance:.3} (other scheme {}: {:.3})",
        decomp.label(),
        scratch_decomp.label(),
        imbalance_of(scratch_decomp),
    );

    let svc = MeshService::spawn(
        domain,
        [true; 3],
        &particles,
        ServiceConfig::new(NRANKS, NBLOCKS)
            .with_workers(WORKERS)
            .with_params(params())
            .with_decomp(decomp),
    );
    println!(
        "bench_service: epoch {} published, {} cells, {} indexed sites",
        svc.epoch(),
        svc.snapshot().total_cells,
        svc.snapshot().indexed_sites()
    );

    // Mixed query fire-hose from CLIENTS threads; one delta update lands
    // mid-flight from the main thread.
    let bad_epochs = AtomicU64::new(0);
    let t0 = Instant::now();
    let mut latencies: Vec<u64> = Vec::new();
    let mut ids: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        let svc = &svc;
        let bad_epochs = &bad_epochs;
        let mut handles = Vec::new();
        for client in 0..CLIENTS {
            handles.push(scope.spawn(move || {
                let mut lats = Vec::with_capacity(REQS_PER_CLIENT);
                let mut ids = Vec::with_capacity(REQS_PER_CLIENT);
                let mut i = 0;
                while i < REQS_PER_CLIENT {
                    let raw = (client * REQS_PER_CLIENT + i) as u64;
                    // Duplicate-heavy mix: periodically submit a burst of
                    // bit-identical point lookups together (seed drawn from
                    // a small shared pool), so duplicates drain in one
                    // worker batch and the coalescing path is measured.
                    if i % 16 == 12 {
                        let seed = 0xD00D_0000 + (raw / 16) % DUP_POOL;
                        let point = || {
                            Query::Point(Vec3::new(
                                unit(seed ^ 8) * box_size,
                                unit(seed ^ 9) * box_size,
                                unit(seed ^ 10) * box_size,
                            ))
                        };
                        let pending: Vec<_> = (0..4)
                            .map(|_| svc.submit(point()).expect("service open"))
                            .collect();
                        for p in pending {
                            let r = p.wait();
                            if r.epoch != 1 && r.epoch != 2 {
                                bad_epochs.fetch_add(1, Ordering::Relaxed);
                            }
                            lats.push(r.latency_ns);
                            ids.push(r.id);
                        }
                        i += 4;
                        continue;
                    }
                    let seed = raw;
                    let q = match mix(seed) % 10 {
                        0 => {
                            let lo = Vec3::new(
                                unit(seed ^ 1) * box_size * 0.75,
                                unit(seed ^ 2) * box_size * 0.75,
                                unit(seed ^ 3) * box_size * 0.75,
                            );
                            let ext = 1.0 + unit(seed ^ 4) * 3.0;
                            Query::BoxCells(Aabb::new(lo, lo + Vec3::splat(ext)))
                        }
                        1 => {
                            let lo = Vec3::new(
                                unit(seed ^ 5) * box_size * 0.5,
                                unit(seed ^ 6) * box_size * 0.5,
                                unit(seed ^ 7) * box_size * 0.5,
                            );
                            Query::Region(Aabb::new(lo, lo + Vec3::splat(box_size * 0.5)))
                        }
                        _ => Query::Point(Vec3::new(
                            unit(seed ^ 8) * box_size,
                            unit(seed ^ 9) * box_size,
                            unit(seed ^ 10) * box_size,
                        )),
                    };
                    let r = svc.query(q).expect("service open");
                    if r.epoch != 1 && r.epoch != 2 {
                        bad_epochs.fetch_add(1, Ordering::Relaxed);
                    }
                    lats.push(r.latency_ns);
                    ids.push(r.id);
                    i += 1;
                }
                (lats, ids)
            }));
        }
        let update_report = svc.update(Update::Delta {
            upserts: upserts.clone(),
            removes: Vec::new(),
        });
        println!(
            "bench_service: update published epoch {} ({} particles moved, tess {:.2}s)",
            update_report.epoch,
            upserts.len(),
            update_report.tess_wall_s
        );
        for h in handles {
            let (lats, cids) = h.join().expect("client thread");
            latencies.extend(lats);
            ids.extend(cids);
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();

    let stats = svc.shutdown();
    let hists = svc.hists();
    let total = (CLIENTS * REQS_PER_CLIENT) as u64;

    // Gate 3: exactly-once accounting.
    assert_eq!(bad_epochs.load(Ordering::Relaxed), 0, "invalid epochs seen");
    assert_eq!(latencies.len() as u64, total);
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len() as u64, total, "duplicate request ids");
    assert_eq!(
        stats.enqueued, stats.answered,
        "requests dropped: {stats:?}"
    );
    assert_eq!(stats.rejected, 0);
    assert!(stats.enqueued >= total);
    assert_eq!(hists.latency_ns.n(), stats.answered);
    assert!(
        stats.coalesced > 0,
        "duplicate-heavy mix never hit the coalescing path (coalesced = 0)"
    );

    // Gate 1: post-update mesh is bit-identical to a from-scratch
    // recompute of the final particle set.
    let service_mesh = mesh_bits(&svc.snapshot().blocks);
    assert_eq!(svc.snapshot().epoch, 2);
    let final_ref = &final_particles;
    let scratch = |scheme: DecompScheme| -> BTreeMap<u64, CellBits> {
        let rows = Runtime::run(NRANKS, move |world| {
            let positions: Vec<Vec3> = final_ref.iter().map(|&(_, p)| p).collect();
            let dec = scheme.build(domain, NBLOCKS, [true; 3], &positions);
            let asn = diy::decomposition::Assignment::new(NBLOCKS, world.nranks());
            let local = partition_particles(final_ref, &dec, &asn, world.rank());
            let r = tessellate(world, &dec, &asn, &local, &params());
            r.blocks
        });
        let mut blocks = BTreeMap::new();
        for b in rows {
            blocks.extend(b);
        }
        mesh_bits(&blocks)
    };
    let scratch_mesh = scratch(decomp);
    assert_eq!(
        service_mesh, scratch_mesh,
        "post-update service mesh differs from from-scratch recompute"
    );
    println!(
        "bench_service: post-update mesh bit-identical to from-scratch recompute ({} cells)",
        service_mesh.len()
    );

    // Cross-scheme check on the same final snapshot: a certified cell's
    // bits depend on the particle set alone, but WHICH marginal void cells
    // certify depends on the scheme's adaptive cap (its min block extent).
    // So demand bit-identity on every cell published by both schemes, and
    // bound the scheme-marginal fringe to the handful of uncertified cells.
    let other_mesh = scratch(scratch_decomp);
    let mut shared = 0usize;
    for (id, bits) in &service_mesh {
        if let Some(ob) = other_mesh.get(id) {
            shared += 1;
            assert_eq!(
                bits,
                ob,
                "cell {id} certified by both schemes but bits differ ({} vs {})",
                decomp.label(),
                scratch_decomp.label()
            );
        }
    }
    let fringe = (service_mesh.len() - shared) + (other_mesh.len() - shared);
    // Each scheme must still certify the bulk of the corpus; the fringe is
    // whatever void cells fall outside the *smaller* scheme's cap.
    let floor = final_particles.len() * 9 / 10;
    assert!(
        service_mesh.len() >= floor && other_mesh.len() >= floor,
        "a scheme certified under 90% of cells ({} vs {} of {})",
        service_mesh.len(),
        other_mesh.len(),
        final_particles.len()
    );
    println!(
        "bench_service: cross-scheme check vs {} — {shared} shared cells bit-identical, {fringe} scheme-marginal",
        scratch_decomp.label(),
    );

    // Latency quantiles from the exact client-side samples.
    latencies.sort_unstable();
    let q = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize] as f64 / 1e6;
    let (p50_ms, p99_ms) = (q(0.50), q(0.99));
    let rps = total as f64 / wall_s;
    println!(
        "bench_service: {total} requests in {wall_s:.3}s = {rps:.0} req/s, p50 {p50_ms:.3}ms p99 {p99_ms:.3}ms, {} batches (mean {:.1}), {} coalesced, queue-depth p50 {:.0}",
        stats.batches,
        stats.answered as f64 / stats.batches.max(1) as f64,
        stats.coalesced,
        hists.queue_depth.quantile(0.5),
    );

    let entry = ServiceBenchEntry {
        label: format!("bench_service_np{NP}_r{NRANKS}_w{WORKERS}"),
        requests: total,
        wall_s,
        p50_ms,
        p99_ms,
        batches: stats.batches,
        coalesced: stats.coalesced,
        updates: 1,
        epochs: stats.epochs_published,
        decomp: decomp.label().into(),
        imbalance,
    };
    for path in write_bench_service_json(&entry) {
        println!("bench_service: wrote {}", path.display());
    }

    // Gate 4: p99 latency bound.
    let bound_ms: f64 = std::env::var("SERVICE_P99_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500.0);
    assert!(
        p99_ms <= bound_ms,
        "p99 point-lookup latency {p99_ms:.1}ms exceeds the {bound_ms:.0}ms bound"
    );
    println!("bench_service: p99 {p99_ms:.3}ms within {bound_ms:.0}ms bound — OK");

    // Ledger row for bench_trend's cross-run regression gate.
    let row = bench_harness::history::HistoryRow::now(
        "bench_service",
        &format!("np{NP}_r{NRANKS}_w{WORKERS}_{}", decomp.label()),
        vec![
            ("requests_per_sec".into(), rps),
            ("p50_ms".into(), p50_ms),
            ("p99_ms".into(), p99_ms),
        ],
    );
    let ledger = bench_harness::history::history_path();
    bench_harness::history::append_history_row(&ledger, &row)
        .unwrap_or_else(|e| panic!("bench_service: {e}"));
    println!(
        "bench_service: history row appended to {}",
        ledger.display()
    );
}
