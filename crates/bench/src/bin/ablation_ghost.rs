//! Ablation: ghost-zone size vs. exchange cost vs. accuracy (§IV-A).
//!
//! "We are investigating the tradeoff between ghost zone size,
//! neighborhood exchange time, and accuracy. For example, it may be
//! desirable to exchange fewer particles with a smaller ghost zone if the
//! reduction in accuracy is insignificant." — this harness quantifies that
//! tradeoff: per ghost size, the number of ghost particles exchanged, the
//! exchange and compute times, and the fraction of cells certified
//! complete.

use bench_harness::{evolved_particles_cached, partition_particles, secs, Table};
use diy::comm::Runtime;
use diy::decomposition::{Assignment, Decomposition};
use diy::metrics::collect_report;
use geometry::Aabb;
use tess::{tessellate, TessParams, PHASE_GHOST_EXCHANGE, PHASE_VORONOI};

fn main() {
    let np = std::env::var("BENCH_NP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32usize);
    let nsteps = 100;
    println!(
        "# Ablation: ghost size vs exchange volume vs certified cells ({np}^3, 8 blocks, 4 ranks)"
    );
    let particles = evolved_particles_cached(np, nsteps);
    let domain = Aabb::cube(np as f64);
    let dec = Decomposition::regular(domain, 8, [true; 3]);

    let mut table = Table::new(&[
        "Ghost",
        "GhostParticles",
        "Exchange(s)",
        "Voronoi(s)",
        "Complete%",
        "GhostsPerOwn%",
    ]);
    for ghost in [0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0] {
        let particles_ref = &particles;
        let dec_ref = &dec;
        let rows = Runtime::run(4, move |world| {
            let asn = Assignment::new(8, world.nranks());
            let local = partition_particles(particles_ref, dec_ref, &asn, world.rank());
            let params = TessParams::default().with_ghost(ghost);
            let r = tessellate(world, dec_ref, &asn, &local, &params);
            let stats = tess::driver::global_stats(world, r.stats);
            let report = collect_report(world);
            (
                stats,
                report.cpu_max(PHASE_GHOST_EXCHANGE),
                report.cpu_max(PHASE_VORONOI),
            )
        });
        let (stats, exch, comp) = rows[0];
        let total = stats.cells + stats.incomplete;
        table.row(&[
            format!("{ghost:.1}"),
            stats.ghosts_received.to_string(),
            secs(exch),
            secs(comp),
            format!("{:.2}", 100.0 * stats.cells as f64 / total as f64),
            format!(
                "{:.0}",
                100.0 * stats.ghosts_received as f64 / stats.sites as f64
            ),
        ]);
    }
    table.print();
    println!("# expectation: exchange volume grows ~linearly in ghost thickness;");
    println!("# certified-cell fraction saturates — past that point extra ghost is wasted");
}
