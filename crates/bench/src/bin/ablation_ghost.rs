//! Ablation: ghost-zone size vs. exchange cost vs. accuracy (§IV-A).
//!
//! "We are investigating the tradeoff between ghost zone size,
//! neighborhood exchange time, and accuracy. For example, it may be
//! desirable to exchange fewer particles with a smaller ghost zone if the
//! reduction in accuracy is insignificant." — this harness quantifies that
//! tradeoff: per ghost size, the number of ghost particles exchanged, the
//! ghost traffic in bytes (from the per-tag transport counters), the
//! exchange and compute times, and the fraction of cells certified
//! complete. The final rows compare the fixed auto-heuristic radius
//! against `GhostSpec::Adaptive` starting at half that radius: same mesh
//! out, fewer ghost bytes on the wire.

use bench_harness::{bytes_h, evolved_particles_cached, partition_particles, secs, Table};
use diy::comm::Runtime;
use diy::decomposition::{Assignment, Decomposition};
use diy::metrics::collect_report;
use geometry::Aabb;
use tess::ghost::is_ghost_tag;
use tess::{tessellate, GhostSpec, TessParams, PHASE_GHOST_EXCHANGE, PHASE_VORONOI};

struct ModeResult {
    stats: tess::TessStats,
    exchange_s: f64,
    voronoi_s: f64,
    ghost_bytes: u64,
    total_volume: f64,
}

fn run_mode(
    particles: &[(u64, geometry::Vec3)],
    dec: &Decomposition,
    ghost: GhostSpec,
) -> ModeResult {
    let rows = Runtime::run(4, move |world| {
        let asn = Assignment::new(8, world.nranks());
        let local = partition_particles(particles, dec, &asn, world.rank());
        let params = TessParams {
            ghost,
            ..TessParams::default()
        };
        let r = tessellate(world, dec, &asn, &local, &params);
        let volume: f64 = r
            .blocks
            .values()
            .flat_map(|b| b.cells.iter().map(|c| c.volume))
            .sum();
        let stats = tess::driver::global_stats(world, r.stats);
        let total_volume = world.all_reduce(volume, |a, b| a + b);
        let report = collect_report(world);
        let (_, ghost_bytes) = report.tag_traffic_where(is_ghost_tag);
        (
            stats,
            report.cpu_max(PHASE_GHOST_EXCHANGE),
            report.cpu_max(PHASE_VORONOI),
            ghost_bytes,
            total_volume,
        )
    });
    let (stats, exchange_s, voronoi_s, ghost_bytes, total_volume) = rows[0];
    ModeResult {
        stats,
        exchange_s,
        voronoi_s,
        ghost_bytes,
        total_volume,
    }
}

fn main() {
    let np = std::env::var("BENCH_NP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32usize);
    let nsteps = 100;
    println!(
        "# Ablation: ghost size vs exchange volume vs certified cells ({np}^3, 8 blocks, 4 ranks)"
    );
    let particles = evolved_particles_cached(np, nsteps);
    let domain = Aabb::cube(np as f64);
    let dec = Decomposition::regular(domain, 8, [true; 3]);

    let mut table = Table::new(&[
        "Ghost",
        "Rounds",
        "GhostParticles",
        "GhostBytes",
        "Exchange(s)",
        "Voronoi(s)",
        "Complete%",
        "GhostsPerOwn%",
        "CandPerCell",
        "CellsReused",
    ]);
    let mut push_row = |label: String, r: &ModeResult| {
        let total = r.stats.cells + r.stats.incomplete;
        table.row(&[
            label,
            r.stats.ghost_rounds.to_string(),
            r.stats.ghosts_received.to_string(),
            bytes_h(r.ghost_bytes),
            secs(r.exchange_s),
            secs(r.voronoi_s),
            format!("{:.2}", 100.0 * r.stats.cells as f64 / total as f64),
            format!(
                "{:.0}",
                100.0 * r.stats.ghosts_received as f64 / r.stats.sites as f64
            ),
            format!(
                "{:.1}",
                r.stats.candidates_tested as f64 / r.stats.cells_computed.max(1) as f64
            ),
            r.stats.cells_reused.to_string(),
        ]);
    };

    for ghost in [0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0] {
        let r = run_mode(&particles, &dec, GhostSpec::Explicit(ghost));
        push_row(format!("{ghost:.1}"), &r);
    }

    // Head-to-head: the fixed auto heuristic vs adaptive from half that
    // radius (the acceptance comparison — same mesh, fewer bytes).
    let auto = run_mode(&particles, &dec, GhostSpec::default());
    push_row("auto".into(), &auto);
    let adaptive = run_mode(&particles, &dec, GhostSpec::adaptive());
    push_row("adapt".into(), &adaptive);
    table.print();

    assert_eq!(
        adaptive.stats.incomplete, 0,
        "adaptive must certify every cell"
    );
    assert_eq!(
        adaptive.stats.cells, auto.stats.cells,
        "adaptive must keep the same cells as the auto radius"
    );
    let vol_err = (adaptive.total_volume - auto.total_volume).abs() / auto.total_volume;
    assert!(vol_err < 1e-9, "mesh volume differs: rel err {vol_err:e}");
    assert!(
        adaptive.ghost_bytes < auto.ghost_bytes,
        "adaptive ({}) must ship fewer ghost bytes than auto ({})",
        adaptive.ghost_bytes,
        auto.ghost_bytes
    );
    // Incremental re-tessellation: rounds after the first only recompute
    // the cells the previous round could not certify, so total kernel
    // invocations stay strictly below a full recompute per round.
    if adaptive.stats.ghost_rounds >= 2 {
        assert!(
            adaptive.stats.cells_reused > 0,
            "multi-round adaptive run reused no certified cells"
        );
        assert!(
            adaptive.stats.cells_computed < adaptive.stats.sites * adaptive.stats.ghost_rounds,
            "adaptive computed {} cells over {} rounds of {} sites — not incremental",
            adaptive.stats.cells_computed,
            adaptive.stats.ghost_rounds,
            adaptive.stats.sites
        );
    }
    println!(
        "# adaptive vs auto: identical mesh ({} cells, rel vol err {:.1e}), ghost bytes {} vs {} ({:.0}% saved) in {} rounds",
        adaptive.stats.cells,
        vol_err,
        bytes_h(adaptive.ghost_bytes),
        bytes_h(auto.ghost_bytes),
        100.0 * (1.0 - adaptive.ghost_bytes as f64 / auto.ghost_bytes as f64),
        adaptive.stats.ghost_rounds,
    );
    println!("# expectation: exchange volume grows ~linearly in ghost thickness;");
    println!("# certified-cell fraction saturates — past that point extra ghost is wasted");
}
