//! CI memory gate for the bounded-memory streaming pipeline.
//!
//! One clustered 8-rank workload (64 blocks, so each rank owns 8 and
//! accumulation actually costs something) runs twice with volume culling:
//!
//!   1. **stream** — `tess::tessellate_streaming`: tessellate, write, drop
//!      block by block; the merged mesh never exists in memory.
//!   2. **accumulate** — `tess::tessellate` + `write_tessellation`: the
//!      classic merge-then-write path.
//!
//! Gates, any failure exits non-zero:
//!
//! 1. **Bit identity** — both files hold byte-identical blocks (streaming
//!    changes residency, never bits) and the read-back matches the
//!    accumulated in-memory merge.
//! 2. **Culled output budget** — serialized payload stays under
//!    [`BUDGET_BYTES_PER_PARTICLE`] for the culled run (the §III-C2 data
//!    model gate: a dense-region mesh must not balloon on disk).
//! 3. **Bounded memory** — the streaming arm's allocator high-water mark
//!    (process-wide, all 8 rank threads) stays under
//!    [`STREAM_PEAK_FRACTION`] of the accumulate arm's, and the kernel's
//!    `VmHWM` climbs by at least [`MIN_HWM_GROWTH_KB`] only after the
//!    accumulate arm runs (streaming runs first: VmHWM is monotonic).
//! 4. **Accounting overhead** — the counting global allocator costs < 5%
//!    (plus scheduler slack) on a serial tessellation A/B with counting
//!    toggled via `diy::mem::set_enabled`.
//!
//! Both arms land in the `memory` section of `BENCH_TESS.json` (labels
//! `memgate_*`; the fig10 sweep owns the `fig10_*` labels).

use std::collections::BTreeMap;
use std::time::Instant;

use bench_harness::{
    corpus::ClusterSpec, partition_particles, write_bench_memory_json, MemoryBenchEntry,
};
use diy::codec::Encode;
use diy::comm::Runtime;
use diy::decomposition::{Assignment, DecompScheme};
use geometry::{Aabb, Vec3};
use tess::{TessParams, TessStats};

const NBLOCKS: usize = 64;
const NRANKS: usize = 8;
/// Culling threshold for the memory A/B: drops the dense clump-core cells
/// (the paper's threshold mode) while keeping the mesh big enough that
/// accumulation visibly costs memory.
const MIN_VOLUME: f64 = 0.01;
/// Gate 2a: serialized payload bytes per input particle at [`MIN_VOLUME`].
const BUDGET_BYTES_PER_PARTICLE: f64 = 1100.0;
/// Aggressive threshold for the production-style culled-output budget: at
/// ~mean cell volume only the large void/filament cells survive.
const MIN_VOLUME_TIGHT: f64 = 0.25;
/// Gate 2b: payload bytes per particle at [`MIN_VOLUME_TIGHT`] — the
/// paper's regime, where the interesting (large) cells are a small
/// fraction of the particle count.
const TIGHT_BUDGET_BYTES_PER_PARTICLE: f64 = 120.0;
/// Gate 3a: streaming allocator peak as a fraction of the accumulate peak.
const STREAM_PEAK_FRACTION: f64 = 0.8;
/// Gate 3b: minimum VmHWM growth the accumulate arm must add on top of the
/// streaming arm's high-water mark (kB).
const MIN_HWM_GROWTH_KB: u64 = 1024;
/// Gate 4: allocator-accounting overhead bound (fraction + absolute slack).
const OVERHEAD_FRACTION: f64 = 0.05;
const OVERHEAD_SLACK_S: f64 = 0.02;

struct Arm {
    stats: TessStats,
    peak_live_bytes: u64,
    peak_rss_kb: u64,
    payload_bytes: u64,
    file_bytes: u64,
    wall_s: f64,
    /// gid → serialized block bytes read back from the arm's file.
    blocks: BTreeMap<u64, Vec<u8>>,
}

fn setup(particles: &[(u64, Vec3)], side: f64) -> (diy::decomposition::Decomposition, Assignment) {
    let positions: Vec<Vec3> = particles.iter().map(|&(_, p)| p).collect();
    let dec = DecompScheme::Regular.build(Aabb::cube(side), NBLOCKS, [true; 3], &positions);
    let asn = Assignment::new(dec.nblocks(), NRANKS);
    (dec, asn)
}

fn read_blocks(path: &std::path::Path) -> BTreeMap<u64, Vec<u8>> {
    tess::io::read_tessellation(path)
        .expect("read back")
        .into_iter()
        .map(|b| (b.gid, b.to_bytes()))
        .collect()
}

fn run_stream(
    particles: &[(u64, Vec3)],
    side: f64,
    params: &TessParams,
    path: &std::path::Path,
) -> Arm {
    let (dec, asn) = setup(particles, side);
    diy::mem::reset_peak();
    let before = diy::mem::stats();
    let t0 = Instant::now();
    let rows = Runtime::run(NRANKS, |world| {
        let local = partition_particles(particles, &dec, &asn, world.rank());
        let s = tess::tessellate_streaming(world, &dec, &asn, &local, params, path)
            .expect("streaming tessellation");
        let stats = tess::driver::global_stats(world, s.stats);
        (stats, s.payload_bytes, s.file_bytes)
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let after = diy::mem::stats();
    let (_, peak_rss_kb) = diy::mem::proc_status_kb();
    let (stats, payload_bytes, file_bytes) = rows[0];
    Arm {
        stats,
        peak_live_bytes: after
            .peak_live_bytes
            .saturating_sub(before.live_bytes.min(after.peak_live_bytes)),
        peak_rss_kb,
        payload_bytes,
        file_bytes,
        wall_s,
        blocks: read_blocks(path),
    }
}

fn run_accumulate(
    particles: &[(u64, Vec3)],
    side: f64,
    params: &TessParams,
    path: &std::path::Path,
) -> (Arm, BTreeMap<u64, Vec<u8>>) {
    let (dec, asn) = setup(particles, side);
    diy::mem::reset_peak();
    let before = diy::mem::stats();
    let t0 = Instant::now();
    let rows = Runtime::run(NRANKS, |world| {
        let local = partition_particles(particles, &dec, &asn, world.rank());
        let r = tess::tessellate(world, &dec, &asn, &local, params);
        let stats = tess::driver::global_stats(world, r.stats);
        let file_bytes = tess::io::write_tessellation(world, path, &r.blocks).expect("write");
        let merged: Vec<(u64, Vec<u8>)> = r
            .blocks
            .iter()
            .map(|(&gid, b)| (gid, b.to_bytes()))
            .collect();
        (stats, file_bytes, merged)
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let after = diy::mem::stats();
    let (_, peak_rss_kb) = diy::mem::proc_status_kb();
    let stats = rows[0].0;
    let file_bytes = rows[0].1;
    let mut in_memory = BTreeMap::new();
    for (_, _, merged) in rows {
        for (gid, bytes) in merged {
            assert!(
                in_memory.insert(gid, bytes).is_none(),
                "block {gid} owned twice"
            );
        }
    }
    let payload_bytes = in_memory.values().map(|b| b.len() as u64).sum();
    let arm = Arm {
        stats,
        peak_live_bytes: after
            .peak_live_bytes
            .saturating_sub(before.live_bytes.min(after.peak_live_bytes)),
        peak_rss_kb,
        payload_bytes,
        file_bytes,
        wall_s,
        blocks: read_blocks(path),
    };
    (arm, in_memory)
}

/// Gate 4: counting on vs off on a serial tessellation, best-of-N.
fn accounting_overhead(particles: &[(u64, Vec3)], side: f64) {
    let pts: Vec<(u64, Vec3)> = particles.iter().take(4000).copied().collect();
    let params = TessParams::default();
    let time_once = || {
        let t0 = Instant::now();
        let (block, _) = tess::tessellate_serial(&pts, Aabb::cube(side), [true; 3], &params);
        assert!(!block.cells.is_empty());
        t0.elapsed().as_secs_f64()
    };
    let best_of = |n: usize| (0..n).map(|_| time_once()).fold(f64::INFINITY, f64::min);
    // warm up caches/pools before either measurement
    let _ = time_once();
    let was_on = diy::mem::set_enabled(false);
    let off_s = best_of(5);
    diy::mem::set_enabled(true);
    let on_s = best_of(5);
    diy::mem::set_enabled(was_on);
    let overhead = (on_s - off_s) / off_s;
    println!(
        "bench_memory: accounting A/B counting-off {:.1}ms, counting-on {:.1}ms ({:+.2}% overhead)",
        off_s * 1e3,
        on_s * 1e3,
        overhead * 100.0
    );
    assert!(
        on_s <= off_s * (1.0 + OVERHEAD_FRACTION) + OVERHEAD_SLACK_S,
        "allocation accounting costs {:.2}% (> {:.0}% + {:.0}ms slack): on {on_s:.4}s vs off {off_s:.4}s",
        overhead * 100.0,
        OVERHEAD_FRACTION * 100.0,
        OVERHEAD_SLACK_S * 1e3,
    );
}

fn main() {
    let spec = ClusterSpec::corner_heavy(16.0, 48, 300, 42);
    let corpus = spec.generate();
    let nparticles = corpus.len() as u64;
    let params = TessParams::default().with_min_volume(MIN_VOLUME);
    let dir = bench_harness::output_dir();
    let stream_path = dir.join("memgate_stream.tess");
    let accum_path = dir.join("memgate_accum.tess");

    // Streaming FIRST: VmHWM only ever grows, so the accumulate arm's
    // extra footprint must show up as growth past the streaming mark.
    let stream = run_stream(&corpus, spec.side, &params, &stream_path);
    let (accum, in_memory) = run_accumulate(&corpus, spec.side, &params, &accum_path);

    // Gate 1: bit identity — streamed file == accumulated file == the
    // in-memory merge, block for block.
    assert_eq!(
        stream.blocks.len(),
        NBLOCKS,
        "streamed file must hold every block"
    );
    assert_eq!(
        stream.blocks, accum.blocks,
        "streamed file differs from the accumulate file"
    );
    assert_eq!(
        stream.blocks, in_memory,
        "files differ from the in-memory merge"
    );
    assert_eq!(stream.stats.cells, accum.stats.cells);
    assert!(stream.stats.cells > 0);
    assert_eq!(stream.payload_bytes, accum.payload_bytes);

    // Gate 2: culled output budget.
    let bpp = stream.payload_bytes as f64 / nparticles as f64;
    println!(
        "bench_memory: {} particles -> {} culled cells, {} payload bytes ({bpp:.1} B/particle, budget {BUDGET_BYTES_PER_PARTICLE}), {} file bytes",
        nparticles, stream.stats.cells, stream.payload_bytes, stream.file_bytes
    );
    assert!(
        bpp <= BUDGET_BYTES_PER_PARTICLE,
        "culled mesh costs {bpp:.1} B/particle on disk (budget {BUDGET_BYTES_PER_PARTICLE})"
    );

    // Gate 2b: production-style tight cull, streaming only.
    let tight_params = TessParams::default().with_min_volume(MIN_VOLUME_TIGHT);
    let tight_path = dir.join("memgate_tight.tess");
    let tight = run_stream(&corpus, spec.side, &tight_params, &tight_path);
    let tight_bpp = tight.payload_bytes as f64 / nparticles as f64;
    println!(
        "bench_memory: tight cull (min_volume {MIN_VOLUME_TIGHT}) keeps {} cells, {} payload bytes ({tight_bpp:.1} B/particle, budget {TIGHT_BUDGET_BYTES_PER_PARTICLE})",
        tight.stats.cells, tight.payload_bytes
    );
    assert!(tight.stats.cells > 0, "tight cull dropped everything");
    assert!(
        tight_bpp <= TIGHT_BUDGET_BYTES_PER_PARTICLE,
        "tight-culled mesh costs {tight_bpp:.1} B/particle on disk (budget {TIGHT_BUDGET_BYTES_PER_PARTICLE})"
    );

    // Gate 3: bounded memory.
    println!(
        "bench_memory: allocator peak stream {} vs accumulate {} ({:.2}x), VmHWM stream {} kB -> accumulate {} kB",
        bench_harness::bytes_h(stream.peak_live_bytes),
        bench_harness::bytes_h(accum.peak_live_bytes),
        stream.peak_live_bytes as f64 / accum.peak_live_bytes.max(1) as f64,
        stream.peak_rss_kb,
        accum.peak_rss_kb,
    );
    assert!(
        (stream.peak_live_bytes as f64) <= STREAM_PEAK_FRACTION * accum.peak_live_bytes as f64,
        "streaming allocator peak {} is not under {STREAM_PEAK_FRACTION} of accumulate's {}",
        stream.peak_live_bytes,
        accum.peak_live_bytes,
    );
    if cfg!(target_os = "linux") {
        assert!(
            accum.peak_rss_kb >= stream.peak_rss_kb + MIN_HWM_GROWTH_KB,
            "accumulate arm grew VmHWM by only {} kB over streaming's {} kB (need >= {MIN_HWM_GROWTH_KB})",
            accum.peak_rss_kb.saturating_sub(stream.peak_rss_kb),
            stream.peak_rss_kb,
        );
    }

    // Gate 4: accounting overhead.
    accounting_overhead(&corpus, spec.side);

    let entry = |label: &str, mode: &str, a: &Arm| MemoryBenchEntry {
        label: label.into(),
        mode: mode.into(),
        nranks: NRANKS,
        particles: nparticles,
        cells: a.stats.cells,
        peak_live_bytes: a.peak_live_bytes,
        peak_rss_kb: a.peak_rss_kb,
        payload_bytes: a.payload_bytes,
        file_bytes: a.file_bytes,
        wall_s: a.wall_s,
    };
    let written = write_bench_memory_json(
        &[
            entry("memgate_stream_r8", "stream", &stream),
            entry("memgate_accumulate_r8", "accumulate", &accum),
            entry("memgate_stream_tight_r8", "stream", &tight),
        ],
        "memgate_",
    );
    for p in written {
        println!("bench_memory: wrote {}", p.display());
    }
    println!("bench_memory: all gates passed");
}
