//! Table I — parallel accuracy vs ghost-zone size.
//!
//! Paper setup: 64³ particles, 100 HACC steps; parallel tessellation with
//! 2/4/8 blocks and ghost sizes 0–4 (Mpc/h), compared against a serial
//! single-block reference; the table reports the % of cells matching the
//! serial version. Scaled default here: 32³ particles (override with
//! BENCH_NP / BENCH_STEPS).
//!
//! Expected shape (paper): accuracy drops as blocks grow at small ghost
//! (more block boundary → more wrong cells), and climbs to 100% once the
//! ghost is large enough (4 units at 1 Mpc/h spacing).

use std::collections::BTreeMap;

use bench_harness::{evolved_particles_cached, partition_particles, Table};
use diy::comm::Runtime;
use diy::decomposition::{Assignment, Decomposition};
use geometry::Aabb;
use tess::{tessellate, tessellate_serial, TessParams};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let np = env_usize("BENCH_NP", 32);
    let nsteps = env_usize("BENCH_STEPS", 100);
    println!("# Table I: parallel accuracy ({np}^3 particles, {nsteps} steps)");

    let particles = evolved_particles_cached(np, nsteps);
    let domain = Aabb::cube(np as f64);

    // Serial reference: one block, periodic mirroring, generous ghost.
    let reference_ghost = (np as f64 / 2.0).min(8.0);
    let (serial_block, serial_stats) = tessellate_serial(
        &particles,
        domain,
        [false; 3],
        &TessParams::default().with_ghost(reference_ghost),
    );
    let serial_vols: BTreeMap<u64, f64> = serial_block
        .cells
        .iter()
        .map(|c| (serial_block.site_id_of(c), c.volume))
        .collect();
    println!(
        "# serial reference: {} cells ({} incomplete dropped), ghost {reference_ghost}",
        serial_stats.cells, serial_stats.incomplete
    );

    let mut table = Table::new(&[
        "GhostSize",
        "CellsInSerial",
        "Blocks",
        "MatchingCells",
        "%Accuracy",
    ]);
    for ghost in [0.0, 1.0, 2.0, 3.0, 4.0] {
        for nblocks in [2usize, 4, 8] {
            let dec = Decomposition::regular(domain, nblocks, [false; 3]);
            let nranks = nblocks.min(2);
            let particles_ref = &particles;
            let serial_ref = &serial_vols;
            let dec_ref = &dec;
            let matching: u64 = Runtime::run(nranks, move |world| {
                let asn = Assignment::new(nblocks, world.nranks());
                let local = partition_particles(particles_ref, dec_ref, &asn, world.rank());
                // keep incomplete cells: the paper's parallel version
                // *computes* wrong boundary cells at small ghost rather
                // than dropping them, and the mismatch shows up here
                let params = TessParams {
                    keep_incomplete: true,
                    ..TessParams::default().with_ghost(ghost)
                };
                let r = tessellate(world, dec_ref, &asn, &local, &params);
                let my_matches: u64 = r
                    .blocks
                    .values()
                    .flat_map(|b| b.cells.iter().map(|c| (b.site_id_of(c), c.volume)))
                    .filter(|(id, vol)| {
                        serial_ref
                            .get(id)
                            .is_some_and(|sv| (vol - sv).abs() <= 1e-6 * sv.max(1e-6))
                    })
                    .count() as u64;
                world.all_reduce(my_matches, |a, b| a + b)
            })[0];
            let pct = 100.0 * matching as f64 / serial_vols.len() as f64;
            table.row(&[
                format!("{ghost:.0}"),
                serial_vols.len().to_string(),
                nblocks.to_string(),
                matching.to_string(),
                format!("{pct:.2}"),
            ]);
        }
    }
    table.print();
}
