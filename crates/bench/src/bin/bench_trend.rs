//! Trend gate over the bench-history ledger (`BENCH_HISTORY.jsonl`).
//!
//! Reads the ledger (path from the first argument, default the repo
//! root's), groups rows by `(bench, label)`, and for each group compares
//! the newest row's metrics against the **median of up to 5 preceding
//! rows**:
//!
//! * `*_per_sec` metrics fail when the latest falls more than 30% below
//!   the median;
//! * `*_ms` / `*_ns` metrics fail when the latest rises more than 30%
//!   above the median — but only past an absolute noise floor (0.25 ms /
//!   250 µs), so microsecond-scale jitter on quiet metrics never gates;
//! * other metrics are reported but never gate.
//!
//! Groups with fewer than 2 prior rows are informational (a fresh ledger
//! or a brand-new benchmark can't regress against itself). A malformed
//! ledger is always a hard failure — the writers schema-check each row,
//! so a bad line means hand-editing, merge damage, or writer drift.

use bench_harness::history::{direction, median, read_history, Direction, HistoryRow};

/// Regression threshold vs the median of prior runs.
const TOLERANCE: f64 = 0.30;
/// Prior rows considered per group (the most recent ones).
const WINDOW: usize = 5;
/// Lower-better metrics ignore deltas below this (in the metric's own
/// unit: ms for `*_ms`, ns for `*_ns` — 0.25 ms either way).
const FLOOR_MS: f64 = 0.25;
const FLOOR_NS: f64 = 250_000.0;

struct Verdict {
    group: String,
    metric: String,
    latest: f64,
    baseline: f64,
    failed: bool,
    note: &'static str,
}

/// Compare the newest row against the median of up to `WINDOW` prior
/// rows. `prior` must be oldest-first.
fn judge(group: &str, prior: &[HistoryRow], latest: &HistoryRow) -> Vec<Verdict> {
    let window: Vec<&HistoryRow> = prior.iter().rev().take(WINDOW).collect();
    let mut out = Vec::new();
    for (metric, value) in &latest.metrics {
        let samples: Vec<f64> = window
            .iter()
            .filter_map(|r| r.metrics.iter().find(|(k, _)| k == metric).map(|&(_, v)| v))
            .collect();
        if samples.is_empty() {
            continue;
        }
        let base = median(&samples);
        let (failed, note) = match direction(metric) {
            _ if samples.len() < 2 => (false, "informational (fewer than 2 prior rows)"),
            Direction::HigherBetter => (*value < (1.0 - TOLERANCE) * base, "higher is better"),
            Direction::LowerBetter => {
                let floor = if metric.ends_with("_ns") {
                    FLOOR_NS
                } else {
                    FLOOR_MS
                };
                (
                    *value > (1.0 + TOLERANCE) * base && (*value - base) > floor,
                    "lower is better",
                )
            }
            Direction::Informational => (false, "informational"),
        };
        out.push(Verdict {
            group: group.to_string(),
            metric: metric.clone(),
            latest: *value,
            baseline: base,
            failed,
            note,
        });
    }
    out
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(bench_harness::history::history_path);
    let rows = match read_history(&path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_trend: {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    if rows.is_empty() {
        eprintln!(
            "bench_trend: {} is missing or empty — run perf_smoke / bench_service first",
            path.display()
        );
        std::process::exit(1);
    }

    // Group by (bench, label), preserving append (= chronological) order.
    let mut groups: Vec<(String, Vec<HistoryRow>)> = Vec::new();
    for r in rows {
        let key = format!("{}/{}", r.bench, r.label);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push(r),
            None => groups.push((key, vec![r])),
        }
    }

    let mut failures = 0usize;
    for (key, rows) in &groups {
        let (latest, prior) = rows.split_last().expect("group is non-empty");
        for v in judge(key, prior, latest) {
            let delta_pct = if v.baseline != 0.0 {
                100.0 * (v.latest - v.baseline) / v.baseline
            } else {
                0.0
            };
            let status = if v.failed { "FAIL" } else { "ok" };
            println!(
                "bench_trend: [{status}] {} {} = {:.3} vs median-of-{} {:.3} ({delta_pct:+.1}%, {})",
                v.group,
                v.metric,
                v.latest,
                prior.len().min(WINDOW),
                v.baseline,
                v.note,
            );
            if v.failed {
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!(
            "bench_trend: {failures} metric(s) regressed >{:.0}% vs the recent median",
            100.0 * TOLERANCE
        );
        std::process::exit(1);
    }
    println!(
        "bench_trend: {} group(s) within {:.0}% of their recent medians — OK",
        groups.len(),
        100.0 * TOLERANCE
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(cps: f64, p99: f64) -> HistoryRow {
        HistoryRow {
            t_unix_s: 1,
            bench: "perf_smoke".into(),
            label: "l".into(),
            git: "g".into(),
            metrics: vec![
                ("stream_cells_per_sec".into(), cps),
                ("p99_ms".into(), p99),
                ("cells".into(), 100.0),
            ],
        }
    }

    fn failures(prior: &[HistoryRow], latest: &HistoryRow) -> Vec<String> {
        judge("g", prior, latest)
            .into_iter()
            .filter(|v| v.failed)
            .map(|v| v.metric)
            .collect()
    }

    #[test]
    fn within_tolerance_passes() {
        let prior = vec![row(100.0, 1.0), row(110.0, 1.1), row(90.0, 0.9)];
        assert_eq!(failures(&prior, &row(80.0, 1.2)), Vec::<String>::new());
    }

    #[test]
    fn throughput_drop_fails() {
        let prior = vec![row(100.0, 1.0), row(100.0, 1.0)];
        assert_eq!(
            failures(&prior, &row(65.0, 1.0)),
            vec!["stream_cells_per_sec"]
        );
    }

    #[test]
    fn latency_rise_fails_past_the_floor() {
        let prior = vec![row(100.0, 1.0), row(100.0, 1.0)];
        assert_eq!(failures(&prior, &row(100.0, 2.0)), vec!["p99_ms"]);
        // A 50% rise on a microsecond-scale metric stays under the
        // absolute floor and passes.
        let quiet = vec![row(100.0, 0.1), row(100.0, 0.1)];
        assert_eq!(failures(&quiet, &row(100.0, 0.15)), Vec::<String>::new());
    }

    #[test]
    fn median_of_window_absorbs_one_outlier() {
        // One freak-slow prior run must not poison the baseline.
        let prior = vec![
            row(100.0, 1.0),
            row(100.0, 1.0),
            row(100.0, 20.0),
            row(100.0, 1.0),
            row(100.0, 1.0),
        ];
        assert_eq!(failures(&prior, &row(100.0, 1.2)), Vec::<String>::new());
    }

    #[test]
    fn only_last_window_rows_count() {
        // 6 priors; the oldest (very fast) falls outside the window of 5.
        let mut prior = vec![row(1000.0, 1.0)];
        prior.extend((0..5).map(|_| row(100.0, 1.0)));
        assert_eq!(failures(&prior, &row(90.0, 1.0)), Vec::<String>::new());
    }

    #[test]
    fn single_prior_row_is_informational() {
        let prior = vec![row(100.0, 1.0)];
        assert_eq!(failures(&prior, &row(10.0, 50.0)), Vec::<String>::new());
        let verdicts = judge("g", &prior, &row(10.0, 50.0));
        assert!(
            verdicts.iter().all(|v| v.note.contains("fewer than 2")),
            "single prior must be informational"
        );
    }

    #[test]
    fn informational_metrics_never_gate() {
        let prior = vec![row(100.0, 1.0), row(100.0, 1.0)];
        let mut latest = row(100.0, 1.0);
        latest.metrics = vec![("cells".into(), 1.0)];
        assert_eq!(failures(&prior, &latest), Vec::<String>::new());
    }
}
