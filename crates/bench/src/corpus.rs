//! Clustered particle corpora shared by the benches and the integration
//! tests.
//!
//! Cosmological particle sets are nothing like uniform: most mass sits in
//! halo clumps strung along filaments, with voids in between. That
//! anisotropy is what gives the streamed kernel its edge (void cells are
//! large and elongated, so ordered emission + the support prefilter prune
//! hardest there) and what breaks volume-uniform block decompositions
//! (one octant holds most of the particles). The generator here is the
//! single seeded source of such corpora; the kernel-equivalence and
//! adversarial-corpus tests and the decomposition A/B benches all draw
//! from it instead of keeping private copies.

use geometry::Vec3;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Recipe for a seeded clustered corpus: Gaussian halo clumps, an optional
/// diagonal filament, and a sparse uniform background.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Box side; points live in `[0, side)^3` (wrapped periodically).
    pub side: f64,
    /// Number of Gaussian halo clumps.
    pub nclumps: usize,
    /// Points per clump.
    pub per_clump: usize,
    /// Clump width as a fraction of `side`.
    pub sigma_frac: f64,
    /// Every k-th clump point is drawn at 8x the clump width (an NFW-ish
    /// outskirt); 0 disables outliers.
    pub outlier_every: usize,
    /// Points strung along the main diagonal of the clustered region with
    /// clump-width jitter.
    pub filament: usize,
    /// Uniform background points over the whole box.
    pub background: usize,
    /// Clump centers and the filament live in `[0, cluster_frac * side)`
    /// per axis. 1.0 spreads structure over the whole box; smaller values
    /// pile the mass into the low corner and leave the far corner a void —
    /// the adversarial case for volume-uniform decompositions.
    pub cluster_frac: f64,
    pub seed: u64,
}

impl ClusterSpec {
    /// Whole-box clustering with no filament or outliers: the shape the
    /// kernel-equivalence tests use.
    pub fn halos(
        side: f64,
        nclumps: usize,
        per_clump: usize,
        background: usize,
        seed: u64,
    ) -> Self {
        ClusterSpec {
            side,
            nclumps,
            per_clump,
            sigma_frac: 0.02,
            outlier_every: 0,
            filament: 0,
            background,
            cluster_frac: 1.0,
            seed,
        }
    }

    /// Corner-heavy corpus: clumps and filament confined to the low-corner
    /// octant, so a volume-uniform 8-block decomposition gives one rank
    /// several times its fair share while a particle-balanced one spreads
    /// them evenly. The background is dense enough that every void cell
    /// certifies within one block extent of ghosts under either scheme
    /// (the adaptive protocol cannot reach past the 1-ring).
    pub fn corner_heavy(side: f64, nclumps: usize, per_clump: usize, seed: u64) -> Self {
        ClusterSpec {
            side,
            nclumps,
            per_clump,
            sigma_frac: 0.015,
            outlier_every: 0,
            filament: nclumps * per_clump / 8,
            background: 2 * nclumps * per_clump,
            cluster_frac: 0.45,
            seed,
        }
    }

    pub fn total_points(&self) -> usize {
        self.nclumps * self.per_clump + self.filament + self.background
    }

    /// Generate the corpus: `(id, position)` with ids `0..n`, positions
    /// wrapped into `[0, side)^3`. Deterministic in the spec.
    pub fn generate(&self) -> Vec<(u64, Vec3)> {
        let side = self.side;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let sigma = side * self.sigma_frac;
        // Box-Muller; the rand shim has no normal distribution.
        let gauss = |rng: &mut ChaCha8Rng, sigma: f64| {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            sigma * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        let wrap = |p: Vec3| {
            Vec3::new(
                p.x.rem_euclid(side),
                p.y.rem_euclid(side),
                p.z.rem_euclid(side),
            )
        };
        let reach = self.cluster_frac * side;
        let mut pts = Vec::with_capacity(self.total_points());
        for _ in 0..self.nclumps {
            let c = Vec3::new(
                rng.gen_range(0.0..reach),
                rng.gen_range(0.0..reach),
                rng.gen_range(0.0..reach),
            );
            for i in 0..self.per_clump {
                let s = if self.outlier_every > 0 && (i + 1) % self.outlier_every == 0 {
                    sigma * 8.0
                } else {
                    sigma
                };
                let d = Vec3::new(gauss(&mut rng, s), gauss(&mut rng, s), gauss(&mut rng, s));
                pts.push(wrap(c + d));
            }
        }
        for _ in 0..self.filament {
            let t: f64 = rng.gen_range(0.0..1.0);
            let d = Vec3::new(
                gauss(&mut rng, sigma),
                gauss(&mut rng, sigma),
                gauss(&mut rng, sigma),
            );
            pts.push(wrap(Vec3::new(t * reach, t * reach, t * reach) + d));
        }
        for _ in 0..self.background {
            pts.push(Vec3::new(
                rng.gen_range(0.0..side),
                rng.gen_range(0.0..side),
                rng.gen_range(0.0..side),
            ));
        }
        pts.into_iter()
            .enumerate()
            .map(|(i, p)| (i as u64, p))
            .collect()
    }
}

/// Convenience wrapper matching the historical test-local generators:
/// whole-box Gaussian clumps plus a uniform background.
pub fn clustered(
    side: f64,
    nclumps: usize,
    per_clump: usize,
    background: usize,
    seed: u64,
) -> Vec<(u64, Vec3)> {
    ClusterSpec::halos(side, nclumps, per_clump, background, seed).generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_in_bounds() {
        let spec = ClusterSpec::corner_heavy(16.0, 24, 40, 7);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.len(), spec.total_points());
        assert_eq!(a, b, "same spec must generate the same corpus");
        for &(_, p) in &a {
            for v in [p.x, p.y, p.z] {
                assert!((0.0..16.0).contains(&v), "point {p:?} escaped the box");
            }
        }
        // Seed changes the corpus.
        let c = ClusterSpec::corner_heavy(16.0, 24, 40, 8).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn corner_heavy_piles_mass_into_one_octant() {
        let spec = ClusterSpec::corner_heavy(16.0, 24, 40, 7);
        let pts = spec.generate();
        let low = pts
            .iter()
            .filter(|(_, p)| p.x < 8.0 && p.y < 8.0 && p.z < 8.0)
            .count();
        // A volume-uniform 2x2x2 decomposition would give this octant 1/8
        // of the mass; the clumps and filament pile >= 3x that fair share
        // there (the background is uniform, so it dilutes but cannot
        // equalize), which is what drives the >= 3.0 rank-imbalance gate.
        assert!(
            low * 8 >= pts.len() * 3,
            "low octant holds {low}/{} points",
            pts.len()
        );
    }
}
