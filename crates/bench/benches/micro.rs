//! Criterion microbenchmarks for the hot kernels, including the
//! Clip-vs-Quickhull ablation from DESIGN.md.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use geometry::predicates::{insphere, orient3d};
use geometry::{convex_hull, Aabb, ConvexPolyhedron, Plane, Vec3};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn jittered_lattice(n: usize, seed: u64) -> Vec<Vec3> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n * n * n)
        .map(|idx| {
            let i = (idx % n) as f64;
            let j = ((idx / n) % n) as f64;
            let k = (idx / (n * n)) as f64;
            Vec3::new(
                i + 0.5 + rng.gen_range(-0.3..0.3),
                j + 0.5 + rng.gen_range(-0.3..0.3),
                k + 0.5 + rng.gen_range(-0.3..0.3),
            )
        })
        .collect()
}

fn bench_predicates(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let pts: Vec<Vec3> = (0..1000)
        .map(|_| {
            Vec3::new(
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            )
        })
        .collect();
    c.bench_function("orient3d_filtered", |b| {
        let mut i = 0;
        b.iter(|| {
            let r = orient3d(
                pts[i % 997],
                pts[(i + 1) % 997],
                pts[(i + 2) % 997],
                pts[(i + 3) % 997],
            );
            i += 1;
            black_box(r)
        })
    });
    c.bench_function("insphere_filtered", |b| {
        let mut i = 0;
        b.iter(|| {
            let r = insphere(
                pts[i % 991],
                pts[(i + 1) % 991],
                pts[(i + 2) % 991],
                pts[(i + 3) % 991],
                pts[(i + 4) % 991],
            );
            i += 1;
            black_box(r)
        })
    });
}

fn bench_clipping(c: &mut Criterion) {
    // one Voronoi-cell-like clipping sequence
    let site = Vec3::splat(4.5);
    let pts = jittered_lattice(9, 2);
    c.bench_function("cell_clip_sequence", |b| {
        b.iter(|| {
            let mut poly = ConvexPolyhedron::from_aabb(&Aabb::cube(9.0));
            for &q in pts.iter().take(60) {
                if q.dist2(site) > 1e-12 {
                    if let Some(plane) = Plane::bisector(site, q) {
                        poly.clip(&plane, Some(1), 1e-9);
                    }
                }
            }
            black_box(poly.volume())
        })
    });
}

fn bench_hull_ablation(c: &mut Criterion) {
    // the paper's Qhull path (hull of cell vertices) vs the native clip
    // measures of the same cell
    let site = Vec3::splat(4.5);
    let pts = jittered_lattice(9, 3);
    let mut poly = ConvexPolyhedron::from_aabb(&Aabb::cube(9.0));
    for &q in &pts {
        if q.dist2(site) > 1e-12 {
            if let Some(plane) = Plane::bisector(site, q) {
                poly.clip(&plane, Some(1), 1e-9);
            }
        }
    }
    c.bench_function("ablation_volume_clip", |b| {
        b.iter(|| black_box(poly.volume() + poly.surface_area()))
    });
    c.bench_function("ablation_volume_quickhull", |b| {
        b.iter(|| {
            let h = convex_hull(&poly.verts, 1e-9).unwrap();
            black_box(h.volume() + h.surface_area())
        })
    });
}

fn bench_quickhull(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let pts: Vec<Vec3> = (0..200)
        .map(|_| {
            Vec3::new(
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
            )
        })
        .collect();
    c.bench_function("quickhull_200pts", |b| {
        b.iter(|| black_box(convex_hull(&pts, 1e-9).unwrap().faces.len()))
    });
}

fn bench_fft(c: &mut Criterion) {
    use fft3d::{fft3_forward, Complex, Grid3};
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut grid = Grid3::new([32, 32, 32], Complex::ZERO);
    for v in grid.data_mut() {
        *v = Complex::new(rng.gen_range(-1.0..1.0), 0.0);
    }
    c.bench_function("fft3d_32cubed", |b| {
        b.iter(|| {
            let mut g = grid.clone();
            fft3_forward(&mut g);
            black_box(g[(1, 1, 1)])
        })
    });
}

fn bench_cic(c: &mut Criterion) {
    use fft3d::Grid3;
    let pts = jittered_lattice(16, 6);
    c.bench_function("cic_deposit_4096", |b| {
        b.iter(|| {
            let mut rho = Grid3::new([16, 16, 16], 0.0);
            hacc::cic::deposit(&mut rho, &pts);
            black_box(rho[(0, 0, 0)])
        })
    });
}

fn bench_delaunay(c: &mut Criterion) {
    let pts = jittered_lattice(6, 7);
    c.bench_function("delaunay_216pts", |b| {
        b.iter(|| {
            let dt = delaunay::Delaunay::new(&pts).unwrap();
            black_box(dt.tetrahedra().len())
        })
    });
}

fn bench_exchange(c: &mut Criterion) {
    use diy::codec::{Decode, Encode};
    // codec throughput for a particle-like payload
    let payload: Vec<(u64, Vec3)> = jittered_lattice(8, 8)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (i as u64, p))
        .collect();
    c.bench_function("codec_roundtrip_512_particles", |b| {
        b.iter(|| {
            let bytes = payload.to_bytes();
            let back = Vec::<(u64, Vec3)>::from_bytes(&bytes).unwrap();
            black_box(back.len())
        })
    });
}

fn bench_histogram(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let samples: Vec<f64> = (0..100_000).map(|_| rng.gen_range(0.0..2.0)).collect();
    c.bench_function("histogram_100k", |b| {
        b.iter(|| {
            let h = postprocess::Histogram::from_samples(samples.iter().copied(), 0.0, 2.0, 100);
            black_box(h.kurtosis())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_predicates, bench_clipping, bench_hull_ablation, bench_quickhull,
              bench_fft, bench_cic, bench_delaunay, bench_exchange, bench_histogram
}
criterion_main!(benches);
