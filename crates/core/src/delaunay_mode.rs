//! Parallel Delaunay output mode.
//!
//! The paper notes (§I) that the same ghost-exchange + local-computation
//! pattern applies to Delaunay tetrahedralizations, and tess's successor
//! library emits them; this module does exactly that. Each block
//! triangulates its own + ghost particles with the Bowyer–Watson engine,
//! then keeps a tetrahedron only when
//!
//! 1. its lowest-global-id vertex is one of the block's *original*
//!    particles (the duplicate-resolution rule — each tet has exactly one
//!    owner across blocks), and
//! 2. its circumsphere lies inside the ghosted region (the Delaunay
//!    analogue of the cell security radius: no unseen particle can
//!    invalidate the empty-circumsphere property).
//!
//! The union of owned, certified tetrahedra over all blocks is then
//! exactly the global (periodic) Delaunay tetrahedralization.

use delaunay::Delaunay;
use diy::codec::{CodecError, Decode, Encode, Reader};
use geometry::measures::tetra_circumcenter;
use geometry::{Aabb, Vec3};

/// One block's share of the distributed Delaunay tessellation.
#[derive(Debug, Clone, PartialEq)]
pub struct DelaunayBlock {
    pub gid: u64,
    pub bounds: Aabb,
    /// Tetrahedra as global particle ids, each sorted ascending.
    pub tets: Vec<[u64; 4]>,
    /// Tets dropped because their circumsphere left the ghost region.
    pub uncertified: u64,
}

impl Encode for DelaunayBlock {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.gid.encode(buf);
        self.bounds.encode(buf);
        self.tets.encode(buf);
        self.uncertified.encode(buf);
    }
}

impl Decode for DelaunayBlock {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(DelaunayBlock {
            gid: u64::decode(r)?,
            bounds: Aabb::decode(r)?,
            tets: Vec::<[u64; 4]>::decode(r)?,
            uncertified: u64::decode(r)?,
        })
    }
}

/// Tetrahedralize one block. `own`/`ghosts` as in
/// [`crate::block::tessellate_block`]; ghost images carry the *original*
/// particle's global id, so seam tets come out with torus-consistent
/// vertex ids.
pub fn delaunay_block(
    gid: u64,
    bounds: Aabb,
    own: &[(u64, Vec3)],
    ghosts: &[(u64, Vec3)],
    ghost_size: f64,
) -> Result<DelaunayBlock, delaunay::DelaunayError> {
    let region = bounds.grown(ghost_size);
    let mut ids: Vec<u64> = Vec::with_capacity(own.len() + ghosts.len());
    let mut pts: Vec<Vec3> = Vec::with_capacity(own.len() + ghosts.len());
    for &(id, p) in own.iter().chain(ghosts) {
        ids.push(id);
        pts.push(p);
    }
    let n_own = own.len();

    if pts.len() < 4 {
        return Ok(DelaunayBlock {
            gid,
            bounds,
            tets: Vec::new(),
            uncertified: 0,
        });
    }
    let dt = Delaunay::new(&pts)?;

    let mut tets: Vec<[u64; 4]> = Vec::new();
    let mut uncertified = 0u64;
    for t in dt.tetrahedra() {
        // ownership: the minimum *global id* vertex must be an original
        // particle of this block
        let gids = [
            ids[t[0] as usize],
            ids[t[1] as usize],
            ids[t[2] as usize],
            ids[t[3] as usize],
        ];
        let (min_slot, _) = gids
            .iter()
            .enumerate()
            .min_by_key(|(_, &g)| g)
            .expect("4 vertices");
        if (t[min_slot] as usize) >= n_own {
            continue; // the min-id vertex is a ghost: another block owns it
        }
        // certification: circumsphere inside the known region
        let (a, b, c, d) = (
            pts[t[0] as usize],
            pts[t[1] as usize],
            pts[t[2] as usize],
            pts[t[3] as usize],
        );
        let Some(cc) = tetra_circumcenter(a, b, c, d) else {
            uncertified += 1;
            continue;
        };
        let radius = cc.dist(a);
        let inside = region.contains_closed(cc) && region.interior_distance(cc) >= radius;
        if !inside {
            uncertified += 1;
            continue;
        }
        let mut sorted = gids;
        sorted.sort_unstable();
        tets.push(sorted);
    }
    tets.sort_unstable();
    Ok(DelaunayBlock {
        gid,
        bounds,
        tets,
        uncertified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ghost::exchange_ghosts;
    use diy::comm::Runtime;
    use diy::decomposition::{Assignment, Decomposition};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use std::collections::BTreeMap;

    fn random_points(n: usize, box_len: f64, seed: u64) -> Vec<(u64, Vec3)> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n as u64)
            .map(|id| {
                (
                    id,
                    Vec3::new(
                        rng.gen_range(0.0..box_len),
                        rng.gen_range(0.0..box_len),
                        rng.gen_range(0.0..box_len),
                    ),
                )
            })
            .collect()
    }

    /// The union of block tet sets must be independent of the block count
    /// (the global periodic Delaunay), with no duplicates.
    #[test]
    fn parallel_tets_are_consistent_across_block_counts() {
        let box_len = 6.0;
        let particles = random_points(150, box_len, 9);
        let domain = Aabb::cube(box_len);
        let ghost = 3.0;

        let run = |nblocks: usize| -> Vec<[u64; 4]> {
            let dec = Decomposition::regular(domain, nblocks, [true; 3]);
            let particles_ref = &particles;
            let dec_ref = &dec;
            let out = Runtime::run(2.min(nblocks), move |world| {
                let asn = Assignment::new(nblocks, world.nranks());
                let mut local: BTreeMap<u64, Vec<(u64, Vec3)>> = asn
                    .blocks_of_rank(world.rank())
                    .map(|g| (g, Vec::new()))
                    .collect();
                for &(id, p) in particles_ref {
                    let g = dec_ref.block_of_point(p);
                    if let Some(v) = local.get_mut(&g) {
                        v.push((id, p));
                    }
                }
                let ghosts = exchange_ghosts(world, dec_ref, &asn, &local, ghost);
                let mut tets = Vec::new();
                for (&g, own) in &local {
                    let empty = Vec::new();
                    let gh = ghosts.get(&g).unwrap_or(&empty);
                    let block = delaunay_block(g, dec_ref.block_bounds(g), own, gh, ghost).unwrap();
                    tets.extend(block.tets);
                }
                tets
            });
            let mut all: Vec<[u64; 4]> = out.into_iter().flatten().collect();
            all.sort_unstable();
            all
        };

        let single = run(1);
        assert!(!single.is_empty());
        // no duplicates in the single-block (periodic) set
        let mut dedup = single.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), single.len());

        for nblocks in [2usize, 8] {
            let multi = run(nblocks);
            assert_eq!(multi, single, "nblocks={nblocks}");
        }
    }

    #[test]
    fn lattice_block_tets_fill_expected_volume() {
        // interior of a lattice: every kept tet has positive volume and
        // vertices are lattice ids
        let n = 5;
        let own: Vec<(u64, Vec3)> = (0..n * n * n)
            .map(|i| {
                (
                    i as u64,
                    Vec3::new(
                        (i % n) as f64 + 0.5,
                        ((i / n) % n) as f64 + 0.5,
                        (i / (n * n)) as f64 + 0.5,
                    ),
                )
            })
            .collect();
        let bounds = Aabb::cube(n as f64);
        let block = delaunay_block(0, bounds, &own, &[], 2.0).unwrap();
        assert!(!block.tets.is_empty());
        for t in &block.tets {
            assert!(t.windows(2).all(|w| w[0] < w[1]), "sorted ids {t:?}");
            assert!(t[3] < (n * n * n) as u64);
        }
        // kept tets tile the convex hull of the lattice: [0.5, 4.5]³
        let pos = |id: u64| own[id as usize].1;
        let total: f64 = block
            .tets
            .iter()
            .map(|t| geometry::measures::tetra_volume(pos(t[0]), pos(t[1]), pos(t[2]), pos(t[3])))
            .sum();
        assert!((total - 64.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn empty_and_tiny_blocks_are_fine() {
        let bounds = Aabb::cube(1.0);
        let b = delaunay_block(0, bounds, &[], &[], 1.0).unwrap();
        assert!(b.tets.is_empty());
        let two = vec![(0u64, Vec3::splat(0.2)), (1, Vec3::splat(0.8))];
        let b = delaunay_block(0, bounds, &two, &[], 1.0).unwrap();
        assert!(b.tets.is_empty());
    }
}
