//! Per-block tessellation: serial local computation (parallel over sites
//! with rayon — the paper's intra-node OpenMP analogue in Figure 3).

use std::collections::HashMap;

use geometry::{Aabb, Vec3};
use rayon::prelude::*;

use crate::cell::compute_cell;
use crate::grid::CandidateGrid;
use crate::model::{Cell, Face, MeshBlock, NO_NEIGHBOR};
use crate::params::{HullMode, TessParams};
use crate::stats::TessStats;

/// Per-block certification summary for the adaptive ghost loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockCertification {
    /// Ghost radius that would certify every currently-uncertified cell,
    /// assuming no farther particle cuts them: max over those cells of
    /// `2 × (site → farthest vertex) − distance(site, block wall)`. A lower
    /// bound — a grown region can expose new vertices — so the adaptive
    /// loop iterates on it rather than trusting it once.
    pub needed_ghost: f64,
    /// Uncertified cells the bound covers (dropped or kept-incomplete ones;
    /// culled cells are excluded — culling an underestimate-only volume is
    /// already final).
    pub uncertified: u64,
}

/// Tessellate one block: `own` are the block's original particles, `ghosts`
/// the received halo particles (already in this block's frame).
pub fn tessellate_block(
    gid: u64,
    bounds: Aabb,
    own: &[(u64, Vec3)],
    ghosts: &[(u64, Vec3)],
    ghost_size: f64,
    params: &TessParams,
) -> (MeshBlock, TessStats) {
    let (block, stats, _) =
        tessellate_block_certified(gid, bounds, own, ghosts, ghost_size, params);
    (block, stats)
}

/// [`tessellate_block`] variant that also reports how much more ghost
/// radius the block's uncertified cells would need (the adaptive ghost
/// loop's per-block feedback signal).
pub fn tessellate_block_certified(
    gid: u64,
    bounds: Aabb,
    own: &[(u64, Vec3)],
    ghosts: &[(u64, Vec3)],
    ghost_size: f64,
    params: &TessParams,
) -> (MeshBlock, TessStats, BlockCertification) {
    let region = bounds.grown(ghost_size);

    // Own particles first so candidate index == own index for sites.
    let n_own = own.len();
    let mut ids: Vec<u64> = Vec::with_capacity(n_own + ghosts.len());
    let mut pts: Vec<Vec3> = Vec::with_capacity(n_own + ghosts.len());
    for &(id, p) in own.iter().chain(ghosts) {
        ids.push(id);
        pts.push(p);
    }

    let grid = CandidateGrid::build(region, &pts, 2.0);
    let cull_diam2 = params.cull_diameter().map(|d| d * d);

    struct Kept {
        site_idx: u32,
        volume: f64,
        area: f64,
        complete: bool,
        faces: Vec<(u64, Vec<Vec3>)>, // neighbor id + face points
    }

    enum Outcome {
        Kept(Box<Kept>),
        Incomplete,
        CulledEarly,
        CulledLate,
    }

    let outcomes: Vec<(Outcome, f64)> = (0..n_own)
        .into_par_iter()
        .map(|i| {
            let site = pts[i];
            let cell = compute_cell(site, i as u32, &pts, &grid, &region, params.eps);
            // Radius bound an uncertified cell needs: the security ball
            // (2× site→farthest-vertex) must fit inside the grown region,
            // so the halo must extend that far past the block wall.
            let needed = if cell.complete {
                0.0
            } else {
                let sec = 2.0 * cell.poly.max_vertex_dist2(site).sqrt();
                (sec - bounds.interior_distance(site)).max(0.0)
            };
            if !cell.complete && !params.keep_incomplete {
                return (Outcome::Incomplete, needed);
            }
            // Early conservative cull (before any hull work). Valid even
            // for uncertified cells: unknown particles only shrink them.
            if let Some(d2) = cull_diam2 {
                if cell.poly.max_pairwise_dist2() < d2 {
                    return (Outcome::CulledEarly, 0.0);
                }
            }
            // Volume / area: native clip path or the paper's Qhull path.
            let (volume, area) = match params.hull_mode {
                HullMode::Clip => (cell.poly.volume(), cell.poly.surface_area()),
                HullMode::Quickhull => match geometry::convex_hull(&cell.poly.verts, params.eps) {
                    Ok(h) => (h.volume(), h.surface_area()),
                    Err(_) => (cell.poly.volume(), cell.poly.surface_area()),
                },
            };
            // Exact cull after the volume is known.
            if let Some(minv) = params.min_volume {
                if volume < minv {
                    return (Outcome::CulledLate, 0.0);
                }
            }
            let faces = cell
                .poly
                .faces
                .iter()
                .map(|f| {
                    let nbr = f
                        .neighbor
                        .map(|cand| ids[cand as usize])
                        .unwrap_or(NO_NEIGHBOR);
                    (nbr, cell.poly.face_points(f))
                })
                .collect();
            (
                Outcome::Kept(Box::new(Kept {
                    site_idx: i as u32,
                    volume,
                    area,
                    complete: cell.complete,
                    faces,
                })),
                needed,
            )
        })
        .collect();

    // Assemble the block (serial: vertex dedup is a shared hash map).
    let mut stats = TessStats {
        sites: n_own as u64,
        ghosts_received: ghosts.len() as u64,
        ..Default::default()
    };
    let mut block = MeshBlock::empty(gid, bounds);
    let mut vert_index: HashMap<(i64, i64, i64), u32> = HashMap::new();
    // Quantization for vertex dedup within a block: 1e-6 domain units.
    let quant = |p: Vec3| {
        (
            (p.x * 1e6).round() as i64,
            (p.y * 1e6).round() as i64,
            (p.z * 1e6).round() as i64,
        )
    };

    let mut cert = BlockCertification::default();
    for (outcome, needed) in outcomes {
        match outcome {
            Outcome::Incomplete => {
                stats.incomplete += 1;
                cert.uncertified += 1;
                cert.needed_ghost = cert.needed_ghost.max(needed);
            }
            Outcome::CulledEarly => stats.culled_early += 1,
            Outcome::CulledLate => stats.culled_late += 1,
            Outcome::Kept(kept) => {
                let site_idx = block.particles.len() as u32;
                block.particles.push(pts[kept.site_idx as usize]);
                block.site_ids.push(ids[kept.site_idx as usize]);
                if !kept.complete {
                    stats.incomplete_kept += 1;
                    cert.uncertified += 1;
                    cert.needed_ghost = cert.needed_ghost.max(needed);
                }
                let faces = kept
                    .faces
                    .into_iter()
                    .map(|(nbr, points)| Face {
                        neighbor: nbr,
                        verts: points
                            .into_iter()
                            .map(|p| {
                                *vert_index.entry(quant(p)).or_insert_with(|| {
                                    block.verts.push(p);
                                    (block.verts.len() - 1) as u32
                                })
                            })
                            .collect(),
                    })
                    .collect();
                block.cells.push(Cell {
                    site_idx,
                    volume: kept.volume,
                    area: kept.area,
                    complete: kept.complete,
                    faces,
                });
                stats.cells += 1;
            }
        }
    }
    stats.verts = block.verts.len() as u64;
    stats.faces = block.num_faces() as u64;
    (block, stats, cert)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lattice_particles(n: usize, spacing: f64) -> Vec<(u64, Vec3)> {
        (0..n * n * n)
            .map(|idx| {
                let i = idx % n;
                let j = (idx / n) % n;
                let k = idx / (n * n);
                (
                    idx as u64,
                    Vec3::new(
                        (i as f64 + 0.5) * spacing,
                        (j as f64 + 0.5) * spacing,
                        (k as f64 + 0.5) * spacing,
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn interior_cells_of_a_lattice_block() {
        let n = 6;
        let own = lattice_particles(n, 1.0);
        let bounds = Aabb::cube(n as f64);
        let params = TessParams::default().with_ghost(2.0);
        let (block, stats) = tessellate_block(0, bounds, &own, &[], 2.0, &params);
        // no ghosts: only cells ≥ 2 cells from the wall can certify
        assert!(stats.cells > 0);
        assert_eq!(stats.cells + stats.incomplete, (n * n * n) as u64);
        for c in &block.cells {
            assert!((c.volume - 1.0).abs() < 1e-9);
            assert!((c.area - 6.0).abs() < 1e-9);
            assert!(c.complete);
            assert_eq!(c.faces.len(), 6);
            for f in &c.faces {
                assert_ne!(f.neighbor, NO_NEIGHBOR);
                assert_eq!(f.verts.len(), 4);
            }
        }
    }

    #[test]
    fn certification_reports_the_radius_incomplete_cells_need() {
        let n = 6;
        let own = lattice_particles(n, 1.0);
        let bounds = Aabb::cube(n as f64);
        let params = TessParams::default().with_ghost(0.5);
        let (_, stats, cert) = tessellate_block_certified(0, bounds, &own, &[], 0.5, &params);
        assert!(stats.incomplete > 0);
        assert_eq!(cert.uncertified, stats.incomplete);
        // a boundary cell's security ball reaches past the current halo, so
        // the requested radius must strictly exceed it
        assert!(cert.needed_ghost > 0.5, "needed {}", cert.needed_ghost);

        // kept-incomplete cells count as uncertified too
        let keep = TessParams {
            keep_incomplete: true,
            ..params
        };
        let (_, s2, c2) = tessellate_block_certified(0, bounds, &own, &[], 0.5, &keep);
        assert_eq!(s2.incomplete, 0);
        assert_eq!(c2.uncertified, s2.incomplete_kept);
        assert!((c2.needed_ghost - cert.needed_ghost).abs() < 1e-12);
    }

    #[test]
    fn vertex_dedup_shares_vertices_between_cells() {
        let n = 4;
        let own = lattice_particles(n, 1.0);
        let bounds = Aabb::cube(n as f64);
        let params = TessParams {
            keep_incomplete: true,
            ..TessParams::default().with_ghost(1.5)
        };
        let (block, stats) = tessellate_block(0, bounds, &own, &[], 1.5, &params);
        assert_eq!(stats.cells, (n * n * n) as u64);
        // interior lattice vertices are shared by up to 8 cells; the dedup
        // must make verts far fewer than 8 per cell × cells
        let naive: usize = block
            .cells
            .iter()
            .map(|c| c.faces.iter().map(|f| f.verts.len()).sum::<usize>())
            .sum();
        assert!(
            (block.verts.len() as f64) < naive as f64 / 2.5,
            "verts {} vs naive {naive}",
            block.verts.len()
        );
    }

    #[test]
    fn volume_threshold_culls_small_cells() {
        let n = 5;
        let own = lattice_particles(n, 1.0);
        let bounds = Aabb::cube(n as f64);
        // Complete cells are the interior 3³ unit cubes (no ghosts, so the
        // outer layer touches the region walls). Threshold 2 kills them all.
        let params = TessParams::default().with_ghost(2.0).with_min_volume(2.0);
        let (block, stats) = tessellate_block(0, bounds, &own, &[], 2.0, &params);
        assert_eq!(block.cells.len(), 0);
        // diameter sqrt(3) ≈ 1.73 exceeds the cull diameter for V=2
        // (≈1.56), so unit cells pass the conservative early test and die
        // only after exact volume computation
        assert_eq!(stats.culled_early, 0);
        assert_eq!(stats.culled_late, 27);
        assert_eq!(stats.incomplete, (n * n * n - 27) as u64);

        // threshold of 0.5 keeps every complete unit cell
        let params = TessParams::default().with_ghost(2.0).with_min_volume(0.5);
        let (block, _) = tessellate_block(0, bounds, &own, &[], 2.0, &params);
        assert_eq!(block.cells.len(), 27);
    }

    #[test]
    fn early_cull_triggers_for_tiny_cells() {
        // Dense cluster of particles → tiny cells; threshold far above
        // their diameter bound culls them before hull work.
        let mut own: Vec<(u64, Vec3)> = Vec::new();
        let mut id = 0u64;
        for i in 0..6 {
            for j in 0..6 {
                for k in 0..6 {
                    own.push((
                        id,
                        Vec3::new(
                            2.0 + i as f64 * 0.05,
                            2.0 + j as f64 * 0.05,
                            2.0 + k as f64 * 0.05,
                        ),
                    ));
                    id += 1;
                }
            }
        }
        let bounds = Aabb::cube(4.0);
        let params = TessParams::default().with_ghost(0.5).with_min_volume(10.0);
        let (block, stats) = tessellate_block(0, bounds, &own, &[], 0.5, &params);
        assert_eq!(block.cells.len(), 0);
        // interior cluster cells are tiny (0.05³-scale): their diameter is
        // far below the V=10 cull diameter, so the conservative early test
        // removes them without any hull work
        assert!(stats.culled_early > 0, "early {}", stats.culled_early);
        assert_eq!(stats.culled_late, 0);
    }

    #[test]
    fn hull_mode_matches_clip_mode() {
        let n = 5;
        let own = lattice_particles(n, 1.0);
        let bounds = Aabb::cube(n as f64);
        let base = TessParams::default().with_ghost(2.0);
        let clip = TessParams {
            hull_mode: HullMode::Clip,
            ..base
        };
        let hull = TessParams {
            hull_mode: HullMode::Quickhull,
            ..base
        };
        let (b1, _) = tessellate_block(0, bounds, &own, &[], 2.0, &clip);
        let (b2, _) = tessellate_block(0, bounds, &own, &[], 2.0, &hull);
        assert_eq!(b1.cells.len(), b2.cells.len());
        for (c1, c2) in b1.cells.iter().zip(&b2.cells) {
            assert!(
                (c1.volume - c2.volume).abs() < 1e-9,
                "{} vs {}",
                c1.volume,
                c2.volume
            );
            assert!((c1.area - c2.area).abs() < 1e-9);
        }
    }

    #[test]
    fn ghosts_complete_the_boundary_cells() {
        // Block covering half a lattice; ghosts supply the other half's
        // boundary layer → every cell becomes complete and unit volume.
        let n = 4;
        let all = lattice_particles(n, 1.0); // cube(4)
        let bounds = Aabb::new(Vec3::ZERO, Vec3::new(2.0, 4.0, 4.0));
        let own: Vec<(u64, Vec3)> = all
            .iter()
            .copied()
            .filter(|(_, p)| bounds.contains(*p))
            .collect();
        let ghost = 1.6;
        let region = bounds.grown(ghost);
        let ghosts: Vec<(u64, Vec3)> = all
            .iter()
            .copied()
            .filter(|(_, p)| !bounds.contains(*p) && region.contains_closed(*p))
            .collect();
        let params = TessParams::default().with_ghost(ghost);
        let (block, stats) = tessellate_block(0, bounds, &own, &ghosts, ghost, &params);
        // cells at the global domain edge still lack outer neighbors, but
        // cells adjacent to the block seam are now complete
        assert!(stats.cells > 0);
        for c in &block.cells {
            assert!((c.volume - 1.0).abs() < 1e-9);
        }
        // sites of kept cells must all be original particles
        for (i, &id) in block.site_ids.iter().enumerate() {
            let p = block.particles[i];
            assert!(bounds.contains(p), "site {id} at {p} not original");
        }
    }
}
