//! Per-block tessellation: the per-cell kernel runs in parallel over sites
//! through the work-stealing chunk pool (the paper's intra-node OpenMP
//! analogue in Figure 3), with index-ordered collection so the assembled
//! block is bit-identical to a sequential run.
//!
//! Blocks participating in the adaptive ghost loop keep a [`BlockSession`]:
//! per-cell outcomes survive across rounds, and a resume pass recomputes
//! only the cells that are not *certified-final* — a certified cell's
//! security ball fits inside the previous ghost region, so particles
//! arriving from outside it provably cannot cut the cell (asserted in debug
//! builds).

use std::cell::RefCell;
use std::collections::HashMap;

use diy::hist::LogHistogram;
use diy::trace::{monotonic_ns, trace_mode, TraceMode};
use geometry::{Aabb, Vec3};
use rayon::prelude::*;

use crate::cell::{compute_cell, CellContext, CellScratch};
use crate::grid::CandidateGrid;
use crate::model::{Cell, Face, MeshBlock, NO_NEIGHBOR};
use crate::params::{HullMode, TessParams};
use crate::stats::TessStats;

/// Per-block certification summary for the adaptive ghost loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockCertification {
    /// Ghost radius that would certify every currently-uncertified cell,
    /// assuming no farther particle cuts them: max over those cells of
    /// `2 × (site → farthest vertex) − distance(site, block wall)`. A lower
    /// bound — a grown region can expose new vertices — so the adaptive
    /// loop iterates on it rather than trusting it once.
    pub needed_ghost: f64,
    /// Uncertified cells the bound covers (dropped or kept-incomplete ones;
    /// culled cells are excluded — culling an underestimate-only volume is
    /// already final).
    pub uncertified: u64,
}

struct Kept {
    site_idx: u32,
    volume: f64,
    area: f64,
    complete: bool,
    /// Security-ball diameter squared at compute time; debug builds check
    /// later ghost rounds against it.
    sec2: f64,
    faces: Vec<(u64, Vec<Vec3>)>, // neighbor global id + face points
}

enum Outcome {
    Kept(Box<Kept>),
    Incomplete,
    CulledEarly { certified: bool },
    CulledLate { certified: bool },
}

impl Outcome {
    /// Certified-final: recomputing against a larger ghost set provably
    /// cannot change this outcome. True exactly when the cell was complete
    /// when it was computed — complete cells are the global Voronoi cell,
    /// so both the kept geometry and any cull verdict are final. Incomplete
    /// cells (dropped, kept, or culled while incomplete) must be recomputed
    /// whenever the block sees more ghosts.
    fn certified(&self) -> bool {
        match self {
            Outcome::Kept(k) => k.complete,
            Outcome::Incomplete => false,
            Outcome::CulledEarly { certified } | Outcome::CulledLate { certified } => *certified,
        }
    }
}

struct CellRecord {
    outcome: Outcome,
    /// Ghost radius this cell would need to certify (0 when certified).
    needed: f64,
}

/// Per-cell observability accumulated alongside a block's records:
/// distribution of candidate-test counts (always on — counting is free),
/// per-cell compute wall time and the block's slowest cells (only when
/// tracing is enabled, so the timing reads cannot perturb untraced runs).
#[derive(Debug, Default, Clone)]
pub struct CellObs {
    /// Candidates tested per computed cell.
    pub candidates: LogHistogram,
    /// Wall nanoseconds per computed cell (empty when tracing is off).
    pub compute_ns: LogHistogram,
    /// Top slow cells of this block: `(wall_ns, particle id)`, slowest
    /// first (empty when tracing is off).
    pub slow: Vec<(u64, u64)>,
}

/// Slow cells retained per block before the rank-level top-k merge.
const BLOCK_SLOW_CELLS: usize = 8;

impl CellObs {
    fn note(&mut self, tested: u64, ns: u64) {
        self.candidates.observe_u64(tested);
        if ns > 0 {
            self.compute_ns.observe_u64(ns);
        }
    }

    fn note_slow(&mut self, ns: u64, particle: u64) {
        if ns == 0 {
            return;
        }
        self.slow.push((ns, particle));
        self.slow.sort_by(|a, b| b.cmp(a));
        self.slow.truncate(BLOCK_SLOW_CELLS);
    }
}

/// Resumable per-block tessellation state for the adaptive ghost loop.
pub struct BlockSession {
    gid: u64,
    bounds: Aabb,
    /// Ghosted region of the most recent pass.
    region: Aabb,
    records: Vec<CellRecord>,
    cells_computed: u64,
    cells_reused: u64,
    candidates_tested: u64,
    prefilter_skipped: u64,
    obs: CellObs,
}

thread_local! {
    /// Per-thread kernel scratch: pool workers and rank threads each reuse
    /// one across every cell they compute.
    static SCRATCH: RefCell<CellScratch> = RefCell::new(CellScratch::default());
}

/// Tessellate one block: `own` are the block's original particles, `ghosts`
/// the received halo particles (already in this block's frame).
pub fn tessellate_block(
    gid: u64,
    bounds: Aabb,
    own: &[(u64, Vec3)],
    ghosts: &[(u64, Vec3)],
    ghost_size: f64,
    params: &TessParams,
) -> (MeshBlock, TessStats) {
    let (block, stats, _) =
        tessellate_block_certified(gid, bounds, own, ghosts, ghost_size, params);
    (block, stats)
}

/// [`tessellate_block`] variant that also reports how much more ghost
/// radius the block's uncertified cells would need (the adaptive ghost
/// loop's per-block feedback signal).
pub fn tessellate_block_certified(
    gid: u64,
    bounds: Aabb,
    own: &[(u64, Vec3)],
    ghosts: &[(u64, Vec3)],
    ghost_size: f64,
    params: &TessParams,
) -> (MeshBlock, TessStats, BlockCertification) {
    let (block, stats, cert, _) =
        tessellate_block_session(gid, bounds, own, ghosts, ghost_size, params);
    (block, stats, cert)
}

/// Full tessellation pass that also returns the [`BlockSession`] later
/// rounds can resume from.
pub fn tessellate_block_session(
    gid: u64,
    bounds: Aabb,
    own: &[(u64, Vec3)],
    ghosts: &[(u64, Vec3)],
    ghost_size: f64,
    params: &TessParams,
) -> (MeshBlock, TessStats, BlockCertification, BlockSession) {
    let region = bounds.grown(ghost_size);
    let mut session = BlockSession {
        gid,
        bounds,
        region,
        records: Vec::new(),
        cells_computed: 0,
        cells_reused: 0,
        candidates_tested: 0,
        prefilter_skipped: 0,
        obs: CellObs::default(),
    };
    let (pts, ids) = flatten(own, ghosts);
    let indices: Vec<usize> = (0..own.len()).collect();
    let records = compute_records(&session, &pts, &ids, &indices, &region, params);
    session.cells_computed = indices.len() as u64;
    let mut obs = std::mem::take(&mut session.obs);
    session.records = records
        .into_iter()
        .enumerate()
        .map(|(i, (record, tested, skipped, ns))| {
            session.candidates_tested = session.candidates_tested.saturating_add(tested);
            session.prefilter_skipped = session.prefilter_skipped.saturating_add(skipped);
            obs.note(tested, ns);
            obs.note_slow(ns, own[i].0);
            record
        })
        .collect();
    session.obs = obs;
    let (block, stats, cert) = assemble(&session, &pts, &ids, ghosts.len());
    (block, stats, cert, session)
}

impl BlockSession {
    /// Incremental re-tessellation against a grown ghost set: recompute
    /// only the cells whose previous outcome was not certified-final.
    /// `ghosts` is the full cumulative ghost set, `new_ghosts` just the
    /// particles that arrived since the previous pass (used by the debug
    /// certification check). Output is bit-identical to a full recompute:
    /// complete cells are canonicalised by the kernel, so the round that
    /// computed them cannot show in their bits.
    pub fn retessellate(
        &mut self,
        own: &[(u64, Vec3)],
        ghosts: &[(u64, Vec3)],
        new_ghosts: &[(u64, Vec3)],
        ghost_size: f64,
        params: &TessParams,
    ) -> (MeshBlock, TessStats, BlockCertification) {
        assert_eq!(
            self.records.len(),
            own.len(),
            "session resumed with a different particle set"
        );
        self.debug_check_new_ghosts(own, new_ghosts);
        let region = self.bounds.grown(ghost_size);
        self.region = region;
        let (pts, ids) = flatten(own, ghosts);
        let indices: Vec<usize> = self
            .records
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.outcome.certified())
            .map(|(i, _)| i)
            .collect();
        self.cells_reused += (self.records.len() - indices.len()) as u64;
        self.cells_computed += indices.len() as u64;
        let recomputed = compute_records(self, &pts, &ids, &indices, &region, params);
        let mut obs = std::mem::take(&mut self.obs);
        for (i, (record, tested, skipped, ns)) in indices.into_iter().zip(recomputed) {
            self.candidates_tested = self.candidates_tested.saturating_add(tested);
            self.prefilter_skipped = self.prefilter_skipped.saturating_add(skipped);
            obs.note(tested, ns);
            obs.note_slow(ns, own[i].0);
            self.records[i] = record;
        }
        self.obs = obs;
        assemble(self, &pts, &ids, ghosts.len())
    }

    /// Drain the per-cell observability accumulated since the last call
    /// (or session start). The driver merges it into rank metrics.
    pub fn take_obs(&mut self) -> CellObs {
        std::mem::take(&mut self.obs)
    }

    /// Block global id (for attributing slow cells at the rank level).
    pub fn gid(&self) -> u64 {
        self.gid
    }

    /// Debug-build proof of the incremental invariant: every particle that
    /// arrived after a cell certified must lie outside the cell's security
    /// ball (it came from outside the previous region, which contains the
    /// ball), so it cannot cut the cell.
    fn debug_check_new_ghosts(&self, own: &[(u64, Vec3)], new_ghosts: &[(u64, Vec3)]) {
        if cfg!(debug_assertions) {
            for (i, record) in self.records.iter().enumerate() {
                let Outcome::Kept(kept) = &record.outcome else {
                    continue;
                };
                if !kept.complete {
                    continue;
                }
                let site = own[i].1;
                for &(gidg, g) in new_ghosts {
                    debug_assert!(
                        g.dist2(site) >= kept.sec2 * (1.0 - 1e-9) - 1e-12,
                        "block {}: new ghost {gidg} at {g} inside the security \
                         ball of certified cell {} (site {site})",
                        self.gid,
                        own[i].0,
                    );
                }
            }
        }
    }
}

fn flatten(own: &[(u64, Vec3)], ghosts: &[(u64, Vec3)]) -> (Vec<Vec3>, Vec<u64>) {
    // Own particles first so candidate index == own index for sites.
    let n = own.len() + ghosts.len();
    let mut pts: Vec<Vec3> = Vec::with_capacity(n);
    let mut ids: Vec<u64> = Vec::with_capacity(n);
    for &(id, p) in own.iter().chain(ghosts) {
        ids.push(id);
        pts.push(p);
    }
    (pts, ids)
}

/// Compute the cells at `indices` in parallel; the result vector is in
/// `indices` order (the pool collects chunk results by position). Each
/// element carries the candidate-test count, prefilter-skip count, and
/// wall nanoseconds (0 when tracing is off — the clock is only read under
/// a trace mode) alongside the record.
fn compute_records(
    session: &BlockSession,
    pts: &[Vec3],
    ids: &[u64],
    indices: &[usize],
    region: &Aabb,
    params: &TessParams,
) -> Vec<(CellRecord, u64, u64, u64)> {
    let bounds = session.bounds;
    let grid = CandidateGrid::build(*region, pts, 2.0);
    // Canonicalisation box for the kernel: a function of the block alone
    // (largest ghost radius the adaptive schedule can reach), never of the
    // current round's radius — see `cell::CellContext::clip_box`.
    let e = bounds.extent();
    let clip_box = bounds.grown(e.x.min(e.y).min(e.z));
    let ctx = CellContext {
        points: pts,
        ids,
        grid: &grid,
        region,
        clip_box: &clip_box,
        canon_extent: params.canon_extent,
        eps: params.eps,
        kernel: params.kernel,
        // Kept-incomplete cells reach the output, so their bits must be
        // canonical (kernel- and round-independent) too.
        canon_incomplete: params.keep_incomplete,
    };
    let cull_diam2 = params.cull_diameter().map(|d| d * d);
    // Resolve once per pass: per-cell clock reads only happen under a
    // trace mode, keeping the untraced hot path free of syscalls.
    let timed = trace_mode() != TraceMode::Off;
    indices
        .to_vec()
        .into_par_iter()
        .map(|i| {
            let t0 = if timed { monotonic_ns() } else { 0 };
            let (record, tested, skipped) = compute_one(&ctx, &bounds, params, cull_diam2, i);
            let ns = if timed {
                monotonic_ns().saturating_sub(t0).max(1)
            } else {
                0
            };
            (record, tested, skipped, ns)
        })
        .collect()
}

fn compute_one(
    ctx: &CellContext,
    bounds: &Aabb,
    params: &TessParams,
    cull_diam2: Option<f64>,
    i: usize,
) -> (CellRecord, u64, u64) {
    let site = ctx.points[i];
    let cell = SCRATCH.with(|s| compute_cell(ctx, site, i as u32, &mut s.borrow_mut()));
    let tested = cell.candidates_tested as u64;
    let skipped = cell.prefilter_skipped;
    let record = |outcome, needed| (CellRecord { outcome, needed }, tested, skipped);
    let sec2 = 4.0 * cell.poly.max_vertex_dist2(site);
    // Radius bound an uncertified cell needs: the security ball
    // (2× site→farthest-vertex) must fit inside the grown region,
    // so the halo must extend that far past the block wall.
    let needed = if cell.complete {
        0.0
    } else {
        (sec2.sqrt() - bounds.interior_distance(site)).max(0.0)
    };
    if !cell.complete && !params.keep_incomplete {
        return record(Outcome::Incomplete, needed);
    }
    // Early conservative cull (before any hull work). Valid even
    // for uncertified cells: unknown particles only shrink them.
    if let Some(d2) = cull_diam2 {
        if cell.poly.max_pairwise_dist2() < d2 {
            return record(
                Outcome::CulledEarly {
                    certified: cell.complete,
                },
                0.0,
            );
        }
    }
    // Volume / area: native clip path or the paper's Qhull path.
    let (volume, area) = match params.hull_mode {
        HullMode::Clip => (cell.poly.volume(), cell.poly.surface_area()),
        HullMode::Quickhull => match geometry::convex_hull(&cell.poly.verts, params.eps) {
            Ok(h) => (h.volume(), h.surface_area()),
            Err(_) => (cell.poly.volume(), cell.poly.surface_area()),
        },
    };
    // Exact cull after the volume is known.
    if let Some(minv) = params.min_volume {
        if volume < minv {
            return record(
                Outcome::CulledLate {
                    certified: cell.complete,
                },
                0.0,
            );
        }
    }
    let faces = cell
        .poly
        .faces
        .iter()
        .map(|f| {
            let nbr = f
                .neighbor
                .map(|cand| ctx.ids[cand as usize])
                .unwrap_or(NO_NEIGHBOR);
            (nbr, cell.poly.face_points(f))
        })
        .collect();
    record(
        Outcome::Kept(Box::new(Kept {
            site_idx: i as u32,
            volume,
            area,
            complete: cell.complete,
            sec2,
            faces,
        })),
        needed,
    )
}

/// Assemble the mesh block from the session's records (serial: vertex
/// dedup is a shared hash map). Runs over *all* records each pass, so a
/// resumed round rebuilds stats without double counting.
fn assemble(
    session: &BlockSession,
    pts: &[Vec3],
    ids: &[u64],
    n_ghosts: usize,
) -> (MeshBlock, TessStats, BlockCertification) {
    let mut stats = TessStats {
        sites: session.records.len() as u64,
        ghosts_received: n_ghosts as u64,
        candidates_tested: session.candidates_tested,
        prefilter_skipped: session.prefilter_skipped,
        cells_computed: session.cells_computed,
        cells_reused: session.cells_reused,
        ..Default::default()
    };
    let mut block = MeshBlock::empty(session.gid, session.bounds);
    let mut vert_index: HashMap<(i64, i64, i64), u32> = HashMap::new();
    // Quantization for vertex dedup within a block: 1e-6 domain units.
    let quant = |p: Vec3| {
        (
            (p.x * 1e6).round() as i64,
            (p.y * 1e6).round() as i64,
            (p.z * 1e6).round() as i64,
        )
    };

    let mut cert = BlockCertification::default();
    for record in &session.records {
        match &record.outcome {
            Outcome::Incomplete => {
                stats.incomplete += 1;
                cert.uncertified += 1;
                cert.needed_ghost = cert.needed_ghost.max(record.needed);
            }
            Outcome::CulledEarly { .. } => stats.culled_early += 1,
            Outcome::CulledLate { .. } => stats.culled_late += 1,
            Outcome::Kept(kept) => {
                let site_idx = block.particles.len() as u32;
                block.particles.push(pts[kept.site_idx as usize]);
                block.site_ids.push(ids[kept.site_idx as usize]);
                if !kept.complete {
                    stats.incomplete_kept += 1;
                    cert.uncertified += 1;
                    cert.needed_ghost = cert.needed_ghost.max(record.needed);
                }
                let faces = kept
                    .faces
                    .iter()
                    .map(|(nbr, points)| Face {
                        neighbor: *nbr,
                        verts: points
                            .iter()
                            .map(|&p| {
                                *vert_index.entry(quant(p)).or_insert_with(|| {
                                    block.verts.push(p);
                                    (block.verts.len() - 1) as u32
                                })
                            })
                            .collect(),
                    })
                    .collect();
                block.cells.push(Cell {
                    site_idx,
                    volume: kept.volume,
                    area: kept.area,
                    complete: kept.complete,
                    faces,
                });
                stats.cells += 1;
            }
        }
    }
    stats.verts = block.verts.len() as u64;
    stats.faces = block.num_faces() as u64;
    (block, stats, cert)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lattice_particles(n: usize, spacing: f64) -> Vec<(u64, Vec3)> {
        (0..n * n * n)
            .map(|idx| {
                let i = idx % n;
                let j = (idx / n) % n;
                let k = idx / (n * n);
                (
                    idx as u64,
                    Vec3::new(
                        (i as f64 + 0.5) * spacing,
                        (j as f64 + 0.5) * spacing,
                        (k as f64 + 0.5) * spacing,
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn interior_cells_of_a_lattice_block() {
        let n = 6;
        let own = lattice_particles(n, 1.0);
        let bounds = Aabb::cube(n as f64);
        let params = TessParams::default().with_ghost(2.0);
        let (block, stats) = tessellate_block(0, bounds, &own, &[], 2.0, &params);
        // no ghosts: only cells ≥ 2 cells from the wall can certify
        assert!(stats.cells > 0);
        assert_eq!(stats.cells + stats.incomplete, (n * n * n) as u64);
        assert_eq!(stats.cells_computed, (n * n * n) as u64);
        assert_eq!(stats.cells_reused, 0);
        assert!(stats.candidates_tested > 0);
        for c in &block.cells {
            assert!((c.volume - 1.0).abs() < 1e-9);
            assert!((c.area - 6.0).abs() < 1e-9);
            assert!(c.complete);
            assert_eq!(c.faces.len(), 6);
            for f in &c.faces {
                assert_ne!(f.neighbor, NO_NEIGHBOR);
                assert_eq!(f.verts.len(), 4);
            }
        }
    }

    #[test]
    fn certification_reports_the_radius_incomplete_cells_need() {
        let n = 6;
        let own = lattice_particles(n, 1.0);
        let bounds = Aabb::cube(n as f64);
        let params = TessParams::default().with_ghost(0.5);
        let (_, stats, cert) = tessellate_block_certified(0, bounds, &own, &[], 0.5, &params);
        assert!(stats.incomplete > 0);
        assert_eq!(cert.uncertified, stats.incomplete);
        // a boundary cell's security ball reaches past the current halo, so
        // the requested radius must strictly exceed it
        assert!(cert.needed_ghost > 0.5, "needed {}", cert.needed_ghost);

        // kept-incomplete cells count as uncertified too
        let keep = TessParams {
            keep_incomplete: true,
            ..params
        };
        let (_, s2, c2) = tessellate_block_certified(0, bounds, &own, &[], 0.5, &keep);
        assert_eq!(s2.incomplete, 0);
        assert_eq!(c2.uncertified, s2.incomplete_kept);
        assert!((c2.needed_ghost - cert.needed_ghost).abs() < 1e-12);
    }

    #[test]
    fn vertex_dedup_shares_vertices_between_cells() {
        let n = 4;
        let own = lattice_particles(n, 1.0);
        let bounds = Aabb::cube(n as f64);
        let params = TessParams {
            keep_incomplete: true,
            ..TessParams::default().with_ghost(1.5)
        };
        let (block, stats) = tessellate_block(0, bounds, &own, &[], 1.5, &params);
        assert_eq!(stats.cells, (n * n * n) as u64);
        // interior lattice vertices are shared by up to 8 cells; the dedup
        // must make verts far fewer than 8 per cell × cells
        let naive: usize = block
            .cells
            .iter()
            .map(|c| c.faces.iter().map(|f| f.verts.len()).sum::<usize>())
            .sum();
        assert!(
            (block.verts.len() as f64) < naive as f64 / 2.5,
            "verts {} vs naive {naive}",
            block.verts.len()
        );
    }

    #[test]
    fn volume_threshold_culls_small_cells() {
        let n = 5;
        let own = lattice_particles(n, 1.0);
        let bounds = Aabb::cube(n as f64);
        // Complete cells are the interior 3³ unit cubes (no ghosts, so the
        // outer layer touches the region walls). Threshold 2 kills them all.
        let params = TessParams::default().with_ghost(2.0).with_min_volume(2.0);
        let (block, stats) = tessellate_block(0, bounds, &own, &[], 2.0, &params);
        assert_eq!(block.cells.len(), 0);
        // diameter sqrt(3) ≈ 1.73 exceeds the cull diameter for V=2
        // (≈1.56), so unit cells pass the conservative early test and die
        // only after exact volume computation
        assert_eq!(stats.culled_early, 0);
        assert_eq!(stats.culled_late, 27);
        assert_eq!(stats.incomplete, (n * n * n - 27) as u64);

        // threshold of 0.5 keeps every complete unit cell
        let params = TessParams::default().with_ghost(2.0).with_min_volume(0.5);
        let (block, _) = tessellate_block(0, bounds, &own, &[], 2.0, &params);
        assert_eq!(block.cells.len(), 27);
    }

    #[test]
    fn early_cull_triggers_for_tiny_cells() {
        // Dense cluster of particles → tiny cells; threshold far above
        // their diameter bound culls them before hull work.
        let mut own: Vec<(u64, Vec3)> = Vec::new();
        let mut id = 0u64;
        for i in 0..6 {
            for j in 0..6 {
                for k in 0..6 {
                    own.push((
                        id,
                        Vec3::new(
                            2.0 + i as f64 * 0.05,
                            2.0 + j as f64 * 0.05,
                            2.0 + k as f64 * 0.05,
                        ),
                    ));
                    id += 1;
                }
            }
        }
        let bounds = Aabb::cube(4.0);
        let params = TessParams::default().with_ghost(0.5).with_min_volume(10.0);
        let (block, stats) = tessellate_block(0, bounds, &own, &[], 0.5, &params);
        assert_eq!(block.cells.len(), 0);
        // interior cluster cells are tiny (0.05³-scale): their diameter is
        // far below the V=10 cull diameter, so the conservative early test
        // removes them without any hull work
        assert!(stats.culled_early > 0, "early {}", stats.culled_early);
        assert_eq!(stats.culled_late, 0);
    }

    #[test]
    fn hull_mode_matches_clip_mode() {
        let n = 5;
        let own = lattice_particles(n, 1.0);
        let bounds = Aabb::cube(n as f64);
        let base = TessParams::default().with_ghost(2.0);
        let clip = TessParams {
            hull_mode: HullMode::Clip,
            ..base
        };
        let hull = TessParams {
            hull_mode: HullMode::Quickhull,
            ..base
        };
        let (b1, _) = tessellate_block(0, bounds, &own, &[], 2.0, &clip);
        let (b2, _) = tessellate_block(0, bounds, &own, &[], 2.0, &hull);
        assert_eq!(b1.cells.len(), b2.cells.len());
        for (c1, c2) in b1.cells.iter().zip(&b2.cells) {
            assert!(
                (c1.volume - c2.volume).abs() < 1e-9,
                "{} vs {}",
                c1.volume,
                c2.volume
            );
            assert!((c1.area - c2.area).abs() < 1e-9);
        }
    }

    #[test]
    fn ghosts_complete_the_boundary_cells() {
        // Block covering half a lattice; ghosts supply the other half's
        // boundary layer → every cell becomes complete and unit volume.
        let n = 4;
        let all = lattice_particles(n, 1.0); // cube(4)
        let bounds = Aabb::new(Vec3::ZERO, Vec3::new(2.0, 4.0, 4.0));
        let own: Vec<(u64, Vec3)> = all
            .iter()
            .copied()
            .filter(|(_, p)| bounds.contains(*p))
            .collect();
        let ghost = 1.6;
        let region = bounds.grown(ghost);
        let ghosts: Vec<(u64, Vec3)> = all
            .iter()
            .copied()
            .filter(|(_, p)| !bounds.contains(*p) && region.contains_closed(*p))
            .collect();
        let params = TessParams::default().with_ghost(ghost);
        let (block, stats) = tessellate_block(0, bounds, &own, &ghosts, ghost, &params);
        // cells at the global domain edge still lack outer neighbors, but
        // cells adjacent to the block seam are now complete
        assert!(stats.cells > 0);
        for c in &block.cells {
            assert!((c.volume - 1.0).abs() < 1e-9);
        }
        // sites of kept cells must all be original particles
        for (i, &id) in block.site_ids.iter().enumerate() {
            let p = block.particles[i];
            assert!(bounds.contains(p), "site {id} at {p} not original");
        }
    }

    /// Per-cell fingerprint: (site id, volume bits, area bits, neighbors, face vertex bits).
    type CellBits = (u64, u64, u64, Vec<u64>, Vec<Vec<(u64, u64, u64)>>);

    /// Bit-fingerprint of a mesh block for exact comparisons.
    fn block_bits(b: &MeshBlock) -> Vec<CellBits> {
        b.cells
            .iter()
            .map(|c| {
                (
                    b.site_ids[c.site_idx as usize],
                    c.volume.to_bits(),
                    c.area.to_bits(),
                    c.faces.iter().map(|f| f.neighbor).collect(),
                    c.faces
                        .iter()
                        .map(|f| {
                            f.verts
                                .iter()
                                .map(|&v| {
                                    let p = b.verts[v as usize];
                                    (p.x.to_bits(), p.y.to_bits(), p.z.to_bits())
                                })
                                .collect()
                        })
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn incremental_resume_matches_full_recompute_bit_for_bit() {
        let n = 6;
        let all = lattice_particles(2 * n, 1.0); // cube(12)
        let bounds = Aabb::cube(n as f64); // corner block of the lattice
        let own: Vec<(u64, Vec3)> = all
            .iter()
            .copied()
            .filter(|(_, p)| bounds.contains(*p))
            .collect();
        let ghosts_within = |r: f64| -> Vec<(u64, Vec3)> {
            let region = bounds.grown(r);
            all.iter()
                .copied()
                .filter(|(_, p)| !bounds.contains(*p) && region.contains_closed(*p))
                .collect()
        };

        let (r0, r1) = (1.2, 2.6);
        let g0 = ghosts_within(r0);
        let g1 = ghosts_within(r1);
        let new_ghosts: Vec<(u64, Vec3)> = g1
            .iter()
            .copied()
            .filter(|(id, _)| !g0.iter().any(|(id0, _)| id0 == id))
            .collect();
        let params = TessParams::default().with_ghost(r1);

        // Round 0 at the small radius, then resume at the large one.
        let (_, s0, cert0, mut session) =
            tessellate_block_session(7, bounds, &own, &g0, r0, &params);
        assert!(cert0.uncertified > 0, "first round must leave work");
        let (inc_block, inc_stats, inc_cert) =
            session.retessellate(&own, &g1, &new_ghosts, r1, &params);

        // One-shot full pass at the large radius.
        let (full_block, full_stats, full_cert) =
            tessellate_block_certified(7, bounds, &own, &g1, r1, &params);

        assert_eq!(block_bits(&inc_block), block_bits(&full_block));
        assert_eq!(inc_cert.uncertified, full_cert.uncertified);
        assert_eq!(inc_stats.cells, full_stats.cells);
        assert_eq!(inc_stats.incomplete, full_stats.incomplete);

        // The resume only recomputed the uncertified cells.
        let n_own = own.len() as u64;
        assert_eq!(s0.cells_computed, n_own);
        assert_eq!(
            inc_stats.cells_computed,
            n_own + cert0.uncertified,
            "resume must recompute exactly the uncertified cells"
        );
        assert_eq!(inc_stats.cells_reused, n_own - cert0.uncertified);
        assert!(inc_stats.cells_reused > 0);
        // ... and therefore tested fewer candidates than two full passes.
        assert!(inc_stats.candidates_tested < 2 * full_stats.candidates_tested);
    }
}
