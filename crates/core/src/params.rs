//! Tessellation parameters.

/// Spacing multiple the auto heuristic (and the adaptive fallback round)
/// uses: 4–5 mean spacings certifies virtually every cell in evolved boxes.
pub const AUTO_GHOST_FACTOR: f64 = 5.0;

/// How the ghost-zone size is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GhostSpec {
    /// User-provided ghost distance in domain units (the paper's mode:
    /// "the ghost size parameter is provided by the user").
    Explicit(f64),
    /// Estimate automatically from the particle spacing: ghost =
    /// `factor × max over blocks of (block volume / particles)^{1/3}`.
    /// This implements the paper's future-work item "determining the ghost
    /// size automatically".
    Auto { factor: f64 },
    /// Multi-round adaptive sizing: tessellate with `initial_factor ×` the
    /// estimated spacing, then let every uncertified cell bound the radius
    /// it needs (2× its site-to-farthest-vertex distance) and run delta
    /// exchange rounds shipping only the newly covered shell, until a
    /// collective round reports every cell certified. After `max_rounds`
    /// adaptive rounds a final round at the [`AUTO_GHOST_FACTOR`] radius
    /// runs; cells still uncertified then are dropped exactly like the
    /// fixed modes drop them.
    Adaptive {
        initial_factor: f64,
        max_rounds: usize,
    },
}

impl Default for GhostSpec {
    fn default() -> Self {
        GhostSpec::Auto {
            factor: AUTO_GHOST_FACTOR,
        }
    }
}

impl GhostSpec {
    /// Adaptive sizing with the default schedule: start at half the auto
    /// heuristic radius, allow 8 adaptive rounds before the fallback.
    pub fn adaptive() -> Self {
        GhostSpec::Adaptive {
            initial_factor: AUTO_GHOST_FACTOR / 2.0,
            max_rounds: 8,
        }
    }
}

/// Which per-cell discovery kernel clips the Voronoi cell.
///
/// Both kernels produce **bit-identical** meshes: every cell that lands in
/// the output is re-clipped in a canonical order from a kernel-independent
/// starting box (see `cell::compute_cell`), so the discovery strategy can
/// only change *how much work* finds the cell, never its bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Legacy grid ring scan: visit whole Chebyshev rings of bins, sort
    /// each ring by distance, clip everything inside the current security
    /// radius. Simple, but early rings are clipped while the radius is
    /// still region-sized, so it tests far more candidates than the cell
    /// has faces.
    Ring,
    /// Distance-ordered candidate stream: a lazy min-heap merge of the
    /// grid rings emits candidates in globally non-decreasing distance
    /// (f32 SoA prefilter, exact f64 clipping) and stops the moment the
    /// next candidate lies beyond the security radius.
    Stream,
}

impl KernelMode {
    /// Kernel selected by the `TESS_KERNEL` environment variable
    /// (`ring` | `stream`), defaulting to [`KernelMode::Stream`]. Resolved
    /// once per process; tests that need a specific kernel should set
    /// [`TessParams::kernel`] directly instead of the environment.
    pub fn from_env() -> Self {
        static MODE: std::sync::OnceLock<KernelMode> = std::sync::OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("TESS_KERNEL").ok().as_deref() {
            None | Some("") | Some("stream") => KernelMode::Stream,
            Some("ring") => KernelMode::Ring,
            Some(v) => panic!("TESS_KERNEL must be `ring` or `stream`, got `{v}`"),
        })
    }

    pub fn as_str(&self) -> &'static str {
        match self {
            KernelMode::Ring => "ring",
            KernelMode::Stream => "stream",
        }
    }
}

/// How cell volumes and areas are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HullMode {
    /// Directly from the clipped polyhedron's ordered faces (this
    /// implementation's native path).
    Clip,
    /// Via a convex hull of the cell's vertices, as the paper does with
    /// Qhull (§III-C: "compute the convex hull of the vertices in the
    /// Voronoi cell … orders the vertices into faces and computes the
    /// volume and surface area"). Kept for cross-validation and the
    /// ablation benchmark.
    Quickhull,
}

/// Parameters for a tessellation pass.
#[derive(Debug, Clone, Copy)]
pub struct TessParams {
    pub ghost: GhostSpec,
    /// Minimum cell volume: cells *below* are culled, first with the
    /// conservative diameter bound (early), then exactly (late).
    /// `None` keeps everything.
    pub min_volume: Option<f64>,
    /// Keep cells that could not be certified complete (used by the
    /// Table I accuracy study to reproduce the paper's boundary errors;
    /// production runs leave this `false`).
    pub keep_incomplete: bool,
    /// Absolute tolerance for plane-side classification during clipping,
    /// in domain units.
    pub eps: f64,
    pub hull_mode: HullMode,
    /// Re-tessellate only uncertified cells in adaptive ghost rounds after
    /// the first, reusing certified cells verbatim. Off, every round
    /// recomputes every cell of a requesting block (the pre-incremental
    /// behaviour, kept for A/B determinism tests and the perf baseline);
    /// the output is bit-identical either way.
    pub incremental_retess: bool,
    /// Per-cell discovery kernel (`TESS_KERNEL` overrides the default;
    /// both kernels yield bit-identical meshes).
    pub kernel: KernelMode,
    /// Half-extent of the canonical re-clip start cube centered on each
    /// site. The distributed driver fills it from the decomposition's
    /// *domain* (never from a block), which is what makes certified cell
    /// bits independent of the block decomposition scheme. `None` —
    /// direct single-block calls — falls back to a block-derived box.
    pub canon_extent: Option<f64>,
    /// Bounded-memory output mode: tessellate, write, and drop each block
    /// through [`crate::tessellate_streaming`] instead of accumulating the
    /// merged mesh. Consumers that route through [`crate::tessellate`]
    /// (which always accumulates) ignore the flag; the framework's
    /// `output=stream` directive sets it and dispatches accordingly. The
    /// on-disk mesh is bit-identical to the accumulated one either way.
    pub streaming: bool,
}

impl Default for TessParams {
    fn default() -> Self {
        TessParams {
            ghost: GhostSpec::default(),
            min_volume: None,
            keep_incomplete: false,
            eps: 1e-9,
            hull_mode: HullMode::Clip,
            incremental_retess: true,
            kernel: KernelMode::from_env(),
            canon_extent: None,
            streaming: false,
        }
    }
}

impl TessParams {
    pub fn with_ghost(mut self, ghost: f64) -> Self {
        self.ghost = GhostSpec::Explicit(ghost);
        self
    }

    pub fn with_min_volume(mut self, v: f64) -> Self {
        self.min_volume = Some(v);
        self
    }

    /// Switch to the default adaptive ghost schedule ([`GhostSpec::adaptive`]).
    pub fn with_adaptive_ghost(mut self) -> Self {
        self.ghost = GhostSpec::adaptive();
        self
    }

    /// Select the per-cell discovery kernel explicitly (overrides the
    /// `TESS_KERNEL`-derived default).
    pub fn with_kernel(mut self, kernel: KernelMode) -> Self {
        self.kernel = kernel;
        self
    }

    /// Request bounded-memory streaming output (see [`TessParams::streaming`]).
    pub fn with_streaming(mut self) -> Self {
        self.streaming = true;
        self
    }

    /// Diameter of the sphere whose volume equals `min_volume`; any cell
    /// with a smaller vertex-pair diameter provably has a smaller volume
    /// (isodiametric inequality), which is the paper's early cull.
    pub fn cull_diameter(&self) -> Option<f64> {
        self.min_volume
            .map(|v| 2.0 * (3.0 * v / (4.0 * std::f64::consts::PI)).powf(1.0 / 3.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cull_diameter_is_sphere_diameter() {
        let p = TessParams::default().with_min_volume(4.0 / 3.0 * std::f64::consts::PI);
        // volume of unit sphere → diameter 2
        assert!((p.cull_diameter().unwrap() - 2.0).abs() < 1e-12);
        assert!(TessParams::default().cull_diameter().is_none());
    }

    #[test]
    fn builders() {
        let p = TessParams::default().with_ghost(3.0).with_min_volume(0.5);
        assert_eq!(p.ghost, GhostSpec::Explicit(3.0));
        assert_eq!(p.min_volume, Some(0.5));
        assert!(!p.keep_incomplete);
        let a = TessParams::default().with_adaptive_ghost();
        assert_eq!(
            a.ghost,
            GhostSpec::Adaptive {
                initial_factor: AUTO_GHOST_FACTOR / 2.0,
                max_rounds: 8
            }
        );
    }

    #[test]
    fn kernel_builder_overrides_the_env_default() {
        let p = TessParams::default().with_kernel(KernelMode::Ring);
        assert_eq!(p.kernel, KernelMode::Ring);
        assert_eq!(p.kernel.as_str(), "ring");
        assert_eq!(KernelMode::Stream.as_str(), "stream");
        // the env-derived default resolves to one of the two modes and is
        // stable within a process
        assert_eq!(KernelMode::from_env(), KernelMode::from_env());
    }
}
