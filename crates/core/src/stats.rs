//! Tessellation statistics, mergeable across blocks and ranks.

use diy::codec::{CodecError, Decode, Encode, Reader};

/// Counters from one or more tessellated blocks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TessStats {
    /// Original particles processed (= candidate sites).
    pub sites: u64,
    /// Ghost particles received.
    pub ghosts_received: u64,
    /// Cells kept in the output.
    pub cells: u64,
    /// Cells dropped because they could not be certified complete.
    pub incomplete: u64,
    /// Incomplete cells kept because `keep_incomplete` was set.
    pub incomplete_kept: u64,
    /// Cells culled by the conservative diameter bound (before hull work).
    pub culled_early: u64,
    /// Cells culled after exact volume computation.
    pub culled_late: u64,
    /// Deduplicated vertices stored.
    pub verts: u64,
    /// Face records stored.
    pub faces: u64,
    /// Ghost exchange rounds executed (1 for the fixed-radius modes; the
    /// adaptive mode counts its delta rounds). Merged with `max`, not a
    /// sum: every rank participates in the same collective rounds.
    pub ghost_rounds: u64,
    /// Candidate neighbors tested across all cell computations (the
    /// kernel's dominant cost driver).
    pub candidates_tested: u64,
    /// Candidates rejected by the f32 distance prefilter before the exact
    /// f64 distance was computed (stream kernel + canonicalisation).
    pub prefilter_skipped: u64,
    /// Cell computations actually executed, counting re-runs across
    /// adaptive rounds.
    pub cells_computed: u64,
    /// Certified cells carried over unchanged by incremental
    /// re-tessellation instead of being recomputed.
    pub cells_reused: u64,
}

impl TessStats {
    /// Combine counters (for block → rank → global reduction).
    pub fn merge(mut self, o: TessStats) -> TessStats {
        self.sites += o.sites;
        self.ghosts_received += o.ghosts_received;
        self.cells += o.cells;
        self.incomplete += o.incomplete;
        self.incomplete_kept += o.incomplete_kept;
        self.culled_early += o.culled_early;
        self.culled_late += o.culled_late;
        self.verts += o.verts;
        self.faces += o.faces;
        self.ghost_rounds = self.ghost_rounds.max(o.ghost_rounds);
        self.candidates_tested = self.candidates_tested.saturating_add(o.candidates_tested);
        self.prefilter_skipped = self.prefilter_skipped.saturating_add(o.prefilter_skipped);
        self.cells_computed = self.cells_computed.saturating_add(o.cells_computed);
        self.cells_reused = self.cells_reused.saturating_add(o.cells_reused);
        self
    }
}

impl Encode for TessStats {
    fn encode(&self, buf: &mut Vec<u8>) {
        for v in [
            self.sites,
            self.ghosts_received,
            self.cells,
            self.incomplete,
            self.incomplete_kept,
            self.culled_early,
            self.culled_late,
            self.verts,
            self.faces,
            self.ghost_rounds,
            self.candidates_tested,
            self.prefilter_skipped,
            self.cells_computed,
            self.cells_reused,
        ] {
            v.encode(buf);
        }
    }
}

impl Decode for TessStats {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(TessStats {
            sites: u64::decode(r)?,
            ghosts_received: u64::decode(r)?,
            cells: u64::decode(r)?,
            incomplete: u64::decode(r)?,
            incomplete_kept: u64::decode(r)?,
            culled_early: u64::decode(r)?,
            culled_late: u64::decode(r)?,
            verts: u64::decode(r)?,
            faces: u64::decode(r)?,
            ghost_rounds: u64::decode(r)?,
            candidates_tested: u64::decode(r)?,
            prefilter_skipped: u64::decode(r)?,
            cells_computed: u64::decode(r)?,
            cells_reused: u64::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let a = TessStats {
            sites: 1,
            cells: 2,
            verts: 3,
            ..Default::default()
        };
        let b = TessStats {
            sites: 10,
            cells: 20,
            faces: 5,
            ..Default::default()
        };
        let m = a.merge(b);
        assert_eq!(m.sites, 11);
        assert_eq!(m.cells, 22);
        assert_eq!(m.verts, 3);
        assert_eq!(m.faces, 5);
    }

    #[test]
    fn merge_takes_max_of_ghost_rounds() {
        let a = TessStats {
            ghost_rounds: 3,
            ..Default::default()
        };
        let b = TessStats {
            ghost_rounds: 2,
            ..Default::default()
        };
        // collective rounds are shared, not additive
        assert_eq!(a.merge(b).ghost_rounds, 3);
        assert_eq!(b.merge(a).ghost_rounds, 3);
    }

    #[test]
    fn codec_roundtrip() {
        let s = TessStats {
            sites: 7,
            ghosts_received: 6,
            cells: 5,
            incomplete: 4,
            incomplete_kept: 1,
            culled_early: 3,
            culled_late: 2,
            verts: 9,
            faces: 8,
            ghost_rounds: 2,
            candidates_tested: 1234,
            prefilter_skipped: 99,
            cells_computed: 11,
            cells_reused: 6,
        };
        assert_eq!(TessStats::from_bytes(&s.to_bytes()).unwrap(), s);
    }

    #[test]
    fn work_counters_saturate_on_merge() {
        let a = TessStats {
            candidates_tested: u64::MAX - 1,
            prefilter_skipped: u64::MAX - 4,
            cells_computed: 5,
            cells_reused: 2,
            ..Default::default()
        };
        let b = TessStats {
            candidates_tested: 10,
            prefilter_skipped: 10,
            cells_computed: 7,
            cells_reused: 1,
            ..Default::default()
        };
        let m = a.merge(b);
        assert_eq!(m.candidates_tested, u64::MAX);
        assert_eq!(m.prefilter_skipped, u64::MAX);
        assert_eq!(m.cells_computed, 12);
        assert_eq!(m.cells_reused, 3);
    }
}
