//! `tess` — parallel Voronoi tessellation of distributed particle data.
//!
//! This is the paper's contribution (§III-C): a distributed-memory parallel
//! Voronoi tessellation that combines unchanged *serial* local computation
//! with neighborhood communication. The main features, mirroring the
//! paper's list:
//!
//! * standalone (serial, one block) and in-situ (distributed) modes,
//! * neighborhood particle ghost-zone exchange (periodic, targeted),
//! * local Voronoi cell computation,
//! * identification of complete cells,
//! * early volume-threshold culling (conservative diameter bound),
//! * convex-hull computation for face ordering, areas, and volumes,
//! * parallel writing of Voronoi blocks to a single file.
//!
//! ## Algorithm
//!
//! Each block receives ghost particles from every neighbor within the ghost
//! distance (bidirectional exchange). A cell is then grown around each
//! *original* particle by clipping the ghosted block box with the
//! perpendicular bisectors of nearby particles, visited in distance order
//! through a uniform grid, until the **security radius** criterion holds:
//! once the nearest unvisited candidate is farther than twice the cell's
//! maximal site-to-vertex distance, no remaining particle can cut the cell.
//! A cell whose security ball sticks out of the ghosted region cannot be
//! certified and is marked incomplete (the paper deletes these).
//!
//! Keeping only cells sited at original particles resolves the duplicated
//! cells the paper's Figure 5 shows after the bidirectional exchange.

pub mod block;
pub mod cell;
pub mod delaunay_mode;
pub mod driver;
pub mod ghost;
pub mod grid;
pub mod io;
pub mod model;
pub mod params;
pub mod service;
pub mod stats;

pub use delaunay_mode::{delaunay_block, DelaunayBlock};
pub use driver::{
    tessellate, tessellate_serial, tessellate_streaming, StreamSummary, TessResult,
    PHASE_GHOST_EXCHANGE, PHASE_OUTPUT, PHASE_VORONOI,
};
pub use io::{StreamWriteSummary, TessStreamWriter};
pub use model::{Cell, Face, MeshBlock, NO_NEIGHBOR};
pub use params::{GhostSpec, HullMode, KernelMode, TessParams, AUTO_GHOST_FACTOR};
pub use service::{
    Answer, CellSummary, MeshService, MeshSnapshot, ParticleStore, Pending, PointHit, Query,
    RegionSummary, Response, ServiceClosed, ServiceConfig, ServiceHists, ServiceStats, Update,
    UpdateReport, SERVICE_TRACE_PID,
};
pub use stats::TessStats;
