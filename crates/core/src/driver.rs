//! Tessellation drivers: distributed (in-situ) and standalone (serial).

use std::collections::BTreeMap;

use diy::comm::{Runtime, World};
use diy::decomposition::{Assignment, Decomposition};
use diy::metrics::MetricsHandle;
use diy::trace::{trace_mode, TraceMode};
use geometry::{Aabb, Vec3};

use crate::block::{tessellate_block_session, BlockSession, CellObs};
use crate::ghost::{exchange_ghosts, sort_ghosts, AdaptiveGhostExchange, GhostParticle};
use crate::model::MeshBlock;
use crate::params::{GhostSpec, KernelMode, TessParams, AUTO_GHOST_FACTOR};
use crate::stats::TessStats;

/// Phase span covering ghost resolution + particle exchange (see
/// [`diy::metrics`]).
pub const PHASE_GHOST_EXCHANGE: &str = "ghost_exchange";
/// Phase span covering the local Voronoi computation.
pub const PHASE_VORONOI: &str = "voronoi";
/// Phase span covering the collective tessellation write
/// ([`crate::io::write_tessellation`]).
pub const PHASE_OUTPUT: &str = "output";

/// Histogram: candidate tests per computed cell (always recorded).
pub const HIST_CANDIDATES: &str = "tess.candidates_per_cell";
/// Histogram: wall nanoseconds per computed cell (tracing only).
pub const HIST_CELL_COMPUTE_NS: &str = "tess.cell_compute_ns";
/// Histogram: ghost radius requested per owned block per adaptive round.
pub const HIST_GHOST_REQUEST_RADIUS: &str = "tess.ghost_request_radius";
/// Histogram: input particles per owned block (one sample per block, so
/// the merged histogram's max/mean is the block-level load imbalance).
pub const HIST_BLOCK_PARTICLES: &str = "tess.block_particles";
/// Histogram: input particles per rank (one sample per rank; max/mean
/// across the merged report is the rank-level particle imbalance).
pub const HIST_RANK_PARTICLES: &str = "tess.rank_particles";
/// Histogram: cells produced per rank (max/mean = cell imbalance).
pub const HIST_RANK_CELLS: &str = "tess.rank_cells";

/// Record the decomposition balance counters for this rank's share of the
/// input: one `tess.block_particles` sample per owned block and one
/// `tess.rank_particles` sample for the rank total.
fn record_balance(metrics: &MetricsHandle, local: &BTreeMap<u64, Vec<(u64, Vec3)>>) {
    let mut total = 0usize;
    for own in local.values() {
        metrics.observe(HIST_BLOCK_PARTICLES, own.len() as f64);
        total += own.len();
    }
    metrics.observe(HIST_RANK_PARTICLES, total as f64);
}

/// Fold one block's per-cell observability into the rank metrics.
fn record_block_obs(metrics: &MetricsHandle, gid: u64, obs: CellObs) {
    metrics.merge_hist(HIST_CANDIDATES, &obs.candidates);
    if obs.compute_ns.n() > 0 {
        metrics.merge_hist(HIST_CELL_COMPUTE_NS, &obs.compute_ns);
    }
    metrics.note_slow_cells(gid, &obs.slow);
}

/// Hand pool CPU and (when tracing) pool task events back to the rank
/// span that submitted the work.
fn drain_pool(metrics: &MetricsHandle) {
    metrics.add_external_cpu(rayon::take_pool_cpu_seconds());
    if trace_mode() == TraceMode::Full {
        metrics.add_pool_tasks(
            rayon::take_pool_tasks()
                .into_iter()
                .map(|t| (t.worker, t.start_ns, t.end_ns, t.chunk)),
        );
    }
}

/// Result of one tessellation pass on one rank. Timing lives in the
/// world's metrics under the [`PHASE_GHOST_EXCHANGE`] / [`PHASE_VORONOI`]
/// spans; collect it with [`diy::metrics::collect_report`].
pub struct TessResult {
    /// Tessellated blocks owned by this rank.
    pub blocks: BTreeMap<u64, MeshBlock>,
    /// This rank's counters (merge across ranks for global stats).
    pub stats: TessStats,
    /// The ghost size actually used (resolved if `GhostSpec::Auto`).
    pub ghost_used: f64,
    /// Per-cell discovery kernel the pass ran with (bench provenance; the
    /// mesh bits are kernel-independent).
    pub kernel: KernelMode,
}

/// Estimated particle spacing: `max over blocks of (block volume / own
/// particles)^{1/3}` (a collective operation — every rank gets the global
/// maximum).
pub fn estimated_spacing(
    world: &mut World,
    dec: &Decomposition,
    local: &BTreeMap<u64, Vec<(u64, Vec3)>>,
) -> f64 {
    let local_max = local
        .iter()
        .map(|(&gid, particles)| {
            let vol = dec.block_bounds(gid).volume();
            let n = particles.len().max(1) as f64;
            (vol / n).powf(1.0 / 3.0)
        })
        .fold(0.0f64, f64::max);
    world.all_reduce(local_max, f64::max)
}

/// Resolve the ghost size: explicit passthrough, or a spacing multiple (a
/// collective operation). For `Adaptive` this is the *initial* radius;
/// [`tessellate`] then grows it per block as needed.
pub fn resolve_ghost(
    world: &mut World,
    dec: &Decomposition,
    local: &BTreeMap<u64, Vec<(u64, Vec3)>>,
    spec: GhostSpec,
) -> f64 {
    match spec {
        GhostSpec::Explicit(g) => g,
        GhostSpec::Auto { factor } => factor * estimated_spacing(world, dec, local),
        GhostSpec::Adaptive { initial_factor, .. } => {
            initial_factor * estimated_spacing(world, dec, local)
        }
    }
}

/// Distributed (in-situ) tessellation: collective over all ranks of
/// `world`. `local` maps each owned block gid to its original particles
/// `(global id, position)`.
pub fn tessellate(
    world: &mut World,
    dec: &Decomposition,
    asn: &Assignment,
    local: &BTreeMap<u64, Vec<(u64, Vec3)>>,
    params: &TessParams,
) -> TessResult {
    // Pool task events are only worth their mutex traffic under full
    // tracing; flip the pool's recording flag to match before any work.
    rayon::set_task_trace(trace_mode() == TraceMode::Full);
    record_balance(&world.metrics(), local);
    // Canonical re-clip cube half-extent: a function of the *domain*, so
    // certified cell bits cannot depend on which decomposition scheme cut
    // the domain into blocks (see `cell::CellContext::canon_extent`).
    let params = &TessParams {
        canon_extent: Some(params.canon_extent.unwrap_or_else(|| {
            let e = dec.domain.extent();
            e.x.min(e.y).min(e.z)
        })),
        ..*params
    };
    if let GhostSpec::Adaptive {
        initial_factor,
        max_rounds,
    } = params.ghost
    {
        return tessellate_adaptive(world, dec, asn, local, params, initial_factor, max_rounds);
    }
    let metrics = world.metrics();
    let (ghost, ghosts) = {
        let _span = metrics.phase(PHASE_GHOST_EXCHANGE);
        let ghost = resolve_ghost(world, dec, local, params.ghost);
        let ghosts = exchange_ghosts(world, dec, asn, local, ghost);
        (ghost, ghosts)
    };

    let _span = metrics.phase(PHASE_VORONOI);
    let mut blocks = BTreeMap::new();
    let mut stats = TessStats::default();
    for (&gid, own) in local {
        let empty = Vec::new();
        let g = ghosts.get(&gid).unwrap_or(&empty);
        let (block, s, _cert, mut session) =
            tessellate_block_session(gid, dec.block_bounds(gid), own, g, ghost, params);
        record_block_obs(&metrics, gid, session.take_obs());
        stats = stats.merge(s);
        blocks.insert(gid, block);
    }
    stats.ghost_rounds = 1;
    metrics.observe(HIST_RANK_CELLS, stats.cells as f64);
    // Credit CPU burned by pool workers on our behalf to this rank's
    // voronoi span (the span only sees the submitting thread's clock).
    drain_pool(&metrics);

    TessResult {
        blocks,
        stats,
        ghost_used: ghost,
        kernel: params.kernel,
    }
}

/// Multi-round adaptive tessellation (see [`GhostSpec::Adaptive`]).
///
/// Round loop: exchange the delta shell for every block whose requested
/// radius grew, re-tessellate exactly those blocks, let each uncertified
/// cell bound the radius it needs, and gather the per-block requests on
/// every rank. All decisions derive from collective data (the gathered
/// request map, the spacing estimate), so the per-block radius schedule —
/// and therefore every block's ghost set and mesh — is identical at any
/// rank count. Requests are capped at one block extent (the farthest the
/// 26-neighborhood can see); after `max_rounds` adaptive rounds one
/// fallback round at the auto-heuristic radius runs, then whatever is
/// still uncertified is dropped exactly like the fixed modes drop it.
#[allow(clippy::too_many_arguments)]
fn tessellate_adaptive(
    world: &mut World,
    dec: &Decomposition,
    asn: &Assignment,
    local: &BTreeMap<u64, Vec<(u64, Vec3)>>,
    params: &TessParams,
    initial_factor: f64,
    max_rounds: usize,
) -> TessResult {
    let metrics = world.metrics();
    // The neighborhood exchange only reaches adjacent blocks, so a halo
    // wider than the smallest block extent would silently miss particles.
    // This is the only place the adaptive protocol consults the
    // decomposition beyond block bounds and links: the radius schedule is
    // derived from collective data, so the protocol itself is identical
    // for any scheme whose blocks tile the domain.
    let cap = dec.min_block_extent();
    assert!(
        cap.is_finite() && cap > 0.0,
        "degenerate decomposition: min block extent {cap}"
    );
    let (r0, auto_r) = {
        let _span = metrics.phase(PHASE_GHOST_EXCHANGE);
        let spacing = estimated_spacing(world, dec, local);
        (
            (initial_factor * spacing).min(cap),
            (AUTO_GHOST_FACTOR * spacing).min(cap),
        )
    };

    let mut exchanger = AdaptiveGhostExchange::new(dec, asn);
    let mut ghosts: BTreeMap<u64, Vec<GhostParticle>> =
        local.keys().map(|&g| (g, Vec::new())).collect();
    let mut results: BTreeMap<u64, (MeshBlock, TessStats)> = BTreeMap::new();
    // Per-block resumable tessellations (incremental mode): round `k+1`
    // recomputes only the cells round `k` could not certify.
    let mut sessions: BTreeMap<u64, BlockSession> = BTreeMap::new();
    // Current halo radius per block — global state, identical on all ranks.
    let mut radius: BTreeMap<u64, f64> = (0..dec.nblocks() as u64).map(|g| (g, 0.0)).collect();
    // Round 0: every block wants the initial radius (no communication
    // needed to agree on that).
    let mut request: BTreeMap<u64, f64> = (0..dec.nblocks() as u64).map(|g| (g, r0)).collect();
    let mut rounds = 0u64;

    loop {
        let round = rounds as usize;
        // Ghosts that arrived this round, kept aside so incremental
        // resumes can verify/recompute against exactly the delta shell.
        let mut fresh_ghosts: BTreeMap<u64, Vec<GhostParticle>> = BTreeMap::new();
        {
            let _span = metrics.phase(PHASE_GHOST_EXCHANGE);
            let _round_span = metrics.phase(format!("ghost_round:{round}"));
            metrics.mark("ghost_round", rounds);
            let fresh = exchanger.round(world, local, &request, round);
            for (gid, items) in fresh {
                let v = ghosts.get_mut(&gid).expect("owned block");
                v.extend(items.iter().copied());
                sort_ghosts(v);
                fresh_ghosts.insert(gid, items);
            }
            for (&g, &r) in &request {
                // Radius distribution over *owned* blocks only: each block
                // is then counted exactly once globally, so the merged
                // histogram is identical at any rank count.
                if local.contains_key(&g) {
                    metrics.observe(HIST_GHOST_REQUEST_RADIUS, r);
                }
                radius.insert(g, r);
            }
        }
        rounds += 1;

        // Re-tessellate the blocks whose halo changed; collect what the
        // still-uncertified cells need.
        let mut needed: BTreeMap<u64, f64> = BTreeMap::new();
        {
            let _span = metrics.phase(PHASE_VORONOI);
            for (&gid, own) in local {
                if !request.contains_key(&gid) {
                    continue;
                }
                let r = radius[&gid];
                let g = &ghosts[&gid];
                let (block, s, cert) = match sessions.get_mut(&gid) {
                    Some(session) if params.incremental_retess => {
                        let fresh = fresh_ghosts.get(&gid).map_or(&[][..], Vec::as_slice);
                        session.retessellate(own, g, fresh, r, params)
                    }
                    _ => {
                        let (block, mut s, cert, session) =
                            tessellate_block_session(gid, dec.block_bounds(gid), own, g, r, params);
                        // keep the work counters cumulative across rounds in
                        // full (non-incremental) mode too, so the two modes'
                        // counters measure the same thing
                        if let Some((_, prev)) = results.get(&gid) {
                            s.candidates_tested =
                                s.candidates_tested.saturating_add(prev.candidates_tested);
                            s.cells_computed = s.cells_computed.saturating_add(prev.cells_computed);
                            s.cells_reused = s.cells_reused.saturating_add(prev.cells_reused);
                        }
                        sessions.insert(gid, session);
                        (block, s, cert)
                    }
                };
                if let Some(session) = sessions.get_mut(&gid) {
                    record_block_obs(&metrics, gid, session.take_obs());
                }
                results.insert(gid, (block, s));
                if cert.uncertified > 0 && cert.needed_ghost > 0.0 {
                    needed.insert(gid, cert.needed_ghost);
                }
            }
            drain_pool(&metrics);
        }

        // Build next round's request map from every rank's needs
        // (collective, so all ranks agree on who grows and by how much).
        let _span = metrics.phase(PHASE_GHOST_EXCHANGE);
        let my_requests: Vec<(u64, f64)> = needed
            .iter()
            .filter_map(|(&gid, &need)| {
                let cur = radius[&gid];
                if cur >= cap - 1e-12 {
                    return None; // saturated: the neighborhood has no more
                }
                let next = if round < max_rounds {
                    // Grow toward the certification bound, with a geometric
                    // floor so near-converged cells cannot stall the loop
                    // and a 2x ceiling because `need` is an overestimate:
                    // an uncertified cell is still under-clipped, so its
                    // security radius shrinks as candidates arrive. Jumping
                    // straight to the early bound over-fetches ghosts for
                    // the whole block; doubling converges in O(log) rounds
                    // while the incremental re-tessellation keeps the extra
                    // rounds cheap (only uncertified cells recompute).
                    need.max(cur * 1.25).min(cur * 2.0).min(cap)
                } else if round == max_rounds {
                    auto_r.max(need).min(cap) // fallback: the auto radius
                } else {
                    return None; // fallback spent: leave incomplete
                };
                (next > cur + 1e-12).then_some((gid, next))
            })
            .collect();
        let gathered: Vec<Vec<(u64, f64)>> = world.all_gather(&my_requests);
        request = gathered.into_iter().flatten().collect();
        if request.is_empty() {
            break;
        }
    }

    let mut blocks = BTreeMap::new();
    let mut stats = TessStats::default();
    for (gid, (block, s)) in results {
        stats = stats.merge(s);
        blocks.insert(gid, block);
    }
    stats.ghost_rounds = rounds;
    metrics.observe(HIST_RANK_CELLS, stats.cells as f64);
    TessResult {
        blocks,
        stats,
        ghost_used: radius.values().fold(0.0f64, |a, &b| a.max(b)),
        kernel: params.kernel,
    }
}

/// Result of one bounded-memory streaming pass on one rank: the mesh went
/// to disk wave by wave, so only counters come back. Global totals are
/// identical on every rank.
pub struct StreamSummary {
    /// This rank's counters (merge across ranks for global stats).
    pub stats: TessStats,
    /// The ghost size actually used (resolved if `GhostSpec::Auto`).
    pub ghost_used: f64,
    /// Per-cell discovery kernel the pass ran with.
    pub kernel: KernelMode,
    /// Blocks written to the file (global).
    pub blocks_written: u64,
    /// Mesh payload bytes in the file, excluding framing (global).
    pub payload_bytes: u64,
    /// Total file bytes (global).
    pub file_bytes: u64,
}

/// Bounded-memory variant of [`tessellate`]: tessellate, serialize, write,
/// and *drop* blocks instead of accumulating the merged mesh, so peak
/// memory is one block's mesh (plus ghosts) rather than the whole rank's.
/// The ghost/certification machinery is byte-for-byte the one
/// [`tessellate`] uses, and the file read back with
/// [`crate::io::read_tessellation`] is bit-identical to the accumulated
/// merge — only the residency changes.
///
/// Writes go through [`crate::io::TessStreamWriter`] in collective waves:
/// under fixed/auto ghosts one wave per owned block (ranks past their
/// block count contribute empty waves), under adaptive ghosts one wave
/// per round carrying every block that just left the collective request
/// map (its mesh is final the moment no round re-requests it).
pub fn tessellate_streaming(
    world: &mut World,
    dec: &Decomposition,
    asn: &Assignment,
    local: &BTreeMap<u64, Vec<(u64, Vec3)>>,
    params: &TessParams,
    path: &std::path::Path,
) -> std::io::Result<StreamSummary> {
    rayon::set_task_trace(trace_mode() == TraceMode::Full);
    record_balance(&world.metrics(), local);
    let params = &TessParams {
        canon_extent: Some(params.canon_extent.unwrap_or_else(|| {
            let e = dec.domain.extent();
            e.x.min(e.y).min(e.z)
        })),
        ..*params
    };
    if let GhostSpec::Adaptive {
        initial_factor,
        max_rounds,
    } = params.ghost
    {
        return tessellate_streaming_adaptive(
            world,
            dec,
            asn,
            local,
            params,
            path,
            initial_factor,
            max_rounds,
        );
    }
    let metrics = world.metrics();
    let (ghost, mut ghosts) = {
        let _span = metrics.phase(PHASE_GHOST_EXCHANGE);
        let ghost = resolve_ghost(world, dec, local, params.ghost);
        let ghosts = exchange_ghosts(world, dec, asn, local, ghost);
        (ghost, ghosts)
    };

    let mut writer = crate::io::TessStreamWriter::create(world, path)?;
    // every rank runs the same number of collective waves
    let nwaves = world.all_reduce(local.len() as u64, u64::max);
    let mut stats = TessStats::default();
    let gids: Vec<u64> = local.keys().copied().collect();
    for wave in 0..nwaves as usize {
        let block = if let Some(&gid) = gids.get(wave) {
            let own = &local[&gid];
            let _span = metrics.phase(PHASE_VORONOI);
            let empty = Vec::new();
            let g = ghosts.get(&gid).unwrap_or(&empty);
            let (block, s, _cert, mut session) =
                tessellate_block_session(gid, dec.block_bounds(gid), own, g, ghost, params);
            record_block_obs(&metrics, gid, session.take_obs());
            drain_pool(&metrics);
            stats = stats.merge(s);
            Some((gid, block))
        } else {
            None
        };
        let wave_blocks: Vec<(u64, &MeshBlock)> = block.iter().map(|(gid, b)| (*gid, b)).collect();
        writer.write_wave(world, &wave_blocks)?;
        metrics.sample_mem_counters();
        // drop the block and its ghosts before the next wave
        if let Some((gid, _)) = block {
            ghosts.remove(&gid);
        }
    }
    let summary = writer.finish(world)?;
    stats.ghost_rounds = 1;
    metrics.observe(HIST_RANK_CELLS, stats.cells as f64);

    Ok(StreamSummary {
        stats,
        ghost_used: ghost,
        kernel: params.kernel,
        blocks_written: summary.blocks,
        payload_bytes: summary.payload_bytes,
        file_bytes: summary.file_bytes,
    })
}

/// Adaptive streaming: the round loop is [`tessellate_adaptive`]'s —
/// identical exchanges, identical radius schedule, identical mesh bits —
/// but after each round's collective request map is built, every owned
/// block that is *not* re-requested has its final mesh, so it is written
/// in that round's wave and dropped. Only still-uncertified stragglers
/// stay resident.
#[allow(clippy::too_many_arguments)]
fn tessellate_streaming_adaptive(
    world: &mut World,
    dec: &Decomposition,
    asn: &Assignment,
    local: &BTreeMap<u64, Vec<(u64, Vec3)>>,
    params: &TessParams,
    path: &std::path::Path,
    initial_factor: f64,
    max_rounds: usize,
) -> std::io::Result<StreamSummary> {
    let metrics = world.metrics();
    let cap = dec.min_block_extent();
    assert!(
        cap.is_finite() && cap > 0.0,
        "degenerate decomposition: min block extent {cap}"
    );
    let (r0, auto_r) = {
        let _span = metrics.phase(PHASE_GHOST_EXCHANGE);
        let spacing = estimated_spacing(world, dec, local);
        (
            (initial_factor * spacing).min(cap),
            (AUTO_GHOST_FACTOR * spacing).min(cap),
        )
    };

    let mut writer = crate::io::TessStreamWriter::create(world, path)?;
    let mut exchanger = AdaptiveGhostExchange::new(dec, asn);
    let mut ghosts: BTreeMap<u64, Vec<GhostParticle>> =
        local.keys().map(|&g| (g, Vec::new())).collect();
    let mut results: BTreeMap<u64, (MeshBlock, TessStats)> = BTreeMap::new();
    let mut sessions: BTreeMap<u64, BlockSession> = BTreeMap::new();
    let mut radius: BTreeMap<u64, f64> = (0..dec.nblocks() as u64).map(|g| (g, 0.0)).collect();
    let mut request: BTreeMap<u64, f64> = (0..dec.nblocks() as u64).map(|g| (g, r0)).collect();
    let mut rounds = 0u64;
    let mut stats = TessStats::default();

    loop {
        let round = rounds as usize;
        let mut fresh_ghosts: BTreeMap<u64, Vec<GhostParticle>> = BTreeMap::new();
        {
            let _span = metrics.phase(PHASE_GHOST_EXCHANGE);
            let _round_span = metrics.phase(format!("ghost_round:{round}"));
            metrics.mark("ghost_round", rounds);
            let fresh = exchanger.round(world, local, &request, round);
            for (gid, items) in fresh {
                let v = ghosts.get_mut(&gid).expect("owned block");
                v.extend(items.iter().copied());
                sort_ghosts(v);
                fresh_ghosts.insert(gid, items);
            }
            for (&g, &r) in &request {
                if local.contains_key(&g) {
                    metrics.observe(HIST_GHOST_REQUEST_RADIUS, r);
                }
                radius.insert(g, r);
            }
        }
        rounds += 1;

        let mut needed: BTreeMap<u64, f64> = BTreeMap::new();
        {
            let _span = metrics.phase(PHASE_VORONOI);
            for (&gid, own) in local {
                if !request.contains_key(&gid) {
                    continue;
                }
                let r = radius[&gid];
                let g = &ghosts[&gid];
                let (block, s, cert) = match sessions.get_mut(&gid) {
                    Some(session) if params.incremental_retess => {
                        let fresh = fresh_ghosts.get(&gid).map_or(&[][..], Vec::as_slice);
                        session.retessellate(own, g, fresh, r, params)
                    }
                    _ => {
                        let (block, mut s, cert, session) =
                            tessellate_block_session(gid, dec.block_bounds(gid), own, g, r, params);
                        if let Some((_, prev)) = results.get(&gid) {
                            s.candidates_tested =
                                s.candidates_tested.saturating_add(prev.candidates_tested);
                            s.cells_computed = s.cells_computed.saturating_add(prev.cells_computed);
                            s.cells_reused = s.cells_reused.saturating_add(prev.cells_reused);
                        }
                        sessions.insert(gid, session);
                        (block, s, cert)
                    }
                };
                if let Some(session) = sessions.get_mut(&gid) {
                    record_block_obs(&metrics, gid, session.take_obs());
                }
                results.insert(gid, (block, s));
                if cert.uncertified > 0 && cert.needed_ghost > 0.0 {
                    needed.insert(gid, cert.needed_ghost);
                }
            }
            drain_pool(&metrics);
        }

        let my_requests: Vec<(u64, f64)> = {
            let _span = metrics.phase(PHASE_GHOST_EXCHANGE);
            let reqs: Vec<(u64, f64)> = needed
                .iter()
                .filter_map(|(&gid, &need)| {
                    let cur = radius[&gid];
                    if cur >= cap - 1e-12 {
                        return None;
                    }
                    let next = if round < max_rounds {
                        need.max(cur * 1.25).min(cur * 2.0).min(cap)
                    } else if round == max_rounds {
                        auto_r.max(need).min(cap)
                    } else {
                        return None;
                    };
                    (next > cur + 1e-12).then_some((gid, next))
                })
                .collect();
            let gathered: Vec<Vec<(u64, f64)>> = world.all_gather(&reqs);
            request = gathered.into_iter().flatten().collect();
            reqs
        };
        let _ = my_requests;

        // Every owned block the next round does not re-request is final:
        // stream it out in this round's wave and release its memory. The
        // wave runs even when the loop is about to break so each rank
        // issues identical collective calls.
        let finished: Vec<u64> = results
            .keys()
            .copied()
            .filter(|g| !request.contains_key(g))
            .collect();
        let mut wave: Vec<(u64, MeshBlock)> = Vec::with_capacity(finished.len());
        for gid in &finished {
            let (block, s) = results.remove(gid).expect("finished block");
            stats = stats.merge(s);
            wave.push((*gid, block));
            sessions.remove(gid);
            ghosts.remove(gid);
        }
        let wave_refs: Vec<(u64, &MeshBlock)> = wave.iter().map(|(g, b)| (*g, b)).collect();
        writer.write_wave(world, &wave_refs)?;
        metrics.sample_mem_counters();
        drop(wave);

        if request.is_empty() {
            break;
        }
    }

    let summary = writer.finish(world)?;
    stats.ghost_rounds = rounds;
    metrics.observe(HIST_RANK_CELLS, stats.cells as f64);
    Ok(StreamSummary {
        stats,
        ghost_used: radius.values().fold(0.0f64, |a, &b| a.max(b)),
        kernel: params.kernel,
        blocks_written: summary.blocks,
        payload_bytes: summary.payload_bytes,
        file_bytes: summary.file_bytes,
    })
}

/// Standalone (serial) mode: one block covering the whole `domain`.
/// Periodic dimensions receive mirrored ghost copies of the block's own
/// particles, exactly as the distributed path would.
///
/// ```
/// use geometry::{Aabb, Vec3};
/// use tess::{tessellate_serial, TessParams};
///
/// // a 3×3×3 periodic lattice: every Voronoi cell is a unit cube
/// let particles: Vec<(u64, Vec3)> = (0..27)
///     .map(|i| {
///         let (x, y, z) = (i % 3, (i / 3) % 3, i / 9);
///         (i as u64, Vec3::new(x as f64 + 0.5, y as f64 + 0.5, z as f64 + 0.5))
///     })
///     .collect();
/// let (block, stats) = tessellate_serial(
///     &particles,
///     Aabb::cube(3.0),
///     [true; 3],
///     &TessParams::default().with_ghost(1.5),
/// );
/// assert_eq!(stats.cells, 27);
/// assert!((block.cells[0].volume - 1.0).abs() < 1e-9);
/// ```
pub fn tessellate_serial(
    particles: &[(u64, Vec3)],
    domain: Aabb,
    periodic: [bool; 3],
    params: &TessParams,
) -> (MeshBlock, TessStats) {
    let dec = Decomposition::with_dims(domain, [1, 1, 1], periodic);
    let particles = particles.to_vec();
    let params = *params;
    let mut results = Runtime::run(1, move |world| {
        let asn = Assignment::new(1, 1);
        let local: BTreeMap<u64, Vec<(u64, Vec3)>> =
            [(0u64, particles.clone())].into_iter().collect();
        let r = tessellate(world, &dec, &asn, &local, &params);
        let block = r.blocks.into_values().next().expect("one block");
        (block, r.stats)
    });
    results.remove(0)
}

/// Merge per-rank stats into global stats (collective).
pub fn global_stats(world: &mut World, stats: TessStats) -> TessStats {
    diy::reduce::all_reduce_merge(world, stats, TessStats::merge)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lattice(n: usize) -> Vec<(u64, Vec3)> {
        (0..n * n * n)
            .map(|idx| {
                let i = idx % n;
                let j = (idx / n) % n;
                let k = idx / (n * n);
                (
                    idx as u64,
                    Vec3::new(i as f64 + 0.5, j as f64 + 0.5, k as f64 + 0.5),
                )
            })
            .collect()
    }

    fn jittered(n: usize, seed: u64, amp: f64) -> Vec<(u64, Vec3)> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        lattice(n)
            .into_iter()
            .map(|(id, p)| {
                let q = p + Vec3::new(
                    rng.gen_range(-amp..amp),
                    rng.gen_range(-amp..amp),
                    rng.gen_range(-amp..amp),
                );
                let ng = n as f64;
                (
                    id,
                    Vec3::new(q.x.rem_euclid(ng), q.y.rem_euclid(ng), q.z.rem_euclid(ng)),
                )
            })
            .collect()
    }

    #[test]
    fn serial_periodic_lattice_gives_all_unit_cells() {
        let n = 6;
        let particles = lattice(n);
        let params = TessParams::default().with_ghost(2.0);
        let (block, stats) =
            tessellate_serial(&particles, Aabb::cube(n as f64), [true; 3], &params);
        // periodic mirroring completes *every* cell
        assert_eq!(stats.cells, (n * n * n) as u64);
        assert_eq!(stats.incomplete, 0);
        let total: f64 = block.cells.iter().map(|c| c.volume).sum();
        assert!((total - (n * n * n) as f64).abs() < 1e-6, "total {total}");
        for c in &block.cells {
            assert!((c.volume - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn cell_volumes_partition_the_periodic_box() {
        // For any particle set, complete periodic Voronoi cells must tile
        // the box: total volume == box volume.
        let n = 5;
        let particles = jittered(n, 3, 0.45);
        let params = TessParams::default().with_ghost(2.5);
        let (block, stats) =
            tessellate_serial(&particles, Aabb::cube(n as f64), [true; 3], &params);
        assert_eq!(stats.cells, (n * n * n) as u64, "all complete");
        let total: f64 = block.cells.iter().map(|c| c.volume).sum();
        let expect = (n * n * n) as f64;
        assert!(
            (total - expect).abs() < 1e-6 * expect,
            "total {total} vs {expect}"
        );
    }

    #[test]
    fn parallel_matches_serial_with_sufficient_ghost() {
        let n = 6;
        let particles = jittered(n, 9, 0.4);
        let domain = Aabb::cube(n as f64);
        let params = TessParams::default().with_ghost(2.5);

        let (serial_block, _) = tessellate_serial(&particles, domain, [true; 3], &params);
        let mut serial_vols: BTreeMap<u64, f64> = BTreeMap::new();
        for c in &serial_block.cells {
            serial_vols.insert(serial_block.site_id_of(c), c.volume);
        }

        let dec = Decomposition::regular(domain, 8, [true; 3]);
        let particles2 = particles.clone();
        let collected = Runtime::run(4, move |world| {
            let asn = Assignment::new(8, world.nranks());
            let mut local: BTreeMap<u64, Vec<(u64, Vec3)>> = asn
                .blocks_of_rank(world.rank())
                .map(|g| (g, Vec::new()))
                .collect();
            for &(id, p) in &particles2 {
                let gid = dec.block_of_point(p);
                if let Some(v) = local.get_mut(&gid) {
                    v.push((id, p));
                }
            }
            let r = tessellate(world, &dec, &asn, &local, &params);
            r.blocks
                .values()
                .flat_map(|b| {
                    b.cells
                        .iter()
                        .map(|c| (b.site_id_of(c), c.volume))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        });
        let parallel: BTreeMap<u64, f64> = collected.into_iter().flatten().collect();
        assert_eq!(parallel.len(), serial_vols.len(), "same cell count");
        for (id, v) in &parallel {
            let sv = serial_vols[id];
            assert!((v - sv).abs() < 1e-9, "cell {id}: {v} vs {sv}");
        }
    }

    #[test]
    fn insufficient_ghost_drops_boundary_cells() {
        let n = 6;
        let particles = lattice(n);
        let domain = Aabb::cube(n as f64);
        let dec = Decomposition::regular(domain, 8, [true; 3]);
        let particles2 = particles.clone();
        let kept = Runtime::run(2, move |world| {
            let asn = Assignment::new(8, world.nranks());
            let mut local: BTreeMap<u64, Vec<(u64, Vec3)>> = asn
                .blocks_of_rank(world.rank())
                .map(|g| (g, Vec::new()))
                .collect();
            for &(id, p) in &particles2 {
                let gid = dec.block_of_point(p);
                if let Some(v) = local.get_mut(&gid) {
                    v.push((id, p));
                }
            }
            let params = TessParams::default().with_ghost(0.0);
            let r = tessellate(world, &dec, &asn, &local, &params);
            let s = global_stats(world, r.stats);
            (s.cells, s.incomplete)
        });
        let (cells, incomplete) = kept[0];
        assert_eq!(cells + incomplete, (n * n * n) as u64);
        assert!(incomplete > 0, "ghost 0 must lose boundary cells");
    }

    #[test]
    fn auto_ghost_resolves_to_spacing_multiple() {
        let n = 6;
        let particles = lattice(n);
        let domain = Aabb::cube(n as f64);
        let dec = Decomposition::regular(domain, 8, [true; 3]);
        let particles2 = particles.clone();
        let ghosts = Runtime::run(2, move |world| {
            let asn = Assignment::new(8, world.nranks());
            let mut local: BTreeMap<u64, Vec<(u64, Vec3)>> = asn
                .blocks_of_rank(world.rank())
                .map(|g| (g, Vec::new()))
                .collect();
            for &(id, p) in &particles2 {
                let gid = dec.block_of_point(p);
                if let Some(v) = local.get_mut(&gid) {
                    v.push((id, p));
                }
            }
            resolve_ghost(world, &dec, &local, GhostSpec::Auto { factor: 4.0 })
        });
        // mean spacing is 1.0 → ghost 4.0 on every rank
        for g in ghosts {
            assert!((g - 4.0).abs() < 1e-9, "ghost {g}");
        }
    }

    #[test]
    fn adaptive_certifies_everything_and_matches_fixed_output() {
        let n = 6;
        let particles = jittered(n, 9, 0.4);
        let domain = Aabb::cube(n as f64);
        let fixed = TessParams::default().with_ghost(2.5);
        let adaptive = TessParams {
            ghost: GhostSpec::Adaptive {
                initial_factor: 0.75,
                max_rounds: 8,
            },
            ..TessParams::default()
        };
        let (fixed_block, fixed_stats) = tessellate_serial(&particles, domain, [true; 3], &fixed);
        let (ad_block, ad_stats) = tessellate_serial(&particles, domain, [true; 3], &adaptive);
        assert_eq!(ad_stats.incomplete, 0);
        assert_eq!(ad_stats.cells, fixed_stats.cells);
        assert!(
            ad_stats.ghost_rounds >= 1,
            "rounds {}",
            ad_stats.ghost_rounds
        );
        let vols = |b: &MeshBlock| -> BTreeMap<u64, f64> {
            b.cells
                .iter()
                .map(|c| (b.site_id_of(c), c.volume))
                .collect()
        };
        let (fv, av) = (vols(&fixed_block), vols(&ad_block));
        for (id, v) in &av {
            assert!((v - fv[id]).abs() < 1e-9, "cell {id}: {v} vs {}", fv[id]);
        }
    }

    #[test]
    fn adaptive_fallback_rescues_a_tiny_initial_radius() {
        // max_rounds 0: the first adaptive request already falls back to
        // the auto radius, which certifies the whole evolved-like box.
        let n = 6;
        let particles = jittered(n, 21, 0.49);
        let params = TessParams {
            ghost: GhostSpec::Adaptive {
                initial_factor: 0.2,
                max_rounds: 0,
            },
            ..TessParams::default()
        };
        let (_, stats) = tessellate_serial(&particles, Aabb::cube(n as f64), [true; 3], &params);
        assert_eq!(stats.incomplete, 0);
        assert_eq!(stats.cells, (n * n * n) as u64);
        assert!(stats.ghost_rounds <= 2, "rounds {}", stats.ghost_rounds);
    }

    #[test]
    fn adaptive_requests_are_capped_at_the_block_extent() {
        // 2 particles in a 4³ box split into 8 blocks of extent 2: the
        // spacing estimate far exceeds a block, so every radius must clamp
        // to the cap and the loop must still terminate.
        let domain = Aabb::cube(4.0);
        let dec = Decomposition::regular(domain, 8, [true; 3]);
        let particles = vec![
            (0u64, Vec3::new(0.7, 0.7, 0.7)),
            (1u64, Vec3::new(3.1, 3.1, 3.1)),
        ];
        let params = TessParams {
            ghost: GhostSpec::Adaptive {
                initial_factor: 2.5,
                max_rounds: 4,
            },
            keep_incomplete: true,
            ..TessParams::default()
        };
        let out = Runtime::run(2, move |world| {
            let asn = Assignment::new(8, world.nranks());
            let mut local: BTreeMap<u64, Vec<(u64, Vec3)>> = asn
                .blocks_of_rank(world.rank())
                .map(|g| (g, Vec::new()))
                .collect();
            for &(id, p) in &particles {
                let gid = dec.block_of_point(p);
                if let Some(v) = local.get_mut(&gid) {
                    v.push((id, p));
                }
            }
            let r = tessellate(world, &dec, &asn, &local, &params);
            (r.ghost_used, global_stats(world, r.stats))
        });
        for (ghost_used, stats) in out {
            assert!(ghost_used <= 2.0 + 1e-12, "ghost {ghost_used}");
            // keep_incomplete retains both cells even though a 2-particle
            // Voronoi diagram cannot certify inside one block
            assert_eq!(stats.cells, 2);
        }
    }

    #[test]
    fn auto_ghost_certifies_everything_on_evolved_like_data() {
        let n = 6;
        let particles = jittered(n, 21, 0.49);
        let params = TessParams::default(); // Auto { factor: 5 }
        let (_, stats) = tessellate_serial(&particles, Aabb::cube(n as f64), [true; 3], &params);
        assert_eq!(stats.incomplete, 0);
        assert_eq!(stats.cells, (n * n * n) as u64);
    }
}
