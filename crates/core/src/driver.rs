//! Tessellation drivers: distributed (in-situ) and standalone (serial).

use std::collections::BTreeMap;

use diy::comm::{Runtime, World};
use diy::decomposition::{Assignment, Decomposition};
use geometry::{Aabb, Vec3};

use crate::block::tessellate_block;
use crate::ghost::exchange_ghosts;
use crate::model::MeshBlock;
use crate::params::{GhostSpec, TessParams};
use crate::stats::TessStats;

/// Phase span covering ghost resolution + particle exchange (see
/// [`diy::metrics`]).
pub const PHASE_GHOST_EXCHANGE: &str = "ghost_exchange";
/// Phase span covering the local Voronoi computation.
pub const PHASE_VORONOI: &str = "voronoi";
/// Phase span covering the collective tessellation write
/// ([`crate::io::write_tessellation`]).
pub const PHASE_OUTPUT: &str = "output";

/// Result of one tessellation pass on one rank. Timing lives in the
/// world's metrics under the [`PHASE_GHOST_EXCHANGE`] / [`PHASE_VORONOI`]
/// spans; collect it with [`diy::metrics::collect_report`].
pub struct TessResult {
    /// Tessellated blocks owned by this rank.
    pub blocks: BTreeMap<u64, MeshBlock>,
    /// This rank's counters (merge across ranks for global stats).
    pub stats: TessStats,
    /// The ghost size actually used (resolved if `GhostSpec::Auto`).
    pub ghost_used: f64,
}

/// Resolve the ghost size: explicit passthrough, or the auto estimate
/// `factor × max over blocks of (block volume / own particles)^{1/3}`
/// (a collective operation).
pub fn resolve_ghost(
    world: &mut World,
    dec: &Decomposition,
    local: &BTreeMap<u64, Vec<(u64, Vec3)>>,
    spec: GhostSpec,
) -> f64 {
    match spec {
        GhostSpec::Explicit(g) => g,
        GhostSpec::Auto { factor } => {
            let local_max = local
                .iter()
                .map(|(&gid, particles)| {
                    let vol = dec.block_bounds(gid).volume();
                    let n = particles.len().max(1) as f64;
                    (vol / n).powf(1.0 / 3.0)
                })
                .fold(0.0f64, f64::max);
            let spacing = world.all_reduce(local_max, f64::max);
            factor * spacing
        }
    }
}

/// Distributed (in-situ) tessellation: collective over all ranks of
/// `world`. `local` maps each owned block gid to its original particles
/// `(global id, position)`.
pub fn tessellate(
    world: &mut World,
    dec: &Decomposition,
    asn: &Assignment,
    local: &BTreeMap<u64, Vec<(u64, Vec3)>>,
    params: &TessParams,
) -> TessResult {
    let metrics = world.metrics();
    let (ghost, ghosts) = {
        let _span = metrics.phase(PHASE_GHOST_EXCHANGE);
        let ghost = resolve_ghost(world, dec, local, params.ghost);
        let ghosts = exchange_ghosts(world, dec, asn, local, ghost);
        (ghost, ghosts)
    };

    let _span = metrics.phase(PHASE_VORONOI);
    let mut blocks = BTreeMap::new();
    let mut stats = TessStats::default();
    for (&gid, own) in local {
        let empty = Vec::new();
        let g = ghosts.get(&gid).unwrap_or(&empty);
        let (block, s) = tessellate_block(gid, dec.block_bounds(gid), own, g, ghost, params);
        stats = stats.merge(s);
        blocks.insert(gid, block);
    }

    TessResult {
        blocks,
        stats,
        ghost_used: ghost,
    }
}

/// Standalone (serial) mode: one block covering the whole `domain`.
/// Periodic dimensions receive mirrored ghost copies of the block's own
/// particles, exactly as the distributed path would.
///
/// ```
/// use geometry::{Aabb, Vec3};
/// use tess::{tessellate_serial, TessParams};
///
/// // a 3×3×3 periodic lattice: every Voronoi cell is a unit cube
/// let particles: Vec<(u64, Vec3)> = (0..27)
///     .map(|i| {
///         let (x, y, z) = (i % 3, (i / 3) % 3, i / 9);
///         (i as u64, Vec3::new(x as f64 + 0.5, y as f64 + 0.5, z as f64 + 0.5))
///     })
///     .collect();
/// let (block, stats) = tessellate_serial(
///     &particles,
///     Aabb::cube(3.0),
///     [true; 3],
///     &TessParams::default().with_ghost(1.5),
/// );
/// assert_eq!(stats.cells, 27);
/// assert!((block.cells[0].volume - 1.0).abs() < 1e-9);
/// ```
pub fn tessellate_serial(
    particles: &[(u64, Vec3)],
    domain: Aabb,
    periodic: [bool; 3],
    params: &TessParams,
) -> (MeshBlock, TessStats) {
    let dec = Decomposition::with_dims(domain, [1, 1, 1], periodic);
    let particles = particles.to_vec();
    let params = *params;
    let mut results = Runtime::run(1, move |world| {
        let asn = Assignment::new(1, 1);
        let local: BTreeMap<u64, Vec<(u64, Vec3)>> =
            [(0u64, particles.clone())].into_iter().collect();
        let r = tessellate(world, &dec, &asn, &local, &params);
        let block = r.blocks.into_values().next().expect("one block");
        (block, r.stats)
    });
    results.remove(0)
}

/// Merge per-rank stats into global stats (collective).
pub fn global_stats(world: &mut World, stats: TessStats) -> TessStats {
    diy::reduce::all_reduce_merge(world, stats, TessStats::merge)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lattice(n: usize) -> Vec<(u64, Vec3)> {
        (0..n * n * n)
            .map(|idx| {
                let i = idx % n;
                let j = (idx / n) % n;
                let k = idx / (n * n);
                (
                    idx as u64,
                    Vec3::new(i as f64 + 0.5, j as f64 + 0.5, k as f64 + 0.5),
                )
            })
            .collect()
    }

    fn jittered(n: usize, seed: u64, amp: f64) -> Vec<(u64, Vec3)> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        lattice(n)
            .into_iter()
            .map(|(id, p)| {
                let q = p + Vec3::new(
                    rng.gen_range(-amp..amp),
                    rng.gen_range(-amp..amp),
                    rng.gen_range(-amp..amp),
                );
                let ng = n as f64;
                (
                    id,
                    Vec3::new(q.x.rem_euclid(ng), q.y.rem_euclid(ng), q.z.rem_euclid(ng)),
                )
            })
            .collect()
    }

    #[test]
    fn serial_periodic_lattice_gives_all_unit_cells() {
        let n = 6;
        let particles = lattice(n);
        let params = TessParams::default().with_ghost(2.0);
        let (block, stats) =
            tessellate_serial(&particles, Aabb::cube(n as f64), [true; 3], &params);
        // periodic mirroring completes *every* cell
        assert_eq!(stats.cells, (n * n * n) as u64);
        assert_eq!(stats.incomplete, 0);
        let total: f64 = block.cells.iter().map(|c| c.volume).sum();
        assert!((total - (n * n * n) as f64).abs() < 1e-6, "total {total}");
        for c in &block.cells {
            assert!((c.volume - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn cell_volumes_partition_the_periodic_box() {
        // For any particle set, complete periodic Voronoi cells must tile
        // the box: total volume == box volume.
        let n = 5;
        let particles = jittered(n, 3, 0.45);
        let params = TessParams::default().with_ghost(2.5);
        let (block, stats) =
            tessellate_serial(&particles, Aabb::cube(n as f64), [true; 3], &params);
        assert_eq!(stats.cells, (n * n * n) as u64, "all complete");
        let total: f64 = block.cells.iter().map(|c| c.volume).sum();
        let expect = (n * n * n) as f64;
        assert!(
            (total - expect).abs() < 1e-6 * expect,
            "total {total} vs {expect}"
        );
    }

    #[test]
    fn parallel_matches_serial_with_sufficient_ghost() {
        let n = 6;
        let particles = jittered(n, 9, 0.4);
        let domain = Aabb::cube(n as f64);
        let params = TessParams::default().with_ghost(2.5);

        let (serial_block, _) = tessellate_serial(&particles, domain, [true; 3], &params);
        let mut serial_vols: BTreeMap<u64, f64> = BTreeMap::new();
        for c in &serial_block.cells {
            serial_vols.insert(serial_block.site_id_of(c), c.volume);
        }

        let dec = Decomposition::regular(domain, 8, [true; 3]);
        let particles2 = particles.clone();
        let collected = Runtime::run(4, move |world| {
            let asn = Assignment::new(8, world.nranks());
            let mut local: BTreeMap<u64, Vec<(u64, Vec3)>> = asn
                .blocks_of_rank(world.rank())
                .map(|g| (g, Vec::new()))
                .collect();
            for &(id, p) in &particles2 {
                let gid = dec.block_of_point(p);
                if let Some(v) = local.get_mut(&gid) {
                    v.push((id, p));
                }
            }
            let r = tessellate(world, &dec, &asn, &local, &params);
            r.blocks
                .values()
                .flat_map(|b| {
                    b.cells
                        .iter()
                        .map(|c| (b.site_id_of(c), c.volume))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        });
        let parallel: BTreeMap<u64, f64> = collected.into_iter().flatten().collect();
        assert_eq!(parallel.len(), serial_vols.len(), "same cell count");
        for (id, v) in &parallel {
            let sv = serial_vols[id];
            assert!((v - sv).abs() < 1e-9, "cell {id}: {v} vs {sv}");
        }
    }

    #[test]
    fn insufficient_ghost_drops_boundary_cells() {
        let n = 6;
        let particles = lattice(n);
        let domain = Aabb::cube(n as f64);
        let dec = Decomposition::regular(domain, 8, [true; 3]);
        let particles2 = particles.clone();
        let kept = Runtime::run(2, move |world| {
            let asn = Assignment::new(8, world.nranks());
            let mut local: BTreeMap<u64, Vec<(u64, Vec3)>> = asn
                .blocks_of_rank(world.rank())
                .map(|g| (g, Vec::new()))
                .collect();
            for &(id, p) in &particles2 {
                let gid = dec.block_of_point(p);
                if let Some(v) = local.get_mut(&gid) {
                    v.push((id, p));
                }
            }
            let params = TessParams::default().with_ghost(0.0);
            let r = tessellate(world, &dec, &asn, &local, &params);
            let s = global_stats(world, r.stats);
            (s.cells, s.incomplete)
        });
        let (cells, incomplete) = kept[0];
        assert_eq!(cells + incomplete, (n * n * n) as u64);
        assert!(incomplete > 0, "ghost 0 must lose boundary cells");
    }

    #[test]
    fn auto_ghost_resolves_to_spacing_multiple() {
        let n = 6;
        let particles = lattice(n);
        let domain = Aabb::cube(n as f64);
        let dec = Decomposition::regular(domain, 8, [true; 3]);
        let particles2 = particles.clone();
        let ghosts = Runtime::run(2, move |world| {
            let asn = Assignment::new(8, world.nranks());
            let mut local: BTreeMap<u64, Vec<(u64, Vec3)>> = asn
                .blocks_of_rank(world.rank())
                .map(|g| (g, Vec::new()))
                .collect();
            for &(id, p) in &particles2 {
                let gid = dec.block_of_point(p);
                if let Some(v) = local.get_mut(&gid) {
                    v.push((id, p));
                }
            }
            resolve_ghost(world, &dec, &local, GhostSpec::Auto { factor: 4.0 })
        });
        // mean spacing is 1.0 → ghost 4.0 on every rank
        for g in ghosts {
            assert!((g - 4.0).abs() < 1e-9, "ghost {g}");
        }
    }

    #[test]
    fn auto_ghost_certifies_everything_on_evolved_like_data() {
        let n = 6;
        let particles = jittered(n, 21, 0.49);
        let params = TessParams::default(); // Auto { factor: 5 }
        let (_, stats) = tessellate_serial(&particles, Aabb::cube(n as f64), [true; 3], &params);
        assert_eq!(stats.incomplete, 0);
        assert_eq!(stats.cells, (n * n * n) as u64);
    }
}
