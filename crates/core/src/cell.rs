//! Local Voronoi cell computation with the security-radius criterion.
//!
//! Two-phase kernel:
//!
//! 1. **Discovery** — grow the cell by clipping the ghosted region box with
//!    bisectors of grid candidates until the security radius certifies no
//!    remaining particle can cut it. Two interchangeable strategies exist
//!    ([`crate::params::KernelMode`]): the legacy *ring scan* (whole
//!    Chebyshev rings, sorted per ring) and the *candidate stream* (a lazy
//!    min-heap merge emitting candidates in globally non-decreasing
//!    distance with an `f32` SoA prefilter), which terminates the moment
//!    the next candidate lies beyond the security radius.
//! 2. **Canonicalisation** — re-clip every cell that can land in the
//!    output from a discovery-independent starting box by every particle
//!    inside the (slightly inflated) security ball, in a canonical order
//!    (distance, then global id, then position). Discovery order depends
//!    on the kernel and on the grid geometry, which changes as the
//!    adaptive ghost region grows; canonicalisation makes the cell's
//!    floating-point bits a function of the particle set alone, so both
//!    kernels produce bit-identical meshes and a cell certified in round
//!    `k` is bit-identical to the same cell recomputed in any later round
//!    — the invariants the kernel A/B switch and incremental
//!    re-tessellation rest on.
//!
//!    Complete cells re-clip from a site-centered cube whose half-extent
//!    the driver derives from the global domain — independent of the
//!    ghost round, the kernel, *and* the block decomposition, so regular
//!    and k-d decompositions of the same particle set produce bit-identical
//!    merged meshes (falling back to the current region only when a cell
//!    outgrows the canonical box); incomplete
//!    cells re-clip from the region when they are kept in the output
//!    (`canon_incomplete`), and otherwise keep their discovery bits — the
//!    geometry of a dropped cell is discarded anyway.
//!
//! All buffers live in a caller-owned [`CellScratch`] so computing millions
//! of cells allocates nothing in steady state.

use geometry::polyhedron::{ClipResult, ClipScratch};
use geometry::{Aabb, ConvexPolyhedron, Plane, Vec3};

use crate::grid::{CandidateGrid, StreamScratch};
use crate::params::KernelMode;

/// Outcome of computing one cell.
pub struct ComputedCell {
    pub poly: ConvexPolyhedron,
    /// `true` when the security ball fit inside the known (ghosted) region,
    /// so the cell is provably identical to the global Voronoi cell.
    pub complete: bool,
    /// Number of bisector planes tested (performance diagnostic).
    pub candidates_tested: usize,
    /// Candidates the `f32` distance prefilter rejected before the exact
    /// `f64` distance was ever computed (stream kernel + canonicalisation).
    pub prefilter_skipped: u64,
}

/// Shared, immutable inputs for every cell of one block pass.
pub struct CellContext<'a> {
    /// Own + ghost particle positions (ghosts may be periodic images).
    pub points: &'a [Vec3],
    /// Global particle id per entry of `points`.
    pub ids: &'a [u64],
    pub grid: &'a CandidateGrid,
    /// The ghosted block box the points cover; bounds the discovery clip
    /// and decides completeness.
    pub region: &'a Aabb,
    /// Canonicalisation box: must depend only on the block, never on the
    /// ghost radius, so re-clipping is reproducible across ghost rounds.
    /// Only the fallback when `canon_extent` is `None`.
    pub clip_box: &'a Aabb,
    /// Preferred canonical start box: a cube of this half-extent centered
    /// on the site. The driver derives it from the global domain, making
    /// it independent of the block *decomposition* as well as of the
    /// ghost round and kernel — the invariant behind cross-scheme
    /// bit-identical meshes. `None` uses the block-derived `clip_box`.
    pub canon_extent: Option<f64>,
    /// Clipping tolerance.
    pub eps: f64,
    /// Discovery strategy; the output bits are kernel-independent.
    pub kernel: KernelMode,
    /// Canonically re-clip incomplete cells too. Required whenever they
    /// can land in the output (`keep_incomplete`), so their bits cannot
    /// depend on the discovery kernel either.
    pub canon_incomplete: bool,
}

/// Reusable per-thread buffers for [`compute_cell`].
#[derive(Default)]
pub struct CellScratch {
    ring_buf: Vec<u32>,
    ordered: Vec<(f64, u32)>,
    ball: Vec<(f64, u32)>,
    clip: ClipScratch,
    stream: StreamScratch,
}

/// Discovery-phase result shared by both kernels.
struct Discovery {
    poly: ConvexPolyhedron,
    tested: usize,
    prefilter_skipped: u64,
    /// The clip emptied the polyhedron — numerically impossible for a true
    /// Voronoi cell, guarded for degenerate input.
    degenerate: bool,
}

/// Compute the Voronoi cell of `site` (`self_idx` in `ctx.points`, skipped).
pub fn compute_cell(
    ctx: &CellContext,
    site: Vec3,
    self_idx: u32,
    scratch: &mut CellScratch,
) -> ComputedCell {
    let disc = match ctx.kernel {
        KernelMode::Ring => discover_ring(ctx, site, self_idx, scratch),
        KernelMode::Stream => discover_stream(ctx, site, self_idx, scratch),
    };
    let mut poly = disc.poly;
    let mut tested = disc.tested;
    let mut prefilter_skipped = disc.prefilter_skipped;
    if disc.degenerate {
        return ComputedCell {
            poly,
            complete: false,
            candidates_tested: tested,
            prefilter_skipped,
        };
    }

    // 2 × max site-to-vertex distance, squared — any particle farther than
    // this cannot clip the cell.
    let sec2 = 4.0 * poly.max_vertex_dist2(site);
    let maxvert = sec2.sqrt() * 0.5;
    // Complete iff the security ball is inside the region all particles
    // are known for.
    let complete = 2.0 * maxvert <= ctx.region.interior_distance(site) + ctx.eps;

    if complete || ctx.canon_incomplete {
        // The re-clip start box must contain the cell strictly in its
        // interior for complete cells (so the box walls cannot cut them):
        // `clip_box` when the cell fits — the round-stable canonical
        // choice; in adaptive mode `clip_box ⊇ region`, so completeness
        // already guarantees the fit. Otherwise fall back to the current
        // region, which always contains the discovery cell (single-round
        // fixed-ghost configurations, and incomplete cells, whose region
        // walls are legitimately part of the cell).
        let site_cube;
        let start_box = if complete {
            match ctx.canon_extent {
                // Site-centered canonical cube: its corner coordinates are
                // a function of (site, domain) alone, so every scheme and
                // round clips the same floats in the same order.
                Some(h) if maxvert <= h => {
                    site_cube = Aabb::new(site - Vec3::splat(h), site + Vec3::splat(h));
                    &site_cube
                }
                None if maxvert <= ctx.clip_box.interior_distance(site) => ctx.clip_box,
                // Cell too large for the canonical box (single-round
                // fixed-ghost configurations with huge radii): the region
                // always contains the discovery cell.
                _ => ctx.region,
            }
        } else {
            ctx.region
        };
        if let Some((canon, extra, skipped)) =
            canonical_reclip(ctx, site, self_idx, sec2, start_box, scratch)
        {
            poly = canon;
            tested += extra;
            prefilter_skipped += skipped;
        }
    }

    ComputedCell {
        poly,
        complete,
        candidates_tested: tested,
        prefilter_skipped,
    }
}

/// Legacy discovery: visit whole Chebyshev rings, sort each ring by
/// distance, clip everything inside the current security radius. Kept
/// behind [`KernelMode::Ring`] (`TESS_KERNEL=ring`) as the A/B baseline.
fn discover_ring(
    ctx: &CellContext,
    site: Vec3,
    self_idx: u32,
    scratch: &mut CellScratch,
) -> Discovery {
    let grid = ctx.grid;
    let mut poly = ConvexPolyhedron::from_aabb(ctx.region);
    let mut tested = 0usize;
    let mut sec2 = 4.0 * poly.max_vertex_dist2(site);

    'rings: for r in 0..=grid.max_ring() {
        // No remaining candidate can be closer than this (the legacy
        // center-independent bound, preserved for faithful A/B runs).
        let lb = grid.ring_min_distance(r);
        if lb * lb > sec2 {
            break 'rings;
        }
        grid.ring_candidates(site, r, &mut scratch.ring_buf);
        if scratch.ring_buf.is_empty() {
            continue;
        }
        scratch.ordered.clear();
        scratch
            .ordered
            .extend(scratch.ring_buf.iter().filter_map(|&i| {
                if i == self_idx {
                    return None;
                }
                let d2 = ctx.points[i as usize].dist2(site);
                if d2 < 1e-24 {
                    // coincident particle: no bisector exists; skip (both sites
                    // share the cell)
                    return None;
                }
                Some((d2, i))
            }));
        scratch
            .ordered
            .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

        for &(d2, i) in scratch.ordered.iter() {
            if d2 > sec2 {
                // sorted ascending: the rest of this ring is irrelevant
                break;
            }
            let q = ctx.points[i as usize];
            let plane = Plane::bisector(site, q).expect("distinct points");
            tested += 1;
            match poly.clip_with(&plane, Some(i as u64), ctx.eps, &mut scratch.clip) {
                ClipResult::Clipped => {
                    sec2 = 4.0 * poly.max_vertex_dist2(site);
                }
                ClipResult::Unchanged => {}
                ClipResult::Empty => {
                    return Discovery {
                        poly,
                        tested,
                        prefilter_skipped: 0,
                        degenerate: true,
                    }
                }
            }
        }
    }
    Discovery {
        poly,
        tested,
        prefilter_skipped: 0,
        degenerate: false,
    }
}

/// Streamed discovery: clip candidates in globally non-decreasing distance
/// and stop the moment the next one lies beyond the security radius. The
/// default kernel ([`KernelMode::Stream`]).
fn discover_stream(
    ctx: &CellContext,
    site: Vec3,
    self_idx: u32,
    scratch: &mut CellScratch,
) -> Discovery {
    let CellScratch { stream, clip, .. } = scratch;
    let mut poly = ConvexPolyhedron::from_aabb(ctx.region);
    let (mut bb, maxd2) = poly.vertex_aabb_and_max_dist2(site);
    let mut sec2 = 4.0 * maxd2;
    let mut tested = 0usize;
    let mut cheap_rejects = 0u64;
    let mut candidates = ctx.grid.stream(ctx.points, site, self_idx, stream);
    while let Some((d2, i)) = candidates.next(sec2) {
        if d2 < 1e-24 {
            continue; // coincident particle: no bisector exists
        }
        let q = ctx.points[i as usize];
        let plane = Plane::bisector(site, q).expect("distinct points");
        // Support-function reject: if the bisector cannot reach the cell's
        // vertex bounding box, the clip is a provable no-op — skip the
        // O(verts) classification entirely. Elongated boundary cells have
        // security balls far larger than their box, so most ball
        // candidates die here.
        if bb.support(plane.n) - plane.d <= ctx.eps {
            cheap_rejects += 1;
            continue;
        }
        tested += 1;
        match poly.clip_with(&plane, Some(i as u64), ctx.eps, clip) {
            ClipResult::Clipped => {
                let (nbb, maxd2) = poly.vertex_aabb_and_max_dist2(site);
                bb = nbb;
                sec2 = 4.0 * maxd2;
            }
            ClipResult::Unchanged => {}
            ClipResult::Empty => {
                let prefilter_skipped = candidates.prefilter_skipped() + cheap_rejects;
                return Discovery {
                    poly,
                    tested,
                    prefilter_skipped,
                    degenerate: true,
                };
            }
        }
    }
    let prefilter_skipped = candidates.prefilter_skipped() + cheap_rejects;
    Discovery {
        poly,
        tested,
        prefilter_skipped,
        degenerate: false,
    }
}

/// Re-clip a cell from `start_box` using every particle in the (slightly
/// inflated) security ball, in canonical order. Returns `None` only when
/// the re-clip empties the polyhedron (degenerate input) — the caller then
/// keeps the discovery-phase polyhedron.
fn canonical_reclip(
    ctx: &CellContext,
    site: Vec3,
    self_idx: u32,
    sec2: f64,
    start_box: &Aabb,
    scratch: &mut CellScratch,
) -> Option<(ConvexPolyhedron, usize, u64)> {
    // Inflate the ball so a particle at exactly the security distance (a
    // common exact tie on lattices) never flips in/out on the ulp-level
    // differences `sec2` carries between rounds or kernels. Extra
    // particles only add tangent planes, which cannot cut.
    let bound2 = sec2 * (1.0 + 1e-9);
    let mut skipped = ctx.grid.ball_candidates(
        ctx.points,
        site,
        self_idx,
        bound2,
        &mut scratch.ring_buf,
        &mut scratch.ball,
    );

    // Canonical order: distance, then global id, then position — the last
    // because distinct periodic images of one particle can tie exactly in
    // both distance and id.
    let (points, ids) = (ctx.points, ctx.ids);
    scratch.ball.sort_by(|&(d2a, ia), &(d2b, ib)| {
        d2a.total_cmp(&d2b)
            .then_with(|| ids[ia as usize].cmp(&ids[ib as usize]))
            .then_with(|| {
                let pa = points[ia as usize];
                let pb = points[ib as usize];
                pa.x.total_cmp(&pb.x)
                    .then_with(|| pa.y.total_cmp(&pb.y))
                    .then_with(|| pa.z.total_cmp(&pb.z))
            })
    });

    let mut poly = ConvexPolyhedron::from_aabb(start_box);
    let mut bb = *start_box;
    let mut tested = 0usize;
    for &(_, i) in scratch.ball.iter() {
        let plane = Plane::bisector(site, points[i as usize]).expect("distinct points");
        // Same support-function reject as streamed discovery: skipping a
        // provable no-op clip cannot change the canonical bits.
        if bb.support(plane.n) - plane.d <= ctx.eps {
            skipped += 1;
            continue;
        }
        tested += 1;
        match poly.clip_with(&plane, Some(i as u64), ctx.eps, &mut scratch.clip) {
            ClipResult::Clipped => (bb, _) = poly.vertex_aabb_and_max_dist2(site),
            ClipResult::Unchanged => {}
            ClipResult::Empty => return None, // degenerate; keep discovery poly
        }
    }
    Some((poly, tested, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lattice(n: usize, jitter: f64) -> Vec<Vec3> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        (0..n)
            .flat_map(|k| {
                (0..n)
                    .flat_map(move |j| {
                        (0..n)
                            .map(move |i| Vec3::new(i as f64 + 0.5, j as f64 + 0.5, k as f64 + 0.5))
                    })
                    .collect::<Vec<_>>()
            })
            .map(move |p| {
                p + Vec3::new(
                    rng.gen_range(-jitter..=jitter.max(1e-300)),
                    rng.gen_range(-jitter..=jitter.max(1e-300)),
                    rng.gen_range(-jitter..=jitter.max(1e-300)),
                )
            })
            .collect()
    }

    fn cell_with(pts: &[Vec3], region: &Aabb, idx: usize, kernel: KernelMode) -> ComputedCell {
        let grid = CandidateGrid::build(*region, pts, 2.0);
        let ids: Vec<u64> = (0..pts.len() as u64).collect();
        let ctx = CellContext {
            points: pts,
            ids: &ids,
            grid: &grid,
            region,
            clip_box: region,
            canon_extent: None,
            eps: 1e-9,
            kernel,
            canon_incomplete: false,
        };
        compute_cell(&ctx, pts[idx], idx as u32, &mut CellScratch::default())
    }

    fn cell_of(pts: &[Vec3], region: &Aabb, idx: usize) -> ComputedCell {
        cell_with(pts, region, idx, KernelMode::Stream)
    }

    #[test]
    fn lattice_center_cell_is_unit_cube() {
        let n = 7;
        let pts = lattice(n, 0.0);
        let region = Aabb::cube(n as f64);
        let center_idx = (n / 2) + n * ((n / 2) + n * (n / 2));
        for kernel in [KernelMode::Ring, KernelMode::Stream] {
            let cell = cell_with(&pts, &region, center_idx, kernel);
            assert!(cell.complete);
            assert!(
                (cell.poly.volume() - 1.0).abs() < 1e-9,
                "vol {}",
                cell.poly.volume()
            );
            assert!((cell.poly.surface_area() - 6.0).abs() < 1e-9);
            assert!(cell.poly.check_closed());
            // only the 6 face neighbors touch the cell
            assert_eq!(cell.poly.neighbor_ids().count(), 6);
            // far fewer candidates than the full point set were tested
            assert!(
                cell.candidates_tested < pts.len() / 2,
                "{}",
                cell.candidates_tested
            );
        }
    }

    #[test]
    fn security_radius_terminates_early_on_jittered_lattice() {
        // Interior cells: both kernels stop at the security radius and test
        // only a small neighborhood of the full point set.
        let n = 9;
        let pts = lattice(n, 0.2);
        let region = Aabb::cube(n as f64);
        let idx = (n / 2) + n * ((n / 2) + n * (n / 2));
        for kernel in [KernelMode::Ring, KernelMode::Stream] {
            let cell = cell_with(&pts, &region, idx, kernel);
            assert!(cell.complete);
            assert!(cell.poly.check_closed());
            assert!(cell.candidates_tested < 250, "{}", cell.candidates_tested);
        }
    }

    #[test]
    fn stream_kernel_clips_far_fewer_candidates_on_elongated_boundary_cells() {
        // A region that extends past the particle slab: cells of face sites
        // stretch into the empty margin, their security balls blow up, and
        // the ring scan dutifully clips every candidate in the ball. The
        // streamed kernel's support-function reject proves most of those
        // lateral clips are no-ops and skips them without touching the poly.
        let n = 9;
        let pts = lattice(n, 0.2);
        let region = Aabb::cube(n as f64).grown(2.0);
        let idx = (n / 2) + n * (n / 2); // z-face site at (4.5, 4.5, ~0.5)
        let ring = cell_with(&pts, &region, idx, KernelMode::Ring);
        let stream = cell_with(&pts, &region, idx, KernelMode::Stream);
        assert_eq!(ring.complete, stream.complete);
        assert!(ring.candidates_tested > 60, "{}", ring.candidates_tested);
        assert!(
            stream.candidates_tested * 3 < ring.candidates_tested,
            "stream {} vs ring {}",
            stream.candidates_tested,
            ring.candidates_tested
        );
        assert!(stream.prefilter_skipped > 0, "reject never fired");
    }

    #[test]
    fn stream_and_ring_kernels_agree_bit_for_bit() {
        let n = 7;
        let pts = lattice(n, 0.3);
        let region = Aabb::cube(n as f64);
        for idx in [0, 1, n * n, (n / 2) + n * ((n / 2) + n * (n / 2))] {
            let a = cell_with(&pts, &region, idx, KernelMode::Ring);
            let b = cell_with(&pts, &region, idx, KernelMode::Stream);
            assert_eq!(a.complete, b.complete, "site {idx}");
            if !a.complete {
                // dropped-incomplete cells keep discovery bits; only their
                // completeness verdict must agree (canon_incomplete covers
                // the kept case — see kernel_equivalence integration tests)
                continue;
            }
            assert_eq!(a.poly.verts.len(), b.poly.verts.len(), "site {idx}");
            for (va, vb) in a.poly.verts.iter().zip(&b.poly.verts) {
                assert_eq!(va.x.to_bits(), vb.x.to_bits());
                assert_eq!(va.y.to_bits(), vb.y.to_bits());
                assert_eq!(va.z.to_bits(), vb.z.to_bits());
            }
            assert_eq!(a.poly.volume().to_bits(), b.poly.volume().to_bits());
        }
    }

    #[test]
    fn canon_incomplete_makes_kept_incomplete_cells_kernel_independent() {
        let n = 6;
        let pts = lattice(n, 0.25);
        let region = Aabb::cube(n as f64);
        let grid = CandidateGrid::build(region, &pts, 2.0);
        let ids: Vec<u64> = (0..pts.len() as u64).collect();
        let run = |kernel| {
            let ctx = CellContext {
                points: &pts,
                ids: &ids,
                grid: &grid,
                region: &region,
                clip_box: &region,
                eps: 1e-9,
                kernel,
                canon_incomplete: true,
                canon_extent: None,
            };
            // corner site: clipped by the region walls, never complete
            compute_cell(&ctx, pts[0], 0, &mut CellScratch::default())
        };
        let a = run(KernelMode::Ring);
        let b = run(KernelMode::Stream);
        assert!(!a.complete && !b.complete);
        assert_eq!(a.poly.verts.len(), b.poly.verts.len());
        for (va, vb) in a.poly.verts.iter().zip(&b.poly.verts) {
            assert_eq!(va.x.to_bits(), vb.x.to_bits());
            assert_eq!(va.y.to_bits(), vb.y.to_bits());
            assert_eq!(va.z.to_bits(), vb.z.to_bits());
        }
        assert_eq!(a.poly.volume().to_bits(), b.poly.volume().to_bits());
    }

    #[test]
    fn boundary_cell_is_incomplete() {
        let n = 5;
        let pts = lattice(n, 0.0);
        let region = Aabb::cube(n as f64);
        // corner particle: its cell is clipped by the region walls
        let cell = cell_of(&pts, &region, 0);
        assert!(!cell.complete);
    }

    #[test]
    fn cell_contains_its_site_and_membership_is_correct() {
        // Brute-force verification of Eq. (1): every point of the cell is
        // nearer to the site than to any other particle.
        let n = 5;
        let pts = lattice(n, 0.3);
        let region = Aabb::cube(n as f64);
        let idx = 2 + n * (2 + n * 2);
        let site = pts[idx];
        let cell = cell_of(&pts, &region, idx);
        assert!(cell.poly.contains(site, 1e-9));
        // sample points inside the cell: centroid and face centroids
        let mut samples = vec![cell.poly.centroid()];
        for f in &cell.poly.faces {
            samples.push(cell.poly.face_centroid(f).lerp(site, 0.01));
        }
        for s in samples {
            let ds = s.dist2(site);
            for (qi, &q) in pts.iter().enumerate() {
                if qi != idx {
                    assert!(
                        ds <= q.dist2(s) + 1e-7,
                        "cell point {s} closer to particle {qi}"
                    );
                }
            }
        }
    }

    #[test]
    fn two_points_split_the_region() {
        let pts = vec![Vec3::new(1.0, 2.0, 2.0), Vec3::new(3.0, 2.0, 2.0)];
        let region = Aabb::cube(4.0);
        for kernel in [KernelMode::Ring, KernelMode::Stream] {
            let cell = cell_with(&pts, &region, 0, kernel);
            // half the box
            assert!((cell.poly.volume() - 32.0).abs() < 1e-9);
            // bounded by walls → incomplete
            assert!(!cell.complete);
            assert_eq!(cell.poly.neighbor_ids().collect::<Vec<_>>(), vec![1]);
        }
    }

    #[test]
    fn coincident_particles_do_not_crash() {
        let pts = vec![
            Vec3::splat(2.0),
            Vec3::splat(2.0), // exact duplicate
            Vec3::new(1.0, 2.0, 2.0),
        ];
        let region = Aabb::cube(4.0);
        for kernel in [KernelMode::Ring, KernelMode::Stream] {
            let cell = cell_with(&pts, &region, 0, kernel);
            assert!(!cell.poly.is_empty());
            assert!(cell.poly.volume() > 0.0);
        }
    }

    #[test]
    fn complete_cell_bits_do_not_depend_on_the_region() {
        // The canonicalisation contract: compute an interior cell once with
        // a tight region and once with a grown region (more known space,
        // different grid geometry, different discovery order) while keeping
        // the same clip_box. Complete cells must agree bit for bit — for
        // both kernels, and across them.
        let n = 7;
        let pts = lattice(n, 0.25);
        let tight = Aabb::cube(n as f64);
        let grown = tight.grown(1.5);
        let idx = (n / 2) + n * ((n / 2) + n * (n / 2));
        let ids: Vec<u64> = (0..pts.len() as u64).collect();

        let run = |region: &Aabb, kernel: KernelMode| {
            let grid = CandidateGrid::build(*region, &pts, 2.0);
            let ctx = CellContext {
                points: &pts,
                ids: &ids,
                grid: &grid,
                region,
                clip_box: &grown, // same canonical box for all runs
                eps: 1e-9,
                kernel,
                canon_incomplete: false,
                canon_extent: None,
            };
            compute_cell(&ctx, pts[idx], idx as u32, &mut CellScratch::default())
        };

        let reference = run(&tight, KernelMode::Ring);
        assert!(reference.complete);
        for (region, kernel) in [
            (&grown, KernelMode::Ring),
            (&tight, KernelMode::Stream),
            (&grown, KernelMode::Stream),
        ] {
            let b = run(region, kernel);
            assert!(b.complete);
            assert_eq!(reference.poly.verts.len(), b.poly.verts.len());
            for (va, vb) in reference.poly.verts.iter().zip(&b.poly.verts) {
                assert_eq!(va.x.to_bits(), vb.x.to_bits());
                assert_eq!(va.y.to_bits(), vb.y.to_bits());
                assert_eq!(va.z.to_bits(), vb.z.to_bits());
            }
            assert_eq!(reference.poly.volume().to_bits(), b.poly.volume().to_bits());
            let na: Vec<u64> = reference.poly.neighbor_ids().collect();
            let nb: Vec<u64> = b.poly.neighbor_ids().collect();
            assert_eq!(na, nb);
        }
    }
}
