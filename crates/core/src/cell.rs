//! Local Voronoi cell computation with the security-radius criterion.
//!
//! Two-phase kernel:
//!
//! 1. **Discovery** — grow the cell by clipping the ghosted region box with
//!    bisectors of grid candidates in (approximate) distance order until the
//!    security radius certifies no remaining particle can cut it.
//! 2. **Canonicalisation** — for *complete* cells, re-clip a round- and
//!    mode-independent box (`clip_box`) by every particle inside the
//!    security ball in a canonical order (distance, then global id, then
//!    position). Discovery order depends on the grid geometry, which changes
//!    as the adaptive ghost region grows; canonicalisation makes the cell's
//!    floating-point bits a function of the particle set alone, so a cell
//!    certified in round `k` is bit-identical to the same cell recomputed in
//!    any later round — the invariant incremental re-tessellation rests on.
//!
//! All buffers live in a caller-owned [`CellScratch`] so computing millions
//! of cells allocates nothing in steady state.

use geometry::polyhedron::{ClipResult, ClipScratch};
use geometry::{Aabb, ConvexPolyhedron, Plane, Vec3};

use crate::grid::CandidateGrid;

/// Outcome of computing one cell.
pub struct ComputedCell {
    pub poly: ConvexPolyhedron,
    /// `true` when the security ball fit inside the known (ghosted) region,
    /// so the cell is provably identical to the global Voronoi cell.
    pub complete: bool,
    /// Number of bisector planes tested (performance diagnostic).
    pub candidates_tested: usize,
}

/// Shared, immutable inputs for every cell of one block pass.
pub struct CellContext<'a> {
    /// Own + ghost particle positions (ghosts may be periodic images).
    pub points: &'a [Vec3],
    /// Global particle id per entry of `points`.
    pub ids: &'a [u64],
    pub grid: &'a CandidateGrid,
    /// The ghosted block box the points cover; bounds the discovery clip
    /// and decides completeness.
    pub region: &'a Aabb,
    /// Canonicalisation box: must depend only on the block, never on the
    /// ghost radius, so re-clipping is reproducible across ghost rounds.
    pub clip_box: &'a Aabb,
    /// Clipping tolerance.
    pub eps: f64,
}

/// Reusable per-thread buffers for [`compute_cell`].
#[derive(Default)]
pub struct CellScratch {
    ring_buf: Vec<u32>,
    ordered: Vec<(f64, u32)>,
    ball: Vec<(f64, u32)>,
    clip: ClipScratch,
}

/// Compute the Voronoi cell of `site` (`self_idx` in `ctx.points`, skipped).
pub fn compute_cell(
    ctx: &CellContext,
    site: Vec3,
    self_idx: u32,
    scratch: &mut CellScratch,
) -> ComputedCell {
    let grid = ctx.grid;
    let mut poly = ConvexPolyhedron::from_aabb(ctx.region);
    let mut tested = 0usize;

    // 2 × max site-to-vertex distance, squared — any particle farther than
    // this cannot clip the cell. Updated as the cell shrinks.
    let mut sec2 = 4.0 * poly.max_vertex_dist2(site);

    'rings: for r in 0..=grid.max_ring() {
        // No remaining candidate can be closer than this.
        let lb = grid.ring_min_distance(r);
        if lb * lb > sec2 {
            break 'rings;
        }
        grid.ring_candidates(site, r, &mut scratch.ring_buf);
        if scratch.ring_buf.is_empty() {
            continue;
        }
        scratch.ordered.clear();
        scratch
            .ordered
            .extend(scratch.ring_buf.iter().filter_map(|&i| {
                if i == self_idx {
                    return None;
                }
                let d2 = ctx.points[i as usize].dist2(site);
                if d2 < 1e-24 {
                    // coincident particle: no bisector exists; skip (both sites
                    // share the cell)
                    return None;
                }
                Some((d2, i))
            }));
        scratch
            .ordered
            .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

        for &(d2, i) in scratch.ordered.iter() {
            if d2 > sec2 {
                // sorted ascending: the rest of this ring is irrelevant
                break;
            }
            let q = ctx.points[i as usize];
            let plane = Plane::bisector(site, q).expect("distinct points");
            tested += 1;
            match poly.clip_with(&plane, Some(i as u64), ctx.eps, &mut scratch.clip) {
                ClipResult::Clipped => {
                    sec2 = 4.0 * poly.max_vertex_dist2(site);
                }
                ClipResult::Unchanged => {}
                ClipResult::Empty => {
                    // numerically impossible for a true Voronoi cell (the
                    // site always belongs to its own cell), but guard
                    // against degenerate input
                    return ComputedCell {
                        poly,
                        complete: false,
                        candidates_tested: tested,
                    };
                }
            }
        }
    }

    // Complete iff the security ball is inside the region all particles are
    // known for.
    let sec = sec2.sqrt() * 0.5; // = max vertex distance
    let complete = 2.0 * sec <= ctx.region.interior_distance(site) + ctx.eps;

    if complete {
        if let Some((canon, extra)) = canonical_reclip(ctx, site, self_idx, sec2, scratch) {
            poly = canon;
            tested += extra;
        }
    }

    ComputedCell {
        poly,
        complete,
        candidates_tested: tested,
    }
}

/// Re-clip a complete cell from the canonical box using every particle in
/// the (slightly inflated) security ball, in canonical order. Returns `None`
/// when the cell might not fit in `clip_box` (huge explicit ghost radii) —
/// the discovery-phase polyhedron is already exact there, it just keeps its
/// discovery-order bits.
fn canonical_reclip(
    ctx: &CellContext,
    site: Vec3,
    self_idx: u32,
    sec2: f64,
    scratch: &mut CellScratch,
) -> Option<(ConvexPolyhedron, usize)> {
    // The cell lies inside ball(site, maxvert); it must also lie strictly
    // inside the canonical box or the box walls would clip it. In adaptive
    // mode `clip_box ⊇ region`, so completeness already guarantees this and
    // the branch is round-stable.
    let maxvert = 0.5 * sec2.sqrt();
    if maxvert > ctx.clip_box.interior_distance(site) {
        return None;
    }

    // Inflate the ball so a particle at exactly the security distance (a
    // common exact tie on lattices) never flips in/out on the ulp-level
    // differences `sec2` carries between rounds. Extra particles only add
    // tangent planes, which cannot cut.
    let bound2 = sec2 * (1.0 + 1e-9);
    let grid = ctx.grid;
    scratch.ball.clear();
    for r in 0..=grid.max_ring() {
        let lb = grid.ring_min_distance(r);
        if lb * lb > bound2 {
            break;
        }
        grid.ring_candidates(site, r, &mut scratch.ring_buf);
        for &i in scratch.ring_buf.iter() {
            if i == self_idx {
                continue;
            }
            let d2 = ctx.points[i as usize].dist2(site);
            if (1e-24..=bound2).contains(&d2) {
                scratch.ball.push((d2, i));
            }
        }
    }

    // Canonical order: distance, then global id, then position — the last
    // because distinct periodic images of one particle can tie exactly in
    // both distance and id.
    let (points, ids) = (ctx.points, ctx.ids);
    scratch.ball.sort_by(|&(d2a, ia), &(d2b, ib)| {
        d2a.total_cmp(&d2b)
            .then_with(|| ids[ia as usize].cmp(&ids[ib as usize]))
            .then_with(|| {
                let pa = points[ia as usize];
                let pb = points[ib as usize];
                pa.x.total_cmp(&pb.x)
                    .then_with(|| pa.y.total_cmp(&pb.y))
                    .then_with(|| pa.z.total_cmp(&pb.z))
            })
    });

    let mut poly = ConvexPolyhedron::from_aabb(ctx.clip_box);
    let mut tested = 0usize;
    for &(_, i) in scratch.ball.iter() {
        let plane = Plane::bisector(site, points[i as usize]).expect("distinct points");
        tested += 1;
        if poly.clip_with(&plane, Some(i as u64), ctx.eps, &mut scratch.clip) == ClipResult::Empty {
            return None; // degenerate input; keep the discovery polyhedron
        }
    }
    Some((poly, tested))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lattice(n: usize, jitter: f64) -> Vec<Vec3> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        (0..n)
            .flat_map(|k| {
                (0..n)
                    .flat_map(move |j| {
                        (0..n)
                            .map(move |i| Vec3::new(i as f64 + 0.5, j as f64 + 0.5, k as f64 + 0.5))
                    })
                    .collect::<Vec<_>>()
            })
            .map(move |p| {
                p + Vec3::new(
                    rng.gen_range(-jitter..=jitter.max(1e-300)),
                    rng.gen_range(-jitter..=jitter.max(1e-300)),
                    rng.gen_range(-jitter..=jitter.max(1e-300)),
                )
            })
            .collect()
    }

    fn cell_of(pts: &[Vec3], region: &Aabb, idx: usize) -> ComputedCell {
        let grid = CandidateGrid::build(*region, pts, 2.0);
        let ids: Vec<u64> = (0..pts.len() as u64).collect();
        let ctx = CellContext {
            points: pts,
            ids: &ids,
            grid: &grid,
            region,
            clip_box: region,
            eps: 1e-9,
        };
        compute_cell(&ctx, pts[idx], idx as u32, &mut CellScratch::default())
    }

    #[test]
    fn lattice_center_cell_is_unit_cube() {
        let n = 7;
        let pts = lattice(n, 0.0);
        let region = Aabb::cube(n as f64);
        let center_idx = (n / 2) + n * ((n / 2) + n * (n / 2));
        let cell = cell_of(&pts, &region, center_idx);
        assert!(cell.complete);
        assert!(
            (cell.poly.volume() - 1.0).abs() < 1e-9,
            "vol {}",
            cell.poly.volume()
        );
        assert!((cell.poly.surface_area() - 6.0).abs() < 1e-9);
        assert!(cell.poly.check_closed());
        // only the 6 face neighbors touch the cell
        assert_eq!(cell.poly.neighbor_ids().count(), 6);
        // far fewer candidates than the full point set were tested
        assert!(
            cell.candidates_tested < pts.len() / 2,
            "{}",
            cell.candidates_tested
        );
    }

    #[test]
    fn security_radius_terminates_early_on_jittered_lattice() {
        let n = 9;
        let pts = lattice(n, 0.2);
        let region = Aabb::cube(n as f64);
        let cell = cell_of(&pts, &region, (n / 2) + n * ((n / 2) + n * (n / 2)));
        assert!(cell.complete);
        assert!(cell.poly.check_closed());
        assert!(cell.candidates_tested < 250, "{}", cell.candidates_tested);
    }

    #[test]
    fn boundary_cell_is_incomplete() {
        let n = 5;
        let pts = lattice(n, 0.0);
        let region = Aabb::cube(n as f64);
        // corner particle: its cell is clipped by the region walls
        let cell = cell_of(&pts, &region, 0);
        assert!(!cell.complete);
    }

    #[test]
    fn cell_contains_its_site_and_membership_is_correct() {
        // Brute-force verification of Eq. (1): every point of the cell is
        // nearer to the site than to any other particle.
        let n = 5;
        let pts = lattice(n, 0.3);
        let region = Aabb::cube(n as f64);
        let idx = 2 + n * (2 + n * 2);
        let site = pts[idx];
        let cell = cell_of(&pts, &region, idx);
        assert!(cell.poly.contains(site, 1e-9));
        // sample points inside the cell: centroid and face centroids
        let mut samples = vec![cell.poly.centroid()];
        for f in &cell.poly.faces {
            samples.push(cell.poly.face_centroid(f).lerp(site, 0.01));
        }
        for s in samples {
            let ds = s.dist2(site);
            for (qi, &q) in pts.iter().enumerate() {
                if qi != idx {
                    assert!(
                        ds <= q.dist2(s) + 1e-7,
                        "cell point {s} closer to particle {qi}"
                    );
                }
            }
        }
    }

    #[test]
    fn two_points_split_the_region() {
        let pts = vec![Vec3::new(1.0, 2.0, 2.0), Vec3::new(3.0, 2.0, 2.0)];
        let region = Aabb::cube(4.0);
        let cell = cell_of(&pts, &region, 0);
        // half the box
        assert!((cell.poly.volume() - 32.0).abs() < 1e-9);
        // bounded by walls → incomplete
        assert!(!cell.complete);
        assert_eq!(cell.poly.neighbor_ids().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn coincident_particles_do_not_crash() {
        let pts = vec![
            Vec3::splat(2.0),
            Vec3::splat(2.0), // exact duplicate
            Vec3::new(1.0, 2.0, 2.0),
        ];
        let region = Aabb::cube(4.0);
        let cell = cell_of(&pts, &region, 0);
        assert!(!cell.poly.is_empty());
        assert!(cell.poly.volume() > 0.0);
    }

    #[test]
    fn complete_cell_bits_do_not_depend_on_the_region() {
        // The canonicalisation contract: compute an interior cell once with
        // a tight region and once with a grown region (more known space,
        // different grid geometry, different discovery order) while keeping
        // the same clip_box. Complete cells must agree bit for bit.
        let n = 7;
        let pts = lattice(n, 0.25);
        let tight = Aabb::cube(n as f64);
        let grown = tight.grown(1.5);
        let idx = (n / 2) + n * ((n / 2) + n * (n / 2));
        let ids: Vec<u64> = (0..pts.len() as u64).collect();

        let run = |region: &Aabb| {
            let grid = CandidateGrid::build(*region, &pts, 2.0);
            let ctx = CellContext {
                points: &pts,
                ids: &ids,
                grid: &grid,
                region,
                clip_box: &grown, // same canonical box for both runs
                eps: 1e-9,
            };
            compute_cell(&ctx, pts[idx], idx as u32, &mut CellScratch::default())
        };

        let a = run(&tight);
        let b = run(&grown);
        assert!(a.complete && b.complete);
        assert_eq!(a.poly.verts.len(), b.poly.verts.len());
        for (va, vb) in a.poly.verts.iter().zip(&b.poly.verts) {
            assert_eq!(va.x.to_bits(), vb.x.to_bits());
            assert_eq!(va.y.to_bits(), vb.y.to_bits());
            assert_eq!(va.z.to_bits(), vb.z.to_bits());
        }
        assert_eq!(a.poly.volume().to_bits(), b.poly.volume().to_bits());
        let na: Vec<u64> = a.poly.neighbor_ids().collect();
        let nb: Vec<u64> = b.poly.neighbor_ids().collect();
        assert_eq!(na, nb);
    }
}
