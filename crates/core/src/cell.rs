//! Local Voronoi cell computation with the security-radius criterion.

use geometry::polyhedron::ClipResult;
use geometry::{Aabb, ConvexPolyhedron, Plane, Vec3};

use crate::grid::CandidateGrid;

/// Outcome of computing one cell.
pub struct ComputedCell {
    pub poly: ConvexPolyhedron,
    /// `true` when the security ball fit inside the known (ghosted) region,
    /// so the cell is provably identical to the global Voronoi cell.
    pub complete: bool,
    /// Number of bisector planes tested (performance diagnostic).
    pub candidates_tested: usize,
}

/// Compute the Voronoi cell of `site` against the `points` indexed by
/// `grid`. `region` is the ghosted block box the points cover; `self_idx`
/// is the site's index in `points` (skipped). `eps` is the clipping
/// tolerance.
pub fn compute_cell(
    site: Vec3,
    self_idx: u32,
    points: &[Vec3],
    grid: &CandidateGrid,
    region: &Aabb,
    eps: f64,
) -> ComputedCell {
    let mut poly = ConvexPolyhedron::from_aabb(region);
    let mut tested = 0usize;

    // 2 × max site-to-vertex distance, squared — any particle farther than
    // this cannot clip the cell. Updated as the cell shrinks.
    let mut sec2 = 4.0 * poly.max_vertex_dist2(site);

    let mut ring_buf: Vec<u32> = Vec::new();
    let mut ordered: Vec<(f64, u32)> = Vec::new();
    'rings: for r in 0..=grid.max_ring() {
        // No remaining candidate can be closer than this.
        let lb = grid.ring_min_distance(r);
        if lb * lb > sec2 {
            break 'rings;
        }
        grid.ring_candidates(site, r, &mut ring_buf);
        if ring_buf.is_empty() {
            continue;
        }
        ordered.clear();
        ordered.extend(ring_buf.iter().filter_map(|&i| {
            if i == self_idx {
                return None;
            }
            let d2 = points[i as usize].dist2(site);
            if d2 < 1e-24 {
                // coincident particle: no bisector exists; skip (both sites
                // share the cell)
                return None;
            }
            Some((d2, i))
        }));
        ordered.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

        for &(d2, i) in ordered.iter() {
            if d2 > sec2 {
                // sorted ascending: the rest of this ring is irrelevant
                break;
            }
            let q = points[i as usize];
            let plane = Plane::bisector(site, q).expect("distinct points");
            tested += 1;
            match poly.clip(&plane, Some(i as u64), eps) {
                ClipResult::Clipped => {
                    sec2 = 4.0 * poly.max_vertex_dist2(site);
                }
                ClipResult::Unchanged => {}
                ClipResult::Empty => {
                    // numerically impossible for a true Voronoi cell (the
                    // site always belongs to its own cell), but guard
                    // against degenerate input
                    return ComputedCell {
                        poly,
                        complete: false,
                        candidates_tested: tested,
                    };
                }
            }
        }
    }

    // Complete iff the security ball is inside the region all particles are
    // known for.
    let sec = sec2.sqrt() * 0.5; // = max vertex distance
    let complete = 2.0 * sec <= region.interior_distance(site) + eps;
    ComputedCell {
        poly,
        complete,
        candidates_tested: tested,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lattice(n: usize, jitter: f64) -> Vec<Vec3> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        (0..n)
            .flat_map(|k| {
                (0..n)
                    .flat_map(move |j| {
                        (0..n)
                            .map(move |i| Vec3::new(i as f64 + 0.5, j as f64 + 0.5, k as f64 + 0.5))
                    })
                    .collect::<Vec<_>>()
            })
            .map(move |p| {
                p + Vec3::new(
                    rng.gen_range(-jitter..=jitter.max(1e-300)),
                    rng.gen_range(-jitter..=jitter.max(1e-300)),
                    rng.gen_range(-jitter..=jitter.max(1e-300)),
                )
            })
            .collect()
    }

    #[test]
    fn lattice_center_cell_is_unit_cube() {
        let n = 7;
        let pts = lattice(n, 0.0);
        let region = Aabb::cube(n as f64);
        let grid = CandidateGrid::build(region, &pts, 2.0);
        let center_idx = (n / 2) + n * ((n / 2) + n * (n / 2));
        let site = pts[center_idx];
        let cell = compute_cell(site, center_idx as u32, &pts, &grid, &region, 1e-9);
        assert!(cell.complete);
        assert!(
            (cell.poly.volume() - 1.0).abs() < 1e-9,
            "vol {}",
            cell.poly.volume()
        );
        assert!((cell.poly.surface_area() - 6.0).abs() < 1e-9);
        assert!(cell.poly.check_closed());
        // only the 6 face neighbors touch the cell
        assert_eq!(cell.poly.neighbor_ids().count(), 6);
        // far fewer candidates than the full point set were tested
        assert!(
            cell.candidates_tested < pts.len() / 2,
            "{}",
            cell.candidates_tested
        );
    }

    #[test]
    fn security_radius_terminates_early_on_jittered_lattice() {
        let n = 9;
        let pts = lattice(n, 0.2);
        let region = Aabb::cube(n as f64);
        let grid = CandidateGrid::build(region, &pts, 2.0);
        let center_idx = (n / 2) + n * ((n / 2) + n * (n / 2));
        let cell = compute_cell(
            pts[center_idx],
            center_idx as u32,
            &pts,
            &grid,
            &region,
            1e-9,
        );
        assert!(cell.complete);
        assert!(cell.poly.check_closed());
        assert!(cell.candidates_tested < 150, "{}", cell.candidates_tested);
    }

    #[test]
    fn boundary_cell_is_incomplete() {
        let n = 5;
        let pts = lattice(n, 0.0);
        let region = Aabb::cube(n as f64);
        let grid = CandidateGrid::build(region, &pts, 2.0);
        // corner particle: its cell is clipped by the region walls
        let cell = compute_cell(pts[0], 0, &pts, &grid, &region, 1e-9);
        assert!(!cell.complete);
    }

    #[test]
    fn cell_contains_its_site_and_membership_is_correct() {
        // Brute-force verification of Eq. (1): every point of the cell is
        // nearer to the site than to any other particle.
        let n = 5;
        let pts = lattice(n, 0.3);
        let region = Aabb::cube(n as f64);
        let grid = CandidateGrid::build(region, &pts, 2.0);
        let idx = 2 + n * (2 + n * 2);
        let site = pts[idx];
        let cell = compute_cell(site, idx as u32, &pts, &grid, &region, 1e-9);
        assert!(cell.poly.contains(site, 1e-9));
        // sample points inside the cell: centroid and face centroids
        let mut samples = vec![cell.poly.centroid()];
        for f in &cell.poly.faces {
            samples.push(cell.poly.face_centroid(f).lerp(site, 0.01));
        }
        for s in samples {
            let ds = s.dist2(site);
            for (qi, &q) in pts.iter().enumerate() {
                if qi != idx {
                    assert!(
                        ds <= q.dist2(s) + 1e-7,
                        "cell point {s} closer to particle {qi}"
                    );
                }
            }
        }
    }

    #[test]
    fn two_points_split_the_region() {
        let pts = vec![Vec3::new(1.0, 2.0, 2.0), Vec3::new(3.0, 2.0, 2.0)];
        let region = Aabb::cube(4.0);
        let grid = CandidateGrid::build(region, &pts, 2.0);
        let cell = compute_cell(pts[0], 0, &pts, &grid, &region, 1e-9);
        // half the box
        assert!((cell.poly.volume() - 32.0).abs() < 1e-9);
        // bounded by walls → incomplete
        assert!(!cell.complete);
        assert_eq!(cell.poly.neighbor_ids().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn coincident_particles_do_not_crash() {
        let pts = vec![
            Vec3::splat(2.0),
            Vec3::splat(2.0), // exact duplicate
            Vec3::new(1.0, 2.0, 2.0),
        ];
        let region = Aabb::cube(4.0);
        let grid = CandidateGrid::build(region, &pts, 2.0);
        let cell = compute_cell(pts[0], 0, &pts, &grid, &region, 1e-9);
        assert!(!cell.poly.is_empty());
        assert!(cell.poly.volume() > 0.0);
    }
}
