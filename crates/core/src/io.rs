//! Parallel tessellation I/O on top of `diy::io`.
//!
//! All blocks are written collectively into one file (the paper's §III-C2
//! data model), indexed by gid, and can be read back serially or in
//! parallel at any rank count.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use diy::codec::{Decode, Encode};
use diy::comm::World;

use crate::model::MeshBlock;

/// Collectively write this rank's blocks; returns total file bytes.
/// Recorded under the [`crate::driver::PHASE_OUTPUT`] metrics span.
pub fn write_tessellation(
    world: &mut World,
    path: &Path,
    blocks: &BTreeMap<u64, MeshBlock>,
) -> io::Result<u64> {
    let mut w = TessStreamWriter::create(world, path)?;
    let refs: Vec<(u64, &MeshBlock)> = blocks.iter().map(|(&gid, b)| (gid, b)).collect();
    w.write_wave(world, &refs)?;
    Ok(w.finish(world)?.file_bytes)
}

/// Collective block-streamed mesh writer: serialize and write blocks in
/// waves as they finish instead of accumulating the merged mesh (see
/// [`crate::tessellate_streaming`]). Serialization and file traffic are
/// recorded under the [`crate::driver::PHASE_OUTPUT`] span.
pub struct TessStreamWriter {
    inner: diy::io::BlockFileWriter,
}

/// Totals reported by [`TessStreamWriter::finish`] — global, identical on
/// every rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamWriteSummary {
    /// Blocks in the file.
    pub blocks: u64,
    /// Mesh payload bytes (excluding header/footer/trailer framing).
    pub payload_bytes: u64,
    /// Total file bytes including framing.
    pub file_bytes: u64,
}

impl TessStreamWriter {
    /// Create the file (collective).
    pub fn create(world: &mut World, path: &Path) -> io::Result<TessStreamWriter> {
        let _span = world.metrics().phase(crate::driver::PHASE_OUTPUT);
        Ok(TessStreamWriter {
            inner: diy::io::BlockFileWriter::create(world, path)?,
        })
    }

    /// Serialize and write one wave of finished blocks (collective; ranks
    /// with nothing ready this wave pass an empty slice).
    pub fn write_wave(
        &mut self,
        world: &mut World,
        blocks: &[(u64, &MeshBlock)],
    ) -> io::Result<()> {
        let _span = world.metrics().phase(crate::driver::PHASE_OUTPUT);
        let payloads: Vec<(u64, Vec<u8>)> =
            blocks.iter().map(|&(gid, b)| (gid, b.to_bytes())).collect();
        self.inner.write_wave(world, &payloads)
    }

    /// Write the index and return global totals (collective).
    pub fn finish(self, world: &mut World) -> io::Result<StreamWriteSummary> {
        let _span = world.metrics().phase(crate::driver::PHASE_OUTPUT);
        let local = (self.inner.local_blocks(), self.inner.local_payload_bytes());
        let file_bytes = self.inner.finish(world)?;
        let (blocks, payload_bytes) = world.all_reduce(local, |a, b| (a.0 + b.0, a.1 + b.1));
        Ok(StreamWriteSummary {
            blocks,
            payload_bytes,
            file_bytes,
        })
    }
}

/// Serial read of every block.
pub fn read_tessellation(path: &Path) -> io::Result<Vec<MeshBlock>> {
    diy::io::read_all_blocks(path)?
        .into_iter()
        .map(|(_, bytes)| {
            MeshBlock::from_bytes(&bytes)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
        })
        .collect()
}

/// Parallel read: each rank receives a partition of the blocks.
pub fn read_tessellation_parallel(world: &mut World, path: &Path) -> io::Result<Vec<MeshBlock>> {
    diy::io::read_blocks_parallel(world, path)?
        .into_iter()
        .map(|(_, bytes)| {
            MeshBlock::from_bytes(&bytes)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{tessellate, tessellate_serial};
    use crate::params::TessParams;
    use diy::comm::Runtime;
    use diy::decomposition::{Assignment, Decomposition};
    use geometry::{Aabb, Vec3};

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tess-io-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn lattice(n: usize) -> Vec<(u64, Vec3)> {
        (0..n * n * n)
            .map(|idx| {
                let i = idx % n;
                let j = (idx / n) % n;
                let k = idx / (n * n);
                (
                    idx as u64,
                    Vec3::new(i as f64 + 0.5, j as f64 + 0.5, k as f64 + 0.5),
                )
            })
            .collect()
    }

    #[test]
    fn serial_write_read_roundtrip() {
        let (block, _) = tessellate_serial(
            &lattice(4),
            Aabb::cube(4.0),
            [true; 3],
            &TessParams::default().with_ghost(2.0),
        );
        let path = tmpfile("serial.tess");
        let block2 = block.clone();
        Runtime::run(1, move |w| {
            let blocks: BTreeMap<u64, MeshBlock> = [(0u64, block2.clone())].into_iter().collect();
            write_tessellation(w, &path, &blocks).unwrap();
        });
        let back = read_tessellation(&tmpfile("serial.tess")).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0], block);
    }

    #[test]
    fn parallel_write_serial_read() {
        let n = 4;
        let particles = lattice(n);
        let domain = Aabb::cube(n as f64);
        let dec = Decomposition::regular(domain, 4, [true; 3]);
        let path = tmpfile("parallel.tess");
        let path2 = path.clone();
        let totals = Runtime::run(2, move |world| {
            let asn = Assignment::new(4, world.nranks());
            let mut local: BTreeMap<u64, Vec<(u64, Vec3)>> = asn
                .blocks_of_rank(world.rank())
                .map(|g| (g, Vec::new()))
                .collect();
            for &(id, p) in &particles {
                let gid = dec.block_of_point(p);
                if let Some(v) = local.get_mut(&gid) {
                    v.push((id, p));
                }
            }
            let params = TessParams::default().with_ghost(2.0);
            let r = tessellate(world, &dec, &asn, &local, &params);
            let bytes = write_tessellation(world, &path2, &r.blocks).unwrap();
            (
                bytes,
                r.blocks.values().map(|b| b.cells.len()).sum::<usize>(),
            )
        });
        // both ranks report the same file size
        assert_eq!(totals[0].0, totals[1].0);
        let written_cells: usize = totals.iter().map(|t| t.1).sum();

        let back = read_tessellation(&path).unwrap();
        assert_eq!(back.len(), 4);
        let read_cells: usize = back.iter().map(|b| b.cells.len()).sum();
        assert_eq!(read_cells, written_cells);
        assert_eq!(read_cells, n * n * n);
        // gids are sorted and bounds tile the domain
        let gids: Vec<u64> = back.iter().map(|b| b.gid).collect();
        assert_eq!(gids, vec![0, 1, 2, 3]);
        let vol: f64 = back.iter().map(|b| b.bounds.volume()).sum();
        assert!((vol - domain.volume()).abs() < 1e-9);
    }

    #[test]
    fn parallel_read_at_different_rank_count() {
        let path = tmpfile("reread.tess");
        // reuse the file from a fresh write
        let n = 4;
        let particles = lattice(n);
        let domain = Aabb::cube(n as f64);
        let dec = Decomposition::regular(domain, 4, [true; 3]);
        let path2 = path.clone();
        Runtime::run(4, move |world| {
            let asn = Assignment::new(4, world.nranks());
            let mut local: BTreeMap<u64, Vec<(u64, Vec3)>> = asn
                .blocks_of_rank(world.rank())
                .map(|g| (g, Vec::new()))
                .collect();
            for &(id, p) in &particles {
                let gid = dec.block_of_point(p);
                if let Some(v) = local.get_mut(&gid) {
                    v.push((id, p));
                }
            }
            let params = TessParams::default().with_ghost(2.0);
            let r = tessellate(world, &dec, &asn, &local, &params);
            write_tessellation(world, &path2, &r.blocks).unwrap();
        });
        let path3 = path.clone();
        let counts = Runtime::run(3, move |world| {
            read_tessellation_parallel(world, &path3)
                .unwrap()
                .iter()
                .map(|b| b.cells.len())
                .sum::<usize>()
        });
        assert_eq!(counts.iter().sum::<usize>(), n * n * n);
    }
}
