//! Uniform acceleration grid for distance-ordered candidate iteration.
//!
//! The local cell computation needs candidate neighbors roughly in order of
//! distance from a site so the security-radius test terminates early. A
//! uniform grid over the ghosted block region gives candidates in
//! Chebyshev "rings" of bins; the minimum possible distance of ring `r+1`
//! provides the lower bound used by the termination test.

use geometry::{Aabb, Vec3};

/// Uniform binning of points over a region.
pub struct CandidateGrid {
    bounds: Aabb,
    dims: [usize; 3],
    inv_h: Vec3,
    /// Per-axis bin edges — used for ring distance lower bounds.
    h: [f64; 3],
    bins: Vec<Vec<u32>>,
}

impl CandidateGrid {
    /// Build a grid over `bounds` holding `points`, aiming at about
    /// `per_bin` points per bin.
    pub fn build(bounds: Aabb, points: &[Vec3], per_bin: f64) -> Self {
        let n = points.len().max(1);
        let target_bins = (n as f64 / per_bin).max(1.0);
        let e = bounds.extent();
        let vol = (e.x * e.y * e.z).max(1e-300);
        let h = (vol / target_bins).powf(1.0 / 3.0);
        let dims = [
            ((e.x / h).ceil() as usize).clamp(1, 256),
            ((e.y / h).ceil() as usize).clamp(1, 256),
            ((e.z / h).ceil() as usize).clamp(1, 256),
        ];
        let hx = e.x / dims[0] as f64;
        let hy = e.y / dims[1] as f64;
        let hz = e.z / dims[2] as f64;
        let mut grid = CandidateGrid {
            bounds,
            dims,
            inv_h: Vec3::new(1.0 / hx, 1.0 / hy, 1.0 / hz),
            h: [hx, hy, hz],
            bins: vec![Vec::new(); dims[0] * dims[1] * dims[2]],
        };
        for (i, &p) in points.iter().enumerate() {
            let b = grid.bin_of(p);
            grid.bins[b].push(i as u32);
        }
        grid
    }

    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Lower bound on the distance from any point in the center bin to any
    /// point in a bin at Chebyshev ring `r` (`r >= 1`).
    ///
    /// A ring-`r` bin is `r` bin steps away along at least one axis, which
    /// along axis `a` forces a gap of `(r-1)·h[a]` in space — but only an
    /// axis with at least `r+1` bins can be the one attaining the Chebyshev
    /// maximum. Taking the minimum over *feasible* axes instead of the
    /// global smallest edge keeps anisotropic grids from scanning rings
    /// that provably cannot hold a closer candidate; when no axis is
    /// feasible the ring is empty and the bound is `+∞`.
    pub fn ring_min_distance(&self, r: usize) -> f64 {
        if r == 0 {
            return 0.0;
        }
        let steps = (r - 1) as f64;
        let mut bound = f64::INFINITY;
        for a in 0..3 {
            if r < self.dims[a] {
                bound = bound.min(steps * self.h[a]);
            }
        }
        bound
    }

    /// Largest ring index that can contain any bin, from any center.
    pub fn max_ring(&self) -> usize {
        self.dims.iter().max().copied().unwrap_or(1)
    }

    fn coords_of(&self, p: Vec3) -> [isize; 3] {
        let rel = p - self.bounds.min;
        [
            ((rel.x * self.inv_h.x) as isize).clamp(0, self.dims[0] as isize - 1),
            ((rel.y * self.inv_h.y) as isize).clamp(0, self.dims[1] as isize - 1),
            ((rel.z * self.inv_h.z) as isize).clamp(0, self.dims[2] as isize - 1),
        ]
    }

    fn bin_of(&self, p: Vec3) -> usize {
        let c = self.coords_of(p);
        c[0] as usize + self.dims[0] * (c[1] as usize + self.dims[1] * c[2] as usize)
    }

    /// Point indices in the Chebyshev ring `r` of bins around `center`
    /// (`r = 0` is the center bin itself).
    pub fn ring_candidates(&self, center: Vec3, r: usize, out: &mut Vec<u32>) {
        out.clear();
        let c = self.coords_of(center);
        let ri = r as isize;
        let (dx0, dx1) = (c[0] - ri, c[0] + ri);
        for z in (c[2] - ri)..=(c[2] + ri) {
            if z < 0 || z >= self.dims[2] as isize {
                continue;
            }
            for y in (c[1] - ri)..=(c[1] + ri) {
                if y < 0 || y >= self.dims[1] as isize {
                    continue;
                }
                let on_shell_yz = (z - c[2]).abs() == ri || (y - c[1]).abs() == ri;
                if on_shell_yz {
                    for x in dx0..=dx1 {
                        if x < 0 || x >= self.dims[0] as isize {
                            continue;
                        }
                        out.extend_from_slice(&self.bins[self.index(x, y, z)]);
                    }
                } else {
                    // only the two extreme x planes are on the shell
                    for x in [dx0, dx1] {
                        if x < 0 || x >= self.dims[0] as isize {
                            continue;
                        }
                        if r == 0 && x == dx1 && dx0 == dx1 {
                            continue; // avoid double-visiting the center bin
                        }
                        out.extend_from_slice(&self.bins[self.index(x, y, z)]);
                        if dx0 == dx1 {
                            break;
                        }
                    }
                }
            }
        }
    }

    fn index(&self, x: isize, y: isize, z: isize) -> usize {
        x as usize + self.dims[0] * (y as usize + self.dims[1] * z as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lattice(n: usize) -> Vec<Vec3> {
        (0..n)
            .flat_map(|k| {
                (0..n).flat_map(move |j| {
                    (0..n).map(move |i| Vec3::new(i as f64 + 0.5, j as f64 + 0.5, k as f64 + 0.5))
                })
            })
            .collect()
    }

    #[test]
    fn rings_partition_all_points() {
        let pts = lattice(6);
        let grid = CandidateGrid::build(Aabb::cube(6.0), &pts, 2.0);
        let center = Vec3::splat(3.0);
        let mut seen = vec![false; pts.len()];
        let mut buf = Vec::new();
        for r in 0..=grid.max_ring() {
            grid.ring_candidates(center, r, &mut buf);
            for &i in &buf {
                assert!(!seen[i as usize], "point {i} appeared in two rings");
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "all points visited exactly once");
    }

    #[test]
    fn ring_zero_is_center_bin_only() {
        let pts = lattice(4);
        let grid = CandidateGrid::build(Aabb::cube(4.0), &pts, 1.0);
        let mut buf = Vec::new();
        grid.ring_candidates(Vec3::splat(0.5), 0, &mut buf);
        // no duplicates
        let mut sorted = buf.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), buf.len());
    }

    #[test]
    fn ring_min_distance_is_a_valid_lower_bound() {
        let pts = lattice(8);
        let grid = CandidateGrid::build(Aabb::cube(8.0), &pts, 2.0);
        let center = Vec3::new(4.1, 3.9, 4.0);
        let mut buf = Vec::new();
        for r in 1..=grid.max_ring() {
            let lb = grid.ring_min_distance(r);
            grid.ring_candidates(center, r, &mut buf);
            for &i in &buf {
                let d = pts[i as usize].dist(center);
                assert!(
                    d >= lb - 1e-12,
                    "ring {r}: point at distance {d} < bound {lb}"
                );
            }
        }
    }

    #[test]
    fn ring_min_distance_lower_bound_holds_on_anisotropic_grids() {
        // Flat slab: bins are much shorter in z than in x/y, so the old
        // single-min-edge bound was far too pessimistic along x/y.
        let mut pts = Vec::new();
        for k in 0..4 {
            for j in 0..16 {
                for i in 0..16 {
                    pts.push(Vec3::new(
                        i as f64 + 0.5,
                        j as f64 + 0.5,
                        (k as f64 + 0.5) * 0.25,
                    ));
                }
            }
        }
        let bounds = Aabb::new(Vec3::ZERO, Vec3::new(16.0, 16.0, 1.0));
        let grid = CandidateGrid::build(bounds, &pts, 2.0);
        let [dx, dy, dz] = grid.dims();
        assert!(
            dz < dx && dz < dy,
            "slab should bin anisotropically: {:?}",
            grid.dims()
        );
        let center = Vec3::new(8.2, 7.8, 0.5);
        let mut buf = Vec::new();
        let mut some_ring_infeasible_in_z = false;
        for r in 1..=grid.max_ring() {
            let lb = grid.ring_min_distance(r);
            if r >= dz {
                some_ring_infeasible_in_z = true;
                // z can no longer attain the Chebyshev max, so the bound
                // must come from the (larger) x/y edges.
                assert!(
                    lb >= (r - 1) as f64 * (16.0 / dx.max(dy) as f64) - 1e-12,
                    "ring {r}: bound {lb} not tightened past the z edge"
                );
            }
            grid.ring_candidates(center, r, &mut buf);
            for &i in &buf {
                let d = pts[i as usize].dist(center);
                assert!(
                    d >= lb - 1e-12,
                    "ring {r}: point at distance {d} < bound {lb}"
                );
            }
        }
        assert!(some_ring_infeasible_in_z);
        // Past every axis, rings are provably empty.
        assert!(grid.ring_min_distance(dx.max(dy).max(dz)).is_infinite());
    }

    #[test]
    fn handles_empty_and_single_point() {
        let grid = CandidateGrid::build(Aabb::cube(1.0), &[], 2.0);
        let mut buf = Vec::new();
        grid.ring_candidates(Vec3::splat(0.5), 0, &mut buf);
        assert!(buf.is_empty());

        let grid = CandidateGrid::build(Aabb::cube(1.0), &[Vec3::splat(0.2)], 2.0);
        grid.ring_candidates(Vec3::splat(0.9), 0, &mut buf);
        assert_eq!(buf, vec![0]);
    }

    #[test]
    fn out_of_bounds_queries_clamp() {
        let pts = lattice(4);
        let grid = CandidateGrid::build(Aabb::cube(4.0), &pts, 2.0);
        let mut buf = Vec::new();
        // center outside the grid clamps to the nearest bin
        grid.ring_candidates(Vec3::splat(-5.0), 0, &mut buf);
        // should not panic; candidates come from the corner bin
        for &i in &buf {
            let p = pts[i as usize];
            assert!(p.x < 4.0 && p.y < 4.0 && p.z < 4.0);
        }
    }
}
