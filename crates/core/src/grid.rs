//! Uniform acceleration grid for distance-ordered candidate iteration.
//!
//! The local cell computation needs candidate neighbors in order of
//! distance from a site so the security-radius test terminates early. A
//! uniform grid over the ghosted block region gives candidates in
//! Chebyshev "rings" of bins; the minimum possible distance to the next
//! ring provides the lower bound used by the termination test.
//!
//! Two consumers sit on top of the binning:
//!
//! * the legacy **ring scan** ([`CandidateGrid::ring_candidates`] +
//!   [`CandidateGrid::ring_min_distance`]), which visits whole rings and
//!   sorts each one by distance, and
//! * the **candidate stream** ([`CandidateGrid::stream`]), a lazy min-heap
//!   merge of the rings that emits candidates one at a time in globally
//!   non-decreasing distance, prefiltered by an SoA `f32` distance test
//!   with a provably conservative slack before the exact `f64` distance is
//!   computed.
//!
//! The stream's termination bound is the *center-aware*
//! [`CandidateGrid::ring_min_distance_from`]: the legacy center-independent
//! bound treats an axis as attainable whenever the ring fits inside the
//! axis (`r < dims`), which under-reports the bound for a cell on a block
//! face of a strongly anisotropic grid — the short axis counts as feasible
//! even though no ring-`r` bin exists on the center's far side, so the scan
//! keeps going on rings that provably cannot hold a closer candidate.

use geometry::{Aabb, Vec3};

/// Uniform binning of points over a region.
pub struct CandidateGrid {
    bounds: Aabb,
    dims: [usize; 3],
    inv_h: Vec3,
    /// Per-axis bin edges — used for ring distance lower bounds.
    h: [f64; 3],
    bins: Vec<Vec<u32>>,
    /// SoA coordinates relative to `bounds.min`, in `f32`, for the
    /// prefilter (structure-of-arrays so the per-ring scan stays linear).
    sx: Vec<f32>,
    sy: Vec<f32>,
    sz: Vec<f32>,
    /// Conservative absolute slack of the `f32` distance computation:
    /// a true distance `d` always measures at least `d - slack` in `f32`,
    /// so `d2f > (sqrt(bound2)+slack)^2 (1+1e-6)` proves `d2 > bound2`.
    prefilter_slack: f64,
}

impl CandidateGrid {
    /// Build a grid over `bounds` holding `points`, aiming at about
    /// `per_bin` points per bin.
    pub fn build(bounds: Aabb, points: &[Vec3], per_bin: f64) -> Self {
        let n = points.len().max(1);
        let target_bins = (n as f64 / per_bin).max(1.0);
        let e = bounds.extent();
        let vol = (e.x * e.y * e.z).max(1e-300);
        let h = (vol / target_bins).powf(1.0 / 3.0);
        let dims = [
            ((e.x / h).ceil() as usize).clamp(1, 256),
            ((e.y / h).ceil() as usize).clamp(1, 256),
            ((e.z / h).ceil() as usize).clamp(1, 256),
        ];
        let hx = e.x / dims[0] as f64;
        let hy = e.y / dims[1] as f64;
        let hz = e.z / dims[2] as f64;
        let mut grid = CandidateGrid {
            bounds,
            dims,
            inv_h: Vec3::new(1.0 / hx, 1.0 / hy, 1.0 / hz),
            h: [hx, hy, hz],
            bins: vec![Vec::new(); dims[0] * dims[1] * dims[2]],
            sx: Vec::with_capacity(points.len()),
            sy: Vec::with_capacity(points.len()),
            sz: Vec::with_capacity(points.len()),
            prefilter_slack: 0.0,
        };
        // Slack scale: the largest |coordinate| that enters an f32
        // subtraction, covering both stored points and any query center
        // inside the bounds.
        let mut scale = e.x.max(e.y).max(e.z);
        for (i, &p) in points.iter().enumerate() {
            let b = grid.bin_of(p);
            grid.bins[b].push(i as u32);
            let rel = p - bounds.min;
            grid.sx.push(rel.x as f32);
            grid.sy.push(rel.y as f32);
            grid.sz.push(rel.z as f32);
            scale = scale.max(rel.x.abs()).max(rel.y.abs()).max(rel.z.abs());
        }
        // Each f32 component difference errs by at most ~3 eps32·scale
        // (two conversions + one subtraction), the 3-axis norm by √3 of
        // that; 8 eps32·scale bounds it with margin to spare. The squaring
        // and summation rounding is relative and absorbed by the 1e-6
        // factor in `prefilter_bound`.
        grid.prefilter_slack = 8.0 * (f32::EPSILON as f64) * scale.max(1e-300);
        grid
    }

    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Center-independent lower bound on the distance from any point in
    /// *some* bin to any point in a bin at Chebyshev ring `r` (`r >= 1`)
    /// around it.
    ///
    /// A ring-`r` bin is `r` bin steps away along at least one axis, which
    /// along axis `a` forces a gap of `(r-1)·h[a]` in space — but only an
    /// axis with at least `r+1` bins can attain the Chebyshev maximum from
    /// *some* center. This is valid for every center but loose near block
    /// faces: an axis the center has already exhausted on one side still
    /// counts as feasible. Prefer [`Self::ring_min_distance_from`] when the
    /// center is known (the streamed kernel's termination depends on the
    /// tighter bound; this variant is kept for center-free consumers and
    /// the legacy ring kernel).
    pub fn ring_min_distance(&self, r: usize) -> f64 {
        if r == 0 {
            return 0.0;
        }
        let steps = (r - 1) as f64;
        let mut bound = f64::INFINITY;
        for a in 0..3 {
            if r < self.dims[a] {
                bound = bound.min(steps * self.h[a]);
            }
        }
        bound
    }

    /// Center-aware lower bound on the distance from `center` to any point
    /// in a bin at Chebyshev ring `r` around `center`'s bin.
    ///
    /// Per axis, the plus side is attainable only while `c+r` is still a
    /// valid bin index (and symmetrically for the minus side); an
    /// attainable side's gap is the exact distance from `center` to the
    /// near wall of the ring-`r` bin slab, not the worst-case `(r-1)·h`.
    /// `+∞` when no side of any axis is attainable — the ring (and, since
    /// attainability only shrinks with `r`, every later ring) is empty.
    /// Non-decreasing in `r`, which is what makes the candidate stream's
    /// sorted emission proof go through.
    pub fn ring_min_distance_from(&self, center: Vec3, r: usize) -> f64 {
        let rel = center - self.bounds.min;
        self.ring_lb([rel.x, rel.y, rel.z], self.coords_of(center), r)
    }

    fn ring_lb(&self, rel: [f64; 3], c: [isize; 3], r: usize) -> f64 {
        if r == 0 {
            return 0.0;
        }
        let ri = r as isize;
        let mut bound = f64::INFINITY;
        for a in 0..3 {
            let h = self.h[a];
            if c[a] + ri < self.dims[a] as isize {
                // near wall of the +side ring slab is at (c+r)·h
                bound = bound.min(((c[a] + ri) as f64 * h - rel[a]).max(0.0));
            }
            if c[a] - ri >= 0 {
                // near wall of the -side ring slab is at (c-r+1)·h
                bound = bound.min((rel[a] - (c[a] - ri + 1) as f64 * h).max(0.0));
            }
        }
        bound
    }

    /// Largest ring index that can contain any bin, from any center.
    pub fn max_ring(&self) -> usize {
        self.dims.iter().max().copied().unwrap_or(1)
    }

    fn coords_of(&self, p: Vec3) -> [isize; 3] {
        let rel = p - self.bounds.min;
        [
            ((rel.x * self.inv_h.x) as isize).clamp(0, self.dims[0] as isize - 1),
            ((rel.y * self.inv_h.y) as isize).clamp(0, self.dims[1] as isize - 1),
            ((rel.z * self.inv_h.z) as isize).clamp(0, self.dims[2] as isize - 1),
        ]
    }

    fn bin_of(&self, p: Vec3) -> usize {
        let c = self.coords_of(p);
        c[0] as usize + self.dims[0] * (c[1] as usize + self.dims[1] * c[2] as usize)
    }

    /// Point indices in the Chebyshev ring `r` of bins around `center`
    /// (`r = 0` is the center bin itself).
    pub fn ring_candidates(&self, center: Vec3, r: usize, out: &mut Vec<u32>) {
        self.ring_candidates_at(self.coords_of(center), r, out);
    }

    fn ring_candidates_at(&self, c: [isize; 3], r: usize, out: &mut Vec<u32>) {
        out.clear();
        let ri = r as isize;
        let (dx0, dx1) = (c[0] - ri, c[0] + ri);
        for z in (c[2] - ri)..=(c[2] + ri) {
            if z < 0 || z >= self.dims[2] as isize {
                continue;
            }
            for y in (c[1] - ri)..=(c[1] + ri) {
                if y < 0 || y >= self.dims[1] as isize {
                    continue;
                }
                let on_shell_yz = (z - c[2]).abs() == ri || (y - c[1]).abs() == ri;
                if on_shell_yz {
                    for x in dx0..=dx1 {
                        if x < 0 || x >= self.dims[0] as isize {
                            continue;
                        }
                        out.extend_from_slice(&self.bins[self.index(x, y, z)]);
                    }
                } else {
                    // only the two extreme x planes are on the shell
                    for x in [dx0, dx1] {
                        if x < 0 || x >= self.dims[0] as isize {
                            continue;
                        }
                        if r == 0 && x == dx1 && dx0 == dx1 {
                            continue; // avoid double-visiting the center bin
                        }
                        out.extend_from_slice(&self.bins[self.index(x, y, z)]);
                        if dx0 == dx1 {
                            break;
                        }
                    }
                }
            }
        }
    }

    fn index(&self, x: isize, y: isize, z: isize) -> usize {
        x as usize + self.dims[0] * (y as usize + self.dims[1] * z as usize)
    }

    /// `f32` threshold such that `d2f > threshold` proves the exact
    /// squared distance exceeds `bound2` (conservative: no true candidate
    /// is ever rejected).
    #[inline]
    fn prefilter_bound(&self, bound2: f64) -> f32 {
        if !bound2.is_finite() {
            return f32::INFINITY;
        }
        ((bound2.sqrt() + self.prefilter_slack).powi(2) * (1.0 + 1e-6)) as f32
    }

    /// Squared distance in `f32` between stored point `i` and a center
    /// given relative to `bounds.min`.
    #[inline]
    fn rel_dist2_f32(&self, i: u32, c: [f32; 3]) -> f32 {
        let i = i as usize;
        let dx = self.sx[i] - c[0];
        let dy = self.sy[i] - c[1];
        let dz = self.sz[i] - c[2];
        dx * dx + dy * dy + dz * dz
    }

    /// Open a distance-ordered candidate stream around `center`. `points`
    /// must be the slice the grid was built from; `skip` is an index to
    /// omit (the site itself; pass `u32::MAX` to keep everything).
    pub fn stream<'a>(
        &'a self,
        points: &'a [Vec3],
        center: Vec3,
        skip: u32,
        scratch: &'a mut StreamScratch,
    ) -> NeighborStream<'a> {
        scratch.heap.clear();
        scratch.ring.clear();
        let rel = center - self.bounds.min;
        NeighborStream {
            grid: self,
            points,
            center,
            center_rel32: [rel.x as f32, rel.y as f32, rel.z as f32],
            center_rel: [rel.x, rel.y, rel.z],
            coords: self.coords_of(center),
            skip,
            next_ring: 0,
            cur_lb2: 0.0,
            prefilter_skipped: 0,
            scratch,
        }
    }

    /// Gather every candidate with exact squared distance in
    /// `[1e-24, bound2]` of `center` into `out` as `(d2, index)`, using the
    /// center-aware ring bound to stop scanning and the `f32` prefilter to
    /// skip exact distance computations. Effectively-coincident pairs
    /// (below the `1e-24` floor) are omitted — they have no bisector.
    /// Returns the number of candidates the prefilter rejected.
    pub fn ball_candidates(
        &self,
        points: &[Vec3],
        center: Vec3,
        skip: u32,
        bound2: f64,
        ring_buf: &mut Vec<u32>,
        out: &mut Vec<(f64, u32)>,
    ) -> u64 {
        out.clear();
        let c = self.coords_of(center);
        let rel = center - self.bounds.min;
        let rel32 = [rel.x as f32, rel.y as f32, rel.z as f32];
        let pf = self.prefilter_bound(bound2);
        let mut skipped = 0u64;
        for r in 0..=self.max_ring() {
            let lb = self.ring_lb([rel.x, rel.y, rel.z], c, r);
            if lb * lb > bound2 {
                break;
            }
            self.ring_candidates_at(c, r, ring_buf);
            for &i in ring_buf.iter() {
                if i == skip {
                    continue;
                }
                if self.rel_dist2_f32(i, rel32) > pf {
                    skipped += 1;
                    continue;
                }
                let d2 = points[i as usize].dist2(center);
                if (1e-24..=bound2).contains(&d2) {
                    out.push((d2, i));
                }
            }
        }
        skipped
    }
}

/// Reusable buffers for [`NeighborStream`] (heap + ring scratch), owned by
/// the caller so streaming millions of cells allocates nothing in steady
/// state.
#[derive(Default)]
pub struct StreamScratch {
    heap: Vec<(f64, u32)>,
    ring: Vec<u32>,
}

/// Lazy distance-ordered merge of the grid rings around one center.
///
/// [`NeighborStream::next`] takes the caller's current squared search
/// bound, which must be **non-increasing** across calls (the security
/// radius only shrinks as the cell is clipped). Candidates are emitted in
/// non-decreasing exact distance; `None` means no remaining candidate lies
/// within the bound — and since the bound never grows, none ever will.
///
/// Internally: rings are fetched one at a time into a binary min-heap
/// keyed on `(d2, index)`. The heap top is only emitted once its distance
/// is at most the lower bound of the next unfetched ring, which is what
/// makes the global emission order sorted; candidates are prefiltered with
/// the `f32` SoA distance before the exact `f64` distance is computed.
pub struct NeighborStream<'a> {
    grid: &'a CandidateGrid,
    points: &'a [Vec3],
    center: Vec3,
    center_rel32: [f32; 3],
    center_rel: [f64; 3],
    coords: [isize; 3],
    skip: u32,
    /// Next ring index to fetch.
    next_ring: usize,
    /// Squared lower bound on every not-yet-fetched candidate
    /// (= ring lower bound of `next_ring`, squared).
    cur_lb2: f64,
    prefilter_skipped: u64,
    scratch: &'a mut StreamScratch,
}

impl NeighborStream<'_> {
    /// Next candidate within `bound2` in non-decreasing distance, or
    /// `None` when every remaining candidate provably lies beyond it.
    pub fn next(&mut self, bound2: f64) -> Option<(f64, u32)> {
        loop {
            if let Some(&(d2, i)) = self.scratch.heap.first() {
                // safe to emit once nothing unfetched can be closer
                if d2 <= self.cur_lb2 {
                    if d2 > bound2 {
                        return None;
                    }
                    heap_pop(&mut self.scratch.heap);
                    return Some((d2, i));
                }
            }
            if self.cur_lb2 > bound2 {
                return None;
            }
            if self.next_ring > self.grid.max_ring() {
                // rings exhausted with an infinite bound: heap is empty
                // (any head would have been emitted against cur_lb2 = +∞)
                return None;
            }
            self.fetch_next_ring(bound2);
        }
    }

    /// Candidates rejected by the `f32` prefilter so far.
    pub fn prefilter_skipped(&self) -> u64 {
        self.prefilter_skipped
    }

    fn fetch_next_ring(&mut self, bound2: f64) {
        let r = self.next_ring;
        self.next_ring = r + 1;
        self.grid
            .ring_candidates_at(self.coords, r, &mut self.scratch.ring);
        let pf = self.grid.prefilter_bound(bound2);
        for &i in self.scratch.ring.iter() {
            if i == self.skip {
                continue;
            }
            if self.grid.rel_dist2_f32(i, self.center_rel32) > pf {
                self.prefilter_skipped += 1;
                continue;
            }
            let d2 = self.points[i as usize].dist2(self.center);
            if d2 <= bound2 {
                heap_push(&mut self.scratch.heap, (d2, i));
            }
        }
        let lb = self
            .grid
            .ring_lb(self.center_rel, self.coords, self.next_ring);
        self.cur_lb2 = lb * lb;
    }
}

/// Min-heap order: distance, then index (deterministic pop order for
/// exact distance ties).
#[inline]
fn cand_less(a: (f64, u32), b: (f64, u32)) -> bool {
    match a.0.total_cmp(&b.0) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => a.1 < b.1,
    }
}

fn heap_push(h: &mut Vec<(f64, u32)>, item: (f64, u32)) {
    h.push(item);
    let mut i = h.len() - 1;
    while i > 0 {
        let p = (i - 1) / 2;
        if cand_less(h[i], h[p]) {
            h.swap(i, p);
            i = p;
        } else {
            break;
        }
    }
}

fn heap_pop(h: &mut Vec<(f64, u32)>) -> (f64, u32) {
    let top = h.swap_remove(0);
    let mut i = 0;
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut m = i;
        if l < h.len() && cand_less(h[l], h[m]) {
            m = l;
        }
        if r < h.len() && cand_less(h[r], h[m]) {
            m = r;
        }
        if m == i {
            break;
        }
        h.swap(i, m);
        i = m;
    }
    top
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lattice(n: usize) -> Vec<Vec3> {
        (0..n)
            .flat_map(|k| {
                (0..n).flat_map(move |j| {
                    (0..n).map(move |i| Vec3::new(i as f64 + 0.5, j as f64 + 0.5, k as f64 + 0.5))
                })
            })
            .collect()
    }

    fn jittered(n: usize, seed: u64, amp: f64) -> Vec<Vec3> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        lattice(n)
            .into_iter()
            .map(|p| {
                p + Vec3::new(
                    rng.gen_range(-amp..amp),
                    rng.gen_range(-amp..amp),
                    rng.gen_range(-amp..amp),
                )
            })
            .collect()
    }

    #[test]
    fn rings_partition_all_points() {
        let pts = lattice(6);
        let grid = CandidateGrid::build(Aabb::cube(6.0), &pts, 2.0);
        let center = Vec3::splat(3.0);
        let mut seen = vec![false; pts.len()];
        let mut buf = Vec::new();
        for r in 0..=grid.max_ring() {
            grid.ring_candidates(center, r, &mut buf);
            for &i in &buf {
                assert!(!seen[i as usize], "point {i} appeared in two rings");
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "all points visited exactly once");
    }

    #[test]
    fn ring_zero_is_center_bin_only() {
        let pts = lattice(4);
        let grid = CandidateGrid::build(Aabb::cube(4.0), &pts, 1.0);
        let mut buf = Vec::new();
        grid.ring_candidates(Vec3::splat(0.5), 0, &mut buf);
        // no duplicates
        let mut sorted = buf.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), buf.len());
    }

    #[test]
    fn ring_min_distance_is_a_valid_lower_bound() {
        let pts = lattice(8);
        let grid = CandidateGrid::build(Aabb::cube(8.0), &pts, 2.0);
        let center = Vec3::new(4.1, 3.9, 4.0);
        let mut buf = Vec::new();
        for r in 1..=grid.max_ring() {
            let lb = grid.ring_min_distance(r);
            grid.ring_candidates(center, r, &mut buf);
            for &i in &buf {
                let d = pts[i as usize].dist(center);
                assert!(
                    d >= lb - 1e-12,
                    "ring {r}: point at distance {d} < bound {lb}"
                );
            }
        }
    }

    #[test]
    fn ring_min_distance_lower_bound_holds_on_anisotropic_grids() {
        // Flat slab: bins are much shorter in z than in x/y, so the old
        // single-min-edge bound was far too pessimistic along x/y.
        let mut pts = Vec::new();
        for k in 0..4 {
            for j in 0..16 {
                for i in 0..16 {
                    pts.push(Vec3::new(
                        i as f64 + 0.5,
                        j as f64 + 0.5,
                        (k as f64 + 0.5) * 0.25,
                    ));
                }
            }
        }
        let bounds = Aabb::new(Vec3::ZERO, Vec3::new(16.0, 16.0, 1.0));
        let grid = CandidateGrid::build(bounds, &pts, 2.0);
        let [dx, dy, dz] = grid.dims();
        assert!(
            dz < dx && dz < dy,
            "slab should bin anisotropically: {:?}",
            grid.dims()
        );
        let center = Vec3::new(8.2, 7.8, 0.5);
        let mut buf = Vec::new();
        let mut some_ring_infeasible_in_z = false;
        for r in 1..=grid.max_ring() {
            let lb = grid.ring_min_distance(r);
            if r >= dz {
                some_ring_infeasible_in_z = true;
                // z can no longer attain the Chebyshev max, so the bound
                // must come from the (larger) x/y edges.
                assert!(
                    lb >= (r - 1) as f64 * (16.0 / dx.max(dy) as f64) - 1e-12,
                    "ring {r}: bound {lb} not tightened past the z edge"
                );
            }
            grid.ring_candidates(center, r, &mut buf);
            for &i in &buf {
                let d = pts[i as usize].dist(center);
                assert!(
                    d >= lb - 1e-12,
                    "ring {r}: point at distance {d} < bound {lb}"
                );
            }
        }
        assert!(some_ring_infeasible_in_z);
        // Past every axis, rings are provably empty.
        assert!(grid.ring_min_distance(dx.max(dy).max(dz)).is_infinite());
    }

    #[test]
    fn face_cell_center_aware_bound_fixes_the_legacy_under_report() {
        // The boundary case the legacy bound gets wrong: on a strongly
        // anisotropic grid (short z axis, h[z] < h[x]) the legacy bound
        // keeps reporting the tiny `(r-1)·h[z]` gap while `r < dims[z]` —
        // but for a center whose z bin is within one bin of *both* z block
        // faces, no ring-`r` bin exists on either z side for `r >= 2`, so
        // the true lower bound is set by the (much larger) x/y gaps. The
        // center-aware bound must see that and still be valid everywhere.
        //
        // Slab sized so the builder picks dims [16, 16, 3]: h[x] = 1 but
        // h[z] = 2.05/3 ≈ 0.683 — genuinely anisotropic bin edges.
        let mut pts = Vec::new();
        for k in 0..4 {
            for j in 0..16 {
                for i in 0..16 {
                    pts.push(Vec3::new(
                        i as f64 + 0.5,
                        j as f64 + 0.5,
                        (k as f64 + 0.5) * 2.05 / 4.0,
                    ));
                }
            }
        }
        let bounds = Aabb::new(Vec3::ZERO, Vec3::new(16.0, 16.0, 2.05));
        let grid = CandidateGrid::build(bounds, &pts, 2.0);
        assert_eq!(grid.dims(), [16, 16, 3], "test geometry drifted");
        let [dx, _dy, dz] = grid.dims();
        let (hx, hz) = (16.0 / dx as f64, 2.05 / dz as f64);
        assert!(hz < hx * 0.75, "need anisotropic edges: hx {hx} hz {hz}");
        // center mid-bin in x/y, in the middle z bin — one bin from both
        // z faces of the block
        let center = Vec3::new(8.5, 7.5, 1.025);
        let mut buf = Vec::new();
        let mut legacy_under_reported = false;
        for r in 1..grid.max_ring() {
            let legacy = grid.ring_min_distance(r);
            let aware = grid.ring_min_distance_from(center, r);
            // validity: every ring-r candidate is at least `aware` away
            grid.ring_candidates(center, r, &mut buf);
            for &i in &buf {
                let d = pts[i as usize].dist(center);
                assert!(
                    d >= aware - 1e-12,
                    "ring {r}: point at distance {d} < center-aware bound {aware}"
                );
            }
            // the center-aware bound never loosens the legacy bound
            assert!(
                aware >= legacy - 1e-12 || legacy.is_infinite(),
                "ring {r}: aware {aware} < legacy {legacy}"
            );
            if r == 2 {
                // r < dims[z], so legacy still thinks z is attainable and
                // reports the sub-bin z gap ...
                assert!(
                    (legacy - (r - 1) as f64 * hz).abs() < 1e-12,
                    "ring {r}: legacy bound {legacy} expected {}",
                    (r - 1) as f64 * hz
                );
                // ... but from this center both z sides are exhausted at
                // r = 2 (middle bin of 3), so the true bound is the mid-bin
                // x/y gap of 1.5·h[x] — more than a whole bin edge tighter.
                assert!(
                    (aware - 1.5 * hx).abs() < 1e-9,
                    "ring {r}: aware {aware} expected {}",
                    1.5 * hx
                );
                if aware > legacy + hz {
                    legacy_under_reported = true;
                }
            }
            // monotonicity in r (the sorted-emission proof rests on it)
            if r > 1 {
                assert!(
                    aware >= grid.ring_min_distance_from(center, r - 1) - 1e-15,
                    "ring bound decreased at r={r}"
                );
            }
        }
        assert!(
            legacy_under_reported,
            "mid-slab cell must expose the legacy under-report"
        );
    }

    #[test]
    fn stream_emits_every_candidate_in_nondecreasing_distance() {
        let pts = jittered(6, 11, 0.4);
        let grid = CandidateGrid::build(Aabb::cube(6.0), &pts, 2.0);
        for (skip, center) in [(17u32, pts[17]), (u32::MAX, Vec3::new(0.1, 5.7, 2.3))] {
            let mut scratch = StreamScratch::default();
            let mut stream = grid.stream(&pts, center, skip, &mut scratch);
            let mut got = Vec::new();
            let mut last = 0.0f64;
            while let Some((d2, i)) = stream.next(f64::MAX) {
                assert!(d2 >= last, "distance decreased: {d2} after {last}");
                assert!((pts[i as usize].dist2(center) - d2).abs() == 0.0);
                last = d2;
                got.push(i);
            }
            let mut expect: Vec<u32> = (0..pts.len() as u32).filter(|&i| i != skip).collect();
            expect.sort_unstable();
            let mut got_sorted = got.clone();
            got_sorted.sort_unstable();
            assert_eq!(got_sorted, expect, "stream must visit every candidate");
        }
    }

    #[test]
    fn stream_respects_a_shrinking_bound_and_never_stops_early() {
        // With a bound that shrinks between calls, the stream must still
        // deliver every candidate inside the *final* bound before
        // returning None (the security-radius contract).
        let pts = jittered(5, 3, 0.45);
        let grid = CandidateGrid::build(Aabb::cube(5.0), &pts, 2.0);
        let center = pts[31];
        let bounds_seq = [9.0f64, 4.0, 2.5, 2.5, 1.4];
        let mut scratch = StreamScratch::default();
        let mut stream = grid.stream(&pts, center, 31, &mut scratch);
        let mut emitted = Vec::new();
        let mut k = 0usize;
        loop {
            let bound2 = bounds_seq[k.min(bounds_seq.len() - 1)];
            match stream.next(bound2) {
                Some((d2, i)) => {
                    assert!(d2 <= bound2);
                    emitted.push(i);
                    k += 1;
                }
                None => break,
            }
        }
        let final_bound = *bounds_seq.last().unwrap();
        for (i, &p) in pts.iter().enumerate() {
            if i == 31 {
                continue;
            }
            if p.dist2(center) <= final_bound {
                assert!(
                    emitted.contains(&(i as u32)),
                    "candidate {i} inside the final bound was never emitted"
                );
            }
        }
    }

    #[test]
    fn prefilter_skips_far_candidates_but_never_true_ones() {
        let pts = jittered(7, 5, 0.3);
        let grid = CandidateGrid::build(Aabb::cube(7.0), &pts, 2.0);
        let center = pts[100];
        let bound2 = 2.25f64; // radius 1.5 in a box of extent 7
        let mut scratch = StreamScratch::default();
        let mut stream = grid.stream(&pts, center, 100, &mut scratch);
        let mut got = Vec::new();
        while let Some((_, i)) = stream.next(bound2) {
            got.push(i);
        }
        let skipped = stream.prefilter_skipped();
        // exact oracle: every point within the bound must be emitted
        let expect: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|&(i, p)| i != 100 && p.dist2(center) <= bound2)
            .map(|(i, _)| i as u32)
            .collect();
        let mut got_sorted = got.clone();
        got_sorted.sort_unstable();
        let mut expect_sorted = expect.clone();
        expect_sorted.sort_unstable();
        assert_eq!(got_sorted, expect_sorted);
        assert!(skipped > 0, "prefilter never fired on a far-candidate scan");
    }

    #[test]
    fn ball_candidates_matches_brute_force() {
        let pts = jittered(6, 29, 0.45);
        let grid = CandidateGrid::build(Aabb::cube(6.0), &pts, 2.0);
        let center = pts[77];
        let bound2 = 3.1f64;
        let (mut ring_buf, mut out) = (Vec::new(), Vec::new());
        grid.ball_candidates(&pts, center, 77, bound2, &mut ring_buf, &mut out);
        let mut got: Vec<u32> = out.iter().map(|&(_, i)| i).collect();
        got.sort_unstable();
        let mut expect: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|&(i, p)| i != 77 && (1e-24..=bound2).contains(&p.dist2(center)))
            .map(|(i, _)| i as u32)
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
        for &(d2, i) in &out {
            assert_eq!(d2, pts[i as usize].dist2(center), "exact distances only");
        }
    }

    #[test]
    fn handles_empty_and_single_point() {
        let grid = CandidateGrid::build(Aabb::cube(1.0), &[], 2.0);
        let mut buf = Vec::new();
        grid.ring_candidates(Vec3::splat(0.5), 0, &mut buf);
        assert!(buf.is_empty());
        let mut scratch = StreamScratch::default();
        let mut stream = grid.stream(&[], Vec3::splat(0.5), u32::MAX, &mut scratch);
        assert!(stream.next(f64::MAX).is_none());

        let pts = [Vec3::splat(0.2)];
        let grid = CandidateGrid::build(Aabb::cube(1.0), &pts, 2.0);
        grid.ring_candidates(Vec3::splat(0.9), 0, &mut buf);
        assert_eq!(buf, vec![0]);
        let mut stream = grid.stream(&pts, Vec3::splat(0.9), u32::MAX, &mut scratch);
        assert_eq!(stream.next(f64::MAX).map(|(_, i)| i), Some(0));
        assert!(stream.next(f64::MAX).is_none());
    }

    #[test]
    fn out_of_bounds_queries_clamp() {
        let pts = lattice(4);
        let grid = CandidateGrid::build(Aabb::cube(4.0), &pts, 2.0);
        let mut buf = Vec::new();
        // center outside the grid clamps to the nearest bin
        grid.ring_candidates(Vec3::splat(-5.0), 0, &mut buf);
        // should not panic; candidates come from the corner bin
        for &i in &buf {
            let p = pts[i as usize];
            assert!(p.x < 4.0 && p.y < 4.0 && p.z < 4.0);
        }
    }
}
