//! `tess-serve` — the resident tessellation service as a command-line tool.
//!
//! Loads (or generates) a point set, spawns a [`tess::MeshService`], and
//! answers queries from stdin — one command per line — while the certified
//! mesh stays resident between requests:
//!
//! ```text
//! tess-serve --n 500 --box 10 [--seed 1] [--ranks 2] [--blocks 8]
//!            [--workers 2] [--batch 64] [--ghost 3.0] [--no-periodic]
//!            [--points points.bin] [--demo]
//!
//! > point 1.5 2.0 3.25          # nearest-seed cell lookup
//! > box 0 0 0 2 2 2             # cells whose seed lies in the box
//! > region 0 0 0 5 5 5          # volume/density summary over the box
//! > move 17 4.0 4.0 4.0         # upsert particle 17 and re-tessellate
//! > remove 17                   # drop particle 17 and re-tessellate
//! > stats                       # queue/batch/epoch counters
//! > quit
//! ```
//!
//! `--demo` runs a scripted query/update round-trip instead of reading
//! stdin (used by CI as an end-to-end smoke of the service binary).
//!
//! Points files are the workspace codec encoding of `Vec<(u64, Vec3)>`,
//! as written by `tess-cli generate`.

use std::collections::BTreeMap;
use std::io::BufRead;
use std::process::ExitCode;

use diy::codec::Decode;
use diy::{log_error, log_info};
use geometry::{Aabb, Vec3};
use tess::{Answer, MeshService, Query, ServiceConfig, TessParams, Update};

struct Args {
    flags: BTreeMap<String, String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut flags = BTreeMap::new();
        let mut i = 0;
        while i < raw.len() {
            let key = raw[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got '{}'", raw[i]))?;
            if key == "no-periodic" || key == "demo" {
                flags.insert(key.to_string(), "true".to_string());
                i += 1;
            } else {
                let value = raw
                    .get(i + 1)
                    .ok_or_else(|| format!("--{key} needs a value"))?;
                flags.insert(key.to_string(), value.clone());
                i += 2;
            }
        }
        Ok(Args { flags })
    }

    fn get<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.flags.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }

    fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.get(key)?.ok_or_else(|| format!("--{key} is required"))
    }
}

fn load_points(args: &Args, box_len: f64) -> Result<Vec<(u64, Vec3)>, String> {
    if let Some(path) = args.get::<String>("points")? {
        let bytes = std::fs::read(&path).map_err(|e| format!("{path}: {e}"))?;
        return Vec::<(u64, Vec3)>::from_bytes(&bytes).map_err(|e| e.to_string());
    }
    use rand::{Rng, SeedableRng};
    let n: usize = args.require("n")?;
    let seed: u64 = args.get("seed")?.unwrap_or(42);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    Ok((0..n as u64)
        .map(|id| {
            (
                id,
                Vec3::new(
                    rng.gen_range(0.0..box_len),
                    rng.gen_range(0.0..box_len),
                    rng.gen_range(0.0..box_len),
                ),
            )
        })
        .collect())
}

fn answer_line(svc: &MeshService, query: Query) -> Result<String, String> {
    let r = svc.query(query).map_err(|_| "service closed".to_string())?;
    let body = match r.answer {
        Answer::Point(None) => "point: no cell (empty mesh)".to_string(),
        Answer::Point(Some(h)) => format!(
            "point: site {} block {} dist {:.6} volume {:.6} area {:.6} faces {}{}",
            h.site_id,
            h.gid,
            h.dist2.sqrt(),
            h.volume,
            h.area,
            h.faces,
            if h.complete { "" } else { " (incomplete)" }
        ),
        Answer::BoxCells(cells) => {
            let vol: f64 = cells.iter().map(|c| c.volume).sum();
            format!("box: {} cells, total volume {vol:.6}", cells.len())
        }
        Answer::Region(s) => format!(
            "region: {} cells, volume {:.6}, area {:.6}, density {:.6} cells/vol",
            s.cells, s.volume, s.area, s.density
        ),
    };
    Ok(format!(
        "[epoch {} | {:.2}ms] {body}",
        r.epoch,
        r.latency_ns as f64 / 1e6
    ))
}

fn parse_vec3(w: &[&str]) -> Result<Vec3, String> {
    if w.len() != 3 {
        return Err(format!("expected 3 coordinates, got {}", w.len()));
    }
    let p = |s: &str| s.parse::<f64>().map_err(|_| format!("bad number '{s}'"));
    Ok(Vec3::new(p(w[0])?, p(w[1])?, p(w[2])?))
}

fn parse_aabb(w: &[&str]) -> Result<Aabb, String> {
    if w.len() != 6 {
        return Err(format!("expected 6 coordinates, got {}", w.len()));
    }
    Ok(Aabb::new(parse_vec3(&w[..3])?, parse_vec3(&w[3..])?))
}

fn run_command(svc: &MeshService, line: &str) -> Result<Option<String>, String> {
    let words: Vec<&str> = line.split_whitespace().collect();
    let Some((cmd, rest)) = words.split_first() else {
        return Ok(None);
    };
    match *cmd {
        "quit" | "exit" => Ok(None),
        "point" => answer_line(svc, Query::Point(parse_vec3(rest)?)).map(Some),
        "box" => answer_line(svc, Query::BoxCells(parse_aabb(rest)?)).map(Some),
        "region" => answer_line(svc, Query::Region(parse_aabb(rest)?)).map(Some),
        "move" => {
            let id: u64 = rest
                .first()
                .and_then(|s| s.parse().ok())
                .ok_or("move needs: id x y z")?;
            let pos = parse_vec3(rest.get(1..).unwrap_or(&[]))?;
            let rep = svc.update(Update::Delta {
                upserts: vec![(id, pos)],
                removes: Vec::new(),
            });
            Ok(Some(format!(
                "epoch {} published: {} particles, {} cells ({:.2}s)",
                rep.epoch, rep.particles, rep.cells, rep.tess_wall_s
            )))
        }
        "remove" => {
            let id: u64 = rest
                .first()
                .and_then(|s| s.parse().ok())
                .ok_or("remove needs: id")?;
            let rep = svc.update(Update::Delta {
                upserts: Vec::new(),
                removes: vec![id],
            });
            Ok(Some(format!(
                "epoch {} published: {} particles, {} cells ({:.2}s)",
                rep.epoch, rep.particles, rep.cells, rep.tess_wall_s
            )))
        }
        "stats" => {
            let s = svc.stats();
            let h = svc.hists();
            Ok(Some(format!(
                "epoch {}: {} answered / {} enqueued, {} batches, {} coalesced, \
                 {} epochs published, latency p50 {:.0}ns",
                svc.epoch(),
                s.answered,
                s.enqueued,
                s.batches,
                s.coalesced,
                s.epochs_published,
                h.latency_ns.quantile(0.5),
            )))
        }
        other => Err(format!(
            "unknown command '{other}' (point|box|region|move|remove|stats|quit)"
        )),
    }
}

/// Scripted round-trip for CI: query, update, re-query, check the epoch
/// advanced and the whole-domain volume stays equal to the box volume
/// (periodic domains tile space exactly).
fn demo(svc: &MeshService, domain: Aabb, periodic: bool) -> Result<(), String> {
    let center = Vec3::new(
        0.5 * (domain.min.x + domain.max.x),
        0.5 * (domain.min.y + domain.max.y),
        0.5 * (domain.min.z + domain.max.z),
    );
    for line in [
        format!("point {} {} {}", center.x, center.y, center.z),
        format!(
            "box {} {} {} {} {} {}",
            domain.min.x, domain.min.y, domain.min.z, center.x, center.y, center.z
        ),
        format!(
            "region {} {} {} {} {} {}",
            domain.min.x, domain.min.y, domain.min.z, domain.max.x, domain.max.y, domain.max.z
        ),
        format!("move 0 {} {} {}", center.x, center.y, center.z),
        format!("point {} {} {}", center.x, center.y, center.z),
        "stats".to_string(),
    ] {
        let out = run_command(svc, &line)?.unwrap_or_default();
        log_info!("demo> {line}");
        log_info!("{out}");
    }
    if svc.epoch() != 2 {
        return Err(format!("demo: expected epoch 2, got {}", svc.epoch()));
    }
    if periodic {
        let snap = svc.snapshot();
        let vol = domain.volume();
        if (snap.total_volume - vol).abs() > 1e-9 * vol {
            return Err(format!(
                "demo: total cell volume {} != domain volume {vol}",
                snap.total_volume
            ));
        }
        log_info!("demo: volume conserved to 1e-9 after update — OK");
    }
    // After the update the moved particle's cell must contain its new seed.
    let hit = match svc.query(Query::Point(center)).map_err(|e| e.to_string())? {
        tess::Response {
            answer: Answer::Point(Some(h)),
            ..
        } => h,
        _ => return Err("demo: no cell at the moved seed".into()),
    };
    if hit.site_id != 0 || hit.dist2 != 0.0 {
        return Err(format!(
            "demo: moved particle 0 should own its seed point, got site {} dist2 {}",
            hit.site_id, hit.dist2
        ));
    }
    log_info!("demo: moved particle owns its seed — OK");
    Ok(())
}

fn run(args: &Args) -> Result<(), String> {
    let box_len: f64 = args.require("box")?;
    let ranks: usize = args.get("ranks")?.unwrap_or(2);
    let blocks: usize = args.get("blocks")?.unwrap_or(8);
    let workers: usize = args.get("workers")?.unwrap_or(2);
    let batch: usize = args.get("batch")?.unwrap_or(64);
    let periodic = !args.flags.contains_key("no-periodic");
    let points = load_points(args, box_len)?;

    let mut params = TessParams::default().with_adaptive_ghost();
    if let Some(g) = args.get::<f64>("ghost")? {
        params = params.with_ghost(g);
    }
    let domain = Aabb::cube(box_len);
    let svc = MeshService::spawn(
        domain,
        [periodic; 3],
        &points,
        ServiceConfig::new(ranks, blocks)
            .with_workers(workers)
            .with_batch_max(batch)
            .with_params(params),
    );
    let snap = svc.snapshot();
    log_info!(
        "serving {} cells from {} particles (epoch {}, {blocks} blocks on {ranks} ranks, \
         {workers} workers, batch {batch})",
        snap.total_cells,
        points.len(),
        snap.epoch
    );

    if args.flags.contains_key("demo") {
        return demo(&svc, domain, periodic);
    }

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if trimmed == "quit" || trimmed == "exit" {
            break;
        }
        match run_command(&svc, trimmed) {
            Ok(Some(out)) => println!("{out}"),
            Ok(None) => {}
            Err(e) => log_error!("{e}"),
        }
    }
    let stats = svc.shutdown();
    log_info!(
        "shutting down: {} answered, {} epochs published",
        stats.answered,
        stats.epochs_published
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(&argv) {
        Ok(a) => a,
        Err(e) => {
            log_error!(
                "{e}\nusage: tess-serve --box L (--n N | --points FILE) [flags] (see module docs)"
            );
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            log_error!("{e}");
            ExitCode::FAILURE
        }
    }
}
