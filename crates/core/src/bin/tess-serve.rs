//! `tess-serve` — the resident tessellation service as a command-line tool.
//!
//! Loads (or generates) a point set, spawns a [`tess::MeshService`], and
//! answers queries from stdin — one command per line — while the certified
//! mesh stays resident between requests:
//!
//! ```text
//! tess-serve --n 500 --box 10 [--seed 1] [--ranks 2] [--blocks 8]
//!            [--workers 2] [--batch 64] [--ghost 3.0] [--no-periodic]
//!            [--points points.bin] [--telemetry out.prom[:secs]] [--demo]
//!
//! > point 1.5 2.0 3.25          # nearest-seed cell lookup
//! > box 0 0 0 2 2 2             # cells whose seed lies in the box
//! > region 0 0 0 5 5 5          # volume/density summary over the box
//! > move 17 4.0 4.0 4.0         # upsert particle 17 and re-tessellate
//! > remove 17                   # drop particle 17 and re-tessellate
//! > stats                       # human-readable live-telemetry table
//! > metrics                     # Prometheus text exposition dump
//! > quit
//! ```
//!
//! `--telemetry <path>[:<secs>]` starts a periodic exporter: every
//! interval (default 5 s) it advances the telemetry epoch (rotating the
//! rolling-quantile windows) and rewrites `<path>` with the Prometheus
//! exposition, so an external scraper can watch a running service by
//! reading one file. A final export lands on shutdown.
//!
//! `--demo` runs a scripted query/update round-trip instead of reading
//! stdin (used by CI as an end-to-end smoke of the service binary); it
//! exercises `stats` and `metrics` and re-parses the exposition output.
//!
//! Points files are the workspace codec encoding of `Vec<(u64, Vec3)>`,
//! as written by `tess-cli generate`.

use std::collections::BTreeMap;
use std::io::BufRead;
use std::process::ExitCode;

use diy::codec::Decode;
use diy::{log_error, log_info};
use geometry::{Aabb, Vec3};
use tess::{Answer, MeshService, Query, ServiceConfig, TessParams, Update};

struct Args {
    flags: BTreeMap<String, String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut flags = BTreeMap::new();
        let mut i = 0;
        while i < raw.len() {
            let key = raw[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got '{}'", raw[i]))?;
            if key == "no-periodic" || key == "demo" {
                flags.insert(key.to_string(), "true".to_string());
                i += 1;
            } else {
                let value = raw
                    .get(i + 1)
                    .ok_or_else(|| format!("--{key} needs a value"))?;
                flags.insert(key.to_string(), value.clone());
                i += 2;
            }
        }
        Ok(Args { flags })
    }

    fn get<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.flags.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }

    fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.get(key)?.ok_or_else(|| format!("--{key} is required"))
    }
}

fn load_points(args: &Args, box_len: f64) -> Result<Vec<(u64, Vec3)>, String> {
    if let Some(path) = args.get::<String>("points")? {
        let bytes = std::fs::read(&path).map_err(|e| format!("{path}: {e}"))?;
        return Vec::<(u64, Vec3)>::from_bytes(&bytes).map_err(|e| e.to_string());
    }
    use rand::{Rng, SeedableRng};
    let n: usize = args.require("n")?;
    let seed: u64 = args.get("seed")?.unwrap_or(42);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    Ok((0..n as u64)
        .map(|id| {
            (
                id,
                Vec3::new(
                    rng.gen_range(0.0..box_len),
                    rng.gen_range(0.0..box_len),
                    rng.gen_range(0.0..box_len),
                ),
            )
        })
        .collect())
}

fn answer_line(svc: &MeshService, query: Query) -> Result<String, String> {
    let r = svc.query(query).map_err(|_| "service closed".to_string())?;
    let body = match r.answer {
        Answer::Point(None) => "point: no cell (empty mesh)".to_string(),
        Answer::Point(Some(h)) => format!(
            "point: site {} block {} dist {:.6} volume {:.6} area {:.6} faces {}{}",
            h.site_id,
            h.gid,
            h.dist2.sqrt(),
            h.volume,
            h.area,
            h.faces,
            if h.complete { "" } else { " (incomplete)" }
        ),
        Answer::BoxCells(cells) => {
            let vol: f64 = cells.iter().map(|c| c.volume).sum();
            format!("box: {} cells, total volume {vol:.6}", cells.len())
        }
        Answer::Region(s) => format!(
            "region: {} cells, volume {:.6}, area {:.6}, density {:.6} cells/vol",
            s.cells, s.volume, s.area, s.density
        ),
    };
    Ok(format!(
        "[epoch {} | {:.2}ms] {body}",
        r.epoch,
        r.latency_ns as f64 / 1e6
    ))
}

fn parse_vec3(w: &[&str]) -> Result<Vec3, String> {
    if w.len() != 3 {
        return Err(format!("expected 3 coordinates, got {}", w.len()));
    }
    let p = |s: &str| s.parse::<f64>().map_err(|_| format!("bad number '{s}'"));
    Ok(Vec3::new(p(w[0])?, p(w[1])?, p(w[2])?))
}

fn parse_aabb(w: &[&str]) -> Result<Aabb, String> {
    if w.len() != 6 {
        return Err(format!("expected 6 coordinates, got {}", w.len()));
    }
    Ok(Aabb::new(parse_vec3(&w[..3])?, parse_vec3(&w[3..])?))
}

fn run_command(svc: &MeshService, line: &str) -> Result<Option<String>, String> {
    let words: Vec<&str> = line.split_whitespace().collect();
    let Some((cmd, rest)) = words.split_first() else {
        return Ok(None);
    };
    match *cmd {
        "quit" | "exit" => Ok(None),
        "point" => answer_line(svc, Query::Point(parse_vec3(rest)?)).map(Some),
        "box" => answer_line(svc, Query::BoxCells(parse_aabb(rest)?)).map(Some),
        "region" => answer_line(svc, Query::Region(parse_aabb(rest)?)).map(Some),
        "move" => {
            let id: u64 = rest
                .first()
                .and_then(|s| s.parse().ok())
                .ok_or("move needs: id x y z")?;
            let pos = parse_vec3(rest.get(1..).unwrap_or(&[]))?;
            let rep = svc.update(Update::Delta {
                upserts: vec![(id, pos)],
                removes: Vec::new(),
            });
            Ok(Some(format!(
                "epoch {} published: {} particles, {} cells ({:.2}s)",
                rep.epoch, rep.particles, rep.cells, rep.tess_wall_s
            )))
        }
        "remove" => {
            let id: u64 = rest
                .first()
                .and_then(|s| s.parse().ok())
                .ok_or("remove needs: id")?;
            let rep = svc.update(Update::Delta {
                upserts: Vec::new(),
                removes: vec![id],
            });
            Ok(Some(format!(
                "epoch {} published: {} particles, {} cells ({:.2}s)",
                rep.epoch, rep.particles, rep.cells, rep.tess_wall_s
            )))
        }
        "stats" => Ok(Some(stats_table(svc))),
        "metrics" => Ok(Some(diy::telemetry::render_prometheus())),
        other => Err(format!(
            "unknown command '{other}' (point|box|region|move|remove|stats|metrics|quit)"
        )),
    }
}

/// Human-readable live-telemetry table: one `name  value` row per stat,
/// mixing the mesh snapshot, service counters, and latency quantiles.
fn stats_table(svc: &MeshService) -> String {
    let snap = svc.snapshot();
    let s = svc.stats();
    let h = svc.hists();
    let imbalance = diy::telemetry::gauge("service.rank_imbalance", &[]).get();
    let queue_depth = diy::telemetry::gauge("service.queue_depth", &[]).get();
    let rate = if s.answered > 0 {
        s.coalesced as f64 / s.answered as f64
    } else {
        0.0
    };
    let rows: Vec<(&str, String)> = vec![
        ("epoch", snap.epoch.to_string()),
        ("cells", snap.total_cells.to_string()),
        ("total volume", format!("{:.6}", snap.total_volume)),
        ("rank imbalance", format!("{imbalance:.3}")),
        ("queue depth", format!("{queue_depth:.0}")),
        ("enqueued", s.enqueued.to_string()),
        ("answered", s.answered.to_string()),
        ("rejected", s.rejected.to_string()),
        ("batches", s.batches.to_string()),
        (
            "coalesced",
            format!("{} ({:.1}%)", s.coalesced, 100.0 * rate),
        ),
        ("epochs published", s.epochs_published.to_string()),
        (
            "batch size p50/p99",
            format!(
                "{:.0} / {:.0}",
                h.batch_size.quantile(0.5),
                h.batch_size.quantile(0.99)
            ),
        ),
        (
            "latency p50/p99",
            format!(
                "{:.3}ms / {:.3}ms",
                h.latency_ns.quantile(0.5) / 1e6,
                h.latency_ns.quantile(0.99) / 1e6
            ),
        ),
    ];
    let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    rows.iter()
        .map(|(k, v)| format!("{k:width$}  {v}"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Background exporter for `--telemetry <path>[:<secs>]`: every interval
/// advances the telemetry epoch (rotating rolling-quantile windows) and
/// rewrites `path` with the Prometheus exposition. A final export runs on
/// [`TelemetryExporter::stop`] so short runs still leave a scrape behind.
struct TelemetryExporter {
    path: String,
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryExporter {
    fn export(path: &str) {
        diy::telemetry::advance_epoch();
        if let Err(e) = std::fs::write(path, diy::telemetry::render_prometheus()) {
            log_error!("telemetry export to {path}: {e}");
        }
    }

    fn start(path: String, interval_s: f64) -> TelemetryExporter {
        use std::sync::atomic::{AtomicBool, Ordering};
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let p = path.clone();
        let handle = std::thread::spawn(move || {
            let tick = std::time::Duration::from_millis(50);
            let mut next =
                std::time::Instant::now() + std::time::Duration::from_secs_f64(interval_s);
            while !flag.load(Ordering::Relaxed) {
                if std::time::Instant::now() >= next {
                    TelemetryExporter::export(&p);
                    next += std::time::Duration::from_secs_f64(interval_s);
                }
                std::thread::sleep(tick);
            }
        });
        TelemetryExporter {
            path,
            stop,
            handle: Some(handle),
        }
    }

    fn stop(mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        TelemetryExporter::export(&self.path);
        log_info!("telemetry exposition written to {}", self.path);
    }
}

/// Parse `--telemetry` (`path` or `path:secs`); bad suffixes are treated
/// as part of the path rather than rejected.
fn parse_telemetry_flag(raw: &str) -> (String, f64) {
    if let Some((path, secs)) = raw.rsplit_once(':') {
        if let Ok(s) = secs.parse::<f64>() {
            if s > 0.0 && !path.is_empty() {
                return (path.to_string(), s);
            }
        }
    }
    (raw.to_string(), 5.0)
}

/// Scripted round-trip for CI: query, update, re-query, check the epoch
/// advanced and the whole-domain volume stays equal to the box volume
/// (periodic domains tile space exactly).
fn demo(svc: &MeshService, domain: Aabb, periodic: bool) -> Result<(), String> {
    let center = Vec3::new(
        0.5 * (domain.min.x + domain.max.x),
        0.5 * (domain.min.y + domain.max.y),
        0.5 * (domain.min.z + domain.max.z),
    );
    for line in [
        format!("point {} {} {}", center.x, center.y, center.z),
        format!(
            "box {} {} {} {} {} {}",
            domain.min.x, domain.min.y, domain.min.z, center.x, center.y, center.z
        ),
        format!(
            "region {} {} {} {} {} {}",
            domain.min.x, domain.min.y, domain.min.z, domain.max.x, domain.max.y, domain.max.z
        ),
        format!("move 0 {} {} {}", center.x, center.y, center.z),
        format!("point {} {} {}", center.x, center.y, center.z),
        "stats".to_string(),
    ] {
        let out = run_command(svc, &line)?.unwrap_or_default();
        log_info!("demo> {line}");
        log_info!("{out}");
    }
    // `metrics` must emit a parseable exposition that reflects the run:
    // epoch 2 published, and at least as many answers as the script sent.
    let expo = run_command(svc, "metrics")?.ok_or("demo: metrics returned nothing")?;
    let samples =
        diy::telemetry::parse_exposition(&expo).map_err(|e| format!("demo: metrics: {e}"))?;
    log_info!("demo> metrics ({} samples parsed)", samples.len());
    let series = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.value)
            .ok_or_else(|| format!("demo: metrics missing series {name}"))
    };
    if series("service_epoch")? != 2.0 {
        return Err("demo: service_epoch gauge should read 2".into());
    }
    if series("service_answered")? < 4.0 {
        return Err("demo: service_answered should count the scripted queries".into());
    }
    log_info!("demo: exposition parses and matches the run — OK");
    if svc.epoch() != 2 {
        return Err(format!("demo: expected epoch 2, got {}", svc.epoch()));
    }
    if periodic {
        let snap = svc.snapshot();
        let vol = domain.volume();
        if (snap.total_volume - vol).abs() > 1e-9 * vol {
            return Err(format!(
                "demo: total cell volume {} != domain volume {vol}",
                snap.total_volume
            ));
        }
        log_info!("demo: volume conserved to 1e-9 after update — OK");
    }
    // After the update the moved particle's cell must contain its new seed.
    let hit = match svc.query(Query::Point(center)).map_err(|e| e.to_string())? {
        tess::Response {
            answer: Answer::Point(Some(h)),
            ..
        } => h,
        _ => return Err("demo: no cell at the moved seed".into()),
    };
    if hit.site_id != 0 || hit.dist2 != 0.0 {
        return Err(format!(
            "demo: moved particle 0 should own its seed point, got site {} dist2 {}",
            hit.site_id, hit.dist2
        ));
    }
    log_info!("demo: moved particle owns its seed — OK");
    Ok(())
}

fn run(args: &Args) -> Result<(), String> {
    let box_len: f64 = args.require("box")?;
    let ranks: usize = args.get("ranks")?.unwrap_or(2);
    let blocks: usize = args.get("blocks")?.unwrap_or(8);
    let workers: usize = args.get("workers")?.unwrap_or(2);
    let batch: usize = args.get("batch")?.unwrap_or(64);
    let periodic = !args.flags.contains_key("no-periodic");
    let points = load_points(args, box_len)?;

    let mut params = TessParams::default().with_adaptive_ghost();
    if let Some(g) = args.get::<f64>("ghost")? {
        params = params.with_ghost(g);
    }
    let domain = Aabb::cube(box_len);
    let svc = MeshService::spawn(
        domain,
        [periodic; 3],
        &points,
        ServiceConfig::new(ranks, blocks)
            .with_workers(workers)
            .with_batch_max(batch)
            .with_params(params),
    );
    let snap = svc.snapshot();
    log_info!(
        "serving {} cells from {} particles (epoch {}, {blocks} blocks on {ranks} ranks, \
         {workers} workers, batch {batch})",
        snap.total_cells,
        points.len(),
        snap.epoch
    );

    let exporter = args.get::<String>("telemetry")?.map(|raw| {
        let (path, interval_s) = parse_telemetry_flag(&raw);
        log_info!("telemetry exposition -> {path} every {interval_s}s");
        TelemetryExporter::start(path, interval_s)
    });

    if args.flags.contains_key("demo") {
        let r = demo(&svc, domain, periodic);
        if let Some(e) = exporter {
            e.stop();
        }
        return r;
    }

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if trimmed == "quit" || trimmed == "exit" {
            break;
        }
        match run_command(&svc, trimmed) {
            Ok(Some(out)) => println!("{out}"),
            Ok(None) => {}
            Err(e) => log_error!("{e}"),
        }
    }
    let stats = svc.shutdown();
    if let Some(e) = exporter {
        e.stop();
    }
    log_info!(
        "shutting down: {} answered, {} epochs published",
        stats.answered,
        stats.epochs_published
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(&argv) {
        Ok(a) => a,
        Err(e) => {
            log_error!(
                "{e}\nusage: tess-serve --box L (--n N | --points FILE) [flags] (see module docs)"
            );
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            log_error!("{e}");
            ExitCode::FAILURE
        }
    }
}
