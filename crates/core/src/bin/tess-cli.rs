//! `tess-cli` — standalone command-line tessellation tool.
//!
//! The paper builds on Qhull, "a set of standalone command-line programs";
//! this binary gives tess the same face for downstream users:
//!
//! ```text
//! tess-cli generate   --n 1000 --box 10 --seed 1 --out points.bin
//! tess-cli tessellate --points points.bin --box 10 --out mesh.tess \
//!                     [--ghost 3.0] [--min-volume 0.5] [--ranks 4] \
//!                     [--blocks 8] [--no-periodic]
//! tess-cli info       --mesh mesh.tess
//! ```
//!
//! Points files are the workspace codec encoding of `Vec<(u64, Vec3)>`.
//!
//! Output goes through the shared leveled logger (`TESS_LOG=error|info|
//! debug`, stderr, rank-prefixed inside the runtime).

use std::collections::BTreeMap;
use std::process::ExitCode;

use diy::codec::{Decode, Encode};
use diy::comm::Runtime;
use diy::decomposition::{Assignment, Decomposition};
use diy::{log_debug, log_error, log_info};
use geometry::{Aabb, Vec3};
use tess::{tessellate, TessParams};

struct Args {
    flags: BTreeMap<String, String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut flags = BTreeMap::new();
        let mut i = 0;
        while i < raw.len() {
            let key = raw[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got '{}'", raw[i]))?;
            if key == "no-periodic" {
                flags.insert(key.to_string(), "true".to_string());
                i += 1;
            } else {
                let value = raw
                    .get(i + 1)
                    .ok_or_else(|| format!("--{key} needs a value"))?;
                flags.insert(key.to_string(), value.clone());
                i += 2;
            }
        }
        Ok(Args { flags })
    }

    fn get<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.flags.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }

    fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.get(key)?.ok_or_else(|| format!("--{key} is required"))
    }
}

fn generate(args: &Args) -> Result<(), String> {
    use rand::{Rng, SeedableRng};
    let n: usize = args.require("n")?;
    let box_len: f64 = args.require("box")?;
    let seed: u64 = args.get("seed")?.unwrap_or(42);
    let out: String = args.require("out")?;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let points: Vec<(u64, Vec3)> = (0..n as u64)
        .map(|id| {
            (
                id,
                Vec3::new(
                    rng.gen_range(0.0..box_len),
                    rng.gen_range(0.0..box_len),
                    rng.gen_range(0.0..box_len),
                ),
            )
        })
        .collect();
    std::fs::write(&out, points.to_bytes()).map_err(|e| e.to_string())?;
    log_info!("wrote {n} points to {out}");
    Ok(())
}

fn run_tessellate(args: &Args) -> Result<(), String> {
    let points_path: String = args.require("points")?;
    let box_len: f64 = args.require("box")?;
    let out: String = args.require("out")?;
    let ranks: usize = args.get("ranks")?.unwrap_or(1);
    let blocks: usize = args.get("blocks")?.unwrap_or(ranks);
    let periodic = !args.flags.contains_key("no-periodic");

    let bytes = std::fs::read(&points_path).map_err(|e| e.to_string())?;
    let points = Vec::<(u64, Vec3)>::from_bytes(&bytes).map_err(|e| e.to_string())?;
    log_info!(
        "{} points, box {box_len}, {blocks} blocks on {ranks} ranks",
        points.len()
    );

    let mut params = TessParams::default();
    if let Some(g) = args.get::<f64>("ghost")? {
        params = params.with_ghost(g);
    }
    if let Some(v) = args.get::<f64>("min-volume")? {
        params = params.with_min_volume(v);
    }

    let domain = Aabb::cube(box_len);
    let dec = Decomposition::regular(domain, blocks, [periodic; 3]);
    let points_ref = &points;
    let dec_ref = &dec;
    let params_ref = &params;
    let out_ref = out.clone();
    let stats = Runtime::run(ranks, move |world| {
        let asn = Assignment::new(blocks, world.nranks());
        let mut local: BTreeMap<u64, Vec<(u64, Vec3)>> = asn
            .blocks_of_rank(world.rank())
            .map(|g| (g, Vec::new()))
            .collect();
        for &(id, p) in points_ref {
            let gid = dec_ref.block_of_point(p);
            if let Some(v) = local.get_mut(&gid) {
                v.push((id, p));
            }
        }
        let r = tessellate(world, dec_ref, &asn, &local, params_ref);
        tess::io::write_tessellation(world, out_ref.as_ref(), &r.blocks)
            .expect("write tessellation");
        (tess::driver::global_stats(world, r.stats), r.ghost_used)
    });
    let (s, ghost) = stats[0];
    log_info!(
        "tessellated: {} cells kept, {} incomplete, {} culled (ghost {ghost:.3}); wrote {out}",
        s.cells,
        s.incomplete,
        s.culled_early + s.culled_late
    );
    Ok(())
}

fn info(args: &Args) -> Result<(), String> {
    let mesh: String = args.require("mesh")?;
    let blocks = tess::io::read_tessellation(mesh.as_ref()).map_err(|e| e.to_string())?;
    let cells: usize = blocks.iter().map(|b| b.cells.len()).sum();
    let verts: usize = blocks.iter().map(|b| b.verts.len()).sum();
    let faces: usize = blocks.iter().map(|b| b.num_faces()).sum();
    let vol: f64 = blocks
        .iter()
        .flat_map(|b| b.cells.iter())
        .map(|c| c.volume)
        .sum();
    log_info!(
        "{mesh}: {} blocks, {cells} cells, {faces} faces, {verts} vertices",
        blocks.len()
    );
    log_info!("total cell volume {vol:.4}");
    for b in &blocks {
        log_debug!(
            "block {}: bounds [{} .. {}], {} cells",
            b.gid,
            b.bounds.min,
            b.bounds.max,
            b.cells.len()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: tess-cli <generate|tessellate|info> --flag value …  (see module docs)";
    let Some((cmd, rest)) = argv.split_first() else {
        log_error!("{usage}");
        return ExitCode::FAILURE;
    };
    let result = Args::parse(rest).and_then(|args| match cmd.as_str() {
        "generate" => generate(&args),
        "tessellate" => run_tessellate(&args),
        "info" => info(&args),
        other => Err(format!("unknown command '{other}'\n{usage}")),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            log_error!("{e}");
            ExitCode::FAILURE
        }
    }
}
