//! Resident tessellation service: the mesh lives beside the data and is
//! interrogated, not recomputed per question.
//!
//! [`MeshService`] owns a persistent rank machine ([`diy::ResidentRuntime`]),
//! the particle SoA store, and the last certified mesh. Queries — cell-by-
//! point lookup, bounding-box cell extraction, per-region volume/density
//! summaries — flow through an async request queue drained by a small pool
//! of worker threads that batch and coalesce concurrent requests. Updates
//! (particle deltas or whole new snapshots) re-tessellate on the resident
//! ranks — internally incremental across adaptive ghost rounds via
//! `BlockSession` — and atomically publish a new [`MeshSnapshot`] epoch.
//!
//! ## Consistency model
//!
//! Published meshes are immutable `Arc<MeshSnapshot>`s behind an rw-lock
//! cell. A worker pins **one** snapshot per batch (an `Arc` clone — the
//! epoch pin), answers the whole batch against it, and stamps every
//! response with that snapshot's epoch. An in-flight update builds the next
//! snapshot privately and swaps the `Arc` only when fully certified, so a
//! query observes either the pre-update or the post-update mesh in its
//! entirety — never a mixture. There is no read barrier during updates:
//! queries keep draining against the previous certified epoch.
//!
//! ## Batching and coalescing
//!
//! A worker drains up to `batch_max` queued requests at once. Point
//! lookups in a batch are grouped by owning block (via the decomposition)
//! and each group is answered in a single distance-ordered kernel pass per
//! block — one shared [`StreamScratch`], queries walked in canonical
//! (coordinate-bit) order against the snapshot's candidate grid. Bit-equal
//! duplicate queries within a batch are coalesced: computed once, answered
//! to every requester.
//!
//! ## Exactness
//!
//! Point lookup is the exact argmin-distance seed. The snapshot's lookup
//! grid indexes every cell site **plus its periodic images within half a
//! domain extent** of the boundary: for any query point inside the domain,
//! the minimum-image offset to the true nearest site is at most half the
//! extent per periodic axis, so the winning image is always indexed. Exact
//! `f64` distance ties are broken canonically toward the **smallest site
//! id** (entries are sorted by site id, and the stream kernel pops equal
//! distances in index order).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, RwLock};

use diy::comm::ResidentRuntime;
use diy::decomposition::{Assignment, BalanceStats, DecompScheme, Decomposition};
use diy::hist::LogHistogram;
use diy::telemetry;
use diy::trace::{monotonic_ns, trace_mode, Event, EventKind, RankTrace, TraceMode, TraceState};
use geometry::{Aabb, Vec3};

use crate::driver::tessellate;
use crate::grid::{CandidateGrid, StreamScratch};
use crate::model::MeshBlock;
use crate::params::TessParams;
use crate::stats::TessStats;

/// One query against the resident mesh.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Which cell contains this point? Answered with the exact
    /// argmin-distance seed (ties toward the smallest site id).
    Point(Vec3),
    /// Every cell whose site lies in this half-open box, sorted by site id.
    BoxCells(Aabb),
    /// Aggregate volume/density over cells whose sites lie in this box.
    Region(Aabb),
}

/// The cell answering a point lookup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointHit {
    pub site_id: u64,
    /// Owning block of the cell.
    pub gid: u64,
    /// Exact squared distance from the query to the winning site (its
    /// nearest periodic image).
    pub dist2: f64,
    pub volume: f64,
    pub area: f64,
    pub faces: u32,
    pub complete: bool,
}

/// One cell row of a box extraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSummary {
    pub site_id: u64,
    pub gid: u64,
    pub volume: f64,
    pub area: f64,
    pub faces: u32,
    pub complete: bool,
}

/// Aggregate over a region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionSummary {
    /// Cells whose site lies in the region.
    pub cells: u64,
    /// Sum of their cell volumes (canonical block/cell iteration order).
    pub volume: f64,
    /// Sum of their surface areas.
    pub area: f64,
    /// Seed number density: `cells / box volume`.
    pub density: f64,
}

/// Answer payload, one variant per [`Query`] kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// `None` when the mesh is empty.
    Point(Option<PointHit>),
    BoxCells(Vec<CellSummary>),
    Region(RegionSummary),
}

/// A completed response. `epoch` identifies the exact published snapshot
/// the answer was computed against.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    pub id: u64,
    pub epoch: u64,
    pub answer: Answer,
    pub latency_ns: u64,
}

/// A mesh update: apply a delta to the particle store, or replace it.
#[derive(Debug, Clone)]
pub enum Update {
    Delta {
        upserts: Vec<(u64, Vec3)>,
        removes: Vec<u64>,
    },
    Snapshot(Vec<(u64, Vec3)>),
}

/// What an update published.
#[derive(Debug, Clone)]
pub struct UpdateReport {
    pub epoch: u64,
    pub particles: u64,
    pub cells: u64,
    pub stats: TessStats,
    pub tess_wall_s: f64,
}

/// Service sizing knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Resident ranks for the update path.
    pub nranks: usize,
    /// Blocks in the decomposition.
    pub nblocks: usize,
    /// Query worker threads.
    pub workers: usize,
    /// Max requests drained per batch.
    pub batch_max: usize,
    /// Tessellation parameters for the update path.
    pub params: TessParams,
    /// Decomposition scheme for the resident blocks. K-d builds its cuts
    /// from the spawn-time particle snapshot and pairs with a weighted
    /// (particle-count) block→rank assignment.
    pub decomp: DecompScheme,
}

impl ServiceConfig {
    pub fn new(nranks: usize, nblocks: usize) -> ServiceConfig {
        ServiceConfig {
            nranks,
            nblocks,
            workers: 2,
            batch_max: 64,
            params: TessParams::default(),
            decomp: DecompScheme::from_env(),
        }
    }

    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    pub fn with_batch_max(mut self, batch_max: usize) -> Self {
        self.batch_max = batch_max.max(1);
        self
    }

    pub fn with_params(mut self, params: TessParams) -> Self {
        self.params = params;
        self
    }

    pub fn with_decomp(mut self, decomp: DecompScheme) -> Self {
        self.decomp = decomp;
        self
    }
}

/// One indexed site: the primary position of a cell's seed, or one of its
/// periodic images near the boundary. Entries are sorted by `site_id` so
/// the stream kernel's (distance, index) tie-break is a (distance,
/// site id) tie-break.
struct SiteEntry {
    site_id: u64,
    gid: u64,
    cell: u32,
}

/// An immutable certified mesh at one epoch, with the lookup structures
/// queries run against. Published behind `Arc`; never mutated after build.
pub struct MeshSnapshot {
    pub epoch: u64,
    pub dec: Decomposition,
    /// The certified mesh blocks, keyed by gid.
    pub blocks: BTreeMap<u64, MeshBlock>,
    /// Rank-merged tessellation counters for this epoch.
    pub stats: TessStats,
    /// Sum of all cell volumes (canonical iteration order).
    pub total_volume: f64,
    pub total_cells: u64,
    entries: Vec<SiteEntry>,
    /// Positions parallel to `entries` (primary sites + periodic images).
    positions: Vec<Vec3>,
    grid: Option<CandidateGrid>,
}

impl MeshSnapshot {
    /// An empty epoch-0 snapshot (pre-first-tessellation placeholder).
    pub fn empty(dec: Decomposition) -> MeshSnapshot {
        MeshSnapshot {
            epoch: 0,
            dec,
            blocks: BTreeMap::new(),
            stats: TessStats::default(),
            total_volume: 0.0,
            total_cells: 0,
            entries: Vec::new(),
            positions: Vec::new(),
            grid: None,
        }
    }

    /// Index a certified mesh: collect every cell's seed position plus its
    /// periodic images within half the domain extent of the boundary, sort
    /// by site id (canonical tie-break), and build the candidate grid.
    pub fn build(
        epoch: u64,
        dec: Decomposition,
        blocks: BTreeMap<u64, MeshBlock>,
        stats: TessStats,
    ) -> MeshSnapshot {
        let domain = dec.domain;
        let ext = domain.extent();
        // Margin per axis: half the extent on periodic axes (covers every
        // minimum-image offset from an in-domain query), zero otherwise.
        let margin = Vec3::new(
            if dec.periodic[0] { ext.x * 0.5 } else { 0.0 },
            if dec.periodic[1] { ext.y * 0.5 } else { 0.0 },
            if dec.periodic[2] { ext.z * 0.5 } else { 0.0 },
        );
        let lo = domain.min - margin;
        let hi = domain.max + margin;

        let mut raw: Vec<(u64, u64, u32, Vec3)> = Vec::new();
        let mut total_volume = 0.0;
        let mut total_cells = 0u64;
        let offs = |periodic: bool| -> &'static [i32] {
            if periodic {
                &[-1, 0, 1]
            } else {
                &[0]
            }
        };
        for (&gid, b) in &blocks {
            for (ci, cell) in b.cells.iter().enumerate() {
                total_volume += cell.volume;
                total_cells += 1;
                let p = b.site_of(cell);
                let id = b.site_id_of(cell);
                for &kx in offs(dec.periodic[0]) {
                    for &ky in offs(dec.periodic[1]) {
                        for &kz in offs(dec.periodic[2]) {
                            let img = p + Vec3::new(
                                kx as f64 * ext.x,
                                ky as f64 * ext.y,
                                kz as f64 * ext.z,
                            );
                            let inside = img.x >= lo.x
                                && img.x <= hi.x
                                && img.y >= lo.y
                                && img.y <= hi.y
                                && img.z >= lo.z
                                && img.z <= hi.z;
                            if inside {
                                raw.push((id, gid, ci as u32, img));
                            }
                        }
                    }
                }
            }
        }
        // Canonical order: site id first (ties in the kernel resolve to
        // the smallest index = smallest id), then position bits so the
        // build is fully deterministic.
        raw.sort_by(|a, b| {
            (a.0, a.3.x.to_bits(), a.3.y.to_bits(), a.3.z.to_bits()).cmp(&(
                b.0,
                b.3.x.to_bits(),
                b.3.y.to_bits(),
                b.3.z.to_bits(),
            ))
        });
        let mut entries = Vec::with_capacity(raw.len());
        let mut positions = Vec::with_capacity(raw.len());
        for (site_id, gid, cell, pos) in raw {
            entries.push(SiteEntry { site_id, gid, cell });
            positions.push(pos);
        }
        let grid = if positions.is_empty() {
            None
        } else {
            Some(CandidateGrid::build(Aabb::new(lo, hi), &positions, 4.0))
        };
        MeshSnapshot {
            epoch,
            dec,
            blocks,
            stats,
            total_volume,
            total_cells,
            entries,
            positions,
            grid,
        }
    }

    /// Wrap a query point into the domain on periodic axes — but only if
    /// it is actually outside, so in-domain coordinates keep their exact
    /// bits (the differential oracle depends on this).
    pub fn wrap_query(&self, p: Vec3) -> Vec3 {
        let d = &self.dec.domain;
        let e = d.extent();
        let mut q = p;
        for a in 0..3 {
            if self.dec.periodic[a] && (q[a] < d.min[a] || q[a] >= d.max[a]) {
                let mut v = d.min[a] + (q[a] - d.min[a]).rem_euclid(e[a]);
                if v >= d.max[a] {
                    v = d.min[a];
                }
                q[a] = v;
            }
        }
        q
    }

    /// Exact nearest-seed lookup (see module docs for the tie-break and
    /// periodic-image argument). `None` on an empty mesh.
    pub fn lookup_point(&self, p: Vec3, scratch: &mut StreamScratch) -> Option<PointHit> {
        let grid = self.grid.as_ref()?;
        let q = self.wrap_query(p);
        let mut stream = grid.stream(&self.positions, q, u32::MAX, scratch);
        let (d2, idx) = stream.next(f64::INFINITY)?;
        let e = &self.entries[idx as usize];
        let block = &self.blocks[&e.gid];
        let cell = &block.cells[e.cell as usize];
        Some(PointHit {
            site_id: e.site_id,
            gid: e.gid,
            dist2: d2,
            volume: cell.volume,
            area: cell.area,
            faces: cell.faces.len() as u32,
            complete: cell.complete,
        })
    }

    /// Cells whose site lies in the half-open `query` box, sorted by site
    /// id. Membership uses the site's primary (stored) position, so boxes
    /// partitioning the domain partition the cells.
    pub fn box_cells(&self, query: Aabb) -> Vec<CellSummary> {
        let mut out = Vec::new();
        for (&gid, b) in &self.blocks {
            for cell in &b.cells {
                if query.contains(b.site_of(cell)) {
                    out.push(CellSummary {
                        site_id: b.site_id_of(cell),
                        gid,
                        volume: cell.volume,
                        area: cell.area,
                        faces: cell.faces.len() as u32,
                        complete: cell.complete,
                    });
                }
            }
        }
        out.sort_by_key(|c| c.site_id);
        out
    }

    /// Aggregate volume/area/density over cells whose sites lie in the
    /// half-open `query` box (canonical block/cell accumulation order).
    pub fn region_summary(&self, query: Aabb) -> RegionSummary {
        let mut cells = 0u64;
        let mut volume = 0.0;
        let mut area = 0.0;
        for b in self.blocks.values() {
            for cell in &b.cells {
                if query.contains(b.site_of(cell)) {
                    cells += 1;
                    volume += cell.volume;
                    area += cell.area;
                }
            }
        }
        let e = query.extent();
        let box_vol = e.x * e.y * e.z;
        let density = if box_vol > 0.0 {
            cells as f64 / box_vol
        } else {
            0.0
        };
        RegionSummary {
            cells,
            volume,
            area,
            density,
        }
    }

    /// Answer one query directly against this snapshot (the workers'
    /// batched path calls the same primitives).
    pub fn answer(&self, q: &Query, scratch: &mut StreamScratch) -> Answer {
        match q {
            Query::Point(p) => Answer::Point(self.lookup_point(*p, scratch)),
            Query::BoxCells(b) => Answer::BoxCells(self.box_cells(*b)),
            Query::Region(b) => Answer::Region(self.region_summary(*b)),
        }
    }

    /// Number of indexed site entries (primaries + periodic images).
    pub fn indexed_sites(&self) -> usize {
        self.entries.len()
    }
}

/// SoA particle store with id-indexed upsert/remove.
#[derive(Default)]
pub struct ParticleStore {
    ids: Vec<u64>,
    xs: Vec<f64>,
    ys: Vec<f64>,
    zs: Vec<f64>,
    slot: HashMap<u64, usize>,
}

impl ParticleStore {
    pub fn new() -> ParticleStore {
        ParticleStore::default()
    }

    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Insert or move a particle.
    pub fn upsert(&mut self, id: u64, p: Vec3) {
        match self.slot.get(&id) {
            Some(&i) => {
                self.xs[i] = p.x;
                self.ys[i] = p.y;
                self.zs[i] = p.z;
            }
            None => {
                self.slot.insert(id, self.ids.len());
                self.ids.push(id);
                self.xs.push(p.x);
                self.ys.push(p.y);
                self.zs.push(p.z);
            }
        }
    }

    /// Remove a particle; `false` if the id was absent.
    pub fn remove(&mut self, id: u64) -> bool {
        let Some(i) = self.slot.remove(&id) else {
            return false;
        };
        self.ids.swap_remove(i);
        self.xs.swap_remove(i);
        self.ys.swap_remove(i);
        self.zs.swap_remove(i);
        if i < self.ids.len() {
            self.slot.insert(self.ids[i], i);
        }
        true
    }

    pub fn get(&self, id: u64) -> Option<Vec3> {
        self.slot
            .get(&id)
            .map(|&i| Vec3::new(self.xs[i], self.ys[i], self.zs[i]))
    }

    /// All particle positions in slot order (for balance measurement).
    pub fn positions(&self) -> Vec<Vec3> {
        (0..self.ids.len())
            .map(|i| Vec3::new(self.xs[i], self.ys[i], self.zs[i]))
            .collect()
    }

    /// Partition into per-block particle lists, each sorted by particle id
    /// (canonical: independent of insertion/removal history).
    pub fn partition(&self, dec: &Decomposition) -> BTreeMap<u64, Vec<(u64, Vec3)>> {
        let mut local: BTreeMap<u64, Vec<(u64, Vec3)>> = BTreeMap::new();
        for gid in 0..dec.nblocks() as u64 {
            local.insert(gid, Vec::new());
        }
        for (i, &id) in self.ids.iter().enumerate() {
            let p = Vec3::new(self.xs[i], self.ys[i], self.zs[i]);
            let gid = dec.block_of_point(p);
            local.get_mut(&gid).expect("gid in range").push((id, p));
        }
        for v in local.values_mut() {
            v.sort_by_key(|&(id, _)| id);
        }
        local
    }
}

/// Running counters. `enqueued == answered` once the queue is drained
/// (shutdown drains before exiting); `rejected` counts submissions after
/// shutdown, which never enter the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    pub enqueued: u64,
    pub answered: u64,
    pub rejected: u64,
    pub batches: u64,
    /// Requests answered from another request's computation (bit-equal
    /// duplicates within a batch).
    pub coalesced: u64,
    pub epochs_published: u64,
}

/// Queue/batch/latency distributions (log2-bucketed, mergeable).
#[derive(Debug, Clone, Default)]
pub struct ServiceHists {
    pub queue_depth: LogHistogram,
    pub batch_size: LogHistogram,
    pub latency_ns: LogHistogram,
}

struct Counters {
    enqueued: AtomicU64,
    answered: AtomicU64,
    rejected: AtomicU64,
    batches: AtomicU64,
    coalesced: AtomicU64,
    epochs: AtomicU64,
}

/// Live [`diy::telemetry`] handles for this service. Registered once at
/// spawn under `service.*`; updates are relaxed atomics (counters/gauges)
/// or a short mutex (histograms), cheap enough for the hot query path.
struct ServiceTelemetry {
    queue_depth: telemetry::Gauge,
    epoch: telemetry::Gauge,
    particles: telemetry::Gauge,
    cells: telemetry::Gauge,
    /// Max/mean particle count over resident ranks (from [`BalanceStats`],
    /// recomputed at every publish).
    rank_imbalance: telemetry::Gauge,
    /// `coalesced / answered` so far (1 request's compute reused N ways).
    coalesce_rate: telemetry::Gauge,
    enqueued: telemetry::Counter,
    answered: telemetry::Counter,
    rejected: telemetry::Counter,
    batches: telemetry::Counter,
    coalesced: telemetry::Counter,
    epochs_published: telemetry::Counter,
    batch_size: telemetry::Hist,
    latency_point: telemetry::Hist,
    latency_box: telemetry::Hist,
    latency_region: telemetry::Hist,
}

impl ServiceTelemetry {
    fn register() -> ServiceTelemetry {
        let lat = |kind: &str| telemetry::histogram("service.latency_ns", &[("kind", kind)]);
        ServiceTelemetry {
            queue_depth: telemetry::gauge("service.queue_depth", &[]),
            epoch: telemetry::gauge("service.epoch", &[]),
            particles: telemetry::gauge("service.particles", &[]),
            cells: telemetry::gauge("service.cells", &[]),
            rank_imbalance: telemetry::gauge("service.rank_imbalance", &[]),
            coalesce_rate: telemetry::gauge("service.coalesce_rate", &[]),
            enqueued: telemetry::counter("service.enqueued", &[]),
            answered: telemetry::counter("service.answered", &[]),
            rejected: telemetry::counter("service.rejected", &[]),
            batches: telemetry::counter("service.batches", &[]),
            coalesced: telemetry::counter("service.coalesced", &[]),
            epochs_published: telemetry::counter("service.epochs_published", &[]),
            batch_size: telemetry::histogram("service.batch_size", &[]),
            latency_point: lat("point"),
            latency_box: lat("box"),
            latency_region: lat("region"),
        }
    }

    fn latency_for(&self, a: &Answer) -> &telemetry::Hist {
        match a {
            Answer::Point(_) => &self.latency_point,
            Answer::BoxCells(_) => &self.latency_box,
            Answer::Region(_) => &self.latency_region,
        }
    }
}

/// Chrome-trace pid the service's request timeline exports under (the
/// resident ranks own pids `0..nranks`; this sits far above them).
pub const SERVICE_TRACE_PID: u64 = 1000;

fn query_span_name(q: &Query) -> &'static str {
    match q {
        Query::Point(_) => "query:point",
        Query::BoxCells(_) => "query:box",
        Query::Region(_) => "query:region",
    }
}

fn answer_span_name(a: &Answer) -> &'static str {
    match a {
        Answer::Point(_) => "query:point",
        Answer::BoxCells(_) => "query:box",
        Answer::Region(_) => "query:region",
    }
}

struct Request {
    id: u64,
    enq_ns: u64,
    query: Query,
    reply: mpsc::Sender<Response>,
}

struct QueueState {
    queue: VecDeque<Request>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    cv: Condvar,
    snap: RwLock<Arc<MeshSnapshot>>,
    next_id: AtomicU64,
    counters: Counters,
    hists: Mutex<ServiceHists>,
    batch_max: usize,
    tele: ServiceTelemetry,
    /// Request-scoped flight recorder: every event for request `id` lands
    /// on tid `id`, so one query's enqueue→batch→block→reply renders as a
    /// single Chrome-trace track. Active only when [`trace_mode`] records.
    trace: Mutex<TraceState>,
}

impl Shared {
    /// Record one request-lifecycle event (no-op when tracing is off).
    fn trace_request(&self, kind: EventKind, name: &str, req_id: u64, a: u64, b: u64) {
        if trace_mode() < TraceMode::Spans {
            return;
        }
        let mut tr = self.trace.lock().unwrap();
        let idx = tr.intern(name);
        tr.push(Event {
            t_ns: monotonic_ns(),
            kind,
            tid: req_id as u32,
            name: idx,
            a,
            b,
        });
    }
}

/// A submitted query; `wait` blocks for its response.
pub struct Pending {
    pub id: u64,
    rx: mpsc::Receiver<Response>,
}

impl Pending {
    pub fn wait(self) -> Response {
        self.rx
            .recv()
            .expect("service answers every accepted request")
    }

    pub fn try_wait(&self) -> Option<Response> {
        self.rx.try_recv().ok()
    }
}

/// The service was shut down; the submission was rejected (and counted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceClosed;

impl std::fmt::Display for ServiceClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mesh service is shut down")
    }
}

impl std::error::Error for ServiceClosed {}

struct UpdaterState {
    dec: Decomposition,
    asn: Assignment,
    store: ParticleStore,
}

/// The resident mesh service. See module docs.
pub struct MeshService {
    shared: Arc<Shared>,
    runtime: ResidentRuntime,
    updater: Mutex<UpdaterState>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    params: TessParams,
}

impl MeshService {
    /// Spawn the resident ranks and query workers, ingest `particles`, and
    /// publish epoch 1 (the first certified mesh) before returning.
    pub fn spawn(
        domain: Aabb,
        periodic: [bool; 3],
        particles: &[(u64, Vec3)],
        cfg: ServiceConfig,
    ) -> MeshService {
        assert!(cfg.nranks > 0 && cfg.nblocks > 0);
        let positions: Vec<Vec3> = particles.iter().map(|&(_, p)| p).collect();
        let dec = cfg.decomp.build(domain, cfg.nblocks, periodic, &positions);
        // Weighted placement: bin the contiguous gid ranges by spawn-time
        // particle count, so uneven blocks still land balanced on ranks.
        // The assignment never affects the published mesh (cells are
        // certified per block), only which resident rank computes them.
        let mut block_weights = vec![0u64; cfg.nblocks];
        for &p in &positions {
            block_weights[dec.block_of_point(p) as usize] += 1;
        }
        let asn = Assignment::weighted(&block_weights, cfg.nranks);
        let mut store = ParticleStore::new();
        for &(id, p) in particles {
            store.upsert(id, p);
        }
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            snap: RwLock::new(Arc::new(MeshSnapshot::empty(dec.clone()))),
            next_id: AtomicU64::new(1),
            counters: Counters {
                enqueued: AtomicU64::new(0),
                answered: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                batches: AtomicU64::new(0),
                coalesced: AtomicU64::new(0),
                epochs: AtomicU64::new(0),
            },
            hists: Mutex::new(ServiceHists::default()),
            batch_max: cfg.batch_max.max(1),
            tele: ServiceTelemetry::register(),
            trace: Mutex::new(TraceState::new()),
        });
        let mut workers = Vec::with_capacity(cfg.workers.max(1));
        for i in 0..cfg.workers.max(1) {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("mesh-service-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn service worker"),
            );
        }
        let svc = MeshService {
            shared,
            runtime: ResidentRuntime::spawn(cfg.nranks),
            updater: Mutex::new(UpdaterState { dec, asn, store }),
            workers: Mutex::new(workers),
            params: cfg.params,
        };
        {
            let mut upd = svc.updater.lock().unwrap();
            svc.retessellate_publish(&mut upd);
        }
        svc
    }

    /// The currently published snapshot (an epoch pin: the returned mesh
    /// never changes, even across updates).
    pub fn snapshot(&self) -> Arc<MeshSnapshot> {
        self.shared.snap.read().unwrap().clone()
    }

    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch
    }

    /// Submit a query; returns a [`Pending`] handle carrying the request
    /// id. Rejected (with accounting) after shutdown.
    pub fn submit(&self, query: Query) -> Result<Pending, ServiceClosed> {
        let (tx, rx) = mpsc::channel();
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let span = query_span_name(&query);
        {
            let mut st = self.shared.queue.lock().unwrap();
            if st.shutdown {
                self.shared
                    .counters
                    .rejected
                    .fetch_add(1, Ordering::Relaxed);
                self.shared.tele.rejected.inc();
                return Err(ServiceClosed);
            }
            // Begin the request span before the worker can see (and
            // answer) the request, so the track always opens before it
            // closes. Lock order is queue → trace everywhere.
            self.shared
                .trace_request(EventKind::SpanBegin, span, id, id, 0);
            st.queue.push_back(Request {
                id,
                enq_ns: monotonic_ns(),
                query,
                reply: tx,
            });
            self.shared
                .counters
                .enqueued
                .fetch_add(1, Ordering::Relaxed);
            self.shared.tele.enqueued.inc();
            self.shared.tele.queue_depth.set_u64(st.queue.len() as u64);
        }
        self.shared.cv.notify_one();
        Ok(Pending { id, rx })
    }

    /// Submit and block for the response.
    pub fn query(&self, query: Query) -> Result<Response, ServiceClosed> {
        Ok(self.submit(query)?.wait())
    }

    /// Apply an update and publish the next epoch. Updates serialize;
    /// queries keep draining against the previous epoch throughout.
    pub fn update(&self, u: Update) -> UpdateReport {
        let mut upd = self.updater.lock().unwrap();
        match u {
            Update::Delta { upserts, removes } => {
                for (id, p) in upserts {
                    upd.store.upsert(id, p);
                }
                for id in removes {
                    upd.store.remove(id);
                }
            }
            Update::Snapshot(parts) => {
                upd.store = ParticleStore::new();
                for (id, p) in parts {
                    upd.store.upsert(id, p);
                }
            }
        }
        self.retessellate_publish(&mut upd)
    }

    /// Current counter values.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.shared.counters;
        ServiceStats {
            enqueued: c.enqueued.load(Ordering::Relaxed),
            answered: c.answered.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            coalesced: c.coalesced.load(Ordering::Relaxed),
            epochs_published: c.epochs.load(Ordering::Relaxed),
        }
    }

    /// Queue-depth / batch-size / request-latency histograms.
    pub fn hists(&self) -> ServiceHists {
        self.shared.hists.lock().unwrap().clone()
    }

    /// Snapshot the request-scoped flight recorder (empty unless
    /// `TESS_TRACE`/[`diy::trace::set_trace_mode`] enabled recording while
    /// requests flowed). Every request's enqueue→batch→block→reply events
    /// share one tid — its id — so `diy::chrome_trace_json` renders each
    /// query's life as a single track under pid [`SERVICE_TRACE_PID`].
    pub fn trace_snapshot(&self) -> RankTrace {
        self.shared
            .trace
            .lock()
            .unwrap()
            .snapshot(SERVICE_TRACE_PID)
    }

    /// Drain the queue, stop the workers, and return the final counters.
    /// Every accepted request is answered before workers exit; idempotent.
    pub fn shutdown(&self) -> ServiceStats {
        {
            let mut st = self.shared.queue.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.cv.notify_all();
        let mut workers = self.workers.lock().unwrap();
        for h in workers.drain(..) {
            let _ = h.join();
        }
        self.stats()
    }

    /// Re-tessellate the store on the resident ranks and atomically publish
    /// the next epoch.
    fn retessellate_publish(&self, upd: &mut UpdaterState) -> UpdateReport {
        let local_all = Arc::new(upd.store.partition(&upd.dec));
        let dec = upd.dec.clone();
        let asn = upd.asn.clone();
        let params = self.params;
        let t0 = std::time::Instant::now();
        let results = self.runtime.run(move |world| {
            let mine: BTreeMap<u64, Vec<(u64, Vec3)>> = asn
                .blocks_of_rank(world.rank())
                .filter_map(|gid| local_all.get(&gid).map(|v| (gid, v.clone())))
                .collect();
            let r = tessellate(world, &dec, &asn, &mine, &params);
            (r.blocks, r.stats)
        });
        let tess_wall_s = t0.elapsed().as_secs_f64();
        let mut blocks = BTreeMap::new();
        let mut stats = TessStats::default();
        for (rank_blocks, rank_stats) in results {
            stats = stats.merge(rank_stats);
            blocks.extend(rank_blocks);
        }
        let prev_epoch = self.shared.snap.read().unwrap().epoch;
        let snap = Arc::new(MeshSnapshot::build(
            prev_epoch + 1,
            upd.dec.clone(),
            blocks,
            stats,
        ));
        let report = UpdateReport {
            epoch: snap.epoch,
            particles: upd.store.len() as u64,
            cells: snap.total_cells,
            stats: snap.stats,
            tess_wall_s,
        };
        *self.shared.snap.write().unwrap() = snap;
        self.shared.counters.epochs.fetch_add(1, Ordering::Relaxed);

        // Live publish-side telemetry: epoch, sizes, and rank balance of
        // the particle placement the next update will compute under.
        let tele = &self.shared.tele;
        tele.epochs_published.inc();
        tele.epoch.set_u64(report.epoch);
        tele.particles.set_u64(report.particles);
        tele.cells.set_u64(report.cells);
        let bal = BalanceStats::measure(&upd.dec, &upd.asn, &upd.store.positions());
        tele.rank_imbalance.set(bal.rank_imbalance());
        report
    }
}

impl Drop for MeshService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Coalescing key: the exact bit pattern of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum QueryKey {
    Point([u64; 3]),
    BoxCells([u64; 6]),
    Region([u64; 6]),
}

fn query_key(q: &Query) -> QueryKey {
    let bits3 = |v: Vec3| [v.x.to_bits(), v.y.to_bits(), v.z.to_bits()];
    let bits6 = |b: &Aabb| {
        let lo = bits3(b.min);
        let hi = bits3(b.max);
        [lo[0], lo[1], lo[2], hi[0], hi[1], hi[2]]
    };
    match q {
        Query::Point(p) => QueryKey::Point(bits3(*p)),
        Query::BoxCells(b) => QueryKey::BoxCells(bits6(b)),
        Query::Region(b) => QueryKey::Region(bits6(b)),
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let mut scratch = StreamScratch::default();
    loop {
        let (depth, batch) = {
            let mut st = shared.queue.lock().unwrap();
            while st.queue.is_empty() && !st.shutdown {
                st = shared.cv.wait(st).unwrap();
            }
            if st.queue.is_empty() {
                // shutdown with an empty queue: drained, exit
                return;
            }
            let depth = st.queue.len();
            let take = depth.min(shared.batch_max);
            let batch: Vec<Request> = st.queue.drain(..take).collect();
            shared.tele.queue_depth.set_u64(st.queue.len() as u64);
            (depth, batch)
        };
        shared.counters.batches.fetch_add(1, Ordering::Relaxed);
        shared.tele.batches.inc();
        shared.tele.batch_size.observe_u64(batch.len() as u64);
        {
            let mut h = shared.hists.lock().unwrap();
            h.queue_depth.observe_u64(depth as u64);
            h.batch_size.observe_u64(batch.len() as u64);
        }
        process_batch(&shared, batch, &mut scratch);
    }
}

/// Answer one drained batch against a single pinned snapshot. Point
/// lookups are grouped by owning block and walked in canonical order with
/// one shared scratch per block group; bit-equal duplicates are computed
/// once.
fn process_batch(shared: &Shared, batch: Vec<Request>, scratch: &mut StreamScratch) {
    // Pin the epoch for the whole batch.
    let snap: Arc<MeshSnapshot> = shared.snap.read().unwrap().clone();

    // Each drained request joins this batch on its own trace track
    // (`a` = the pinned epoch the batch answers against).
    for req in &batch {
        shared.trace_request(EventKind::Mark, "batch", req.id, snap.epoch, 0);
    }

    // gid → key → requests (BTreeMaps: deterministic processing order).
    let mut points: BTreeMap<u64, BTreeMap<QueryKey, Vec<Request>>> = BTreeMap::new();
    let mut others: BTreeMap<QueryKey, Vec<Request>> = BTreeMap::new();
    for req in batch {
        let key = query_key(&req.query);
        match &req.query {
            Query::Point(p) => {
                let gid = snap.dec.block_of_point(snap.wrap_query(*p));
                points
                    .entry(gid)
                    .or_default()
                    .entry(key)
                    .or_default()
                    .push(req);
            }
            _ => others.entry(key).or_default().push(req),
        }
    }

    let mut coalesced = 0u64;
    let mut answered = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    let reply_all = |reqs: Vec<Request>,
                     answer: Answer,
                     coalesced: &mut u64,
                     answered: &mut u64,
                     latencies: &mut Vec<u64>| {
        *coalesced += (reqs.len() as u64).saturating_sub(1);
        let lat_hist = shared.tele.latency_for(&answer);
        let span = answer_span_name(&answer);
        for req in reqs {
            let latency_ns = monotonic_ns().saturating_sub(req.enq_ns);
            latencies.push(latency_ns);
            lat_hist.observe_u64(latency_ns);
            *answered += 1;
            // Close the request's span (`b` = latency) BEFORE sending the
            // reply: a client that snapshots the recorder after `wait()`
            // returns must always see its track complete.
            shared.trace_request(EventKind::SpanEnd, span, req.id, req.id, latency_ns);
            let _ = req.reply.send(Response {
                id: req.id,
                epoch: snap.epoch,
                answer: answer.clone(),
                latency_ns,
            });
        }
    };

    // One distance-ordered kernel pass per block group.
    for (gid, group) in points {
        for (key, reqs) in group {
            let QueryKey::Point(bits) = key else {
                unreachable!("point group holds point keys")
            };
            let p = Vec3::new(
                f64::from_bits(bits[0]),
                f64::from_bits(bits[1]),
                f64::from_bits(bits[2]),
            );
            for req in &reqs {
                shared.trace_request(EventKind::Mark, "block", req.id, gid, 0);
            }
            let answer = Answer::Point(snap.lookup_point(p, scratch));
            reply_all(reqs, answer, &mut coalesced, &mut answered, &mut latencies);
        }
    }
    for (key, reqs) in others {
        let q = &reqs[0].query;
        debug_assert_eq!(query_key(q), key);
        let answer = snap.answer(&q.clone(), scratch);
        reply_all(reqs, answer, &mut coalesced, &mut answered, &mut latencies);
    }

    shared
        .counters
        .coalesced
        .fetch_add(coalesced, Ordering::Relaxed);
    shared
        .counters
        .answered
        .fetch_add(answered, Ordering::Relaxed);
    shared.tele.coalesced.add(coalesced);
    shared.tele.answered.add(answered);
    let total_answered = shared.counters.answered.load(Ordering::Relaxed);
    if total_answered > 0 {
        let total_coalesced = shared.counters.coalesced.load(Ordering::Relaxed);
        shared
            .tele
            .coalesce_rate
            .set(total_coalesced as f64 / total_answered as f64);
    }
    let mut h = shared.hists.lock().unwrap();
    for ns in latencies {
        h.latency_ns.observe_u64(ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GhostSpec;

    fn unit_box() -> Aabb {
        Aabb::new(Vec3::new(0.0, 0.0, 0.0), Vec3::new(1.0, 1.0, 1.0))
    }

    fn lattice(n: usize) -> Vec<(u64, Vec3)> {
        let mut out = Vec::new();
        let h = 1.0 / n as f64;
        let mut id = 0u64;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    out.push((
                        id,
                        Vec3::new(
                            (i as f64 + 0.5) * h,
                            (j as f64 + 0.5) * h,
                            (k as f64 + 0.5) * h,
                        ),
                    ));
                    id += 1;
                }
            }
        }
        out
    }

    fn small_service() -> MeshService {
        let params = TessParams {
            ghost: GhostSpec::Auto { factor: 2.5 },
            ..TessParams::default()
        };
        MeshService::spawn(
            unit_box(),
            [true; 3],
            &lattice(4),
            ServiceConfig::new(2, 4).with_workers(2).with_params(params),
        )
    }

    #[test]
    fn service_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MeshService>();
        assert_send_sync::<MeshSnapshot>();
    }

    #[test]
    fn store_upsert_remove_roundtrip() {
        let mut s = ParticleStore::new();
        s.upsert(7, Vec3::new(0.1, 0.2, 0.3));
        s.upsert(3, Vec3::new(0.4, 0.5, 0.6));
        s.upsert(7, Vec3::new(0.9, 0.9, 0.9));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(7), Some(Vec3::new(0.9, 0.9, 0.9)));
        assert!(s.remove(7));
        assert!(!s.remove(7));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(3), Some(Vec3::new(0.4, 0.5, 0.6)));
        let dec = Decomposition::regular(unit_box(), 2, [false; 3]);
        let parts = s.partition(&dec);
        assert_eq!(parts.values().map(|v| v.len()).sum::<usize>(), 1);
    }

    #[test]
    fn spawn_publishes_epoch_one_and_answers() {
        let svc = small_service();
        assert_eq!(svc.epoch(), 1);
        let r = svc
            .query(Query::Point(Vec3::new(0.13, 0.62, 0.88)))
            .unwrap();
        assert_eq!(r.epoch, 1);
        let Answer::Point(Some(hit)) = r.answer else {
            panic!("expected a point hit")
        };
        assert!(hit.volume > 0.0);
        // whole-domain region conserves total volume exactly (same
        // iteration order as the snapshot total)
        let snap = svc.snapshot();
        let whole = svc.query(Query::Region(unit_box())).unwrap();
        let Answer::Region(sum) = whole.answer else {
            panic!("expected a region answer")
        };
        assert_eq!(sum.cells, snap.total_cells);
        assert!((sum.volume - snap.total_volume).abs() < 1e-12);
    }

    #[test]
    fn update_publishes_next_epoch_and_old_pin_survives() {
        let svc = small_service();
        let pin = svc.snapshot();
        let rep = svc.update(Update::Delta {
            upserts: vec![(1_000_000, Vec3::new(0.51, 0.49, 0.52))],
            removes: vec![0],
        });
        assert_eq!(rep.epoch, 2);
        assert_eq!(svc.epoch(), 2);
        // The pinned pre-update snapshot is untouched.
        assert_eq!(pin.epoch, 1);
        assert_eq!(pin.total_cells, 64);
        assert_eq!(svc.snapshot().total_cells, 64); // one removed, one added
    }

    #[test]
    fn shutdown_accounting_and_rejection() {
        let svc = small_service();
        let p = svc.submit(Query::Point(Vec3::new(0.5, 0.5, 0.5))).unwrap();
        let r = p.wait();
        assert!(r.latency_ns > 0);
        let stats = svc.shutdown();
        assert_eq!(stats.enqueued, stats.answered);
        assert_eq!(stats.rejected, 0);
        assert!(svc.submit(Query::Point(Vec3::new(0.1, 0.1, 0.1))).is_err());
        assert_eq!(svc.stats().rejected, 1);
        let h = svc.hists();
        assert_eq!(h.latency_ns.n(), stats.answered);
        assert!(h.batch_size.n() >= 1);
    }

    #[test]
    fn coalescing_counts_duplicates() {
        let svc = small_service();
        let q = Query::Point(Vec3::new(0.25, 0.25, 0.25));
        let pending: Vec<Pending> = (0..8).map(|_| svc.submit(q.clone()).unwrap()).collect();
        let responses: Vec<Response> = pending.into_iter().map(|p| p.wait()).collect();
        let first = &responses[0];
        for r in &responses {
            assert_eq!(r.answer, first.answer);
        }
        // Distinct ids, each answered exactly once.
        let mut ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8);
    }

    #[test]
    fn empty_mesh_answers_none() {
        let dec = Decomposition::regular(unit_box(), 4, [true; 3]);
        let snap = MeshSnapshot::empty(dec);
        let mut scratch = StreamScratch::default();
        assert_eq!(
            snap.lookup_point(Vec3::new(0.5, 0.5, 0.5), &mut scratch),
            None
        );
        assert!(snap.box_cells(unit_box()).is_empty());
        assert_eq!(snap.region_summary(unit_box()).cells, 0);
    }
}
