//! Neighborhood particle ghost-zone exchange (§III-C1).
//!
//! Every particle within the ghost distance of a block boundary is sent to
//! each neighbor sharing that boundary — including periodic boundary
//! neighbors, for which the particle's coordinates are translated to the
//! far side of the domain (Figure 6's particles A and B). The exchange is
//! bidirectional by construction: each block both sends and receives.

use std::collections::{BTreeMap, HashMap};

use diy::comm::World;
use diy::decomposition::{Assignment, Decomposition};
use diy::exchange::{DeltaExchange, NeighborExchange};
use geometry::Vec3;

/// A particle headed to (or received by) a block: global id + position in
/// the receiving block's frame.
pub type GhostParticle = (u64, Vec3);

/// Base of the message-tag namespace for ghost exchange rounds: round `r`
/// sends under `GHOST_TAG_BASE + r`, so the per-tag counters in
/// [`diy::metrics`] break ghost traffic down by round. The fixed-radius
/// modes use round 0's tag.
pub const GHOST_TAG_BASE: u64 = 0x4753_0000; // "GS"

/// Rounds the tag namespace reserves (far above any real round count).
pub const GHOST_TAG_ROUNDS: u64 = 4096;

/// Message tag of ghost exchange round `round`.
pub fn ghost_round_tag(round: usize) -> u64 {
    debug_assert!((round as u64) < GHOST_TAG_ROUNDS);
    GHOST_TAG_BASE + round as u64
}

/// `true` when `tag` belongs to the ghost exchange namespace (for summing
/// ghost traffic out of a [`diy::metrics::RunReport`]).
pub fn is_ghost_tag(tag: u64) -> bool {
    (GHOST_TAG_BASE..GHOST_TAG_BASE + GHOST_TAG_ROUNDS).contains(&tag)
}

/// Canonical ghost ordering: by particle id, then by position. The raw
/// exchange delivers in (source rank, send order), which changes with the
/// rank count; after this sort a block's ghost list — and therefore its
/// tessellation — is bitwise identical however the senders were laid out.
pub fn sort_ghosts(v: &mut [GhostParticle]) {
    v.sort_by(|a, b| {
        a.0.cmp(&b.0)
            .then_with(|| a.1.x.total_cmp(&b.1.x))
            .then_with(|| a.1.y.total_cmp(&b.1.y))
            .then_with(|| a.1.z.total_cmp(&b.1.z))
    });
}

/// Fold raw exchange output into a per-owned-block map, dropping (with a
/// logged error) entries for blocks this rank does not own — a misrouted
/// message must not silently materialize a foreign block.
fn received_per_owned_block(
    world: &World,
    local: &BTreeMap<u64, Vec<(u64, Vec3)>>,
    received: HashMap<u64, Vec<GhostParticle>>,
) -> BTreeMap<u64, Vec<GhostParticle>> {
    let mut out: BTreeMap<u64, Vec<GhostParticle>> =
        local.keys().map(|&gid| (gid, Vec::new())).collect();
    for (gid, items) in received {
        match out.get_mut(&gid) {
            Some(slot) => *slot = items,
            None => diy::log_error!(
                "dropping {} ghosts for block {gid} not owned by rank {}",
                items.len(),
                world.rank()
            ),
        }
    }
    out
}

/// Exchange ghost particles for all blocks owned by this rank.
///
/// `local` maps owned block gid → original particles `(id, position)`.
/// Returns received ghosts per owned block, in canonical order
/// ([`sort_ghosts`]).
pub fn exchange_ghosts(
    world: &mut World,
    dec: &Decomposition,
    asn: &Assignment,
    local: &BTreeMap<u64, Vec<(u64, Vec3)>>,
    ghost: f64,
) -> BTreeMap<u64, Vec<GhostParticle>> {
    let ex = NeighborExchange::new(dec, asn);
    let mut outgoing: Vec<(u64, GhostParticle)> = Vec::new();
    for (&gid, particles) in local {
        for &(pid, pos) in particles {
            for n in ex.destinations_near(gid, pos, ghost) {
                outgoing.push((n.gid, (pid, pos + n.xform)));
            }
        }
    }
    let received = ex.exchange_tagged(world, outgoing, ghost_round_tag(0));
    let mut out = received_per_owned_block(world, local, received);
    for v in out.values_mut() {
        sort_ghosts(v);
    }
    out
}

/// The transport side of adaptive ghost sizing: repeated collective rounds,
/// each shipping only the delta shell no destination has seen before
/// (see [`DeltaExchange`]).
pub struct AdaptiveGhostExchange<'a> {
    delta: DeltaExchange<'a>,
}

impl<'a> AdaptiveGhostExchange<'a> {
    pub fn new(dec: &'a Decomposition, asn: &'a Assignment) -> Self {
        AdaptiveGhostExchange {
            delta: DeltaExchange::new(dec, asn),
        }
    }

    /// One collective exchange round. `request` maps block gid → ghost
    /// radius that block now wants; every rank must pass the same map
    /// (it is built from collective data). Returns the *new* ghosts per
    /// owned block — particles already delivered in earlier rounds are
    /// not resent.
    pub fn round(
        &mut self,
        world: &mut World,
        local: &BTreeMap<u64, Vec<(u64, Vec3)>>,
        request: &BTreeMap<u64, f64>,
        round: usize,
    ) -> BTreeMap<u64, Vec<GhostParticle>> {
        let mut outgoing: Vec<(u64, u64, [i8; 3], GhostParticle)> = Vec::new();
        for (&gid, particles) in local {
            for &(pid, pos) in particles {
                for n in self
                    .delta
                    .ex
                    .destinations_near_by(gid, pos, |g| request.get(&g).copied())
                {
                    outgoing.push((n.gid, pid, n.image(), (pid, pos + n.xform)));
                }
            }
        }
        let received = self
            .delta
            .exchange_new(world, outgoing, ghost_round_tag(round));
        received_per_owned_block(world, local, received)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diy::comm::Runtime;
    use geometry::Aabb;

    fn block_particles(
        dec: &Decomposition,
        asn: &Assignment,
        rank: usize,
        all: &[(u64, Vec3)],
    ) -> BTreeMap<u64, Vec<(u64, Vec3)>> {
        let mut m: BTreeMap<u64, Vec<(u64, Vec3)>> =
            asn.blocks_of_rank(rank).map(|g| (g, Vec::new())).collect();
        for &(id, p) in all {
            let gid = dec.block_of_point(p);
            if let Some(v) = m.get_mut(&gid) {
                v.push((id, p));
            }
        }
        m
    }

    #[test]
    fn interior_particles_are_not_exchanged() {
        let dec = Decomposition::with_dims(Aabb::cube(8.0), [2, 1, 1], [false; 3]);
        let asn = Assignment::new(2, 1);
        // particle at the center of block 0, far from the seam at x=4
        let all = vec![(0u64, Vec3::new(1.0, 4.0, 4.0))];
        Runtime::run(1, |w| {
            let local = block_particles(&dec, &asn, w.rank(), &all);
            let ghosts = exchange_ghosts(w, &dec, &asn, &local, 1.0);
            assert!(ghosts[&0].is_empty());
            assert!(ghosts[&1].is_empty());
        });
    }

    #[test]
    fn boundary_particles_cross_the_seam_both_ways() {
        let dec = Decomposition::with_dims(Aabb::cube(8.0), [2, 1, 1], [false; 3]);
        let asn = Assignment::new(2, 2);
        let all = vec![
            (10u64, Vec3::new(3.5, 4.0, 4.0)), // in block 0, near seam
            (20u64, Vec3::new(4.5, 4.0, 4.0)), // in block 1, near seam
        ];
        Runtime::run(2, |w| {
            let local = block_particles(&dec, &asn, w.rank(), &all);
            let ghosts = exchange_ghosts(w, &dec, &asn, &local, 1.0);
            if w.rank() == 0 {
                assert_eq!(ghosts[&0], vec![(20, Vec3::new(4.5, 4.0, 4.0))]);
            } else {
                assert_eq!(ghosts[&1], vec![(10, Vec3::new(3.5, 4.0, 4.0))]);
            }
        });
    }

    #[test]
    fn periodic_ghosts_are_translated() {
        // Figure 6's particle A: near x=0 in a periodic box; block on the
        // far side receives it at x ≈ L.
        let dec = Decomposition::with_dims(Aabb::cube(8.0), [2, 1, 1], [true, false, false]);
        let asn = Assignment::new(2, 1);
        let all = vec![(5u64, Vec3::new(0.25, 4.0, 4.0))];
        Runtime::run(1, |w| {
            let local = block_particles(&dec, &asn, w.rank(), &all);
            let ghosts = exchange_ghosts(w, &dec, &asn, &local, 1.0);
            // block 1 spans [4,8); it receives the particle at x = 8.25
            // (just past its upper edge, within the ghost distance)
            assert_eq!(ghosts[&1], vec![(5, Vec3::new(8.25, 4.0, 4.0))]);
        });
    }

    #[test]
    fn single_periodic_block_mirrors_its_own_particles() {
        // Standalone mode: one block, periodic domain. Ghosts are the
        // block's own particles translated across the seams.
        let dec = Decomposition::with_dims(Aabb::cube(4.0), [1, 1, 1], [true; 3]);
        let asn = Assignment::new(1, 1);
        // corner particle: mirrored across faces, edges, and the corner
        let all = vec![(1u64, Vec3::new(0.5, 0.5, 0.5))];
        Runtime::run(1, |w| {
            let local = block_particles(&dec, &asn, w.rank(), &all);
            let ghosts = exchange_ghosts(w, &dec, &asn, &local, 1.0);
            let g = &ghosts[&0];
            // 7 images within ghost distance: 3 faces + 3 edges + 1 corner
            assert_eq!(g.len(), 7, "{g:?}");
            for &(id, p) in g {
                assert_eq!(id, 1);
                // every image is outside the box but within the ghost halo
                assert!(!dec.domain.contains(p));
                assert!(dec.domain.grown(1.0).contains_closed(p));
            }
        });
    }

    #[test]
    fn adaptive_rounds_ship_only_the_delta_shell() {
        let dec = Decomposition::with_dims(Aabb::cube(8.0), [2, 1, 1], [false; 3]);
        let asn = Assignment::new(2, 1);
        // two particles in block 0 at different distances from the seam x=4
        let all = vec![
            (1u64, Vec3::new(3.5, 4.0, 4.0)), // 0.5 from the seam
            (2u64, Vec3::new(2.5, 4.0, 4.0)), // 1.5 from the seam
        ];
        Runtime::run(1, |w| {
            let local = block_particles(&dec, &asn, w.rank(), &all);
            let mut ex = AdaptiveGhostExchange::new(&dec, &asn);
            // round 0: only block 1 wants a 1.0 halo → particle 1 crosses
            let req0: BTreeMap<u64, f64> = [(1u64, 1.0)].into_iter().collect();
            let got0 = ex.round(w, &local, &req0, 0);
            assert_eq!(got0[&1], vec![(1, Vec3::new(3.5, 4.0, 4.0))]);
            assert!(got0[&0].is_empty());
            // round 1: block 1 grows to 2.0 → only particle 2 is new
            let req1: BTreeMap<u64, f64> = [(1u64, 2.0)].into_iter().collect();
            let got1 = ex.round(w, &local, &req1, 1);
            assert_eq!(got1[&1], vec![(2, Vec3::new(2.5, 4.0, 4.0))]);
            // round 2: nothing grew → nothing moves
            let got2 = ex.round(w, &local, &req1, 2);
            assert!(got2[&1].is_empty());
        });
    }

    #[test]
    fn ghost_tags_form_a_user_namespace() {
        assert!(is_ghost_tag(ghost_round_tag(0)));
        assert!(is_ghost_tag(ghost_round_tag(17)));
        assert!(!is_ghost_tag(0));
        assert!(!is_ghost_tag(GHOST_TAG_BASE + GHOST_TAG_ROUNDS));
        // top bit clear: these are user tags, not collective tags
        assert_eq!(ghost_round_tag(5) >> 63, 0);
    }

    #[test]
    fn ghosts_arrive_in_canonical_order() {
        let mut v = vec![
            (7u64, Vec3::new(1.0, 0.0, 0.0)),
            (3, Vec3::new(2.0, 0.0, 0.0)),
            (7, Vec3::new(0.5, 0.0, 0.0)),
        ];
        sort_ghosts(&mut v);
        assert_eq!(
            v,
            vec![
                (3, Vec3::new(2.0, 0.0, 0.0)),
                (7, Vec3::new(0.5, 0.0, 0.0)),
                (7, Vec3::new(1.0, 0.0, 0.0)),
            ]
        );
    }

    #[test]
    fn ghost_zero_exchanges_nothing_interior() {
        let dec = Decomposition::with_dims(Aabb::cube(8.0), [2, 2, 2], [true; 3]);
        let asn = Assignment::new(8, 2);
        let all: Vec<(u64, Vec3)> = (0..50)
            .map(|i| {
                let x = 0.3 + (i as f64 * 0.149) % 7.4;
                (i, Vec3::new(x, (x * 1.7) % 8.0, (x * 2.3) % 8.0))
            })
            .collect();
        Runtime::run(2, |w| {
            let local = block_particles(&dec, &asn, w.rank(), &all);
            let ghosts = exchange_ghosts(w, &dec, &asn, &local, 0.0);
            // ghost 0 exchanges only particles exactly on boundaries; our
            // set has none
            let total: usize = ghosts.values().map(Vec::len).sum();
            assert_eq!(total, 0);
        });
    }
}
