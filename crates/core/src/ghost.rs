//! Neighborhood particle ghost-zone exchange (§III-C1).
//!
//! Every particle within the ghost distance of a block boundary is sent to
//! each neighbor sharing that boundary — including periodic boundary
//! neighbors, for which the particle's coordinates are translated to the
//! far side of the domain (Figure 6's particles A and B). The exchange is
//! bidirectional by construction: each block both sends and receives.

use std::collections::BTreeMap;

use diy::comm::World;
use diy::decomposition::{Assignment, Decomposition};
use diy::exchange::NeighborExchange;
use geometry::Vec3;

/// A particle headed to (or received by) a block: global id + position in
/// the receiving block's frame.
pub type GhostParticle = (u64, Vec3);

/// Exchange ghost particles for all blocks owned by this rank.
///
/// `local` maps owned block gid → original particles `(id, position)`.
/// Returns received ghosts per owned block, in deterministic order.
pub fn exchange_ghosts(
    world: &mut World,
    dec: &Decomposition,
    asn: &Assignment,
    local: &BTreeMap<u64, Vec<(u64, Vec3)>>,
    ghost: f64,
) -> BTreeMap<u64, Vec<GhostParticle>> {
    let ex = NeighborExchange::new(dec, asn);
    let mut outgoing: Vec<(u64, GhostParticle)> = Vec::new();
    for (&gid, particles) in local {
        for &(pid, pos) in particles {
            for n in ex.destinations_near(gid, pos, ghost) {
                outgoing.push((n.gid, (pid, pos + n.xform)));
            }
        }
    }
    let received = ex.exchange(world, outgoing);
    // Ensure every owned block has an entry, even with no ghosts.
    let mut out: BTreeMap<u64, Vec<GhostParticle>> =
        local.keys().map(|&gid| (gid, Vec::new())).collect();
    for (gid, items) in received {
        out.insert(gid, items);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use diy::comm::Runtime;
    use geometry::Aabb;

    fn block_particles(
        dec: &Decomposition,
        asn: &Assignment,
        rank: usize,
        all: &[(u64, Vec3)],
    ) -> BTreeMap<u64, Vec<(u64, Vec3)>> {
        let mut m: BTreeMap<u64, Vec<(u64, Vec3)>> =
            asn.blocks_of_rank(rank).map(|g| (g, Vec::new())).collect();
        for &(id, p) in all {
            let gid = dec.block_of_point(p);
            if let Some(v) = m.get_mut(&gid) {
                v.push((id, p));
            }
        }
        m
    }

    #[test]
    fn interior_particles_are_not_exchanged() {
        let dec = Decomposition::with_dims(Aabb::cube(8.0), [2, 1, 1], [false; 3]);
        let asn = Assignment::new(2, 1);
        // particle at the center of block 0, far from the seam at x=4
        let all = vec![(0u64, Vec3::new(1.0, 4.0, 4.0))];
        Runtime::run(1, |w| {
            let local = block_particles(&dec, &asn, w.rank(), &all);
            let ghosts = exchange_ghosts(w, &dec, &asn, &local, 1.0);
            assert!(ghosts[&0].is_empty());
            assert!(ghosts[&1].is_empty());
        });
    }

    #[test]
    fn boundary_particles_cross_the_seam_both_ways() {
        let dec = Decomposition::with_dims(Aabb::cube(8.0), [2, 1, 1], [false; 3]);
        let asn = Assignment::new(2, 2);
        let all = vec![
            (10u64, Vec3::new(3.5, 4.0, 4.0)), // in block 0, near seam
            (20u64, Vec3::new(4.5, 4.0, 4.0)), // in block 1, near seam
        ];
        Runtime::run(2, |w| {
            let local = block_particles(&dec, &asn, w.rank(), &all);
            let ghosts = exchange_ghosts(w, &dec, &asn, &local, 1.0);
            if w.rank() == 0 {
                assert_eq!(ghosts[&0], vec![(20, Vec3::new(4.5, 4.0, 4.0))]);
            } else {
                assert_eq!(ghosts[&1], vec![(10, Vec3::new(3.5, 4.0, 4.0))]);
            }
        });
    }

    #[test]
    fn periodic_ghosts_are_translated() {
        // Figure 6's particle A: near x=0 in a periodic box; block on the
        // far side receives it at x ≈ L.
        let dec = Decomposition::with_dims(Aabb::cube(8.0), [2, 1, 1], [true, false, false]);
        let asn = Assignment::new(2, 1);
        let all = vec![(5u64, Vec3::new(0.25, 4.0, 4.0))];
        Runtime::run(1, |w| {
            let local = block_particles(&dec, &asn, w.rank(), &all);
            let ghosts = exchange_ghosts(w, &dec, &asn, &local, 1.0);
            // block 1 spans [4,8); it receives the particle at x = 8.25
            // (just past its upper edge, within the ghost distance)
            assert_eq!(ghosts[&1], vec![(5, Vec3::new(8.25, 4.0, 4.0))]);
        });
    }

    #[test]
    fn single_periodic_block_mirrors_its_own_particles() {
        // Standalone mode: one block, periodic domain. Ghosts are the
        // block's own particles translated across the seams.
        let dec = Decomposition::with_dims(Aabb::cube(4.0), [1, 1, 1], [true; 3]);
        let asn = Assignment::new(1, 1);
        // corner particle: mirrored across faces, edges, and the corner
        let all = vec![(1u64, Vec3::new(0.5, 0.5, 0.5))];
        Runtime::run(1, |w| {
            let local = block_particles(&dec, &asn, w.rank(), &all);
            let ghosts = exchange_ghosts(w, &dec, &asn, &local, 1.0);
            let g = &ghosts[&0];
            // 7 images within ghost distance: 3 faces + 3 edges + 1 corner
            assert_eq!(g.len(), 7, "{g:?}");
            for &(id, p) in g {
                assert_eq!(id, 1);
                // every image is outside the box but within the ghost halo
                assert!(!dec.domain.contains(p));
                assert!(dec.domain.grown(1.0).contains_closed(p));
            }
        });
    }

    #[test]
    fn ghost_zero_exchanges_nothing_interior() {
        let dec = Decomposition::with_dims(Aabb::cube(8.0), [2, 2, 2], [true; 3]);
        let asn = Assignment::new(8, 2);
        let all: Vec<(u64, Vec3)> = (0..50)
            .map(|i| {
                let x = 0.3 + (i as f64 * 0.149) % 7.4;
                (i, Vec3::new(x, (x * 1.7) % 8.0, (x * 2.3) % 8.0))
            })
            .collect();
        Runtime::run(2, |w| {
            let local = block_particles(&dec, &asn, w.rank(), &all);
            let ghosts = exchange_ghosts(w, &dec, &asn, &local, 0.0);
            // ghost 0 exchanges only particles exactly on boundaries; our
            // set has none
            let total: usize = ghosts.values().map(Vec::len).sum();
            assert_eq!(total, 0);
        });
    }
}
