//! Property-based cross-validation between the geometry engines:
//! the clipped-polyhedron measures must agree with the quickhull measures
//! of the same vertex set (the paper's Qhull role), and both must respect
//! basic geometric inequalities.

use geometry::{convex_hull, Aabb, ConvexPolyhedron, Plane, Vec3};
use proptest::prelude::*;

/// Clip a box cell by bisectors toward a set of random neighbor points.
fn clipped_cell(site: Vec3, neighbors: &[Vec3], bounds: &Aabb) -> ConvexPolyhedron {
    let mut poly = ConvexPolyhedron::from_aabb(bounds);
    for (i, &q) in neighbors.iter().enumerate() {
        if q.dist2(site) > 1e-12 {
            if let Some(plane) = Plane::bisector(site, q) {
                poly.clip(&plane, Some(i as u64), 1e-9);
            }
        }
    }
    poly
}

fn neighbors_strategy() -> impl Strategy<Value = Vec<Vec3>> {
    proptest::collection::vec((0.05f64..3.95, 0.05f64..3.95, 0.05f64..3.95), 4..40)
        .prop_map(|v| v.into_iter().map(|(x, y, z)| Vec3::new(x, y, z)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Volume and area from the clipped polyhedron equal those of the
    /// convex hull of its vertices (two independent code paths).
    #[test]
    fn clip_measures_match_quickhull(neighbors in neighbors_strategy()) {
        let bounds = Aabb::cube(4.0);
        let site = Vec3::splat(2.0);
        let poly = clipped_cell(site, &neighbors, &bounds);
        prop_assume!(!poly.is_empty());
        if let Ok(hull) = convex_hull(&poly.verts, 1e-9) {
            let (v1, v2) = (poly.volume(), hull.volume());
            prop_assert!((v1 - v2).abs() < 1e-7 * v1.max(1e-9), "volume {} vs {}", v1, v2);
            let (a1, a2) = (poly.surface_area(), hull.surface_area());
            prop_assert!((a1 - a2).abs() < 1e-6 * a1.max(1e-9), "area {} vs {}", a1, a2);
        }
    }

    /// The cell always contains its site, stays watertight, and shrinks
    /// monotonically as more planes are applied.
    #[test]
    fn clipping_is_monotone_and_watertight(neighbors in neighbors_strategy()) {
        let bounds = Aabb::cube(4.0);
        let site = Vec3::splat(2.0);
        let mut poly = ConvexPolyhedron::from_aabb(&bounds);
        let mut prev_volume = poly.volume();
        for (i, &q) in neighbors.iter().enumerate() {
            if q.dist2(site) > 1e-12 {
                if let Some(plane) = Plane::bisector(site, q) {
                    poly.clip(&plane, Some(i as u64), 1e-9);
                    prop_assume!(!poly.is_empty());
                    let v = poly.volume();
                    prop_assert!(v <= prev_volume + 1e-9, "{} > {}", v, prev_volume);
                    prev_volume = v;
                }
            }
        }
        prop_assert!(poly.contains(site, 1e-9));
        prop_assert!(poly.check_closed());
        // isoperimetric inequality for the convex cell
        let (v, s) = (poly.volume(), poly.surface_area());
        prop_assert!(s.powi(3) >= 36.0 * std::f64::consts::PI * v * v * 0.999);
    }

    /// The hull of random points contains all of them and its volume is
    /// monotone under point insertion.
    #[test]
    fn hull_volume_monotone_under_insertion(
        pts in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 8..40),
        extra in (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
    ) {
        let pts: Vec<Vec3> = pts.into_iter().map(|(x, y, z)| Vec3::new(x, y, z)).collect();
        let Ok(h1) = convex_hull(&pts, 1e-9) else { return Ok(()); };
        prop_assert!(h1.contains_all_points(1e-7));
        let mut more = pts.clone();
        more.push(Vec3::new(extra.0, extra.1, extra.2));
        let Ok(h2) = convex_hull(&more, 1e-9) else { return Ok(()); };
        prop_assert!(h2.volume() >= h1.volume() - 1e-9);
    }

    /// Periodic helpers: wrap lands inside, min_image is within half the
    /// box and consistent with wrap distances.
    #[test]
    fn periodic_wrap_and_min_image_consistent(
        a in (-50.0f64..50.0, -50.0f64..50.0, -50.0f64..50.0),
        b in (-50.0f64..50.0, -50.0f64..50.0, -50.0f64..50.0),
    ) {
        let bx = Aabb::cube(10.0);
        let pa = Vec3::new(a.0, a.1, a.2);
        let pb = Vec3::new(b.0, b.1, b.2);
        let wa = bx.wrap(pa);
        prop_assert!(bx.contains(wa) || (wa - bx.max).max_abs() < 1e-9);
        let d = bx.min_image(pa, pb);
        for k in 0..3 {
            prop_assert!(d[k].abs() <= 5.0 + 1e-9);
        }
        // periodic distance is invariant under wrapping either argument
        let d1 = bx.periodic_dist(pa, pb);
        let d2 = bx.periodic_dist(bx.wrap(pa), bx.wrap(pb));
        prop_assert!((d1 - d2).abs() < 1e-9);
    }
}
