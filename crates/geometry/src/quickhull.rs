//! 3D convex hull via the Quickhull algorithm.
//!
//! This plays the role Qhull plays in the paper (§III-C): given the vertices
//! of a Voronoi cell, order them into faces and compute the cell's volume and
//! surface area. It is also exposed as a general-purpose hull routine and is
//! cross-validated against the half-space-clipping cell construction.

use crate::measures::{tetra_volume_signed, triangle_area};
use crate::vec3::Vec3;

/// A convex hull of a point set: triangle faces indexing the *input* points.
#[derive(Debug, Clone)]
pub struct Hull {
    /// Input points (copied so the hull is self-contained).
    pub points: Vec<Vec3>,
    /// Triangles `[a, b, c]` with counterclockwise winding seen from outside.
    pub faces: Vec<[u32; 3]>,
}

/// Errors from hull construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HullError {
    /// Fewer than 4 input points.
    TooFewPoints,
    /// All points (nearly) coincident, collinear, or coplanar.
    Degenerate,
}

impl std::fmt::Display for HullError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HullError::TooFewPoints => write!(f, "convex hull needs at least 4 points"),
            HullError::Degenerate => write!(f, "input points are degenerate (coplanar or worse)"),
        }
    }
}

impl std::error::Error for HullError {}

struct QhFace {
    v: [u32; 3],
    n: Vec3, // outward unit normal
    d: f64,  // plane offset
    outside: Vec<u32>,
    alive: bool,
}

impl QhFace {
    fn dist(&self, p: Vec3) -> f64 {
        self.n.dot(p) - self.d
    }
}

/// Compute the convex hull of `points`.
///
/// `eps` is the absolute thickness tolerance: points within `eps` of a face
/// plane are treated as on the hull surface (not outside). Pass a value
/// small relative to the point-cloud diameter.
pub fn convex_hull(points: &[Vec3], eps: f64) -> Result<Hull, HullError> {
    if points.len() < 4 {
        return Err(HullError::TooFewPoints);
    }

    let (i0, i1) = extreme_pair(points);
    if points[i0].dist2(points[i1]) <= eps * eps {
        return Err(HullError::Degenerate);
    }
    let i2 = farthest_from_line(points, i0, i1);
    let line_area = triangle_area(points[i0], points[i1], points[i2]);
    if line_area <= eps * points[i0].dist(points[i1]) {
        return Err(HullError::Degenerate);
    }
    let i3 = farthest_from_plane(points, i0, i1, i2);
    let vol6 = (points[i1] - points[i0])
        .cross(points[i2] - points[i0])
        .dot(points[i3] - points[i0]);
    if vol6.abs() <= eps * line_area {
        return Err(HullError::Degenerate);
    }

    // Order the initial tetrahedron so all faces point outward.
    let (a, b, c, d) = if vol6 > 0.0 {
        (i0, i1, i2, i3)
    } else {
        (i0, i2, i1, i3)
    };
    let interior = (points[a] + points[b] + points[c] + points[d]) / 4.0;

    let mut faces: Vec<QhFace> = Vec::new();
    for tri in [[a, b, c], [a, d, b], [b, d, c], [a, c, d]] {
        faces.push(make_face(
            points,
            [tri[0] as u32, tri[1] as u32, tri[2] as u32],
            interior,
        ));
    }

    // Assign every point to the first face it is outside of.
    let initial = [a, b, c, d];
    for (pi, &p) in points.iter().enumerate() {
        if initial.contains(&pi) {
            continue;
        }
        for f in faces.iter_mut() {
            if f.dist(p) > eps {
                f.outside.push(pi as u32);
                break;
            }
        }
    }

    loop {
        // Pick the face with the farthest outside point.
        let mut best: Option<(usize, u32, f64)> = None;
        for (fi, f) in faces.iter().enumerate() {
            if !f.alive {
                continue;
            }
            for &pi in &f.outside {
                let dd = f.dist(points[pi as usize]);
                if best.is_none_or(|(_, _, bd)| dd > bd) {
                    best = Some((fi, pi, dd));
                }
            }
        }
        let Some((_, apex, _)) = best else { break };
        let apex_p = points[apex as usize];

        // Find all faces visible from the apex.
        let visible: Vec<usize> = faces
            .iter()
            .enumerate()
            .filter(|(_, f)| f.alive && f.dist(apex_p) > eps)
            .map(|(i, _)| i)
            .collect();
        debug_assert!(!visible.is_empty());

        // Horizon = directed edges of visible faces whose reverse edge does
        // not belong to a visible face.
        let mut vis_edges: Vec<(u32, u32)> = Vec::new();
        for &fi in &visible {
            let [x, y, z] = faces[fi].v;
            vis_edges.extend_from_slice(&[(x, y), (y, z), (z, x)]);
        }
        let horizon: Vec<(u32, u32)> = vis_edges
            .iter()
            .copied()
            .filter(|&(x, y)| !vis_edges.contains(&(y, x)))
            .collect();

        // Collect orphaned outside points and kill visible faces.
        let mut orphans: Vec<u32> = Vec::new();
        for &fi in &visible {
            faces[fi].alive = false;
            orphans.append(&mut faces[fi].outside);
        }

        // New faces from horizon edges to the apex (keeps winding outward:
        // horizon edges are wound counterclockwise around the visible region).
        let mut new_face_ids: Vec<usize> = Vec::new();
        for (x, y) in horizon {
            let f = make_face(points, [x, y, apex], interior);
            new_face_ids.push(faces.len());
            faces.push(f);
        }

        // Redistribute orphans to the new faces.
        for pi in orphans {
            if pi == apex {
                continue;
            }
            let p = points[pi as usize];
            for &fi in &new_face_ids {
                if faces[fi].dist(p) > eps {
                    faces[fi].outside.push(pi);
                    break;
                }
            }
        }
    }

    let tri: Vec<[u32; 3]> = faces.into_iter().filter(|f| f.alive).map(|f| f.v).collect();
    Ok(Hull {
        points: points.to_vec(),
        faces: tri,
    })
}

fn make_face(points: &[Vec3], v: [u32; 3], interior: Vec3) -> QhFace {
    let (p0, p1, p2) = (
        points[v[0] as usize],
        points[v[1] as usize],
        points[v[2] as usize],
    );
    let mut n = (p1 - p0).cross(p2 - p0);
    let mut v = v;
    if n.dot(interior - p0) > 0.0 {
        // flip to point away from the interior
        n = -n;
        v.swap(1, 2);
    }
    let n = n.normalized().unwrap_or(Vec3::new(0.0, 0.0, 1.0));
    QhFace {
        v,
        n,
        d: n.dot(p0),
        outside: Vec::new(),
        alive: true,
    }
}

fn extreme_pair(points: &[Vec3]) -> (usize, usize) {
    // Extremes along each axis; take the pair with the largest separation.
    let mut lo = [0usize; 3];
    let mut hi = [0usize; 3];
    for (i, p) in points.iter().enumerate() {
        for d in 0..3 {
            if p[d] < points[lo[d]][d] {
                lo[d] = i;
            }
            if p[d] > points[hi[d]][d] {
                hi[d] = i;
            }
        }
    }
    let mut best = (lo[0], hi[0]);
    let mut best_d = 0.0;
    for d in 0..3 {
        let dd = points[lo[d]].dist2(points[hi[d]]);
        if dd > best_d {
            best_d = dd;
            best = (lo[d], hi[d]);
        }
    }
    best
}

fn farthest_from_line(points: &[Vec3], i0: usize, i1: usize) -> usize {
    let a = points[i0];
    let dir = points[i1] - a;
    let mut best = (0usize, -1.0f64);
    for (i, &p) in points.iter().enumerate() {
        let d = dir.cross(p - a).norm2();
        if d > best.1 {
            best = (i, d);
        }
    }
    best.0
}

fn farthest_from_plane(points: &[Vec3], i0: usize, i1: usize, i2: usize) -> usize {
    let a = points[i0];
    let n = (points[i1] - a).cross(points[i2] - a);
    let mut best = (0usize, -1.0f64);
    for (i, &p) in points.iter().enumerate() {
        let d = n.dot(p - a).abs();
        if d > best.1 {
            best = (i, d);
        }
    }
    best.0
}

impl Hull {
    /// Hull volume (sum of signed tetrahedra from the centroid).
    pub fn volume(&self) -> f64 {
        let c = self.interior_point();
        self.faces
            .iter()
            .map(|&[a, b, d]| {
                tetra_volume_signed(
                    c,
                    self.points[a as usize],
                    self.points[b as usize],
                    self.points[d as usize],
                )
            })
            .sum()
    }

    /// Hull surface area.
    pub fn surface_area(&self) -> f64 {
        self.faces
            .iter()
            .map(|&[a, b, c]| {
                triangle_area(
                    self.points[a as usize],
                    self.points[b as usize],
                    self.points[c as usize],
                )
            })
            .sum()
    }

    /// Mean of the hull's referenced vertices (inside, by convexity).
    pub fn interior_point(&self) -> Vec3 {
        let mut seen = std::collections::HashSet::new();
        let mut c = Vec3::ZERO;
        for f in &self.faces {
            for &v in f {
                if seen.insert(v) {
                    c += self.points[v as usize];
                }
            }
        }
        c / seen.len().max(1) as f64
    }

    /// Indices of the input points that lie on the hull.
    pub fn vertex_indices(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.faces.iter().flatten().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Every point must be inside (or within `eps` of) every face plane.
    pub fn contains_all_points(&self, eps: f64) -> bool {
        self.faces.iter().all(|&[a, b, c]| {
            let (pa, pb, pc) = (
                self.points[a as usize],
                self.points[b as usize],
                self.points[c as usize],
            );
            let n = (pb - pa).cross(pc - pa);
            let Some(n) = n.normalized() else {
                return true;
            };
            let d = n.dot(pa);
            self.points.iter().all(|&p| n.dot(p) - d <= eps)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    const EPS: f64 = 1e-9;

    #[test]
    fn tetrahedron_hull() {
        let pts = vec![
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ];
        let h = convex_hull(&pts, EPS).unwrap();
        assert_eq!(h.faces.len(), 4);
        assert!((h.volume() - 1.0 / 6.0).abs() < 1e-12);
        assert!(h.contains_all_points(1e-9));
    }

    #[test]
    fn cube_hull_with_interior_points() {
        let mut pts: Vec<Vec3> = crate::Aabb::cube(2.0).corners().to_vec();
        // interior points must not appear on the hull
        pts.push(Vec3::splat(1.0));
        pts.push(Vec3::new(0.5, 1.0, 1.5));
        let h = convex_hull(&pts, EPS).unwrap();
        assert!((h.volume() - 8.0).abs() < 1e-9);
        assert!((h.surface_area() - 24.0).abs() < 1e-9);
        let hv = h.vertex_indices();
        assert_eq!(hv.len(), 8);
        assert!(!hv.contains(&8));
        assert!(!hv.contains(&9));
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        assert_eq!(
            convex_hull(&[Vec3::ZERO, Vec3::ONE, Vec3::splat(2.0)], EPS).unwrap_err(),
            HullError::TooFewPoints
        );
        // collinear
        let line: Vec<Vec3> = (0..6).map(|i| Vec3::splat(i as f64)).collect();
        assert_eq!(convex_hull(&line, EPS).unwrap_err(), HullError::Degenerate);
        // coplanar
        let plane: Vec<Vec3> = (0..4)
            .flat_map(|i| (0..4).map(move |j| Vec3::new(i as f64, j as f64, 0.0)))
            .collect();
        assert_eq!(convex_hull(&plane, EPS).unwrap_err(), HullError::Degenerate);
        // coincident
        let same = vec![Vec3::ONE; 10];
        assert_eq!(convex_hull(&same, EPS).unwrap_err(), HullError::Degenerate);
    }

    #[test]
    fn random_points_in_sphere() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        for trial in 0..10 {
            let n = 10 + trial * 30;
            let pts: Vec<Vec3> = (0..n)
                .map(|_| loop {
                    let p = Vec3::new(
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                    );
                    if p.norm2() <= 1.0 {
                        return p;
                    }
                })
                .collect();
            let h = convex_hull(&pts, EPS).unwrap();
            assert!(h.contains_all_points(1e-7), "trial {trial}");
            // Euler: V - E + F = 2 with E = 3F/2 for triangulated closed surface
            let v = h.vertex_indices().len() as i64;
            let f = h.faces.len() as i64;
            assert_eq!(v - 3 * f / 2 + f, 2, "Euler failed: V={v} F={f}");
            assert!(h.volume() > 0.0 && h.volume() < 4.2);
        }
    }

    #[test]
    fn hull_volume_le_bounding_box() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let pts: Vec<Vec3> = (0..200)
            .map(|_| {
                Vec3::new(
                    rng.gen_range(0.0..3.0),
                    rng.gen_range(0.0..2.0),
                    rng.gen_range(0.0..1.0),
                )
            })
            .collect();
        let h = convex_hull(&pts, EPS).unwrap();
        assert!(h.volume() <= 6.0);
        assert!(h.volume() > 3.0); // 200 uniform points fill most of the box
    }
}
