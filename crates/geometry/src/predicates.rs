//! Robust geometric predicates: `orient3d` and `insphere`.
//!
//! Each predicate first evaluates a plain floating-point determinant with a
//! static error bound (Shewchuk's "stage A" filter). When the magnitude of
//! the determinant exceeds the bound the sign is certain and returned
//! directly; otherwise the predicate is recomputed *exactly* with
//! floating-point expansions, so the result is always the true sign.

use crate::expansion::Expansion;
use crate::vec3::Vec3;

/// Machine epsilon for f64 halved, as used by Shewchuk's error bounds
/// (the roundoff of a single operation is at most `EPSILON` times the
/// magnitude of the result).
const EPSILON: f64 = f64::EPSILON / 2.0;

/// Static filter bound for `orient3d` (Shewchuk's `o3derrboundA`).
const O3D_BOUND: f64 = (7.0 + 56.0 * EPSILON) * EPSILON;

/// Static filter bound for `insphere` (Shewchuk's `isperrboundA`).
const INS_BOUND: f64 = (16.0 + 224.0 * EPSILON) * EPSILON;

/// Orientation of a point with respect to a plane or sphere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// Positive determinant (e.g. `d` below the plane of `(a, b, c)` when
    /// `(a, b, c)` appears counterclockwise seen from above).
    Positive,
    Negative,
    /// Exactly degenerate (coplanar / cospherical).
    Zero,
}

impl Orientation {
    fn from_sign(s: i32) -> Self {
        match s.cmp(&0) {
            std::cmp::Ordering::Greater => Orientation::Positive,
            std::cmp::Ordering::Less => Orientation::Negative,
            std::cmp::Ordering::Equal => Orientation::Zero,
        }
    }

    pub fn sign(self) -> i32 {
        match self {
            Orientation::Positive => 1,
            Orientation::Negative => -1,
            Orientation::Zero => 0,
        }
    }
}

/// Sign of the determinant
///
/// ```text
/// | ax-dx  ay-dy  az-dz |
/// | bx-dx  by-dy  bz-dz |
/// | cx-dx  cy-dy  cz-dz |
/// ```
///
/// Positive when `d` sees the triangle `(a, b, c)` in clockwise order —
/// equivalently, when `d` lies on the negative side of the plane through
/// `a, b, c` oriented by the right-hand rule.
pub fn orient3d(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> Orientation {
    let adx = a.x - d.x;
    let bdx = b.x - d.x;
    let cdx = c.x - d.x;
    let ady = a.y - d.y;
    let bdy = b.y - d.y;
    let cdy = c.y - d.y;
    let adz = a.z - d.z;
    let bdz = b.z - d.z;
    let cdz = c.z - d.z;

    let bdxcdy = bdx * cdy;
    let cdxbdy = cdx * bdy;
    let cdxady = cdx * ady;
    let adxcdy = adx * cdy;
    let adxbdy = adx * bdy;
    let bdxady = bdx * ady;

    let det = adz * (bdxcdy - cdxbdy) + bdz * (cdxady - adxcdy) + cdz * (adxbdy - bdxady);

    let permanent = (bdxcdy.abs() + cdxbdy.abs()) * adz.abs()
        + (cdxady.abs() + adxcdy.abs()) * bdz.abs()
        + (adxbdy.abs() + bdxady.abs()) * cdz.abs();
    let errbound = O3D_BOUND * permanent;

    if det > errbound {
        return Orientation::Positive;
    }
    if det < -errbound {
        return Orientation::Negative;
    }
    orient3d_exact(a, b, c, d)
}

/// Fully exact `orient3d` via expansion arithmetic. Public for testing.
pub fn orient3d_exact(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> Orientation {
    let adx = Expansion::from_diff(a.x, d.x);
    let bdx = Expansion::from_diff(b.x, d.x);
    let cdx = Expansion::from_diff(c.x, d.x);
    let ady = Expansion::from_diff(a.y, d.y);
    let bdy = Expansion::from_diff(b.y, d.y);
    let cdy = Expansion::from_diff(c.y, d.y);
    let adz = Expansion::from_diff(a.z, d.z);
    let bdz = Expansion::from_diff(b.z, d.z);
    let cdz = Expansion::from_diff(c.z, d.z);

    let m1 = bdx.mul(&cdy).sub(&cdx.mul(&bdy));
    let m2 = cdx.mul(&ady).sub(&adx.mul(&cdy));
    let m3 = adx.mul(&bdy).sub(&bdx.mul(&ady));

    let det = adz.mul(&m1).add(&bdz.mul(&m2)).add(&cdz.mul(&m3));
    Orientation::from_sign(det.sign())
}

/// Sign of the `insphere` determinant for the sphere through `a, b, c, d`
/// and the query point `e`.
///
/// When `orient3d(a, b, c, d)` is `Positive`, a `Positive` result means `e`
/// lies strictly inside the circumsphere of the tetrahedron `(a, b, c, d)`.
/// (For negatively oriented tetrahedra the meaning flips; callers normalize
/// orientation first.)
pub fn insphere(a: Vec3, b: Vec3, c: Vec3, d: Vec3, e: Vec3) -> Orientation {
    let aex = a.x - e.x;
    let bex = b.x - e.x;
    let cex = c.x - e.x;
    let dex = d.x - e.x;
    let aey = a.y - e.y;
    let bey = b.y - e.y;
    let cey = c.y - e.y;
    let dey = d.y - e.y;
    let aez = a.z - e.z;
    let bez = b.z - e.z;
    let cez = c.z - e.z;
    let dez = d.z - e.z;

    let aexbey = aex * bey;
    let bexaey = bex * aey;
    let ab = aexbey - bexaey;
    let bexcey = bex * cey;
    let cexbey = cex * bey;
    let bc = bexcey - cexbey;
    let cexdey = cex * dey;
    let dexcey = dex * cey;
    let cd = cexdey - dexcey;
    let dexaey = dex * aey;
    let aexdey = aex * dey;
    let da = dexaey - aexdey;
    let aexcey = aex * cey;
    let cexaey = cex * aey;
    let ac = aexcey - cexaey;
    let bexdey = bex * dey;
    let dexbey = dex * bey;
    let bd = bexdey - dexbey;

    let abc = aez * bc - bez * ac + cez * ab;
    let bcd = bez * cd - cez * bd + dez * bc;
    let cda = cez * da + dez * ac + aez * cd;
    let dab = dez * ab + aez * bd + bez * da;

    let alift = aex * aex + aey * aey + aez * aez;
    let blift = bex * bex + bey * bey + bez * bez;
    let clift = cex * cex + cey * cey + cez * cez;
    let dlift = dex * dex + dey * dey + dez * dez;

    let det = (dlift * abc - clift * dab) + (blift * cda - alift * bcd);

    let aezplus = aez.abs();
    let bezplus = bez.abs();
    let cezplus = cez.abs();
    let dezplus = dez.abs();
    let aexbeyplus = aexbey.abs();
    let bexaeyplus = bexaey.abs();
    let bexceyplus = bexcey.abs();
    let cexbeyplus = cexbey.abs();
    let cexdeyplus = cexdey.abs();
    let dexceyplus = dexcey.abs();
    let dexaeyplus = dexaey.abs();
    let aexdeyplus = aexdey.abs();
    let aexceyplus = aexcey.abs();
    let cexaeyplus = cexaey.abs();
    let bexdeyplus = bexdey.abs();
    let dexbeyplus = dexbey.abs();
    let permanent = ((cexdeyplus + dexceyplus) * bezplus
        + (dexbeyplus + bexdeyplus) * cezplus
        + (bexceyplus + cexbeyplus) * dezplus)
        * alift
        + ((dexaeyplus + aexdeyplus) * cezplus
            + (aexceyplus + cexaeyplus) * dezplus
            + (cexdeyplus + dexceyplus) * aezplus)
            * blift
        + ((aexbeyplus + bexaeyplus) * dezplus
            + (bexdeyplus + dexbeyplus) * aezplus
            + (dexaeyplus + aexdeyplus) * bezplus)
            * clift
        + ((bexceyplus + cexbeyplus) * aezplus
            + (cexaeyplus + aexceyplus) * bezplus
            + (aexbeyplus + bexaeyplus) * cezplus)
            * dlift;
    let errbound = INS_BOUND * permanent;

    if det > errbound {
        return Orientation::Positive;
    }
    if det < -errbound {
        return Orientation::Negative;
    }
    insphere_exact(a, b, c, d, e)
}

/// Fully exact `insphere` via expansion arithmetic. Public for testing.
pub fn insphere_exact(a: Vec3, b: Vec3, c: Vec3, d: Vec3, e: Vec3) -> Orientation {
    let ax = Expansion::from_diff(a.x, e.x);
    let bx = Expansion::from_diff(b.x, e.x);
    let cx = Expansion::from_diff(c.x, e.x);
    let dx = Expansion::from_diff(d.x, e.x);
    let ay = Expansion::from_diff(a.y, e.y);
    let by = Expansion::from_diff(b.y, e.y);
    let cy = Expansion::from_diff(c.y, e.y);
    let dy = Expansion::from_diff(d.y, e.y);
    let az = Expansion::from_diff(a.z, e.z);
    let bz = Expansion::from_diff(b.z, e.z);
    let cz = Expansion::from_diff(c.z, e.z);
    let dz = Expansion::from_diff(d.z, e.z);

    let ab = ax.mul(&by).sub(&bx.mul(&ay));
    let bc = bx.mul(&cy).sub(&cx.mul(&by));
    let cd = cx.mul(&dy).sub(&dx.mul(&cy));
    let da = dx.mul(&ay).sub(&ax.mul(&dy));
    let ac = ax.mul(&cy).sub(&cx.mul(&ay));
    let bd = bx.mul(&dy).sub(&dx.mul(&by));

    let abc = az.mul(&bc).sub(&bz.mul(&ac)).add(&cz.mul(&ab));
    let bcd = bz.mul(&cd).sub(&cz.mul(&bd)).add(&dz.mul(&bc));
    let cda = cz.mul(&da).add(&dz.mul(&ac)).add(&az.mul(&cd));
    let dab = dz.mul(&ab).add(&az.mul(&bd)).add(&bz.mul(&da));

    let alift = ax.mul(&ax).add(&ay.mul(&ay)).add(&az.mul(&az));
    let blift = bx.mul(&bx).add(&by.mul(&by)).add(&bz.mul(&bz));
    let clift = cx.mul(&cx).add(&cy.mul(&cy)).add(&cz.mul(&cz));
    let dlift = dx.mul(&dx).add(&dy.mul(&dy)).add(&dz.mul(&dz));

    let det = dlift
        .mul(&abc)
        .sub(&clift.mul(&dab))
        .add(&blift.mul(&cda))
        .sub(&alift.mul(&bcd));
    Orientation::from_sign(det.sign())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn v(x: f64, y: f64, z: f64) -> Vec3 {
        Vec3::new(x, y, z)
    }

    #[test]
    fn orient3d_simple_cases() {
        let a = v(0.0, 0.0, 0.0);
        let b = v(1.0, 0.0, 0.0);
        let c = v(0.0, 1.0, 0.0);
        // d below the plane z=0 gives positive determinant
        assert_eq!(orient3d(a, b, c, v(0.0, 0.0, -1.0)), Orientation::Positive);
        assert_eq!(orient3d(a, b, c, v(0.0, 0.0, 1.0)), Orientation::Negative);
        assert_eq!(orient3d(a, b, c, v(0.3, 0.3, 0.0)), Orientation::Zero);
    }

    #[test]
    fn orient3d_detects_tiny_perturbations() {
        // Nearly coplanar: exact arithmetic must resolve the true sign.
        let a = v(0.0, 0.0, 0.0);
        let b = v(1.0, 0.0, 0.0);
        let c = v(0.0, 1.0, 0.0);
        let eps = 2f64.powi(-52);
        assert_eq!(
            orient3d(a, b, c, v(0.25, 0.25, -eps)),
            Orientation::Positive
        );
        assert_eq!(orient3d(a, b, c, v(0.25, 0.25, eps)), Orientation::Negative);
    }

    #[test]
    fn orient3d_exact_coplanar_with_offset_coordinates() {
        // Large shared offsets provoke catastrophic cancellation in the
        // naive determinant; the exact path must still return Zero.
        let o = 1e7;
        let a = v(o, o, o);
        let b = v(o + 1.0, o, o);
        let c = v(o, o + 1.0, o);
        let d = v(o + 0.125, o + 0.375, o);
        assert_eq!(orient3d(a, b, c, d), Orientation::Zero);
    }

    #[test]
    fn insphere_simple_cases() {
        // Positively oriented regular-ish tetrahedron
        let a = v(0.0, 0.0, 0.0);
        let b = v(1.0, 0.0, 0.0);
        let c = v(0.0, 1.0, 0.0);
        let d = v(0.0, 0.0, -1.0); // below so orient3d(a,b,c,d) > 0
        assert_eq!(orient3d(a, b, c, d), Orientation::Positive);
        // circumsphere of this tet passes through all four; its center is at
        // (0.5, 0.5, -0.5) with radius sqrt(0.75)
        let center = v(0.5, 0.5, -0.5);
        assert_eq!(insphere(a, b, c, d, center), Orientation::Positive);
        assert_eq!(
            insphere(a, b, c, d, v(10.0, 10.0, 10.0)),
            Orientation::Negative
        );
        // a point exactly on the sphere
        assert_eq!(insphere(a, b, c, d, v(1.0, 1.0, 0.0)), Orientation::Zero);
    }

    #[test]
    fn insphere_cospherical_grid_points() {
        // The 8 corners of a cube are cospherical: any 5 of them must give
        // exactly Zero. This is the degeneracy that breaks naive Delaunay
        // implementations on grid-like particle data.
        let c = [
            v(0.0, 0.0, 0.0),
            v(1.0, 0.0, 0.0),
            v(0.0, 1.0, 0.0),
            v(1.0, 1.0, 0.0),
            v(0.0, 0.0, 1.0),
            v(1.0, 0.0, 1.0),
            v(0.0, 1.0, 1.0),
            v(1.0, 1.0, 1.0),
        ];
        assert_eq!(insphere(c[0], c[1], c[2], c[4], c[7]), Orientation::Zero);
        assert_eq!(insphere(c[0], c[1], c[3], c[5], c[6]), Orientation::Zero);
    }

    proptest! {
        #[test]
        fn filtered_matches_exact_orient3d(
            coords in proptest::collection::vec(-100.0f64..100.0, 12)
        ) {
            let a = v(coords[0], coords[1], coords[2]);
            let b = v(coords[3], coords[4], coords[5]);
            let c = v(coords[6], coords[7], coords[8]);
            let d = v(coords[9], coords[10], coords[11]);
            prop_assert_eq!(orient3d(a, b, c, d), orient3d_exact(a, b, c, d));
        }

        #[test]
        fn filtered_matches_exact_insphere(
            coords in proptest::collection::vec(-10.0f64..10.0, 15)
        ) {
            let a = v(coords[0], coords[1], coords[2]);
            let b = v(coords[3], coords[4], coords[5]);
            let c = v(coords[6], coords[7], coords[8]);
            let d = v(coords[9], coords[10], coords[11]);
            let e = v(coords[12], coords[13], coords[14]);
            prop_assert_eq!(insphere(a, b, c, d, e), insphere_exact(a, b, c, d, e));
        }

        #[test]
        fn orient3d_antisymmetry(
            coords in proptest::collection::vec(-100.0f64..100.0, 12)
        ) {
            let a = v(coords[0], coords[1], coords[2]);
            let b = v(coords[3], coords[4], coords[5]);
            let c = v(coords[6], coords[7], coords[8]);
            let d = v(coords[9], coords[10], coords[11]);
            // Swapping two rows flips the sign.
            prop_assert_eq!(orient3d(a, b, c, d).sign(), -orient3d(b, a, c, d).sign());
        }

        #[test]
        fn orient3d_zero_for_duplicate_points(
            coords in proptest::collection::vec(-100.0f64..100.0, 9)
        ) {
            let a = v(coords[0], coords[1], coords[2]);
            let b = v(coords[3], coords[4], coords[5]);
            let c = v(coords[6], coords[7], coords[8]);
            prop_assert_eq!(orient3d(a, a, b, c), Orientation::Zero);
            prop_assert_eq!(orient3d(a, b, a, c), Orientation::Zero);
            prop_assert_eq!(orient3d(a, b, c, a), Orientation::Zero);
        }
    }
}
