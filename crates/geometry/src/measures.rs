//! Scalar measures of simple geometric objects.

use crate::vec3::Vec3;

/// Signed volume of the tetrahedron `(a, b, c, d)`:
/// positive when `(b-a, c-a, d-a)` is a right-handed frame.
#[inline]
pub fn tetra_volume_signed(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> f64 {
    (b - a).cross(c - a).dot(d - a) / 6.0
}

/// Unsigned volume of the tetrahedron `(a, b, c, d)`.
#[inline]
pub fn tetra_volume(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> f64 {
    tetra_volume_signed(a, b, c, d).abs()
}

/// Area of the triangle `(a, b, c)`.
#[inline]
pub fn triangle_area(a: Vec3, b: Vec3, c: Vec3) -> f64 {
    (b - a).cross(c - a).norm() * 0.5
}

/// Area of a planar polygon given by an ordered vertex loop.
pub fn polygon_area(verts: &[Vec3]) -> f64 {
    if verts.len() < 3 {
        return 0.0;
    }
    // Shoelace generalized to 3D: half the norm of the summed cross products.
    let mut s = Vec3::ZERO;
    for i in 1..verts.len() - 1 {
        s += (verts[i] - verts[0]).cross(verts[i + 1] - verts[0]);
    }
    s.norm() * 0.5
}

/// Unit normal of a planar polygon (Newell's method); `None` when degenerate.
pub fn polygon_normal(verts: &[Vec3]) -> Option<Vec3> {
    if verts.len() < 3 {
        return None;
    }
    let mut n = Vec3::ZERO;
    for i in 0..verts.len() {
        let a = verts[i];
        let b = verts[(i + 1) % verts.len()];
        n.x += (a.y - b.y) * (a.z + b.z);
        n.y += (a.z - b.z) * (a.x + b.x);
        n.z += (a.x - b.x) * (a.y + b.y);
    }
    n.normalized()
}

/// Centroid of a polygon's vertex loop (arithmetic mean of vertices).
pub fn polygon_vertex_centroid(verts: &[Vec3]) -> Vec3 {
    let mut c = Vec3::ZERO;
    for &v in verts {
        c += v;
    }
    c / verts.len().max(1) as f64
}

/// Circumcenter of the tetrahedron `(a, b, c, d)`, or `None` when the four
/// points are (nearly) coplanar. Used to dualize Delaunay cells to Voronoi
/// vertices.
pub fn tetra_circumcenter(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> Option<Vec3> {
    let ba = b - a;
    let ca = c - a;
    let da = d - a;
    let det = 2.0 * ba.dot(ca.cross(da));
    if det.abs() < 1e-14 * ba.norm() * ca.norm() * da.norm() {
        return None;
    }
    let num = ba.norm2() * ca.cross(da) + ca.norm2() * da.cross(ba) + da.norm2() * ba.cross(ca);
    Some(a + num / det)
}

/// Interior dihedral angle (in radians) along an edge shared by two faces
/// with *outward* unit normals `n1`, `n2`. A flat surface gives π; a convex
/// edge (e.g. a cube edge, normals at 90°) gives π/2.
#[inline]
pub fn dihedral_angle(n1: Vec3, n2: Vec3) -> f64 {
    let c = n1.dot(n2).clamp(-1.0, 1.0);
    std::f64::consts::PI - c.acos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn tetra_volumes() {
        let a = Vec3::ZERO;
        let b = Vec3::new(1.0, 0.0, 0.0);
        let c = Vec3::new(0.0, 1.0, 0.0);
        let d = Vec3::new(0.0, 0.0, 1.0);
        assert!((tetra_volume_signed(a, b, c, d) - 1.0 / 6.0).abs() < 1e-15);
        assert!((tetra_volume_signed(a, c, b, d) + 1.0 / 6.0).abs() < 1e-15);
        assert_eq!(tetra_volume(a, c, b, d), tetra_volume(a, b, c, d));
        // degenerate
        assert_eq!(tetra_volume(a, b, c, Vec3::new(0.5, 0.5, 0.0)), 0.0);
    }

    #[test]
    fn areas() {
        let a = Vec3::ZERO;
        let b = Vec3::new(2.0, 0.0, 0.0);
        let c = Vec3::new(0.0, 2.0, 0.0);
        assert_eq!(triangle_area(a, b, c), 2.0);
        // unit square in an arbitrary plane
        let quad = [
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 0.0, 1.0),
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(0.0, 1.0, 1.0),
        ];
        assert!((polygon_area(&quad) - 1.0).abs() < 1e-15);
        assert_eq!(polygon_area(&quad[..2]), 0.0);
    }

    #[test]
    fn polygon_normal_follows_winding() {
        let quad = [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(1.0, 1.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        ];
        let n = polygon_normal(&quad).unwrap();
        assert!((n - Vec3::new(0.0, 0.0, 1.0)).norm() < 1e-12);
        let rev: Vec<_> = quad.iter().rev().copied().collect();
        let n2 = polygon_normal(&rev).unwrap();
        assert!((n2 - Vec3::new(0.0, 0.0, -1.0)).norm() < 1e-12);
    }

    #[test]
    fn circumcenter_equidistant() {
        let a = Vec3::new(0.1, 0.2, 0.3);
        let b = Vec3::new(1.3, -0.2, 0.4);
        let c = Vec3::new(0.4, 1.1, -0.3);
        let d = Vec3::new(-0.2, 0.3, 1.2);
        let cc = tetra_circumcenter(a, b, c, d).unwrap();
        let r = cc.dist(a);
        for p in [b, c, d] {
            assert!((cc.dist(p) - r).abs() < 1e-9);
        }
        // coplanar points have no circumcenter
        assert!(tetra_circumcenter(
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(1.0, 1.0, 0.0)
        )
        .is_none());
    }

    #[test]
    fn dihedral_angles() {
        // flat: normals equal
        let n = Vec3::new(0.0, 0.0, 1.0);
        assert!((dihedral_angle(n, n) - PI).abs() < 1e-12);
        // cube edge: perpendicular outward normals -> interior angle π/2
        assert!(
            (dihedral_angle(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0)) - PI / 2.0).abs()
                < 1e-12
        );
        // knife edge: opposite normals -> angle 0
        assert!(dihedral_angle(n, -n).abs() < 1e-12);
    }
}
