//! Computational-geometry substrate for the `tess` parallel Voronoi library.
//!
//! This crate provides the serial geometry engine that the paper obtains from
//! Qhull, reimplemented from scratch in Rust:
//!
//! * [`Vec3`] / [`Aabb`] — basic linear algebra and axis-aligned boxes.
//! * [`expansion`] — exact floating-point expansion arithmetic
//!   (Shewchuk-style), the foundation for robust predicates.
//! * [`predicates`] — statically filtered, exactly-falling-back `orient3d`
//!   and `insphere` predicates.
//! * [`Plane`] and [`ConvexPolyhedron`] — half-space clipping of convex
//!   polyhedra, the core operation of Voronoi cell construction.
//! * [`quickhull`] — a 3D convex hull (the paper's Qhull role: ordering the
//!   vertices of a Voronoi cell into faces and computing volume and area).
//!
//! All coordinates are `f64`. The clipping and hull code uses tolerance-based
//! classification suitable for the well-separated point sets produced by
//! N-body simulations; the exact predicates are used by the `delaunay` crate
//! where degeneracy handling is mandatory.

pub mod aabb;
pub mod expansion;
pub mod measures;
pub mod plane;
pub mod polyhedron;
pub mod predicates;
pub mod quickhull;
pub mod vec3;

pub use aabb::Aabb;
pub use plane::Plane;
pub use polyhedron::{ClipScratch, ConvexPolyhedron};
pub use quickhull::{convex_hull, Hull};
pub use vec3::Vec3;

/// Relative tolerance used by the tolerance-based (non-exact) geometry paths.
///
/// Chosen so that Voronoi cells of particles spaced O(1) apart (the paper's
/// 1 Mpc/h initial spacing) classify vertices stably: coordinates live in
/// roughly `[0, 1e3]`, so absolute errors of a few ulps are far below this.
pub const EPS: f64 = 1e-9;
