//! Convex polyhedra with half-space clipping.
//!
//! A Voronoi cell is constructed by starting from a bounding box and
//! repeatedly clipping it by the perpendicular bisector planes between the
//! cell's site and its candidate neighbors (the Voro++ approach). The
//! polyhedron is stored as a vertex array plus polygonal faces; every face
//! remembers which neighbor's bisector created it, which later gives the
//! cell-adjacency graph (used for connected-component void finding) for free.

use std::collections::HashMap;

use crate::measures::{polygon_area, polygon_vertex_centroid, tetra_volume_signed};
use crate::plane::Plane;
use crate::vec3::Vec3;
use crate::Aabb;

/// One polygonal face of a convex polyhedron.
#[derive(Debug, Clone)]
pub struct Face {
    /// Supporting plane, oriented with the normal pointing out of the cell.
    pub plane: Plane,
    /// Ordered vertex loop (counterclockwise seen from outside).
    pub verts: Vec<u32>,
    /// Global id of the neighbor site whose bisector generated this face;
    /// `None` for faces of the initial bounding volume.
    pub neighbor: Option<u64>,
}

/// Result of clipping by one half-space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClipResult {
    /// The polyhedron lies entirely inside; nothing changed.
    Unchanged,
    /// The plane cut the polyhedron; a new face was created.
    Clipped,
    /// Nothing remains on the inside.
    Empty,
}

/// A convex polyhedron (vertices + polygonal faces with outward planes).
#[derive(Debug, Clone)]
pub struct ConvexPolyhedron {
    pub verts: Vec<Vec3>,
    pub faces: Vec<Face>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Class {
    In,
    On,
    Out,
}

/// Reusable buffers for [`ConvexPolyhedron::clip_with`]: a hot caller
/// (the per-cell Voronoi kernel clips tens of planes per cell, millions of
/// cells per run) keeps one of these per thread and clips allocation-free
/// after warm-up. Consumed face loops are recycled through `spare_loops`,
/// so steady state needs no heap traffic at all. Results are bit-identical
/// to a fresh-buffer clip.
#[derive(Default)]
pub struct ClipScratch {
    classes: Vec<Class>,
    cut_cache: HashMap<(u32, u32), u32>,
    on_plane: Vec<u32>,
    spare_loops: Vec<Vec<u32>>,
    faces_buf: Vec<Face>,
    map: Vec<u32>,
    kept: Vec<Vec3>,
}

impl ClipScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

impl ConvexPolyhedron {
    /// Axis-aligned box as a polyhedron; all faces carry `neighbor: None`.
    pub fn from_aabb(b: &Aabb) -> Self {
        let (lo, hi) = (b.min, b.max);
        let verts = vec![
            Vec3::new(lo.x, lo.y, lo.z), // 0
            Vec3::new(hi.x, lo.y, lo.z), // 1
            Vec3::new(lo.x, hi.y, lo.z), // 2
            Vec3::new(hi.x, hi.y, lo.z), // 3
            Vec3::new(lo.x, lo.y, hi.z), // 4
            Vec3::new(hi.x, lo.y, hi.z), // 5
            Vec3::new(lo.x, hi.y, hi.z), // 6
            Vec3::new(hi.x, hi.y, hi.z), // 7
        ];
        // Loops are counterclockwise when viewed from outside the box.
        let face = |n: Vec3, d: f64, loop_: [u32; 4]| Face {
            plane: Plane { n, d },
            verts: loop_.to_vec(),
            neighbor: None,
        };
        let faces = vec![
            face(Vec3::new(-1.0, 0.0, 0.0), -lo.x, [0, 4, 6, 2]),
            face(Vec3::new(1.0, 0.0, 0.0), hi.x, [1, 3, 7, 5]),
            face(Vec3::new(0.0, -1.0, 0.0), -lo.y, [0, 1, 5, 4]),
            face(Vec3::new(0.0, 1.0, 0.0), hi.y, [2, 6, 7, 3]),
            face(Vec3::new(0.0, 0.0, -1.0), -lo.z, [0, 2, 3, 1]),
            face(Vec3::new(0.0, 0.0, 1.0), hi.z, [4, 5, 7, 6]),
        ];
        ConvexPolyhedron { verts, faces }
    }

    pub fn is_empty(&self) -> bool {
        self.verts.len() < 4 || self.faces.len() < 4
    }

    /// Clip by the inside half-space of `plane` (`n·x <= d`), tagging any
    /// newly created face with `neighbor`.
    ///
    /// `eps` is the absolute tolerance for classifying a vertex as lying on
    /// the plane; pass a value small relative to the cell size (e.g.
    /// [`crate::EPS`] times the domain scale).
    pub fn clip(&mut self, plane: &Plane, neighbor: Option<u64>, eps: f64) -> ClipResult {
        self.clip_with(plane, neighbor, eps, &mut ClipScratch::default())
    }

    /// [`clip`](Self::clip) with caller-provided scratch buffers; see
    /// [`ClipScratch`]. Bit-identical results, no steady-state allocation.
    pub fn clip_with(
        &mut self,
        plane: &Plane,
        neighbor: Option<u64>,
        eps: f64,
        scratch: &mut ClipScratch,
    ) -> ClipResult {
        scratch.classes.clear();
        scratch.classes.extend(self.verts.iter().map(|&v| {
            let d = plane.signed_distance(v);
            if d < -eps {
                Class::In
            } else if d > eps {
                Class::Out
            } else {
                Class::On
            }
        }));
        let classes = &scratch.classes;

        let n_out = classes.iter().filter(|&&c| c == Class::Out).count();
        if n_out == 0 {
            return ClipResult::Unchanged;
        }
        let n_in = classes.iter().filter(|&&c| c == Class::In).count();
        if n_in == 0 {
            self.verts.clear();
            self.faces.clear();
            return ClipResult::Empty;
        }

        // Cache one intersection vertex per cut undirected edge so adjacent
        // faces share it and the result stays watertight.
        let cut_cache = &mut scratch.cut_cache;
        cut_cache.clear();
        let mut verts = std::mem::take(&mut self.verts);
        let mut old_faces = std::mem::take(&mut self.faces);
        let mut new_faces = std::mem::take(&mut scratch.faces_buf);
        new_faces.clear();

        for face in old_faces.drain(..) {
            let n = face.verts.len();
            let mut loop_out = scratch.spare_loops.pop().unwrap_or_default();
            loop_out.clear();
            for i in 0..n {
                let vi = face.verts[i];
                let vj = face.verts[(i + 1) % n];
                let ci = classes[vi as usize];
                let cj = classes[vj as usize];
                if ci != Class::Out {
                    loop_out.push(vi);
                }
                let crossing =
                    matches!((ci, cj), (Class::In, Class::Out) | (Class::Out, Class::In));
                if crossing {
                    let key = (vi.min(vj), vi.max(vj));
                    let idx = *cut_cache.entry(key).or_insert_with(|| {
                        let a = verts[vi as usize];
                        let b = verts[vj as usize];
                        let t = plane.intersect_segment(a, b).unwrap_or(0.5).clamp(0.0, 1.0);
                        verts.push(a.lerp(b, t));
                        (verts.len() - 1) as u32
                    });
                    loop_out.push(idx);
                }
            }
            dedup_loop(&mut loop_out);
            if loop_out.len() >= 3 {
                new_faces.push(Face {
                    plane: face.plane,
                    verts: loop_out,
                    neighbor: face.neighbor,
                });
            } else {
                scratch.spare_loops.push(loop_out);
            }
            // Recycle the consumed loop's storage for later faces/clips.
            scratch.spare_loops.push(face.verts);
        }
        scratch.faces_buf = old_faces; // empty; keeps its capacity for next clip

        // Build the closing face from every vertex now lying on the plane.
        let on_plane = &mut scratch.on_plane;
        on_plane.clear();
        for f in &new_faces {
            for &v in &f.verts {
                let is_new = (v as usize) >= classes.len();
                if (is_new || classes[v as usize] == Class::On) && !on_plane.contains(&v) {
                    on_plane.push(v);
                }
            }
        }
        if on_plane.len() >= 3 {
            let centroid = {
                let mut c = Vec3::ZERO;
                for &v in on_plane.iter() {
                    c += verts[v as usize];
                }
                c / on_plane.len() as f64
            };
            let (u, w) = plane.basis();
            // Sort counterclockwise around +n: (u, w, n) is right-handed.
            on_plane.sort_by(|&a, &b| {
                let pa = verts[a as usize] - centroid;
                let pb = verts[b as usize] - centroid;
                let aa = pa.dot(w).atan2(pa.dot(u));
                let ab = pb.dot(w).atan2(pb.dot(u));
                aa.partial_cmp(&ab).unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut closing = scratch.spare_loops.pop().unwrap_or_default();
            closing.clear();
            closing.extend_from_slice(on_plane);
            new_faces.push(Face {
                plane: *plane,
                verts: closing,
                neighbor,
            });
        }

        self.verts = verts;
        self.faces = new_faces;
        self.compact_with(&mut scratch.map, &mut scratch.kept);
        if self.is_empty() {
            self.verts.clear();
            self.faces.clear();
            ClipResult::Empty
        } else {
            ClipResult::Clipped
        }
    }

    /// Drop unreferenced vertices and remap face indices.
    fn compact_with(&mut self, map: &mut Vec<u32>, kept: &mut Vec<Vec3>) {
        map.clear();
        map.resize(self.verts.len(), u32::MAX);
        kept.clear();
        for face in &mut self.faces {
            for v in &mut face.verts {
                let old = *v as usize;
                if map[old] == u32::MAX {
                    map[old] = kept.len() as u32;
                    kept.push(self.verts[old]);
                }
                *v = map[old];
            }
        }
        // Swap rather than assign so the old vertex storage is recycled.
        std::mem::swap(&mut self.verts, kept);
    }

    /// Volume via the divergence theorem (exact for the stored polygonal
    /// faces; positive for outward-oriented faces).
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        // Reference point inside (vertex mean) reduces cancellation.
        let r = self.vertex_mean();
        let mut v = 0.0;
        for face in &self.faces {
            let f0 = self.verts[face.verts[0] as usize];
            for i in 1..face.verts.len() - 1 {
                let fi = self.verts[face.verts[i] as usize];
                let fj = self.verts[face.verts[i + 1] as usize];
                v += tetra_volume_signed(r, f0, fi, fj);
            }
        }
        v
    }

    /// Total surface area.
    pub fn surface_area(&self) -> f64 {
        self.faces
            .iter()
            .map(|f| {
                let pts: Vec<Vec3> = f.verts.iter().map(|&v| self.verts[v as usize]).collect();
                polygon_area(&pts)
            })
            .sum()
    }

    /// Volume-weighted centroid; falls back to the vertex mean for
    /// (near-)degenerate polyhedra.
    pub fn centroid(&self) -> Vec3 {
        let r = self.vertex_mean();
        let mut vol = 0.0;
        let mut c = Vec3::ZERO;
        for face in &self.faces {
            let f0 = self.verts[face.verts[0] as usize];
            for i in 1..face.verts.len() - 1 {
                let fi = self.verts[face.verts[i] as usize];
                let fj = self.verts[face.verts[i + 1] as usize];
                let v = tetra_volume_signed(r, f0, fi, fj);
                vol += v;
                c += (r + f0 + fi + fj) * (v / 4.0);
            }
        }
        if vol.abs() > 1e-300 {
            c / vol
        } else {
            r
        }
    }

    /// Arithmetic mean of the vertices.
    pub fn vertex_mean(&self) -> Vec3 {
        let mut c = Vec3::ZERO;
        for &v in &self.verts {
            c += v;
        }
        c / self.verts.len().max(1) as f64
    }

    /// Squared distance from `p` to the farthest vertex; the security-radius
    /// criterion compares twice the square root of this against the distance
    /// to the nearest unprocessed candidate site.
    pub fn max_vertex_dist2(&self, p: Vec3) -> f64 {
        self.verts.iter().map(|&v| v.dist2(p)).fold(0.0, f64::max)
    }

    /// Tight axis-aligned bounding box of the vertices, together with the
    /// farthest squared vertex distance from `p` (one fused pass — the
    /// cell kernel needs both after every mutating clip). Degenerate
    /// (point-at-`p`) when the polyhedron has no vertices.
    pub fn vertex_aabb_and_max_dist2(&self, p: Vec3) -> (Aabb, f64) {
        let (mut lo, mut hi) = (p, p);
        let mut max_d2 = 0.0f64;
        for &v in &self.verts {
            lo.x = lo.x.min(v.x);
            lo.y = lo.y.min(v.y);
            lo.z = lo.z.min(v.z);
            hi.x = hi.x.max(v.x);
            hi.y = hi.y.max(v.y);
            hi.z = hi.z.max(v.z);
            max_d2 = max_d2.max(v.dist2(p));
        }
        (Aabb::new(lo, hi), max_d2)
    }

    /// Maximum pairwise squared distance between vertices (cell "diameter"²).
    /// Used by the paper's conservative early volume cull.
    pub fn max_pairwise_dist2(&self) -> f64 {
        let mut best = 0.0f64;
        for i in 0..self.verts.len() {
            for j in i + 1..self.verts.len() {
                best = best.max(self.verts[i].dist2(self.verts[j]));
            }
        }
        best
    }

    /// Undirected edge list as vertex index pairs (each edge once).
    pub fn edges(&self) -> Vec<(u32, u32)> {
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for face in &self.faces {
            let n = face.verts.len();
            for i in 0..n {
                let a = face.verts[i];
                let b = face.verts[(i + 1) % n];
                let e = (a.min(b), a.max(b));
                if !edges.contains(&e) {
                    edges.push(e);
                }
            }
        }
        edges
    }

    /// A watertight convex polyhedron satisfies Euler's formula
    /// `V - E + F = 2` and every edge is shared by exactly two faces.
    pub fn check_closed(&self) -> bool {
        if self.is_empty() {
            return false;
        }
        let mut counts: HashMap<(u32, u32), u32> = HashMap::new();
        for face in &self.faces {
            let n = face.verts.len();
            for i in 0..n {
                let a = face.verts[i];
                let b = face.verts[(i + 1) % n];
                *counts.entry((a.min(b), a.max(b))).or_insert(0) += 1;
            }
        }
        let all_twice = counts.values().all(|&c| c == 2);
        let v = self.verts.len() as i64;
        let e = counts.len() as i64;
        let f = self.faces.len() as i64;
        all_twice && v - e + f == 2
    }

    /// `true` when `p` lies inside or on every face's half-space.
    pub fn contains(&self, p: Vec3, eps: f64) -> bool {
        self.faces.iter().all(|f| f.plane.signed_distance(p) <= eps)
    }

    /// Ids of the neighbor sites whose bisectors form the faces.
    pub fn neighbor_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.faces.iter().filter_map(|f| f.neighbor)
    }

    /// Points of one face's loop, in order.
    pub fn face_points(&self, face: &Face) -> Vec<Vec3> {
        face.verts.iter().map(|&v| self.verts[v as usize]).collect()
    }

    /// Centroid of one face's vertex loop.
    pub fn face_centroid(&self, face: &Face) -> Vec3 {
        polygon_vertex_centroid(&self.face_points(face))
    }
}

/// Remove consecutive duplicate indices (and a duplicated first/last pair).
fn dedup_loop(loop_: &mut Vec<u32>) {
    loop_.dedup();
    while loop_.len() > 1 && loop_.first() == loop_.last() {
        loop_.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EPS;

    fn unit_cube() -> ConvexPolyhedron {
        ConvexPolyhedron::from_aabb(&Aabb::cube(1.0))
    }

    #[test]
    fn cube_measures() {
        let c = unit_cube();
        assert!((c.volume() - 1.0).abs() < 1e-12);
        assert!((c.surface_area() - 6.0).abs() < 1e-12);
        assert!((c.centroid() - Vec3::splat(0.5)).norm() < 1e-12);
        assert!(c.check_closed());
        assert_eq!(c.edges().len(), 12);
    }

    #[test]
    fn clip_keeps_half_the_cube() {
        let mut c = unit_cube();
        let plane = Plane::from_point_normal(Vec3::splat(0.5), Vec3::new(1.0, 0.0, 0.0));
        let r = c.clip(&plane, Some(42), EPS);
        assert_eq!(r, ClipResult::Clipped);
        assert!((c.volume() - 0.5).abs() < 1e-12);
        assert!((c.surface_area() - 4.0).abs() < 1e-12);
        assert!(c.check_closed());
        assert_eq!(c.neighbor_ids().collect::<Vec<_>>(), vec![42]);
    }

    #[test]
    fn clip_outside_is_noop() {
        let mut c = unit_cube();
        let plane = Plane::from_point_normal(Vec3::splat(2.0), Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(c.clip(&plane, None, EPS), ClipResult::Unchanged);
        assert!((c.volume() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clip_everything_empties() {
        let mut c = unit_cube();
        let plane = Plane::from_point_normal(Vec3::splat(-1.0), Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(c.clip(&plane, None, EPS), ClipResult::Empty);
        assert!(c.is_empty());
        assert_eq!(c.volume(), 0.0);
    }

    #[test]
    fn clip_corner_produces_triangle_face() {
        let mut c = unit_cube();
        // Cut off the corner at the origin.
        let n = Vec3::splat(-1.0).normalized().unwrap();
        let plane = Plane::from_point_normal(Vec3::new(0.25, 0.0, 0.0), n);
        assert_eq!(c.clip(&plane, Some(7), EPS), ClipResult::Clipped);
        // removed tetra corner: volume 0.25³/6
        let expect = 1.0 - 0.25f64.powi(3) / 6.0;
        assert!((c.volume() - expect).abs() < 1e-12, "vol {}", c.volume());
        assert!(c.check_closed());
        // New face is a triangle tagged with the neighbor id.
        let new_face = c.faces.iter().find(|f| f.neighbor == Some(7)).unwrap();
        assert_eq!(new_face.verts.len(), 3);
    }

    #[test]
    fn clip_through_vertices_stays_watertight() {
        let mut c = unit_cube();
        // Diagonal plane through four cube vertices: x = y plane.
        let n = Vec3::new(1.0, -1.0, 0.0).normalized().unwrap();
        let plane = Plane::from_point_normal(Vec3::ZERO, n);
        let r = c.clip(&plane, Some(1), EPS);
        assert_eq!(r, ClipResult::Clipped);
        assert!((c.volume() - 0.5).abs() < 1e-9, "vol {}", c.volume());
        assert!(c.check_closed());
    }

    #[test]
    fn sequential_bisector_clips_build_voronoi_cell() {
        // Site at the center of a 3x3x3 lattice: its Voronoi cell must be the
        // unit cube centered on it.
        let site = Vec3::splat(1.5);
        let mut cell = ConvexPolyhedron::from_aabb(&Aabb::cube(3.0));
        let mut id = 0u64;
        for i in 0..3 {
            for j in 0..3 {
                for k in 0..3 {
                    let q = Vec3::new(i as f64 + 0.5, j as f64 + 0.5, k as f64 + 0.5);
                    if q.dist2(site) > 1e-12 {
                        let b = Plane::bisector(site, q).unwrap();
                        cell.clip(&b, Some(id), EPS);
                    }
                    id += 1;
                }
            }
        }
        assert!((cell.volume() - 1.0).abs() < 1e-9, "vol {}", cell.volume());
        assert!((cell.surface_area() - 6.0).abs() < 1e-9);
        assert!((cell.centroid() - site).norm() < 1e-9);
        assert!(cell.check_closed());
        // 6 face-adjacent neighbors survive; corner/edge bisectors are cut away.
        assert_eq!(cell.neighbor_ids().count(), 6);
        assert!(cell.contains(site, EPS));
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_clips() {
        // Same Voronoi construction as below, once with fresh buffers per
        // clip and once through a single reused scratch.
        let build = |scratch: Option<&mut ClipScratch>| {
            let site = Vec3::new(1.4, 1.6, 1.5);
            let mut cell = ConvexPolyhedron::from_aabb(&Aabb::cube(3.0));
            let mut fresh = ClipScratch::new();
            let scratch = match scratch {
                Some(s) => s,
                None => &mut fresh,
            };
            let mut id = 0u64;
            for i in 0..3 {
                for j in 0..3 {
                    for k in 0..3 {
                        let q = Vec3::new(i as f64 + 0.47, j as f64 + 0.53, k as f64 + 0.5);
                        if q.dist2(site) > 1e-12 {
                            let b = Plane::bisector(site, q).unwrap();
                            cell.clip_with(&b, Some(id), EPS, scratch);
                        }
                        id += 1;
                    }
                }
            }
            cell
        };
        let mut scratch = ClipScratch::new();
        // Warm the scratch on one throwaway cell first so reuse is exercised.
        let _ = build(Some(&mut scratch));
        let reused = build(Some(&mut scratch));
        let fresh = build(None);
        assert_eq!(fresh.verts.len(), reused.verts.len());
        for (a, b) in fresh.verts.iter().zip(&reused.verts) {
            assert_eq!(a.x.to_bits(), b.x.to_bits());
            assert_eq!(a.y.to_bits(), b.y.to_bits());
            assert_eq!(a.z.to_bits(), b.z.to_bits());
        }
        assert_eq!(fresh.faces.len(), reused.faces.len());
        for (a, b) in fresh.faces.iter().zip(&reused.faces) {
            assert_eq!(a.verts, b.verts);
            assert_eq!(a.neighbor, b.neighbor);
        }
        assert_eq!(fresh.volume().to_bits(), reused.volume().to_bits());
    }

    #[test]
    fn compaction_drops_unused_vertices() {
        let mut c = unit_cube();
        let plane = Plane::from_point_normal(Vec3::splat(0.5), Vec3::new(0.0, 0.0, 1.0));
        c.clip(&plane, None, EPS);
        // Half-cube has 8 vertices again (4 old bottom + 4 new cuts).
        assert_eq!(c.verts.len(), 8);
        assert!(c.check_closed());
    }

    #[test]
    fn max_distances() {
        let c = unit_cube();
        let d2 = c.max_vertex_dist2(Vec3::ZERO);
        assert!((d2 - 3.0).abs() < 1e-12);
        assert!((c.max_pairwise_dist2() - 3.0).abs() < 1e-12);
    }
}
