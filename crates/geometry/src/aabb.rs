//! Axis-aligned bounding boxes, including periodic-domain helpers.

use crate::vec3::Vec3;

/// An axis-aligned box `[min, max)` in 3D.
///
/// Blocks of the domain decomposition, ghost regions, and the global
/// simulation box are all `Aabb`s. The half-open convention means a particle
/// on a shared block face belongs to exactly one block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    pub min: Vec3,
    pub max: Vec3,
}

impl Aabb {
    /// Create a box from its corners. Panics if `min > max` in any dimension.
    pub fn new(min: Vec3, max: Vec3) -> Self {
        assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "Aabb min {min} must be <= max {max}"
        );
        Aabb { min, max }
    }

    /// Cube `[0, side)^3`.
    pub fn cube(side: f64) -> Self {
        Aabb::new(Vec3::ZERO, Vec3::splat(side))
    }

    /// Smallest box containing all `points`. `None` when empty.
    pub fn from_points(points: &[Vec3]) -> Option<Self> {
        let first = *points.first()?;
        let (min, max) = points
            .iter()
            .fold((first, first), |(lo, hi), &p| (lo.min(p), hi.max(p)));
        Some(Aabb { min, max })
    }

    #[inline]
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    #[inline]
    pub fn center(&self) -> Vec3 {
        self.min.midpoint(self.max)
    }

    #[inline]
    pub fn volume(&self) -> f64 {
        let e = self.extent();
        e.x * e.y * e.z
    }

    /// Half-open containment test (`min <= p < max` per dimension).
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x < self.max.x
            && p.y >= self.min.y
            && p.y < self.max.y
            && p.z >= self.min.z
            && p.z < self.max.z
    }

    /// Closed containment test (`min <= p <= max` per dimension); used for
    /// ghost regions where boundary points must be kept.
    #[inline]
    pub fn contains_closed(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Box grown by `g` on every side (clamped so min <= max is preserved
    /// only if `g >= -extent/2`; callers pass non-negative ghost sizes).
    pub fn grown(&self, g: f64) -> Aabb {
        Aabb::new(self.min - Vec3::splat(g), self.max + Vec3::splat(g))
    }

    /// `true` iff the two boxes overlap (closed comparison).
    pub fn intersects(&self, o: &Aabb) -> bool {
        self.min.x <= o.max.x
            && o.min.x <= self.max.x
            && self.min.y <= o.max.y
            && o.min.y <= self.max.y
            && self.min.z <= o.max.z
            && o.min.z <= self.max.z
    }

    /// Support function: `max over x in box of n·x`. With a plane
    /// `(n, d)`, `support(n) - d <= eps` proves every point of the box —
    /// and hence of anything the box encloses — classifies inside/on the
    /// plane at tolerance `eps`, so a clip against it is a provable no-op.
    #[inline]
    pub fn support(&self, n: Vec3) -> f64 {
        let sx = n.x * if n.x >= 0.0 { self.max.x } else { self.min.x };
        let sy = n.y * if n.y >= 0.0 { self.max.y } else { self.min.y };
        let sz = n.z * if n.z >= 0.0 { self.max.z } else { self.min.z };
        sx + sy + sz
    }

    /// Euclidean distance from `p` to the box (0 if inside).
    pub fn distance(&self, p: Vec3) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        let dz = (self.min.z - p.z).max(0.0).max(p.z - self.max.z);
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// Minimum distance from `p` to the box boundary when `p` is inside;
    /// 0 when `p` is outside. Used by the security-radius test: a Voronoi
    /// cell is certified complete only if its circumradius is smaller than
    /// this "room" within the ghosted region.
    pub fn interior_distance(&self, p: Vec3) -> f64 {
        if !self.contains_closed(p) {
            return 0.0;
        }
        let dx = (p.x - self.min.x).min(self.max.x - p.x);
        let dy = (p.y - self.min.y).min(self.max.y - p.y);
        let dz = (p.z - self.min.z).min(self.max.z - p.z);
        dx.min(dy).min(dz)
    }

    /// Wrap `p` into the box, treating it as a periodic domain.
    pub fn wrap(&self, p: Vec3) -> Vec3 {
        let e = self.extent();
        let mut q = p;
        for d in 0..3 {
            if e[d] > 0.0 {
                let mut v = (q[d] - self.min[d]) % e[d];
                if v < 0.0 {
                    v += e[d];
                }
                q[d] = self.min[d] + v;
            }
        }
        q
    }

    /// Minimum-image displacement `b - a` under periodic boundary conditions
    /// over this box (robust to inputs any number of box lengths apart).
    pub fn min_image(&self, a: Vec3, b: Vec3) -> Vec3 {
        let e = self.extent();
        let mut d = b - a;
        for k in 0..3 {
            if e[k] > 0.0 {
                d[k] = (d[k] + e[k] * 0.5).rem_euclid(e[k]) - e[k] * 0.5;
            }
        }
        d
    }

    /// Periodic distance between `a` and `b`.
    pub fn periodic_dist(&self, a: Vec3, b: Vec3) -> f64 {
        self.min_image(a, b).norm()
    }

    /// The eight corner points.
    pub fn corners(&self) -> [Vec3; 8] {
        let (lo, hi) = (self.min, self.max);
        [
            Vec3::new(lo.x, lo.y, lo.z),
            Vec3::new(hi.x, lo.y, lo.z),
            Vec3::new(lo.x, hi.y, lo.z),
            Vec3::new(hi.x, hi.y, lo.z),
            Vec3::new(lo.x, lo.y, hi.z),
            Vec3::new(hi.x, lo.y, hi.z),
            Vec3::new(lo.x, hi.y, hi.z),
            Vec3::new(hi.x, hi.y, hi.z),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_measures() {
        let b = Aabb::new(Vec3::new(0.0, 0.0, 0.0), Vec3::new(2.0, 3.0, 4.0));
        assert_eq!(b.volume(), 24.0);
        assert_eq!(b.center(), Vec3::new(1.0, 1.5, 2.0));
        assert_eq!(b.extent(), Vec3::new(2.0, 3.0, 4.0));
    }

    #[test]
    #[should_panic]
    fn inverted_box_panics() {
        let _ = Aabb::new(Vec3::ONE, Vec3::ZERO);
    }

    #[test]
    fn from_points_bounds_all() {
        let pts = [
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(-1.0, 5.0, 0.0),
            Vec3::new(0.5, 0.0, 4.0),
        ];
        let b = Aabb::from_points(&pts).unwrap();
        assert_eq!(b.min, Vec3::new(-1.0, 0.0, 0.0));
        assert_eq!(b.max, Vec3::new(1.0, 5.0, 4.0));
        assert!(Aabb::from_points(&[]).is_none());
    }

    #[test]
    fn containment_is_half_open() {
        let b = Aabb::cube(1.0);
        assert!(b.contains(Vec3::ZERO));
        assert!(!b.contains(Vec3::ONE));
        assert!(b.contains_closed(Vec3::ONE));
        assert!(b.contains(Vec3::splat(0.999)));
        assert!(!b.contains(Vec3::new(1.0, 0.5, 0.5)));
    }

    #[test]
    fn grown_and_intersects() {
        let b = Aabb::cube(1.0);
        let g = b.grown(0.5);
        assert_eq!(g.min, Vec3::splat(-0.5));
        assert_eq!(g.max, Vec3::splat(1.5));
        let other = Aabb::new(Vec3::splat(1.2), Vec3::splat(2.0));
        assert!(!b.intersects(&other));
        assert!(g.intersects(&other));
    }

    #[test]
    fn distances() {
        let b = Aabb::cube(2.0);
        assert_eq!(b.distance(Vec3::splat(1.0)), 0.0);
        assert_eq!(b.distance(Vec3::new(3.0, 1.0, 1.0)), 1.0);
        assert!((b.distance(Vec3::new(3.0, 3.0, 1.0)) - 2f64.sqrt()).abs() < 1e-15);
        assert_eq!(b.interior_distance(Vec3::splat(1.0)), 1.0);
        assert_eq!(b.interior_distance(Vec3::new(0.25, 1.0, 1.0)), 0.25);
        assert_eq!(b.interior_distance(Vec3::new(5.0, 1.0, 1.0)), 0.0);
    }

    #[test]
    fn periodic_wrap_and_min_image() {
        let b = Aabb::cube(10.0);
        assert_eq!(b.wrap(Vec3::new(12.0, -3.0, 5.0)), Vec3::new(2.0, 7.0, 5.0));
        // nearest image of 9.5 seen from 0.5 is -0.5, i.e. displacement -1
        let d = b.min_image(Vec3::new(0.5, 0.0, 0.0), Vec3::new(9.5, 0.0, 0.0));
        assert_eq!(d, Vec3::new(-1.0, 0.0, 0.0));
        assert_eq!(
            b.periodic_dist(Vec3::new(0.5, 0.0, 0.0), Vec3::new(9.5, 0.0, 0.0)),
            1.0
        );
    }

    #[test]
    fn corners_are_contained_closed() {
        let b = Aabb::new(Vec3::new(-1.0, 2.0, 0.5), Vec3::new(3.0, 4.0, 0.75));
        for c in b.corners() {
            assert!(b.contains_closed(c));
        }
    }
}
