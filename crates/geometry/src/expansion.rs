//! Exact floating-point expansion arithmetic (Shewchuk).
//!
//! An *expansion* represents a real number exactly as a sum of `f64`
//! components that are nonoverlapping and sorted by increasing magnitude.
//! Every operation here (sum, difference, product) is exact: no rounding
//! error is ever discarded, so the sign of the final expansion is the true
//! sign of the real value. This is the foundation of the robust geometric
//! predicates in [`crate::predicates`].
//!
//! The implementation favors clarity over the last factor of performance;
//! the predicates use these routines only when a cheap floating-point filter
//! cannot certify the sign, which is rare for simulation data.

/// Error-free transformation: `a + b = hi + lo` exactly, with `hi = fl(a+b)`.
#[inline]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let hi = a + b;
    let bvirt = hi - a;
    let avirt = hi - bvirt;
    let broundoff = b - bvirt;
    let aroundoff = a - avirt;
    (hi, aroundoff + broundoff)
}

/// Error-free transformation requiring `|a| >= |b|` (or a == 0).
#[inline]
pub fn fast_two_sum(a: f64, b: f64) -> (f64, f64) {
    let hi = a + b;
    let bvirt = hi - a;
    (hi, b - bvirt)
}

/// Error-free transformation: `a - b = hi + lo` exactly.
#[inline]
pub fn two_diff(a: f64, b: f64) -> (f64, f64) {
    let hi = a - b;
    let bvirt = a - hi;
    let avirt = hi + bvirt;
    let broundoff = bvirt - b;
    let aroundoff = a - avirt;
    (hi, aroundoff + broundoff)
}

/// Veltkamp splitting constant for f64: 2^27 + 1.
const SPLITTER: f64 = 134_217_729.0;

/// Split `a` into high and low halves with at most 26 significand bits each.
#[inline]
pub fn split(a: f64) -> (f64, f64) {
    let c = SPLITTER * a;
    let abig = c - a;
    let ahi = c - abig;
    (ahi, a - ahi)
}

/// Error-free transformation: `a * b = hi + lo` exactly, with `hi = fl(a*b)`.
#[inline]
pub fn two_product(a: f64, b: f64) -> (f64, f64) {
    let hi = a * b;
    let (ahi, alo) = split(a);
    let (bhi, blo) = split(b);
    let err1 = hi - ahi * bhi;
    let err2 = err1 - alo * bhi;
    let err3 = err2 - ahi * blo;
    (hi, alo * blo - err3)
}

/// An exact real number as a sum of nonoverlapping f64 components, sorted by
/// increasing magnitude. Zero components are eliminated, so an empty
/// component list represents exactly zero.
#[derive(Debug, Clone, PartialEq)]
pub struct Expansion {
    comps: Vec<f64>,
}

impl Expansion {
    /// The exact value 0.
    pub fn zero() -> Self {
        Expansion { comps: Vec::new() }
    }

    /// An expansion holding the single component `v`.
    pub fn from_f64(v: f64) -> Self {
        debug_assert!(v.is_finite());
        if v == 0.0 {
            Self::zero()
        } else {
            Expansion { comps: vec![v] }
        }
    }

    /// The exact difference `a - b` as a (<= 2)-component expansion.
    pub fn from_diff(a: f64, b: f64) -> Self {
        let (hi, lo) = two_diff(a, b);
        Self::from_parts(hi, lo)
    }

    /// The exact product `a * b` as a (<= 2)-component expansion.
    pub fn from_product(a: f64, b: f64) -> Self {
        let (hi, lo) = two_product(a, b);
        Self::from_parts(hi, lo)
    }

    fn from_parts(hi: f64, lo: f64) -> Self {
        let mut comps = Vec::with_capacity(2);
        if lo != 0.0 {
            comps.push(lo);
        }
        if hi != 0.0 {
            comps.push(hi);
        }
        Expansion { comps }
    }

    /// Number of nonzero components.
    pub fn len(&self) -> usize {
        self.comps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.comps.is_empty()
    }

    /// Exactly zero?
    pub fn is_zero(&self) -> bool {
        self.comps.is_empty()
    }

    /// Exact sign of the represented value: -1, 0, or +1.
    ///
    /// Because components are nonoverlapping and sorted by increasing
    /// magnitude, the sign of the whole is the sign of the largest (last)
    /// component.
    pub fn sign(&self) -> i32 {
        match self.comps.last() {
            None => 0,
            Some(&c) if c > 0.0 => 1,
            Some(_) => -1,
        }
    }

    /// Best single-f64 approximation (sum of components, smallest first).
    pub fn estimate(&self) -> f64 {
        self.comps.iter().sum()
    }

    /// Exact sum of `self` and the single component `b`
    /// (Shewchuk's GROW-EXPANSION with zero elimination).
    pub fn grow(&self, b: f64) -> Expansion {
        let mut q = b;
        let mut out = Vec::with_capacity(self.comps.len() + 1);
        for &e in &self.comps {
            let (sum, err) = two_sum(q, e);
            if err != 0.0 {
                out.push(err);
            }
            q = sum;
        }
        if q != 0.0 {
            out.push(q);
        }
        Expansion { comps: out }
    }

    /// Exact sum of two expansions.
    pub fn add(&self, other: &Expansion) -> Expansion {
        // Repeated GROW-EXPANSION: O(m*n) but exact and simple; fallback-path
        // only, so the cost is acceptable.
        let (small, big) = if self.len() < other.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut acc = big.clone();
        for &c in &small.comps {
            acc = acc.grow(c);
        }
        acc
    }

    /// Exact difference `self - other`.
    pub fn sub(&self, other: &Expansion) -> Expansion {
        self.add(&other.neg())
    }

    /// Exact negation.
    pub fn neg(&self) -> Expansion {
        Expansion {
            comps: self.comps.iter().map(|&c| -c).collect(),
        }
    }

    /// Exact product of `self` by the scalar `b`
    /// (Shewchuk's SCALE-EXPANSION with zero elimination).
    pub fn scale(&self, b: f64) -> Expansion {
        if b == 0.0 || self.is_zero() {
            return Expansion::zero();
        }
        let mut out = Vec::with_capacity(2 * self.comps.len());
        let (mut q, err) = two_product(self.comps[0], b);
        if err != 0.0 {
            out.push(err);
        }
        for &e in &self.comps[1..] {
            let (phi, plo) = two_product(e, b);
            let (sum, err) = two_sum(q, plo);
            if err != 0.0 {
                out.push(err);
            }
            let (newq, err2) = fast_two_sum(phi, sum);
            if err2 != 0.0 {
                out.push(err2);
            }
            q = newq;
        }
        if q != 0.0 {
            out.push(q);
        }
        // SCALE-EXPANSION's output is already ordered; zero elimination keeps
        // the relative order, which preserves the nonoverlapping invariant.
        Expansion { comps: out }
    }

    /// Exact product of two expansions (distributes `scale` over `other`).
    pub fn mul(&self, other: &Expansion) -> Expansion {
        let mut acc = Expansion::zero();
        for &c in &other.comps {
            acc = acc.add(&self.scale(c));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn two_sum_is_exact_on_cancellation() {
        // 1 + 2^-60 is not representable; the error term captures the rest.
        let (hi, lo) = two_sum(1.0, 2f64.powi(-60));
        assert_eq!(hi, 1.0);
        assert_eq!(lo, 2f64.powi(-60));
    }

    #[test]
    fn two_product_is_exact() {
        let a = 1.0 + 2f64.powi(-30);
        let b = 1.0 + 2f64.powi(-30);
        let (hi, lo) = two_product(a, b);
        // a*b = 1 + 2^-29 + 2^-60 exactly
        assert_eq!(hi + lo, a * b);
        assert_eq!(lo, 2f64.powi(-60));
    }

    #[test]
    fn sign_of_tiny_differences() {
        // x = (1 + 2^-52) - 1 - 2^-52 must be exactly zero.
        let e = Expansion::from_diff(1.0 + 2f64.powi(-52), 1.0);
        let e = e.sub(&Expansion::from_f64(2f64.powi(-52)));
        assert_eq!(e.sign(), 0);
        assert!(e.is_zero());
    }

    #[test]
    fn grow_and_add_accumulate_exactly() {
        // Sum 1 + 2^-53 + 2^-53 = 1 + 2^-52 exactly (naive f64 gives 1.0).
        let tiny = 2f64.powi(-53);
        let e = Expansion::from_f64(1.0).grow(tiny).grow(tiny);
        assert_eq!(e.estimate(), 1.0 + 2f64.powi(-52));
        let naive = 1.0 + tiny + tiny;
        assert_eq!(naive, 1.0); // demonstrates why expansions are needed
    }

    #[test]
    fn scale_is_exact() {
        let e = Expansion::from_f64(1.0).grow(2f64.powi(-53));
        let s = e.scale(3.0);
        // 3 * (1 + 2^-53) = 3 + 3*2^-53; check against two_product pieces
        let direct =
            Expansion::from_product(1.0, 3.0).add(&Expansion::from_product(2f64.powi(-53), 3.0));
        assert_eq!(s.sign(), 1);
        assert_eq!(s.sub(&direct).sign(), 0);
    }

    #[test]
    fn mul_matches_integer_arithmetic() {
        // Products of moderate integers are exactly representable; expansion
        // multiplication must agree.
        let a = Expansion::from_f64(123_456_789.0);
        let b = Expansion::from_f64(987_654_321.0);
        let p = a.mul(&b);
        assert_eq!(p.estimate(), 123_456_789.0 * 987_654_321.0);
    }

    proptest! {
        #[test]
        fn add_estimate_close(a in -1e12f64..1e12, b in -1e12f64..1e12) {
            let e = Expansion::from_f64(a).add(&Expansion::from_f64(b));
            prop_assert_eq!(e.estimate(), a + b);
        }

        #[test]
        fn diff_sign_matches_comparison(a in -1e9f64..1e9, b in -1e9f64..1e9) {
            let e = Expansion::from_diff(a, b);
            let expect = if a > b { 1 } else if a < b { -1 } else { 0 };
            prop_assert_eq!(e.sign(), expect);
        }

        #[test]
        fn product_sign_is_exact(a in -1e9f64..1e9, b in -1e9f64..1e9) {
            let e = Expansion::from_product(a, b);
            let expect = if a * b > 0.0 { 1 } else if a * b < 0.0 { -1 } else { 0 };
            // a*b rounded may be zero while true product is not, but only
            // for subnormal-scale products, excluded by the input ranges
            // unless a or b is 0.
            if a == 0.0 || b == 0.0 {
                prop_assert_eq!(e.sign(), 0);
            } else {
                prop_assert_eq!(e.sign(), expect);
            }
        }

        #[test]
        fn sub_then_add_roundtrips_to_zero(
            vals in proptest::collection::vec(-1e9f64..1e9, 1..8)
        ) {
            let mut e = Expansion::zero();
            for &v in &vals {
                e = e.grow(v);
            }
            let mut back = e.clone();
            for &v in &vals {
                back = back.sub(&Expansion::from_f64(v));
            }
            prop_assert_eq!(back.sign(), 0);
        }

        #[test]
        fn mul_distributes_over_small_ints(
            a in -1000i64..1000, b in -1000i64..1000, c in -1000i64..1000
        ) {
            // (a + b) * c computed as expansions equals exact integer result.
            let e = Expansion::from_f64(a as f64).add(&Expansion::from_f64(b as f64));
            let p = e.mul(&Expansion::from_f64(c as f64));
            prop_assert_eq!(p.estimate(), ((a + b) * c) as f64);
        }
    }
}
