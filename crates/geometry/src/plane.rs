//! Oriented planes / half-spaces.

use crate::vec3::Vec3;

/// An oriented plane `{ x : n·x = d }` with unit normal `n`.
///
/// The *inside* half-space is `n·x <= d`; clipping a polyhedron by a plane
/// keeps the inside. For a Voronoi bisector between site `s` and neighbor
/// `q`, the normal points from `s` toward `q`, so the inside is the set of
/// points closer to `s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plane {
    /// Unit normal.
    pub n: Vec3,
    /// Offset along the normal (`d = n · p` for any point `p` on the plane).
    pub d: f64,
}

impl Plane {
    /// Plane with the given (unit) normal passing through `point`.
    pub fn from_point_normal(point: Vec3, n: Vec3) -> Self {
        debug_assert!((n.norm() - 1.0).abs() < 1e-9, "normal must be unit length");
        Plane { n, d: n.dot(point) }
    }

    /// Perpendicular bisector between `site` and `neighbor`, oriented so the
    /// inside half-space contains `site`. `None` when the points coincide.
    pub fn bisector(site: Vec3, neighbor: Vec3) -> Option<Self> {
        let n = (neighbor - site).normalized()?;
        Some(Plane::from_point_normal(site.midpoint(neighbor), n))
    }

    /// Signed distance from `p` to the plane (positive outside).
    #[inline]
    pub fn signed_distance(&self, p: Vec3) -> f64 {
        self.n.dot(p) - self.d
    }

    /// `true` when `p` lies in the closed inside half-space.
    #[inline]
    pub fn inside(&self, p: Vec3) -> bool {
        self.signed_distance(p) <= 0.0
    }

    /// Plane with the opposite orientation.
    pub fn flipped(&self) -> Plane {
        Plane {
            n: -self.n,
            d: -self.d,
        }
    }

    /// Intersection parameter `t` such that `a + t (b - a)` lies on the
    /// plane. `None` when the segment is parallel to the plane.
    pub fn intersect_segment(&self, a: Vec3, b: Vec3) -> Option<f64> {
        let da = self.signed_distance(a);
        let db = self.signed_distance(b);
        let denom = da - db;
        if denom == 0.0 {
            return None;
        }
        Some(da / denom)
    }

    /// An orthonormal basis `(u, v)` spanning the plane, so points can be
    /// projected to 2D coordinates `(u·x, v·x)` for angular sorting.
    pub fn basis(&self) -> (Vec3, Vec3) {
        // Pick the axis least aligned with n to avoid degeneracy.
        let a = if self.n.x.abs() <= self.n.y.abs() && self.n.x.abs() <= self.n.z.abs() {
            Vec3::new(1.0, 0.0, 0.0)
        } else if self.n.y.abs() <= self.n.z.abs() {
            Vec3::new(0.0, 1.0, 0.0)
        } else {
            Vec3::new(0.0, 0.0, 1.0)
        };
        let u = self
            .n
            .cross(a)
            .normalized()
            .expect("normal is unit, a not parallel");
        let v = self.n.cross(u);
        (u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisector_properties() {
        let s = Vec3::new(0.0, 0.0, 0.0);
        let q = Vec3::new(2.0, 0.0, 0.0);
        let p = Plane::bisector(s, q).unwrap();
        assert_eq!(p.n, Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(p.signed_distance(s.midpoint(q)), 0.0);
        assert!(p.inside(s));
        assert!(!p.inside(q));
        // Equidistant points lie on the plane
        assert_eq!(p.signed_distance(Vec3::new(1.0, 5.0, -3.0)), 0.0);
        assert!(Plane::bisector(s, s).is_none());
    }

    #[test]
    fn signed_distance_and_flip() {
        let p = Plane::from_point_normal(Vec3::new(0.0, 0.0, 1.0), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(p.signed_distance(Vec3::new(0.0, 0.0, 3.0)), 2.0);
        assert_eq!(p.signed_distance(Vec3::ZERO), -1.0);
        let f = p.flipped();
        assert_eq!(f.signed_distance(Vec3::new(0.0, 0.0, 3.0)), -2.0);
    }

    #[test]
    fn segment_intersection() {
        let p = Plane::from_point_normal(Vec3::new(0.0, 0.0, 0.5), Vec3::new(0.0, 0.0, 1.0));
        let t = p
            .intersect_segment(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0))
            .unwrap();
        assert_eq!(t, 0.5);
        // parallel segment
        assert!(p
            .intersect_segment(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0))
            .is_none());
    }

    #[test]
    fn basis_is_orthonormal() {
        for n in [
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.6, 0.8, 0.0),
            Vec3::new(0.577350269189626, 0.577350269189626, 0.577350269189626),
        ] {
            let p = Plane::from_point_normal(Vec3::ZERO, n);
            let (u, v) = p.basis();
            assert!((u.norm() - 1.0).abs() < 1e-12);
            assert!((v.norm() - 1.0).abs() < 1e-12);
            assert!(u.dot(v).abs() < 1e-12);
            assert!(u.dot(n).abs() < 1e-12);
            assert!(v.dot(n).abs() < 1e-12);
        }
    }
}
