//! 3-component `f64` vector used throughout the workspace.

use std::fmt;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// A point or vector in 3D space.
///
/// Deliberately a plain `Copy` struct of three `f64`s: particle arrays are
/// stored as `Vec<Vec3>` (array-of-structs), which matches the access pattern
/// of cell construction (all three coordinates of a site are consumed
/// together).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// All three components set to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    #[inline]
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.norm2().sqrt()
    }

    /// Euclidean distance to `o`.
    #[inline]
    pub fn dist(self, o: Vec3) -> f64 {
        (self - o).norm()
    }

    /// Squared Euclidean distance to `o` (no sqrt; preferred in hot loops).
    #[inline]
    pub fn dist2(self, o: Vec3) -> f64 {
        (self - o).norm2()
    }

    /// Unit vector in the same direction; `None` for (near-)zero vectors.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n > 0.0 && n.is_finite() {
            Some(self / n)
        } else {
            None
        }
    }

    /// Midpoint of `self` and `o`.
    #[inline]
    pub fn midpoint(self, o: Vec3) -> Vec3 {
        (self + o) * 0.5
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Largest component magnitude (L∞ norm).
    #[inline]
    pub fn max_abs(self) -> f64 {
        self.x.abs().max(self.y.abs()).max(self.z.abs())
    }

    /// `true` iff all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Linear interpolation: `self + t * (o - self)`.
    #[inline]
    pub fn lerp(self, o: Vec3, t: f64) -> Vec3 {
        self + (o - self) * t
    }

    /// Components as an array, for indexed access by dimension.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    #[inline]
    pub fn from_array(a: [f64; 3]) -> Vec3 {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, s: f64) {
        *self = *self * s;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, s: f64) {
        *self = *self / s;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, -5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, -3.0, 9.0));
        assert_eq!(a - b, Vec3::new(-3.0, 7.0, -3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(b.cross(a), Vec3::new(0.0, 0.0, -1.0));
        // cross product is perpendicular to both inputs
        let u = Vec3::new(1.5, -2.0, 0.3);
        let v = Vec3::new(0.7, 4.0, -1.1);
        let c = u.cross(v);
        assert!(c.dot(u).abs() < 1e-12);
        assert!(c.dot(v).abs() < 1e-12);
    }

    #[test]
    fn norms_and_distances() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm2(), 25.0);
        assert_eq!(Vec3::ZERO.dist(v), 5.0);
        assert_eq!(Vec3::ZERO.dist2(v), 25.0);
    }

    #[test]
    fn normalized_handles_zero() {
        assert!(Vec3::ZERO.normalized().is_none());
        let n = Vec3::new(0.0, 0.0, 2.0).normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn midpoint_and_lerp() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.midpoint(b), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(a.lerp(b, 0.25), Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn component_min_max_and_index() {
        let a = Vec3::new(1.0, 5.0, -3.0);
        let b = Vec3::new(2.0, -1.0, 0.0);
        assert_eq!(a.min(b), Vec3::new(1.0, -1.0, -3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 0.0));
        assert_eq!(a[0], 1.0);
        assert_eq!(a[1], 5.0);
        assert_eq!(a[2], -3.0);
        assert_eq!(a.max_abs(), 5.0);
        let mut c = a;
        c[1] = 9.0;
        assert_eq!(c.y, 9.0);
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }
}
