//! Minkowski functionals of cell components (§III-D).
//!
//! For a component (a union of Voronoi cells), the four basic functionals
//! on its boundary surface:
//!
//! * `V0` — volume: sum of member cell volumes,
//! * `V1` — surface area: area of boundary faces (faces whose far side is
//!   not in the component),
//! * `V2` — integrated mean curvature: `½ Σ_edges ℓ (π − θ)` over boundary
//!   edges with interior dihedral angle θ,
//! * `V3` — Euler characteristic of the boundary surface (`V − E + F`),
//!   from which the genus is `1 − χ/2` per closed shell.
//!
//! Derived metrics follow SURFGEN (Sheth et al. 2002, the paper's [21]):
//! thickness `T = 3 V0 / V1`, breadth `B = V1 / V2`, length
//! `L = V2 / 4π`.

use std::collections::{HashMap, HashSet};

use geometry::measures::{dihedral_angle, polygon_area, polygon_normal};
use geometry::{Aabb, Vec3};
use tess::{MeshBlock, NO_NEIGHBOR};

/// Minkowski functionals and derived metrics of one component.
#[derive(Debug, Clone, Copy)]
pub struct Minkowski {
    pub v0_volume: f64,
    pub v1_area: f64,
    pub v2_curvature: f64,
    pub v3_euler: i64,
    pub genus: f64,
    pub thickness: f64,
    pub breadth: f64,
    pub length: f64,
    /// Boundary faces that failed to pair along an edge (diagnostic; should
    /// be 0 for a watertight component).
    pub unmatched_edges: u64,
}

/// Compute the functionals for the component consisting of `sites`.
///
/// `domain` is the periodic box; boundary vertices are wrapped into it so
/// faces meeting across the periodic seam pair up.
pub fn minkowski_functionals(
    blocks: &[MeshBlock],
    sites: &HashSet<u64>,
    domain: &Aabb,
) -> Minkowski {
    let mut v0 = 0.0;
    let mut v1 = 0.0;

    // Quantized-vertex helpers (periodic wrap, then round).
    let quant = |p: Vec3| -> (i64, i64, i64) {
        let w = domain.wrap(p);
        let e = domain.extent();
        // wrap can return exactly the upper edge after rounding; fold it
        let fold = |x: f64, lo: f64, len: f64| {
            let q = ((x - lo) * 1e6).round() as i64;
            let n = (len * 1e6).round() as i64;
            if n > 0 {
                q.rem_euclid(n)
            } else {
                q
            }
        };
        (
            fold(w.x, domain.min.x, e.x),
            fold(w.y, domain.min.y, e.y),
            fold(w.z, domain.min.z, e.z),
        )
    };

    // Boundary edges: edge key → (total length, normals of adjacent faces).
    type EdgeKey = ((i64, i64, i64), (i64, i64, i64));
    let mut edges: HashMap<EdgeKey, (f64, Vec<Vec3>)> = HashMap::new();
    let mut boundary_verts: HashSet<(i64, i64, i64)> = HashSet::new();
    let mut boundary_faces: u64 = 0;

    for b in blocks {
        for c in &b.cells {
            let id = b.site_id_of(c);
            if !sites.contains(&id) {
                continue;
            }
            v0 += c.volume;
            for f in &c.faces {
                let is_boundary = f.neighbor == NO_NEIGHBOR || !sites.contains(&f.neighbor);
                if !is_boundary {
                    continue;
                }
                let pts = b.face_points(f);
                if pts.len() < 3 {
                    continue;
                }
                v1 += polygon_area(&pts);
                boundary_faces += 1;
                let Some(n) = polygon_normal(&pts) else {
                    continue;
                };
                for i in 0..pts.len() {
                    let a = pts[i];
                    let bb = pts[(i + 1) % pts.len()];
                    let (qa, qb) = (quant(a), quant(bb));
                    if qa == qb {
                        continue; // degenerate sliver edge
                    }
                    boundary_verts.insert(qa);
                    boundary_verts.insert(qb);
                    let key = if qa < qb { (qa, qb) } else { (qb, qa) };
                    let entry = edges.entry(key).or_insert((0.0, Vec::new()));
                    entry.0 += a.dist(bb); // counted once per adjacent face
                    entry.1.push(n);
                }
            }
        }
    }

    let mut v2 = 0.0;
    let mut unmatched = 0u64;
    let mut edge_count = 0i64;
    for (len2, normals) in edges.values() {
        edge_count += 1;
        if normals.len() == 2 {
            // each face contributed the length once → halve
            let ell = len2 / 2.0;
            let theta = dihedral_angle(normals[0], normals[1]);
            v2 += 0.5 * ell * (std::f64::consts::PI - theta);
        } else {
            unmatched += 1;
        }
    }

    let euler = boundary_verts.len() as i64 - edge_count + boundary_faces as i64;
    let genus = 1.0 - euler as f64 / 2.0;
    let thickness = if v1 > 0.0 { 3.0 * v0 / v1 } else { 0.0 };
    let breadth = if v2 > 0.0 { v1 / v2 } else { 0.0 };
    let length = v2 / (4.0 * std::f64::consts::PI);

    Minkowski {
        v0_volume: v0,
        v1_area: v1,
        v2_curvature: v2,
        v3_euler: euler,
        genus,
        thickness,
        breadth,
        length,
        unmatched_edges: unmatched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;
    use tess::TessParams;

    fn lattice(n: usize) -> Vec<(u64, geometry::Vec3)> {
        (0..n * n * n)
            .map(|idx| {
                let i = idx % n;
                let j = (idx / n) % n;
                let k = idx / (n * n);
                (
                    idx as u64,
                    Vec3::new(i as f64 + 0.5, j as f64 + 0.5, k as f64 + 0.5),
                )
            })
            .collect()
    }

    fn lattice_tessellation(n: usize) -> Vec<MeshBlock> {
        let (block, _) = tess::tessellate_serial(
            &lattice(n),
            Aabb::cube(n as f64),
            [true; 3],
            &TessParams::default().with_ghost(2.0),
        );
        vec![block]
    }

    #[test]
    fn single_cubic_cell() {
        let blocks = lattice_tessellation(5);
        // component = the single center cell (a unit cube)
        let center = 2 + 5 * (2 + 5 * 2);
        let sites: HashSet<u64> = [center as u64].into_iter().collect();
        let m = minkowski_functionals(&blocks, &sites, &Aabb::cube(5.0));
        assert!((m.v0_volume - 1.0).abs() < 1e-9);
        assert!((m.v1_area - 6.0).abs() < 1e-9);
        // cube: C = π(a+b+c) = 3π
        assert!(
            (m.v2_curvature - 3.0 * PI).abs() < 1e-6,
            "V2 {}",
            m.v2_curvature
        );
        assert_eq!(m.v3_euler, 2);
        assert!(m.genus.abs() < 1e-12);
        assert!((m.thickness - 0.5).abs() < 1e-9); // 3V/S = 3/6
        assert!((m.breadth - 6.0 / (3.0 * PI)).abs() < 1e-6);
        assert!((m.length - 0.75).abs() < 1e-6); // 3π/4π
        assert_eq!(m.unmatched_edges, 0);
    }

    #[test]
    fn two_cell_box() {
        let blocks = lattice_tessellation(5);
        // two x-adjacent center cells → a 2×1×1 box
        let a = 2 + 5 * (2 + 5 * 2);
        let b = 3 + 5 * (2 + 5 * 2);
        let sites: HashSet<u64> = [a as u64, b as u64].into_iter().collect();
        let m = minkowski_functionals(&blocks, &sites, &Aabb::cube(5.0));
        assert!((m.v0_volume - 2.0).abs() < 1e-9);
        assert!((m.v1_area - 10.0).abs() < 1e-9);
        // box: C = π(a+b+c) = π(2+1+1) = 4π
        assert!(
            (m.v2_curvature - 4.0 * PI).abs() < 1e-6,
            "V2 {}",
            m.v2_curvature
        );
        assert_eq!(m.v3_euler, 2);
        assert_eq!(m.unmatched_edges, 0);
    }

    #[test]
    fn l_shaped_component_has_concave_edge() {
        let blocks = lattice_tessellation(5);
        // L-shape: cells (2,2,2), (3,2,2), (2,3,2)
        let id = |x: usize, y: usize, z: usize| (x + 5 * (y + 5 * z)) as u64;
        let sites: HashSet<u64> = [id(2, 2, 2), id(3, 2, 2), id(2, 3, 2)]
            .into_iter()
            .collect();
        let m = minkowski_functionals(&blocks, &sites, &Aabb::cube(5.0));
        assert!((m.v0_volume - 3.0).abs() < 1e-9);
        assert!((m.v1_area - 14.0).abs() < 1e-9);
        // Steiner for polyconvex L-shape: convex edges minus the one
        // re-entrant edge: C = ½[Σ ℓ(π−θ)] — check against direct count:
        // convex edges (θ=π/2): lengths total 19? Instead just require
        // C < sum for 3 separate cubes and > single cube.
        assert!(m.v2_curvature < 3.0 * 3.0 * PI);
        assert!(m.v2_curvature > 3.0 * PI);
        assert_eq!(m.v3_euler, 2, "L-shape boundary is a sphere");
        assert_eq!(m.unmatched_edges, 0);
    }

    #[test]
    fn whole_periodic_box_has_no_boundary() {
        let blocks = lattice_tessellation(4);
        let sites: HashSet<u64> = (0..64u64).collect();
        let m = minkowski_functionals(&blocks, &sites, &Aabb::cube(4.0));
        assert!((m.v0_volume - 64.0).abs() < 1e-6);
        assert_eq!(m.v1_area, 0.0, "no boundary faces in a full periodic box");
        assert_eq!(m.v3_euler, 0);
    }

    #[test]
    fn component_crossing_the_periodic_seam() {
        // cells (0,2,2) and (4,2,2) are adjacent across the x seam in a
        // periodic 5-box: the pair forms a 2×1×1 box
        let blocks = lattice_tessellation(5);
        let id = |x: usize, y: usize, z: usize| (x + 5 * (y + 5 * z)) as u64;
        let sites: HashSet<u64> = [id(0, 2, 2), id(4, 2, 2)].into_iter().collect();
        let m = minkowski_functionals(&blocks, &sites, &Aabb::cube(5.0));
        assert!((m.v0_volume - 2.0).abs() < 1e-9);
        assert!((m.v1_area - 10.0).abs() < 1e-9, "area {}", m.v1_area);
        assert_eq!(m.unmatched_edges, 0, "periodic wrap pairs seam edges");
        assert_eq!(m.v3_euler, 2);
    }
}
