//! Temporal tracking of connected components (voids) across time steps.
//!
//! The paper's §V: "We will also look to tracking temporal evolution of
//! connected components by using the feature tree method of Chen et
//! al. [23]". This module implements the overlap-based core of that
//! method: components at consecutive time steps are matched by the
//! particle (site) ids they share — ids are persistent labels, so no
//! geometric registration is needed — and each feature's fate is
//! classified as continuation, merge, split, birth, or death.

use std::collections::{BTreeMap, BTreeSet};

use crate::components::Components;

/// An overlap edge between a component at time A and one at time B.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Overlap {
    pub label_a: u64,
    pub label_b: u64,
    /// Sites present in both components.
    pub shared: u64,
    /// Jaccard index `|A∩B| / |A∪B|`.
    pub jaccard: f64,
}

/// The fate of features between two snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// One-to-one match.
    Continue { from: u64, to: u64 },
    /// Several earlier components merged into one.
    Merge { from: Vec<u64>, to: u64 },
    /// One earlier component split into several.
    Split { from: u64, to: Vec<u64> },
    /// A component with no predecessor.
    Birth { to: u64 },
    /// A component with no successor.
    Death { from: u64 },
}

/// Compute all overlap edges between two labelings with at least
/// `min_shared` shared sites.
pub fn overlaps(a: &Components, b: &Components, min_shared: u64) -> Vec<Overlap> {
    // site -> label maps are already in Components::labels
    let mut pair_counts: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for (site, &la) in &a.labels {
        if let Some(&lb) = b.labels.get(site) {
            *pair_counts.entry((la, lb)).or_insert(0) += 1;
        }
    }
    let size_a: BTreeMap<u64, u64> = a.summaries.iter().map(|(&l, s)| (l, s.cells)).collect();
    let size_b: BTreeMap<u64, u64> = b.summaries.iter().map(|(&l, s)| (l, s.cells)).collect();
    pair_counts
        .into_iter()
        .filter(|&(_, shared)| shared >= min_shared)
        .map(|((la, lb), shared)| {
            let union = size_a.get(&la).copied().unwrap_or(0)
                + size_b.get(&lb).copied().unwrap_or(0)
                - shared;
            Overlap {
                label_a: la,
                label_b: lb,
                shared,
                jaccard: if union > 0 {
                    shared as f64 / union as f64
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// Classify the events between two snapshots from their overlap edges.
pub fn classify_events(a: &Components, b: &Components, min_shared: u64) -> Vec<Event> {
    let edges = overlaps(a, b, min_shared);
    let mut succ: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    let mut pred: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    for e in &edges {
        succ.entry(e.label_a).or_default().insert(e.label_b);
        pred.entry(e.label_b).or_default().insert(e.label_a);
    }

    let mut events = Vec::new();
    // births & merges & continues, in B-label order
    for &lb in b.summaries.keys() {
        match pred.get(&lb) {
            None => events.push(Event::Birth { to: lb }),
            Some(ps) if ps.len() == 1 => {
                let from = *ps.iter().next().expect("one");
                // only a Continue if the predecessor maps solely here
                if succ.get(&from).map(|s| s.len()) == Some(1) {
                    events.push(Event::Continue { from, to: lb });
                }
                // otherwise handled below as part of a Split
            }
            Some(ps) => events.push(Event::Merge {
                from: ps.iter().copied().collect(),
                to: lb,
            }),
        }
    }
    // splits & deaths, in A-label order
    for &la in a.summaries.keys() {
        match succ.get(&la) {
            None => events.push(Event::Death { from: la }),
            Some(ss) if ss.len() > 1 => events.push(Event::Split {
                from: la,
                to: ss.iter().copied().collect(),
            }),
            _ => {}
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::ComponentSummary;

    /// Build a Components value from (label, sites) groups.
    fn comps(groups: &[(u64, &[u64])]) -> Components {
        let mut c = Components::default();
        for &(label, sites) in groups {
            for &s in sites {
                c.labels.insert(s, label);
            }
            c.summaries.insert(
                label,
                ComponentSummary {
                    cells: sites.len() as u64,
                    volume: sites.len() as f64,
                    area: 0.0,
                },
            );
        }
        c
    }

    #[test]
    fn continuation_is_tracked() {
        let a = comps(&[(0, &[0, 1, 2, 3])]);
        let b = comps(&[(1, &[1, 2, 3, 4])]);
        let ov = overlaps(&a, &b, 1);
        assert_eq!(ov.len(), 1);
        assert_eq!(ov[0].shared, 3);
        assert!((ov[0].jaccard - 3.0 / 5.0).abs() < 1e-12);
        let ev = classify_events(&a, &b, 1);
        assert_eq!(ev, vec![Event::Continue { from: 0, to: 1 }]);
    }

    #[test]
    fn merge_and_split() {
        // two voids at t1 merge into one at t2
        let a = comps(&[(0, &[0, 1, 2]), (10, &[10, 11, 12])]);
        let b = comps(&[(0, &[0, 1, 2, 10, 11, 12])]);
        let ev = classify_events(&a, &b, 1);
        assert!(ev.contains(&Event::Merge {
            from: vec![0, 10],
            to: 0
        }));

        // and the reverse is a split
        let ev = classify_events(&b, &a, 1);
        assert!(ev.contains(&Event::Split {
            from: 0,
            to: vec![0, 10]
        }));
    }

    #[test]
    fn birth_and_death() {
        let a = comps(&[(0, &[0, 1])]);
        let b = comps(&[(5, &[5, 6])]);
        let ev = classify_events(&a, &b, 1);
        assert!(ev.contains(&Event::Birth { to: 5 }));
        assert!(ev.contains(&Event::Death { from: 0 }));
        assert_eq!(ev.len(), 2);
    }

    #[test]
    fn min_shared_suppresses_weak_links() {
        let a = comps(&[(0, &[0, 1, 2, 3, 4])]);
        let b = comps(&[(1, &[4, 10, 11, 12])]); // only 1 shared site
        let ev = classify_events(&a, &b, 2);
        assert!(ev.contains(&Event::Death { from: 0 }));
        assert!(ev.contains(&Event::Birth { to: 1 }));
        let ev = classify_events(&a, &b, 1);
        assert_eq!(ev, vec![Event::Continue { from: 0, to: 1 }]);
    }

    #[test]
    fn real_tessellation_voids_track_over_time() {
        // the same clustered point set, slightly perturbed: the big void
        // components must continue rather than die
        use geometry::{Aabb, Vec3};
        // A coarse lattice (cells of volume 8) whose whole tessellation is
        // one component above threshold 4; a slightly shifted snapshot must
        // track to it as a continuation.
        let make = |shift: f64| {
            let mut particles = Vec::new();
            let mut id = 0u64;
            for i in 0..6 {
                for j in 0..6 {
                    for k in 0..6 {
                        let p = Vec3::new(
                            (i as f64 * 2.0 + 1.0 + shift).rem_euclid(12.0),
                            j as f64 * 2.0 + 1.0,
                            k as f64 * 2.0 + 1.0,
                        );
                        particles.push((id, p));
                        id += 1;
                    }
                }
            }
            let (block, _) = tess::tessellate_serial(
                &particles,
                Aabb::cube(12.0),
                [true; 3],
                &tess::TessParams::default().with_ghost(6.0),
            );
            crate::components::label_components_serial(&[block], 4.0)
        };
        let a = make(0.0);
        let b = make(0.05);
        assert!(a.num_components() >= 1);
        let ev = classify_events(&a, &b, 1);
        assert!(
            ev.iter().any(|e| matches!(
                e,
                Event::Continue { .. } | Event::Merge { .. } | Event::Split { .. }
            )),
            "{ev:?}"
        );
        assert!(
            !ev.iter().any(|e| matches!(e, Event::Death { .. })),
            "{ev:?}"
        );
    }
}
