//! Volume-threshold filtering of tessellation cells (§IV-B, Figure 9).

use tess::MeshBlock;

/// A volume range filter: cells survive when `min <= volume <= max`.
#[derive(Debug, Clone, Copy)]
pub struct VolumeFilter {
    pub min: f64,
    pub max: f64,
}

impl VolumeFilter {
    /// Keep cells with volume at least `min` (the void-finding direction).
    pub fn at_least(min: f64) -> Self {
        VolumeFilter {
            min,
            max: f64::INFINITY,
        }
    }

    /// Keep cells within `[min, max]`.
    pub fn range(min: f64, max: f64) -> Self {
        assert!(max >= min);
        VolumeFilter { min, max }
    }

    pub fn keeps(&self, volume: f64) -> bool {
        volume >= self.min && volume <= self.max
    }

    /// Indices of surviving cells in one block.
    pub fn filter_block(&self, block: &MeshBlock) -> Vec<usize> {
        block
            .cells
            .iter()
            .enumerate()
            .filter(|(_, c)| self.keeps(c.volume))
            .map(|(i, _)| i)
            .collect()
    }

    /// Global site ids of surviving cells across blocks.
    pub fn surviving_sites(&self, blocks: &[MeshBlock]) -> Vec<u64> {
        let mut out = Vec::new();
        for b in blocks {
            for c in &b.cells {
                if self.keeps(c.volume) {
                    out.push(b.site_id_of(c));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// The volume threshold that keeps only the largest `fraction` of the
    /// observed volume *range* (the paper's "10% volume threshold" keeps
    /// cells above 10% of the range).
    pub fn fraction_of_range(blocks: &[MeshBlock], fraction: f64) -> Self {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for b in blocks {
            for c in &b.cells {
                lo = lo.min(c.volume);
                hi = hi.max(c.volume);
            }
        }
        if !(lo.is_finite() && hi > lo) {
            return VolumeFilter::at_least(0.0);
        }
        VolumeFilter::at_least(lo + fraction * (hi - lo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::{Aabb, Vec3};
    use tess::{Cell, MeshBlock};

    fn block_with_volumes(vols: &[f64]) -> MeshBlock {
        let mut b = MeshBlock::empty(0, Aabb::cube(1.0));
        for (i, &v) in vols.iter().enumerate() {
            b.particles.push(Vec3::splat(0.5));
            b.site_ids.push(i as u64);
            b.cells.push(Cell {
                site_idx: i as u32,
                volume: v,
                area: 1.0,
                complete: true,
                faces: vec![],
            });
        }
        b
    }

    #[test]
    fn at_least_keeps_large_cells() {
        let b = block_with_volumes(&[0.1, 0.5, 1.5, 2.0]);
        let f = VolumeFilter::at_least(0.5);
        assert_eq!(f.filter_block(&b), vec![1, 2, 3]);
        assert_eq!(f.surviving_sites(&[b]), vec![1, 2, 3]);
    }

    #[test]
    fn range_filter() {
        let b = block_with_volumes(&[0.1, 0.5, 1.5, 2.0]);
        let f = VolumeFilter::range(0.2, 1.6);
        assert_eq!(f.filter_block(&b), vec![1, 2]);
        assert!(!f.keeps(0.19));
        assert!(f.keeps(1.6));
    }

    #[test]
    fn fraction_of_range_matches_paper_semantics() {
        // range [0, 2]: a 10% threshold cuts at 0.2
        let b = block_with_volumes(&[0.0, 0.1, 0.2, 1.0, 2.0]);
        let f = VolumeFilter::fraction_of_range(std::slice::from_ref(&b), 0.1);
        assert!((f.min - 0.2).abs() < 1e-12);
        assert_eq!(f.filter_block(&b), vec![2, 3, 4]);
    }

    #[test]
    fn degenerate_blocks_do_not_panic() {
        let empty = MeshBlock::empty(0, Aabb::cube(1.0));
        let f = VolumeFilter::fraction_of_range(std::slice::from_ref(&empty), 0.1);
        assert_eq!(f.filter_block(&empty), Vec::<usize>::new());
    }
}
