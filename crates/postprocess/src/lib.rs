//! Postprocessing tools — the ParaView cosmology-tools plugin, as a library.
//!
//! The paper's plugin (§III-D, Figure 7) provides four functions, all
//! reimplemented here:
//!
//! 1. **parallel reading** of the tess output file (via [`tess::io`]),
//! 2. **threshold filtering** of cells by volume ([`threshold`]),
//! 3. **connected-component labeling** of the surviving cells — the void
//!    finder ([`components`], serial and distributed),
//! 4. **Minkowski functionals** of each component: volume, surface area,
//!    integrated mean curvature, Euler characteristic/genus, plus the
//!    derived thickness/breadth/length ([`minkowski`]).
//!
//! It also provides the statistical machinery behind Figures 8 and 11
//! ([`histogram`], [`density`]) and a small SVG renderer ([`render`])
//! standing in for the interactive views of Figures 1 and 9.

pub mod components;
pub mod density;
pub mod histogram;
pub mod minkowski;
pub mod render;
pub mod threshold;
pub mod tracking;

pub use components::{label_components_serial, ComponentSummary, Components};
pub use density::{density_contrast, DensityField};
/// Streaming mergeable log-bucket histogram (no fixed range needed up
/// front) — re-exported from `diy` for postprocessing pipelines whose
/// sample range is unknown, alongside the fixed-range [`Histogram`].
pub use diy::hist::LogHistogram;
pub use histogram::Histogram;
pub use minkowski::{minkowski_functionals, Minkowski};
pub use threshold::VolumeFilter;
