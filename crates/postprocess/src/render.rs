//! Minimal SVG rendering of tessellations (stands in for Figures 1 and 9).
//!
//! Orthographic projection onto the x–y plane with painter's-order depth
//! sorting along z, faces colored by cell volume on a blue→red ramp.

use geometry::Vec3;
use tess::MeshBlock;

/// Rendering options.
#[derive(Debug, Clone, Copy)]
pub struct RenderOptions {
    /// Output image width in pixels (height scales with the domain).
    pub width: f64,
    /// Only draw cells with volume in `[vmin, vmax]`.
    pub vmin: f64,
    pub vmax: f64,
    /// Face fill opacity.
    pub opacity: f64,
    /// Only draw cells whose site z-coordinate lies in `[zmin, zmax)`
    /// (a slab view, like the paper's figures). Full depth by default.
    pub zmin: f64,
    pub zmax: f64,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            width: 800.0,
            vmin: 0.0,
            vmax: f64::INFINITY,
            opacity: 0.55,
            zmin: f64::NEG_INFINITY,
            zmax: f64::INFINITY,
        }
    }
}

/// Map a volume to a blue→red color given the observed volume range.
fn color(volume: f64, lo: f64, hi: f64) -> String {
    let t = if hi > lo {
        ((volume - lo) / (hi - lo)).clamp(0.0, 1.0)
    } else {
        0.5
    };
    let r = (40.0 + 200.0 * t) as u8;
    let g = (60.0 + 60.0 * (1.0 - (2.0 * t - 1.0).abs())) as u8;
    let b = (220.0 - 180.0 * t) as u8;
    format!("rgb({r},{g},{b})")
}

/// Render blocks to an SVG string.
pub fn render_svg(blocks: &[MeshBlock], opts: &RenderOptions) -> String {
    // Domain extent across blocks.
    let mut lo = Vec3::splat(f64::INFINITY);
    let mut hi = Vec3::splat(f64::NEG_INFINITY);
    for b in blocks {
        lo = lo.min(b.bounds.min);
        hi = hi.max(b.bounds.max);
    }
    if !lo.is_finite() || !hi.is_finite() {
        lo = Vec3::ZERO;
        hi = Vec3::ONE;
    }
    let extent = hi - lo;
    let scale = opts.width / extent.x.max(1e-12);
    let height = extent.y * scale;

    // Observed volume range for the color ramp.
    let mut vlo = f64::INFINITY;
    let mut vhi = f64::NEG_INFINITY;
    for b in blocks {
        for c in &b.cells {
            vlo = vlo.min(c.volume);
            vhi = vhi.max(c.volume);
        }
    }

    // Collect faces with depth keys.
    struct DrawFace {
        depth: f64,
        path: String,
        fill: String,
    }
    let mut faces: Vec<DrawFace> = Vec::new();
    for b in blocks {
        for c in &b.cells {
            if c.volume < opts.vmin || c.volume > opts.vmax {
                continue;
            }
            let z = b.site_of(c).z;
            if z < opts.zmin || z >= opts.zmax {
                continue;
            }
            let fill = color(c.volume, vlo, vhi);
            for f in &c.faces {
                let pts = b.face_points(f);
                if pts.len() < 3 {
                    continue;
                }
                let depth: f64 = pts.iter().map(|p| p.z).sum::<f64>() / pts.len() as f64;
                let mut path = String::with_capacity(pts.len() * 16);
                for (i, p) in pts.iter().enumerate() {
                    let x = (p.x - lo.x) * scale;
                    let y = height - (p.y - lo.y) * scale;
                    path.push(if i == 0 { 'M' } else { 'L' });
                    path.push_str(&format!("{x:.2} {y:.2} "));
                }
                path.push('Z');
                faces.push(DrawFace {
                    depth,
                    path,
                    fill: fill.clone(),
                });
            }
        }
    }
    faces.sort_by(|a, b| {
        a.depth
            .partial_cmp(&b.depth)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut svg = String::with_capacity(faces.len() * 96 + 512);
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" \
         viewBox=\"0 0 {:.0} {:.0}\">\n<rect width=\"100%\" height=\"100%\" fill=\"#0b0b16\"/>\n",
        opts.width, height, opts.width, height
    ));
    for f in &faces {
        svg.push_str(&format!(
            "<path d=\"{}\" fill=\"{}\" fill-opacity=\"{}\" stroke=\"#111122\" stroke-width=\"0.4\"/>\n",
            f.path, f.fill, opts.opacity
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

/// Render and write to a file.
pub fn render_to_file(
    blocks: &[MeshBlock],
    opts: &RenderOptions,
    path: &std::path::Path,
) -> std::io::Result<()> {
    std::fs::write(path, render_svg(blocks, opts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::Aabb;
    use tess::TessParams;

    fn small_tessellation() -> Vec<MeshBlock> {
        let particles: Vec<(u64, Vec3)> = (0..27)
            .map(|i| {
                let x = i % 3;
                let y = (i / 3) % 3;
                let z = i / 9;
                (
                    i as u64,
                    Vec3::new(x as f64 + 0.5, y as f64 + 0.5, z as f64 + 0.5),
                )
            })
            .collect();
        let (b, _) = tess::tessellate_serial(
            &particles,
            Aabb::cube(3.0),
            [true; 3],
            &TessParams::default().with_ghost(1.5),
        );
        vec![b]
    }

    #[test]
    fn svg_is_well_formed_and_nonempty() {
        let blocks = small_tessellation();
        let svg = render_svg(&blocks, &RenderOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.matches("<path").count() >= 27 * 6);
    }

    #[test]
    fn slab_filter_reduces_faces() {
        let blocks = small_tessellation();
        let all = render_svg(&blocks, &RenderOptions::default());
        let slab = render_svg(
            &blocks,
            &RenderOptions {
                zmin: 0.0,
                zmax: 1.0,
                ..RenderOptions::default()
            },
        );
        let n_all = all.matches("<path").count();
        let n_slab = slab.matches("<path").count();
        assert!(n_slab > 0 && n_slab < n_all, "{n_slab} vs {n_all}");
    }

    #[test]
    fn volume_filter_reduces_faces() {
        let blocks = small_tessellation();
        let all = render_svg(&blocks, &RenderOptions::default());
        let none = render_svg(
            &blocks,
            &RenderOptions {
                vmin: 100.0,
                ..RenderOptions::default()
            },
        );
        assert!(all.matches("<path").count() > none.matches("<path").count());
        assert_eq!(none.matches("<path").count(), 0);
    }

    #[test]
    fn color_ramp_endpoints() {
        assert_eq!(color(0.0, 0.0, 1.0), "rgb(40,60,220)");
        assert_eq!(color(1.0, 0.0, 1.0), "rgb(240,60,40)");
        // degenerate range falls back to midpoint
        assert_eq!(color(5.0, 5.0, 5.0), color(0.5, 0.0, 1.0));
    }

    #[test]
    fn render_to_file_writes() {
        let dir = std::env::temp_dir().join("tess-render-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.svg");
        render_to_file(&small_tessellation(), &RenderOptions::default(), &path).unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.contains("<svg"));
    }
}
