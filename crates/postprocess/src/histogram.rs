//! Histograms with the summary statistics the paper reports.
//!
//! Figures 8 and 11 annotate each histogram with bin count, range, bin
//! width, skewness, and kurtosis. Skewness is the standardized third
//! moment; kurtosis is the standardized fourth moment in Pearson's
//! convention (a normal distribution scores 3, not 0).

/// A fixed-range histogram over `f64` samples.
///
/// ```
/// use postprocess::Histogram;
///
/// let h = Histogram::from_samples([0.05, 0.07, 0.1, 0.9], 0.0, 1.0, 10);
/// assert_eq!(h.n(), 4);
/// assert_eq!(h.counts[0], 2);     // 0.05, 0.07
/// assert!(h.skewness() > 0.0);    // mass near zero, tail to the right
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    pub lo: f64,
    pub hi: f64,
    pub counts: Vec<u64>,
    /// Samples outside `[lo, hi]`.
    pub outliers: u64,
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
}

impl Histogram {
    /// Build from samples with `nbins` equal bins over `[lo, hi]`.
    ///
    /// Degenerate specs are repaired instead of panicking: `nbins == 0`
    /// becomes one bin, and a zero-width or inverted or non-finite range
    /// falls back to a half-unit band around `lo` (or `[0, 1]` when even
    /// `lo` is unusable).
    pub fn from_samples(
        samples: impl IntoIterator<Item = f64>,
        lo: f64,
        hi: f64,
        nbins: usize,
    ) -> Self {
        let nbins = nbins.max(1);
        let (lo, hi) = if lo.is_finite() && hi.is_finite() && hi > lo {
            (lo, hi)
        } else if lo.is_finite() {
            (lo - 0.5, lo + 0.5)
        } else {
            (0.0, 1.0)
        };
        let mut h = Histogram {
            lo,
            hi,
            counts: vec![0; nbins],
            outliers: 0,
            n: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            m4: 0.0,
        };
        for s in samples {
            h.push(s);
        }
        h
    }

    /// Build with the range taken from the samples themselves (the paper's
    /// figures annotate the observed range). Non-finite samples do not
    /// influence the range; a single distinct value gets a unit-wide band
    /// centered on it so the sample still bins.
    pub fn auto_range(samples: &[f64], nbins: usize) -> Self {
        let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let (lo, hi) = if lo.is_finite() && hi > lo {
            (lo, hi)
        } else if lo.is_finite() {
            // all samples equal: center the band on the one value
            (lo - 0.5, lo + 0.5)
        } else {
            (0.0, 1.0)
        };
        Self::from_samples(samples.iter().copied(), lo, hi, nbins)
    }

    /// Add one sample (updates moments streaming-style). Non-finite
    /// samples count as outliers and are excluded from the moments —
    /// one NaN must not poison every summary statistic.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            self.outliers += 1;
            return;
        }
        // Welford-style update of central moments (Pébay's formulas).
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;

        if x < self.lo || x > self.hi {
            self.outliers += 1;
            return;
        }
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let mut b = ((x - self.lo) / w) as usize;
        if b >= self.counts.len() {
            b = self.counts.len() - 1; // x == hi
        }
        self.counts[b] += 1;
    }

    pub fn n(&self) -> u64 {
        self.n
    }

    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standardized third moment.
    pub fn skewness(&self) -> f64 {
        let n = self.n as f64;
        if self.n < 2 || self.m2 <= 0.0 {
            return 0.0;
        }
        (self.m3 / n) / (self.m2 / n).powf(1.5)
    }

    /// Standardized fourth moment (Pearson: normal = 3).
    pub fn kurtosis(&self) -> f64 {
        let n = self.n as f64;
        if self.n < 2 || self.m2 <= 0.0 {
            return 0.0;
        }
        (self.m4 / n) / (self.m2 / n).powi(2)
    }

    /// Fraction of in-range samples falling in the lowest `frac` of the
    /// range (the paper: "75% of the cells are in the smallest 10% of the
    /// volume range").
    pub fn fraction_below(&self, frac: f64) -> f64 {
        let cut = (self.counts.len() as f64 * frac).ceil() as usize;
        let below: u64 = self.counts[..cut.min(self.counts.len())].iter().sum();
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            0.0
        } else {
            below as f64 / total as f64
        }
    }

    /// Render rows of `bin_center value` for plotting / EXPERIMENTS.md.
    pub fn rows(&self) -> Vec<(f64, u64)> {
        let w = self.bin_width();
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * w, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn counts_and_bins() {
        let h = Histogram::from_samples([0.05, 0.15, 0.15, 0.95, 1.0], 0.0, 1.0, 10);
        assert_eq!(h.n(), 5);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[1], 2);
        assert_eq!(h.counts[9], 2); // 0.95 and the hi edge 1.0
        assert_eq!(h.outliers, 0);
        assert!((h.bin_width() - 0.1).abs() < 1e-15);
    }

    #[test]
    fn outliers_counted_but_not_binned() {
        let h = Histogram::from_samples([-1.0, 0.5, 2.0], 0.0, 1.0, 4);
        assert_eq!(h.outliers, 2);
        assert_eq!(h.counts.iter().sum::<u64>(), 1);
        assert_eq!(h.n(), 3); // moments still include everything
    }

    #[test]
    fn moments_of_known_distributions() {
        // symmetric uniform: skewness 0, kurtosis 9/5
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let samples: Vec<f64> = (0..200_000).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let h = Histogram::from_samples(samples.iter().copied(), -1.0, 1.0, 50);
        assert!(h.mean().abs() < 0.01);
        assert!((h.variance() - 1.0 / 3.0).abs() < 0.01);
        assert!(h.skewness().abs() < 0.03);
        assert!(
            (h.kurtosis() - 1.8).abs() < 0.05,
            "kurtosis {}",
            h.kurtosis()
        );
    }

    #[test]
    fn gaussian_kurtosis_is_three() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let samples: Vec<f64> = (0..200_000)
            .map(|_| {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect();
        let h = Histogram::auto_range(&samples, 100);
        assert!(h.skewness().abs() < 0.05);
        assert!(
            (h.kurtosis() - 3.0).abs() < 0.1,
            "kurtosis {}",
            h.kurtosis()
        );
    }

    #[test]
    fn skewed_distribution_has_positive_skewness() {
        // exponential-ish: x = -ln(u): skewness 2, kurtosis 9
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let samples: Vec<f64> = (0..100_000)
            .map(|_| -(rng.gen_range(f64::EPSILON..1.0f64)).ln())
            .collect();
        let h = Histogram::auto_range(&samples, 100);
        assert!((h.skewness() - 2.0).abs() < 0.2, "skew {}", h.skewness());
        assert!((h.kurtosis() - 9.0).abs() < 1.0, "kurt {}", h.kurtosis());
    }

    #[test]
    fn fraction_below_matches_paper_style_query() {
        // 75 samples near zero, 25 spread high
        let mut samples = vec![0.01; 75];
        samples.extend((0..25).map(|i| 0.2 + 0.03 * i as f64));
        let h = Histogram::from_samples(samples.iter().copied(), 0.0, 1.0, 100);
        assert!((h.fraction_below(0.1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn rows_cover_the_range() {
        let h = Histogram::from_samples([0.5], 0.0, 1.0, 4);
        let rows = h.rows();
        assert_eq!(rows.len(), 4);
        assert!((rows[0].0 - 0.125).abs() < 1e-15);
        assert!((rows[3].0 - 0.875).abs() < 1e-15);
        assert_eq!(rows[2].1, 1);
    }

    #[test]
    fn auto_range_handles_degenerate_input() {
        let h = Histogram::auto_range(&[5.0, 5.0, 5.0], 10);
        // degenerate range falls back without panicking, and the repaired
        // band actually bins the repeated value
        assert_eq!(h.n(), 3);
        assert_eq!(h.counts.iter().sum::<u64>(), 3);
        assert_eq!(h.outliers, 0);
        let h = Histogram::auto_range(&[], 10);
        assert_eq!(h.n(), 0);
        assert_eq!(h.skewness(), 0.0);
    }

    #[test]
    fn zero_width_and_zero_bin_specs_are_repaired() {
        // hi == lo, inverted range, zero bins: no panics, samples land
        let h = Histogram::from_samples([2.0, 2.0], 2.0, 2.0, 0);
        assert_eq!(h.n(), 2);
        assert_eq!(h.counts.len(), 1);
        assert_eq!(h.counts[0], 2);
        let h = Histogram::from_samples([0.5], 1.0, 0.0, 4);
        assert_eq!(h.n(), 1);
        let h = Histogram::from_samples([0.5], f64::NAN, f64::NAN, 4);
        assert_eq!((h.lo, h.hi), (0.0, 1.0));
        assert_eq!(h.counts[2], 1);
    }

    #[test]
    fn non_finite_samples_become_outliers_without_poisoning_moments() {
        let h = Histogram::from_samples(
            [0.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.5],
            0.0,
            1.0,
            4,
        );
        assert_eq!(h.n(), 2, "only finite samples enter the moments");
        assert_eq!(h.outliers, 3);
        assert!((h.mean() - 0.5).abs() < 1e-15);
        assert!(h.skewness().is_finite());
        assert!(h.kurtosis().is_finite());
        assert_eq!(h.counts[2], 2);
    }

    #[test]
    fn single_sample_input_is_well_defined() {
        let h = Histogram::auto_range(&[7.25], 8);
        assert_eq!(h.n(), 1);
        assert_eq!(h.counts.iter().sum::<u64>(), 1);
        assert_eq!(h.variance(), 0.0);
        assert_eq!(h.skewness(), 0.0);
        assert_eq!(h.kurtosis(), 0.0);
    }
}
