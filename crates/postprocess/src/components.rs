//! Connected-component labeling of Voronoi cells — the void finder.
//!
//! Cells that survive the volume threshold are joined into components along
//! shared faces: every cell face records the global id of the site on its
//! far side, so the adjacency graph needs no extra geometry. Components of
//! large cells are the paper's cosmological voids (§IV-B, Figure 9).
//!
//! Two implementations:
//! * [`label_components_serial`] — union-find over in-memory blocks.
//! * [`label_components_parallel`] — distributed iterative min-label
//!   propagation: each round, cells adjacent to remote cells exchange
//!   labels with neighboring blocks; repeat until a global fixed point
//!   (this is the paper's future-work item "label connected components
//!   automatically in situ").

use std::collections::{BTreeMap, HashMap, HashSet};

use diy::codec::{CodecError, Decode, Encode, Reader};
use diy::comm::World;
use diy::decomposition::{Assignment, Decomposition};
use diy::exchange::NeighborExchange;
use tess::{MeshBlock, NO_NEIGHBOR};

/// Aggregate description of one component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentSummary {
    pub cells: u64,
    pub volume: f64,
    pub area: f64,
}

impl Encode for ComponentSummary {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.cells.encode(buf);
        self.volume.encode(buf);
        self.area.encode(buf);
    }
}

impl Decode for ComponentSummary {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ComponentSummary {
            cells: u64::decode(r)?,
            volume: f64::decode(r)?,
            area: f64::decode(r)?,
        })
    }
}

/// Labeling result. Labels are the minimum site id in the component.
#[derive(Debug, Clone, Default)]
pub struct Components {
    /// site id → component label (sites known to this rank only).
    pub labels: BTreeMap<u64, u64>,
    /// component label → summary (global).
    pub summaries: BTreeMap<u64, ComponentSummary>,
}

impl Components {
    pub fn num_components(&self) -> usize {
        self.summaries.len()
    }

    /// Components sorted by decreasing volume.
    pub fn by_volume(&self) -> Vec<(u64, ComponentSummary)> {
        let mut v: Vec<(u64, ComponentSummary)> =
            self.summaries.iter().map(|(&l, &s)| (l, s)).collect();
        v.sort_by(|a, b| b.1.volume.partial_cmp(&a.1.volume).unwrap());
        v
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            // hook the larger root under the smaller so the final label is
            // the minimum id in the component
            if ra < rb {
                self.parent[rb] = ra;
            } else {
                self.parent[ra] = rb;
            }
        }
    }
}

/// Serial labeling over in-memory blocks, considering only cells whose
/// volume is at least `min_volume`.
pub fn label_components_serial(blocks: &[MeshBlock], min_volume: f64) -> Components {
    // Index kept sites.
    let mut site_index: HashMap<u64, usize> = HashMap::new();
    let mut sites: Vec<u64> = Vec::new();
    let mut volumes: Vec<f64> = Vec::new();
    let mut areas: Vec<f64> = Vec::new();
    for b in blocks {
        for c in &b.cells {
            if c.volume >= min_volume {
                let id = b.site_id_of(c);
                site_index.insert(id, sites.len());
                sites.push(id);
                volumes.push(c.volume);
                areas.push(c.area);
            }
        }
    }

    let mut uf = UnionFind::new(sites.len());
    for b in blocks {
        for c in &b.cells {
            if c.volume < min_volume {
                continue;
            }
            let me = site_index[&b.site_id_of(c)];
            for f in &c.faces {
                if f.neighbor == NO_NEIGHBOR {
                    continue;
                }
                if let Some(&other) = site_index.get(&f.neighbor) {
                    uf.union(me, other);
                }
            }
        }
    }

    let mut out = Components::default();
    // Roots are indices in insertion order, not site ids; compute each
    // root's minimum site id to get the canonical label.
    let mut root_label: HashMap<usize, u64> = HashMap::new();
    for (i, &site) in sites.iter().enumerate() {
        let r = uf.find(i);
        let e = root_label.entry(r).or_insert(u64::MAX);
        *e = (*e).min(site);
    }
    for i in 0..sites.len() {
        let r = uf.find(i);
        let label = root_label[&r];
        out.labels.insert(sites[i], label);
        let s = out.summaries.entry(label).or_insert(ComponentSummary {
            cells: 0,
            volume: 0.0,
            area: 0.0,
        });
        s.cells += 1;
        s.volume += volumes[i];
        s.area += areas[i];
    }
    out
}

/// Distributed labeling (collective). `local` maps owned block gid → block.
/// Returns labels for local sites plus global summaries (identical on every
/// rank).
pub fn label_components_parallel(
    world: &mut World,
    dec: &Decomposition,
    asn: &Assignment,
    local: &BTreeMap<u64, MeshBlock>,
    min_volume: f64,
) -> Components {
    // Local structures: site → (label, volume, area, remote-adjacent?)
    struct CellInfo {
        label: u64,
        volume: f64,
        area: f64,
        neighbors: Vec<u64>,
    }
    let mut cells: HashMap<u64, CellInfo> = HashMap::new();
    let mut kept: HashSet<u64> = HashSet::new();
    for b in local.values() {
        for c in &b.cells {
            if c.volume >= min_volume {
                kept.insert(b.site_id_of(c));
            }
        }
    }
    for b in local.values() {
        for c in &b.cells {
            if c.volume < min_volume {
                continue;
            }
            let id = b.site_id_of(c);
            let neighbors: Vec<u64> = c
                .faces
                .iter()
                .map(|f| f.neighbor)
                .filter(|&n| n != NO_NEIGHBOR)
                .collect();
            cells.insert(
                id,
                CellInfo {
                    label: id,
                    volume: c.volume,
                    area: c.area,
                    neighbors,
                },
            );
        }
    }

    // Local propagation to a fixed point (equivalent to local union-find).
    let local_sweep = |cells: &mut HashMap<u64, CellInfo>| -> bool {
        let mut changed = false;
        loop {
            let mut round = false;
            let snapshot: Vec<(u64, Vec<u64>, u64)> = cells
                .iter()
                .map(|(&id, c)| (id, c.neighbors.clone(), c.label))
                .collect();
            for (id, neighbors, label) in snapshot {
                let mut best = label;
                for n in &neighbors {
                    if let Some(nc) = cells.get(n) {
                        best = best.min(nc.label);
                    }
                }
                if best < label {
                    cells.get_mut(&id).expect("exists").label = best;
                    round = true;
                }
                // push my label to local neighbors too
                for n in neighbors {
                    if let Some(nc) = cells.get_mut(&n) {
                        if best < nc.label {
                            nc.label = best;
                            round = true;
                        }
                    }
                }
            }
            if !round {
                break;
            }
            changed = true;
        }
        changed
    };
    local_sweep(&mut cells);

    // Iterative boundary exchange: cells with remote neighbors broadcast
    // (remote_site, my_label) to all neighboring blocks; owners apply min.
    let ex = NeighborExchange::new(dec, asn);
    let owned_gids: Vec<u64> = local.keys().copied().collect();
    loop {
        let mut outgoing: Vec<(u64, (u64, u64))> = Vec::new();
        for (&id, c) in &cells {
            for &n in &c.neighbors {
                if !cells.contains_key(&n) && !kept.contains(&n) {
                    // remote (or not kept anywhere — the owner will ignore)
                    for &gid in &owned_gids {
                        for link in dec.neighbors(gid) {
                            outgoing.push((link.gid, (n, c.label)));
                        }
                    }
                    let _ = id;
                }
            }
        }
        // dedup to keep message volume sane
        outgoing.sort_unstable();
        outgoing.dedup();

        let incoming = ex.exchange(world, outgoing);
        let mut changed = false;
        for (_, items) in incoming {
            for (site, label) in items {
                if let Some(c) = cells.get_mut(&site) {
                    if label < c.label {
                        c.label = label;
                        changed = true;
                    }
                }
            }
        }
        if changed {
            local_sweep(&mut cells);
        }
        let any_changed = world.all_reduce(changed as u64, |a, b| a.max(b));
        if any_changed == 0 {
            break;
        }
    }

    // Global summaries by merging per-rank partials.
    let partial: Vec<(u64, ComponentSummary)> = {
        let mut m: BTreeMap<u64, ComponentSummary> = BTreeMap::new();
        for c in cells.values() {
            let s = m.entry(c.label).or_insert(ComponentSummary {
                cells: 0,
                volume: 0.0,
                area: 0.0,
            });
            s.cells += 1;
            s.volume += c.volume;
            s.area += c.area;
        }
        m.into_iter().collect()
    };
    let merged = diy::reduce::all_reduce_merge(world, partial, |a, b| {
        let mut m: BTreeMap<u64, ComponentSummary> = a.into_iter().collect();
        for (label, s) in b {
            let e = m.entry(label).or_insert(ComponentSummary {
                cells: 0,
                volume: 0.0,
                area: 0.0,
            });
            e.cells += s.cells;
            e.volume += s.volume;
            e.area += s.area;
        }
        m.into_iter().collect()
    });

    Components {
        labels: cells.into_iter().map(|(id, c)| (id, c.label)).collect(),
        summaries: merged.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::{Aabb, Vec3};
    use tess::{Cell, Face};

    /// Build a fake 1D chain of cells: cell i adjacent to i-1 and i+1, with
    /// given volumes.
    fn chain_block(vols: &[f64]) -> MeshBlock {
        let mut b = MeshBlock::empty(0, Aabb::cube(1.0));
        for (i, &v) in vols.iter().enumerate() {
            b.particles.push(Vec3::splat(0.5));
            b.site_ids.push(i as u64);
            let mut faces = Vec::new();
            if i > 0 {
                faces.push(Face {
                    neighbor: (i - 1) as u64,
                    verts: vec![],
                });
            }
            if i + 1 < vols.len() {
                faces.push(Face {
                    neighbor: (i + 1) as u64,
                    verts: vec![],
                });
            }
            b.cells.push(Cell {
                site_idx: i as u32,
                volume: v,
                area: 1.0,
                complete: true,
                faces,
            });
        }
        b
    }

    #[test]
    fn one_chain_is_one_component() {
        let b = chain_block(&[1.0; 5]);
        let c = label_components_serial(&[b], 0.5);
        assert_eq!(c.num_components(), 1);
        let s = c.summaries[&0];
        assert_eq!(s.cells, 5);
        assert!((s.volume - 5.0).abs() < 1e-12);
        // every site labeled 0 (the min id)
        assert!(c.labels.values().all(|&l| l == 0));
    }

    #[test]
    fn threshold_splits_the_chain() {
        // middle cell too small → two components
        let b = chain_block(&[1.0, 1.0, 0.1, 1.0, 1.0]);
        let c = label_components_serial(&[b], 0.5);
        assert_eq!(c.num_components(), 2);
        assert_eq!(c.summaries[&0].cells, 2);
        assert_eq!(c.summaries[&3].cells, 2);
        assert_eq!(c.labels[&0], 0);
        assert_eq!(c.labels[&1], 0);
        assert_eq!(c.labels[&3], 3);
        assert_eq!(c.labels[&4], 3);
        assert!(!c.labels.contains_key(&2));
    }

    #[test]
    fn by_volume_sorts_descending() {
        let b = chain_block(&[1.0, 1.0, 0.1, 3.0, 3.0]);
        let c = label_components_serial(&[b], 0.5);
        let sorted = c.by_volume();
        assert_eq!(sorted[0].0, 3);
        assert!((sorted[0].1.volume - 6.0).abs() < 1e-12);
        assert_eq!(sorted[1].0, 0);
    }

    #[test]
    fn serial_labels_real_tessellation_components() {
        // Two dense clusters separated by a sparse gap: thresholding on
        // volume keeps the big (sparse) cells and yields ≥1 component;
        // keeping everything yields exactly one component spanning the box.
        let mut particles: Vec<(u64, Vec3)> = Vec::new();
        let mut id = 0;
        for i in 0..6 {
            for j in 0..6 {
                for k in 0..6 {
                    particles.push((
                        id,
                        Vec3::new(i as f64 + 0.5, j as f64 + 0.5, k as f64 + 0.5),
                    ));
                    id += 1;
                }
            }
        }
        let (block, _) = tess::tessellate_serial(
            &particles,
            Aabb::cube(6.0),
            [true; 3],
            &tess::TessParams::default().with_ghost(2.0),
        );
        let all = label_components_serial(&[block], 0.0);
        assert_eq!(all.num_components(), 1, "a full tessellation is connected");
        assert_eq!(all.summaries.values().next().unwrap().cells, 216);
    }
}
