//! Cell density and density contrast (§IV-D, Figure 11).
//!
//! All particles have unit mass, so a cell's density is simply the
//! reciprocal of its volume, and the density contrast is
//! `δ = (d − μ_d) / μ_d` (the paper's Eq. 2), where `μ_d` is the global
//! mean density (particles per unit volume of the box).

use tess::MeshBlock;

/// Per-cell densities with the global mean used for contrast.
#[derive(Debug, Clone)]
pub struct DensityField {
    /// `(site id, density)` for every cell.
    pub densities: Vec<(u64, f64)>,
    /// Global mean density `μ_d`.
    pub mean: f64,
}

impl DensityField {
    /// Density contrasts `δ` in the same order as `densities`.
    pub fn contrasts(&self) -> Vec<f64> {
        self.densities
            .iter()
            .map(|&(_, d)| (d - self.mean) / self.mean)
            .collect()
    }
}

/// Compute cell densities. `mean_density` is total particles / box volume;
/// pass the *simulation* values so culled cells do not bias the mean.
pub fn density_contrast(blocks: &[MeshBlock], mean_density: f64) -> DensityField {
    assert!(mean_density > 0.0);
    let mut densities = Vec::new();
    for b in blocks {
        for c in &b.cells {
            if c.volume > 0.0 {
                densities.push((b.site_id_of(c), 1.0 / c.volume));
            }
        }
    }
    DensityField {
        densities,
        mean: mean_density,
    }
}

/// Augment particle output with per-site cell density (the paper's §V
/// extension: "augment the output of particle positions with the cell
/// volume or density at each site").
pub fn per_particle_density(blocks: &[MeshBlock]) -> Vec<(u64, f64, f64)> {
    let mut out = Vec::new();
    for b in blocks {
        for c in &b.cells {
            if c.volume > 0.0 {
                out.push((b.site_id_of(c), c.volume, 1.0 / c.volume));
            }
        }
    }
    out.sort_by_key(|&(id, _, _)| id);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::{Aabb, Vec3};
    use tess::{Cell, MeshBlock};

    fn block_with_volumes(vols: &[f64]) -> MeshBlock {
        let mut b = MeshBlock::empty(0, Aabb::cube(1.0));
        for (i, &v) in vols.iter().enumerate() {
            b.particles.push(Vec3::splat(0.5));
            b.site_ids.push(i as u64);
            b.cells.push(Cell {
                site_idx: i as u32,
                volume: v,
                area: 0.0,
                complete: true,
                faces: vec![],
            });
        }
        b
    }

    #[test]
    fn density_is_reciprocal_volume() {
        let b = block_with_volumes(&[0.5, 2.0]);
        let f = density_contrast(&[b], 1.0);
        assert_eq!(f.densities[0].1, 2.0);
        assert_eq!(f.densities[1].1, 0.5);
    }

    #[test]
    fn uniform_tessellation_has_zero_contrast() {
        // lattice tessellation: every cell volume 1, mean density 1
        let particles: Vec<(u64, Vec3)> = (0..64)
            .map(|i| {
                let x = i % 4;
                let y = (i / 4) % 4;
                let z = i / 16;
                (
                    i as u64,
                    Vec3::new(x as f64 + 0.5, y as f64 + 0.5, z as f64 + 0.5),
                )
            })
            .collect();
        let (block, _) = tess::tessellate_serial(
            &particles,
            Aabb::cube(4.0),
            [true; 3],
            &tess::TessParams::default().with_ghost(2.0),
        );
        let mean = 64.0 / 64.0;
        let f = density_contrast(&[block], mean);
        for d in f.contrasts() {
            assert!(d.abs() < 1e-9, "δ = {d}");
        }
    }

    #[test]
    fn contrast_definition_matches_eq2() {
        let b = block_with_volumes(&[0.25]); // density 4
        let f = density_contrast(&[b], 2.0);
        let c = f.contrasts();
        assert!((c[0] - 1.0).abs() < 1e-12); // (4-2)/2
    }

    #[test]
    fn per_particle_density_is_sorted_and_complete() {
        let b = block_with_volumes(&[2.0, 0.5, 1.0]);
        let rows = per_particle_density(&[b]);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].0, 0);
        assert_eq!(rows[2].0, 2);
        assert_eq!(rows[1], (1, 0.5, 2.0));
    }

    #[test]
    fn zero_volume_cells_are_skipped() {
        let b = block_with_volumes(&[0.0, 1.0]);
        let f = density_contrast(&[b], 1.0);
        assert_eq!(f.densities.len(), 1);
    }
}
