//! Zel'dovich initial conditions from a Gaussian random field.
//!
//! The HACC configuration in the paper initializes particles on a grid with
//! 1 Mpc/h spacing and evolves them from a linear density field. Here:
//!
//! 1. draw white noise on the grid (deterministic per seed),
//! 2. color it in Fourier space with `√P(k)` (BBKS shape),
//! 3. rescale the realized field to a requested RMS density contrast
//!    (absolute normalization is a free parameter at this box size),
//! 4. convert to a displacement field `ψ(k) = i k δ(k)/k²`,
//! 5. displace particles off the lattice (`x = q + ψ`) and assign the
//!    Zel'dovich momenta `p = a² H(a) ψ`.
//!
//! Working on the realized field keeps Hermitian symmetry automatic (the
//! noise is drawn in real space) and makes every rank able to regenerate
//! the ICs bit-for-bit from the seed alone — which is how the distributed
//! simulation avoids a scatter of initial data.

use fft3d::{fft3_forward, fft3_inverse, freq, Complex, Grid3};
use geometry::Vec3;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::cosmology::Cosmology;
use crate::power::PowerSpectrum;

/// Parameters of the initial-condition generator.
#[derive(Debug, Clone, Copy)]
pub struct IcParams {
    /// Particles (and grid points) per dimension; must be a power of two.
    pub np: usize,
    /// Physical box size in Mpc/h (the paper uses `np` → 1 Mpc/h spacing).
    pub box_size: f64,
    /// RNG seed; same seed ⇒ identical field on every rank.
    pub seed: u64,
    /// Target RMS of the initial density contrast (sets the clustering
    /// strength at `a_init`).
    pub delta_rms: f64,
    /// Spectrum shape.
    pub spectrum: PowerSpectrum,
}

/// Positions (grid units, wrapped to `[0, np)`) and momenta of all `np³`
/// particles, indexed by lattice id `i + np (j + np k)`.
pub struct InitialConditions {
    pub positions: Vec<Vec3>,
    pub momenta: Vec<Vec3>,
    /// RMS displacement actually realized, in grid cells (diagnostic).
    pub rms_displacement: f64,
}

/// Generate Zel'dovich initial conditions at scale factor `a_init`.
pub fn zeldovich(p: &IcParams, cosmo: &Cosmology, a_init: f64) -> InitialConditions {
    let ng = p.np;
    assert!(
        ng.is_power_of_two(),
        "np must be a power of two for the FFT"
    );
    let n3 = ng * ng * ng;

    // 1. white noise (Box–Muller; two normals per draw, one kept for
    //    simplicity — determinism matters more than throughput here)
    let mut rng = ChaCha8Rng::seed_from_u64(p.seed);
    let mut field = Grid3::new([ng, ng, ng], Complex::ZERO);
    for v in field.data_mut() {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let gauss = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        *v = Complex::new(gauss, 0.0);
    }

    // 2. color with sqrt(P(k)), k physical (h/Mpc)
    fft3_forward(&mut field);
    let two_pi_over_l = 2.0 * std::f64::consts::PI / p.box_size;
    for k in 0..ng {
        for j in 0..ng {
            for i in 0..ng {
                let fx = freq(i, ng) as f64;
                let fy = freq(j, ng) as f64;
                let fz = freq(k, ng) as f64;
                let kmag = two_pi_over_l * (fx * fx + fy * fy + fz * fz).sqrt();
                let amp = p.spectrum.eval(kmag).sqrt();
                field[(i, j, k)] = field[(i, j, k)].scale(amp);
            }
        }
    }
    field[(0, 0, 0)] = Complex::ZERO; // zero-mean field

    // 3. rescale realized delta to the requested RMS
    let mut delta = field.clone();
    fft3_inverse(&mut delta);
    let rms = (delta.data().iter().map(|c| c.re * c.re).sum::<f64>() / n3 as f64).sqrt();
    let scale = if rms > 0.0 { p.delta_rms / rms } else { 0.0 };
    for v in field.data_mut() {
        *v = v.scale(scale);
    }

    // 4. displacement field per component: ψ_d(k) = i k_d δ(k) / k²,
    //    k in grid units (2π f / ng) so ψ comes out in cells
    let mut displacement: Vec<Grid3<f64>> = Vec::with_capacity(3);
    let two_pi_over_n = 2.0 * std::f64::consts::PI / ng as f64;
    for d in 0..3 {
        let mut psi = Grid3::new([ng, ng, ng], Complex::ZERO);
        for k in 0..ng {
            for j in 0..ng {
                for i in 0..ng {
                    let kf = [
                        two_pi_over_n * freq(i, ng) as f64,
                        two_pi_over_n * freq(j, ng) as f64,
                        two_pi_over_n * freq(k, ng) as f64,
                    ];
                    let k2 = kf[0] * kf[0] + kf[1] * kf[1] + kf[2] * kf[2];
                    if k2 > 0.0 {
                        // i * k_d / k² * δ(k)
                        let f = field[(i, j, k)];
                        psi[(i, j, k)] = Complex::new(-f.im, f.re).scale(kf[d] / k2);
                    }
                }
            }
        }
        fft3_inverse(&mut psi);
        let mut real = Grid3::new([ng, ng, ng], 0.0);
        for (idx, c) in psi.data().iter().enumerate() {
            real.data_mut()[idx] = c.re;
        }
        displacement.push(real);
    }

    // 5. displace lattice particles and assign momenta
    let pfac = cosmo.zeldovich_momentum_factor(a_init);
    let mut positions = Vec::with_capacity(n3);
    let mut momenta = Vec::with_capacity(n3);
    let mut disp2_sum = 0.0;
    for k in 0..ng {
        for j in 0..ng {
            for i in 0..ng {
                let psi = Vec3::new(
                    displacement[0][(i, j, k)],
                    displacement[1][(i, j, k)],
                    displacement[2][(i, j, k)],
                );
                disp2_sum += psi.norm2();
                let q = Vec3::new(i as f64, j as f64, k as f64);
                let mut x = q + psi;
                // wrap into [0, ng)
                for d in 0..3 {
                    x[d] = x[d].rem_euclid(ng as f64);
                }
                positions.push(x);
                momenta.push(psi * pfac);
            }
        }
    }

    InitialConditions {
        positions,
        momenta,
        rms_displacement: (disp2_sum / n3 as f64).sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(delta_rms: f64, seed: u64) -> IcParams {
        IcParams {
            np: 16,
            box_size: 16.0,
            seed,
            delta_rms,
            spectrum: PowerSpectrum::default(),
        }
    }

    #[test]
    fn zero_amplitude_gives_undisturbed_lattice() {
        let ic = zeldovich(&params(0.0, 1), &Cosmology::default(), 0.05);
        assert_eq!(ic.positions.len(), 16 * 16 * 16);
        assert_eq!(ic.rms_displacement, 0.0);
        for (idx, p) in ic.positions.iter().enumerate() {
            let i = idx % 16;
            let j = (idx / 16) % 16;
            let k = idx / 256;
            assert_eq!(*p, Vec3::new(i as f64, j as f64, k as f64));
        }
        assert!(ic.momenta.iter().all(|m| m.norm2() == 0.0));
    }

    #[test]
    fn same_seed_is_deterministic_different_seed_is_not() {
        let a = zeldovich(&params(0.1, 7), &Cosmology::default(), 0.05);
        let b = zeldovich(&params(0.1, 7), &Cosmology::default(), 0.05);
        let c = zeldovich(&params(0.1, 8), &Cosmology::default(), 0.05);
        assert_eq!(a.positions, b.positions);
        assert_eq!(a.momenta, b.momenta);
        assert_ne!(a.positions, c.positions);
    }

    #[test]
    fn positions_stay_in_box_and_mean_displacement_vanishes() {
        let ic = zeldovich(&params(0.3, 3), &Cosmology::default(), 0.05);
        let ng = 16.0;
        let mut mean = Vec3::ZERO;
        for (idx, p) in ic.positions.iter().enumerate() {
            assert!(p.x >= 0.0 && p.x < ng && p.y >= 0.0 && p.y < ng && p.z >= 0.0 && p.z < ng);
            let i = (idx % 16) as f64;
            let j = ((idx / 16) % 16) as f64;
            let k = (idx / 256) as f64;
            // min-image displacement
            let mut d = *p - Vec3::new(i, j, k);
            for c in 0..3 {
                if d[c] > ng / 2.0 {
                    d[c] -= ng;
                }
                if d[c] < -ng / 2.0 {
                    d[c] += ng;
                }
            }
            mean += d;
        }
        mean /= ic.positions.len() as f64;
        // zero mode was removed, so net displacement ~ 0
        assert!(mean.norm() < 1e-10, "mean displacement {mean}");
        assert!(ic.rms_displacement > 0.0);
    }

    #[test]
    fn momenta_proportional_to_displacement() {
        let cosmo = Cosmology::default();
        let a = 0.04;
        let ic = zeldovich(&params(0.2, 5), &cosmo, a);
        let pfac = cosmo.zeldovich_momentum_factor(a);
        // check one particle's momentum / displacement ratio
        for idx in [0usize, 100, 4000] {
            let i = (idx % 16) as f64;
            let j = ((idx / 16) % 16) as f64;
            let k = (idx / 256) as f64;
            let mut d = ic.positions[idx] - Vec3::new(i, j, k);
            for c in 0..3 {
                if d[c] > 8.0 {
                    d[c] -= 16.0;
                }
                if d[c] < -8.0 {
                    d[c] += 16.0;
                }
            }
            assert!((ic.momenta[idx] - d * pfac).norm() < 1e-12);
        }
    }

    #[test]
    fn larger_amplitude_gives_larger_displacements() {
        let small = zeldovich(&params(0.05, 2), &Cosmology::default(), 0.05);
        let large = zeldovich(&params(0.5, 2), &Cosmology::default(), 0.05);
        assert!(large.rms_displacement > 5.0 * small.rms_displacement);
    }
}
