//! The distributed simulation: HACC's role in the paper's workflow.
//!
//! Particles are owned by diy blocks (one or more per rank). Every step:
//!
//! 1. each rank CIC-deposits its particles into a private mass grid,
//! 2. the grids are summed up a reduction tree to rank 0,
//! 3. rank 0 runs the FFT Poisson solve (HACC's spectral component — kept
//!    serial here; see DESIGN.md) and broadcasts the potential,
//! 4. each rank kicks and drifts its own particles,
//! 5. particles that left their block are migrated to the owning block
//!    through the neighbor-exchange machinery.
//!
//! Initial conditions are regenerated deterministically from the seed on
//! every rank (cheap at laptop scale), so no initial scatter is needed.

use std::collections::BTreeMap;

use diy::codec::{CodecError, Decode, Encode, Reader};
use diy::comm::World;
use diy::decomposition::{Assignment, DecompScheme, Decomposition};
use diy::exchange::NeighborExchange;
use diy::reduce;
use fft3d::Grid3;
use geometry::{Aabb, Vec3};

use crate::cic;
use crate::cosmology::Cosmology;
use crate::ic::{zeldovich, IcParams};
use crate::power::PowerSpectrum;
use crate::stepper::PmSolver;

/// A tracer particle. Positions are in grid units (`[0, np)³`); multiply by
/// [`SimParams::mpc_per_cell`] for Mpc/h.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Particle {
    pub id: u64,
    pub pos: Vec3,
    pub mom: Vec3,
}

impl Encode for Particle {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id.encode(buf);
        self.pos.encode(buf);
        self.mom.encode(buf);
    }
}

impl Decode for Particle {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Particle {
            id: u64::decode(r)?,
            pos: Vec3::decode(r)?,
            mom: Vec3::decode(r)?,
        })
    }
}

/// Which spectral solver the gravity step uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverKind {
    /// Reduce the grid to rank 0, solve there, broadcast the potential
    /// (simple; the FFT is a serial bottleneck).
    #[default]
    Rank0,
    /// Slab-decomposed distributed FFT ([`crate::slabfft`]): every rank
    /// transforms its slab; two all-to-all transposes; bit-identical
    /// result with the FFT compute spread across ranks.
    Slab,
}

/// Simulation configuration (the "input deck" of Figure 4).
#[derive(Debug, Clone, Copy)]
pub struct SimParams {
    /// Particles per dimension (= PM grid size); power of two.
    pub np: usize,
    /// Physical box size in Mpc/h. The paper sets `box_size = np`, i.e.
    /// 1 Mpc/h initial particle spacing.
    pub box_size: f64,
    pub a_init: f64,
    pub a_final: f64,
    pub nsteps: usize,
    pub seed: u64,
    /// RMS density contrast of the initial field.
    pub initial_delta_rms: f64,
    pub spectrum: PowerSpectrum,
    pub solver: SolverKind,
}

impl SimParams {
    /// The paper's configuration scaled to `np` particles per dimension:
    /// 1 Mpc/h spacing, 100 steps to a = 1.
    pub fn paper_like(np: usize) -> Self {
        SimParams {
            np,
            box_size: np as f64,
            a_init: 0.05,
            a_final: 1.0,
            nsteps: 100,
            seed: 42,
            initial_delta_rms: 0.5,
            spectrum: PowerSpectrum::default(),
            solver: SolverKind::default(),
        }
    }

    /// Mean step size in scale factor (diagnostic only; the actual
    /// schedule is geometric — see [`SimParams::a_at`]).
    pub fn da(&self) -> f64 {
        (self.a_final - self.a_init) / self.nsteps as f64
    }

    /// Scale factor at the start of step `k`. Steps are uniform in
    /// log(a) (HACC-style), so early steps resolve the near-linear regime
    /// and the growth per step is constant.
    pub fn a_at(&self, step: usize) -> f64 {
        let f = step as f64 / self.nsteps as f64;
        self.a_init * (self.a_final / self.a_init).powf(f)
    }

    /// Scale-factor increment of step `k`.
    pub fn da_at(&self, step: usize) -> f64 {
        self.a_at(step + 1) - self.a_at(step)
    }

    pub fn mpc_per_cell(&self) -> f64 {
        self.box_size / self.np as f64
    }

    pub fn total_particles(&self) -> u64 {
        (self.np * self.np * self.np) as u64
    }
}

/// Metrics span covering simulation work: initialization and every
/// kick–drift step, including particle migration (see [`diy::metrics`]).
pub const PHASE_SIM: &str = "sim";

/// One rank's view of the running simulation.
pub struct Simulation {
    pub params: SimParams,
    pub cosmo: Cosmology,
    pub dec: Decomposition,
    pub asn: Assignment,
    /// Particles per owned block gid (BTreeMap for deterministic order).
    pub blocks: BTreeMap<u64, Vec<Particle>>,
    pub a: f64,
    pub step_count: usize,
    solver: PmSolver,
}

impl Simulation {
    /// Initialize on every rank of `world` with `nblocks` total blocks,
    /// decomposed by the regular grid scheme.
    pub fn init(world: &mut World, params: SimParams, nblocks: usize) -> Self {
        Self::init_with_decomp(world, params, nblocks, DecompScheme::Regular)
    }

    /// [`init`](Self::init) with an explicit decomposition scheme. The k-d
    /// scheme cuts on the Zel'dovich initial positions — every rank
    /// generates the same ICs, so every rank derives the same cuts — and
    /// pairs with a particle-count-weighted block→rank assignment.
    pub fn init_with_decomp(
        world: &mut World,
        params: SimParams,
        nblocks: usize,
        decomp: DecompScheme,
    ) -> Self {
        let _span = world.metrics().phase(PHASE_SIM);
        let cosmo = Cosmology::default();
        let domain = Aabb::cube(params.np as f64);

        let ic = zeldovich(
            &IcParams {
                np: params.np,
                box_size: params.box_size,
                seed: params.seed,
                delta_rms: params.initial_delta_rms,
                spectrum: params.spectrum,
            },
            &cosmo,
            params.a_init,
        );

        let dec = decomp.build(domain, nblocks, [true; 3], &ic.positions);
        let asn = match decomp {
            DecompScheme::Regular => Assignment::new(nblocks, world.nranks()),
            DecompScheme::Kd { .. } => {
                let mut weights = vec![0u64; nblocks];
                for &pos in &ic.positions {
                    weights[dec.block_of_point(pos) as usize] += 1;
                }
                Assignment::weighted(&weights, world.nranks())
            }
        };

        let mut blocks: BTreeMap<u64, Vec<Particle>> = asn
            .blocks_of_rank(world.rank())
            .map(|gid| (gid, Vec::new()))
            .collect();
        for (idx, (&pos, &mom)) in ic.positions.iter().zip(&ic.momenta).enumerate() {
            let gid = dec.block_of_point(pos);
            if let Some(list) = blocks.get_mut(&gid) {
                list.push(Particle {
                    id: idx as u64,
                    pos,
                    mom,
                });
            }
        }

        Simulation {
            params,
            cosmo,
            dec,
            asn,
            blocks,
            a: params.a_init,
            step_count: 0,
            solver: PmSolver::new(params.np, cosmo),
        }
    }

    /// Number of particles on this rank.
    pub fn local_count(&self) -> usize {
        self.blocks.values().map(Vec::len).sum()
    }

    /// All local particles (borrow).
    pub fn local_particles(&self) -> impl Iterator<Item = &Particle> {
        self.blocks.values().flatten()
    }

    /// Advance one kick–drift step, including migration. Recorded under
    /// the [`PHASE_SIM`] metrics span.
    pub fn step(&mut self, world: &mut World) {
        let _span = world.metrics().phase(PHASE_SIM);
        let ng = self.params.np;

        // 1. local deposit
        let mut rho = Grid3::new([ng, ng, ng], 0.0);
        let local_pos: Vec<Vec3> = self.local_particles().map(|p| p.pos).collect();
        cic::deposit(&mut rho, &local_pos);

        // 2-3. global density, spectral solve (per configured solver)
        let phi_data: Vec<f64> = match self.params.solver {
            SolverKind::Rank0 => {
                // reduce to rank 0, solve there, broadcast the potential
                let summed = reduce::reduce_merge(world, rho.data().to_vec(), |mut a, b| {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x += *y;
                    }
                    a
                });
                let phi0 = summed.map(|data| {
                    let mut grid = Grid3::new([ng, ng, ng], 0.0);
                    grid.data_mut().copy_from_slice(&data);
                    cic::to_density_contrast(&mut grid, self.params.total_particles() as usize);
                    self.solver.potential(&grid, self.a).data().to_vec()
                });
                world.broadcast(0, phi0.as_ref())
            }
            SolverKind::Slab => {
                // every rank gets the summed grid, solves its slab, and the
                // potential slabs are gathered back
                let summed = reduce::all_reduce_merge(world, rho.data().to_vec(), |mut a, b| {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x += *y;
                    }
                    a
                });
                let mean = self.params.total_particles() as f64 / (ng * ng * ng) as f64;
                let zr = crate::slabfft::slab_range(ng, world.nranks(), world.rank());
                let local_delta: Vec<f64> = summed[ng * ng * zr.start..ng * ng * zr.end]
                    .iter()
                    .map(|&m| m / mean - 1.0)
                    .collect();
                let phi_slab = crate::slabfft::solve_potential_slab(
                    world,
                    &local_delta,
                    ng,
                    self.cosmo.poisson_factor(self.a),
                );
                let slabs = world.all_gather(&phi_slab);
                slabs.into_iter().flatten().collect()
            }
        };
        let mut phi = Grid3::new([ng, ng, ng], 0.0);
        phi.data_mut().copy_from_slice(&phi_data);

        // 4. kick + drift local particles
        let da = self.params.da_at(self.step_count);
        let kick = self.cosmo.kick_factor(self.a, da);
        let drift = self.cosmo.drift_factor(self.a + da, da);
        for particles in self.blocks.values_mut() {
            for p in particles.iter_mut() {
                let g = PmSolver::acceleration_at(&phi, p.pos);
                p.mom += g * kick;
                p.pos += p.mom * drift;
                for d in 0..3 {
                    p.pos[d] = p.pos[d].rem_euclid(ng as f64);
                }
            }
        }

        // 5. migrate particles that left their block
        self.migrate(world);

        self.a += da;
        self.step_count += 1;
    }

    /// Route every particle to the block that owns its position.
    fn migrate(&mut self, world: &mut World) {
        let mut outgoing: Vec<(u64, Particle)> = Vec::new();
        for (&gid, particles) in self.blocks.iter_mut() {
            let mut keep = Vec::with_capacity(particles.len());
            for p in particles.drain(..) {
                let dest = self.dec.block_of_point(p.pos);
                if dest == gid {
                    keep.push(p);
                } else {
                    outgoing.push((dest, p));
                }
            }
            *particles = keep;
        }
        let ex = NeighborExchange::new(&self.dec, &self.asn);
        let incoming = ex.exchange(world, outgoing);
        for (gid, particles) in incoming {
            self.blocks
                .get_mut(&gid)
                .expect("exchange routed to owning rank")
                .extend(particles);
        }
    }

    /// Run `n` steps.
    pub fn run_steps(&mut self, world: &mut World, n: usize) {
        for _ in 0..n {
            self.step(world);
        }
    }

    /// Global particle count (collective).
    pub fn global_count(&self, world: &mut World) -> u64 {
        world.all_reduce(self.local_count() as u64, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diy::comm::Runtime;

    fn small_params(np: usize, nsteps: usize) -> SimParams {
        SimParams {
            np,
            box_size: np as f64,
            a_init: 0.1,
            a_final: 0.5,
            nsteps,
            seed: 12,
            initial_delta_rms: 0.2,
            spectrum: PowerSpectrum::default(),
            solver: Default::default(),
        }
    }

    #[test]
    fn particle_count_is_conserved() {
        let params = small_params(16, 10);
        Runtime::run(4, |w| {
            let mut sim = Simulation::init(w, params, 8);
            assert_eq!(sim.global_count(w), 16 * 16 * 16);
            sim.run_steps(w, 10);
            assert_eq!(sim.global_count(w), 16 * 16 * 16);
        });
    }

    #[test]
    fn particles_stay_in_their_blocks() {
        let params = small_params(16, 5);
        Runtime::run(2, |w| {
            let mut sim = Simulation::init(w, params, 8);
            sim.run_steps(w, 5);
            for (&gid, particles) in &sim.blocks {
                let bounds = sim.dec.block_bounds(gid);
                for p in particles {
                    assert!(
                        bounds.contains(p.pos),
                        "particle {} at {} outside block {gid}",
                        p.id,
                        p.pos
                    );
                }
            }
        });
    }

    #[test]
    fn distributed_matches_serial() {
        let params = small_params(16, 8);
        // serial reference
        let cosmo = Cosmology::default();
        let ic = zeldovich(
            &IcParams {
                np: params.np,
                box_size: params.box_size,
                seed: params.seed,
                delta_rms: params.initial_delta_rms,
                spectrum: params.spectrum,
            },
            &cosmo,
            params.a_init,
        );
        let solver = PmSolver::new(params.np, cosmo);
        let mut pos = ic.positions.clone();
        let mut mom = ic.momenta.clone();
        for k in 0..8 {
            solver.step(&mut pos, &mut mom, params.a_at(k), params.da_at(k));
        }

        // distributed
        let collected = Runtime::run(4, |w| {
            let mut sim = Simulation::init(w, params, 8);
            sim.run_steps(w, 8);
            sim.local_particles().copied().collect::<Vec<_>>()
        });
        let mut all: Vec<Particle> = collected.into_iter().flatten().collect();
        all.sort_by_key(|p| p.id);
        assert_eq!(all.len(), pos.len());
        for p in &all {
            let serial = pos[p.id as usize];
            // summation order differs; chaos amplifies tiny float diffs
            let d = (p.pos - serial).norm();
            assert!(
                d < 1e-6,
                "particle {} drifted {d} (pos {} vs {serial})",
                p.id,
                p.pos
            );
        }
    }

    #[test]
    fn run_is_deterministic() {
        let params = small_params(8, 6);
        let run = || {
            let collected = Runtime::run(2, |w| {
                let mut sim = Simulation::init(w, params, 4);
                sim.run_steps(w, 6);
                sim.local_particles().copied().collect::<Vec<_>>()
            });
            let mut all: Vec<Particle> = collected.into_iter().flatten().collect();
            all.sort_by_key(|p| p.id);
            all
        };
        let a = run();
        let b = run();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pos, y.pos);
            assert_eq!(x.mom, y.mom);
        }
    }

    #[test]
    fn slab_solver_matches_rank0_solver() {
        let base = small_params(16, 6);
        let run = |solver: SolverKind, nranks: usize| {
            let params = SimParams { solver, ..base };
            let collected = Runtime::run(nranks, move |w| {
                let mut sim = Simulation::init(w, params, 8);
                sim.run_steps(w, 6);
                sim.local_particles().copied().collect::<Vec<_>>()
            });
            let mut all: Vec<Particle> = collected.into_iter().flatten().collect();
            all.sort_by_key(|p| p.id);
            all
        };
        let reference = run(SolverKind::Rank0, 2);
        for nranks in [1usize, 2, 4] {
            let slab = run(SolverKind::Slab, nranks);
            assert_eq!(slab.len(), reference.len());
            for (a, b) in slab.iter().zip(&reference) {
                // the slab FFT runs the same line transforms; only the
                // deposit summation order differs between rank counts
                assert!(
                    (a.pos - b.pos).norm() < 1e-9,
                    "nranks={nranks} particle {}: {} vs {}",
                    a.id,
                    a.pos,
                    b.pos
                );
            }
        }
    }

    #[test]
    fn global_momentum_is_conserved() {
        let params = small_params(16, 10);
        Runtime::run(2, |w| {
            let mut sim = Simulation::init(w, params, 4);
            let before: Vec3 = sim.local_particles().fold(Vec3::ZERO, |acc, p| acc + p.mom);
            let before_all = Vec3::new(
                w.all_reduce(before.x, |a, b| a + b),
                w.all_reduce(before.y, |a, b| a + b),
                w.all_reduce(before.z, |a, b| a + b),
            );
            sim.run_steps(w, 10);
            let after: Vec3 = sim.local_particles().fold(Vec3::ZERO, |acc, p| acc + p.mom);
            let after_all = Vec3::new(
                w.all_reduce(after.x, |a, b| a + b),
                w.all_reduce(after.y, |a, b| a + b),
                w.all_reduce(after.z, |a, b| a + b),
            );
            assert!((after_all - before_all).norm() < 1e-8);
        });
    }
}
