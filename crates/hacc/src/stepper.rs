//! Serial particle-mesh stepper (kick–drift, symplectic Euler).
//!
//! One gravity step:
//!
//! 1. CIC-deposit all particles → density contrast δ,
//! 2. FFT Poisson solve → potential φ (discrete Green's function),
//! 3. per-particle acceleration: CIC-interpolated centered difference of φ,
//! 4. kick `p += g · Δa/ȧ`, then drift `x += p · Δa/(a²ȧ)`.
//!
//! Using the same CIC kernel for deposit and force interpolation keeps the
//! scheme momentum-conserving (no self-force).

use fft3d::Grid3;
use geometry::Vec3;

use crate::cic;
use crate::cosmology::Cosmology;
use crate::poisson;

/// Particle-mesh force solver on an `ng³` periodic grid (grid units).
#[derive(Debug, Clone, Copy)]
pub struct PmSolver {
    pub ng: usize,
    pub cosmo: Cosmology,
}

impl PmSolver {
    pub fn new(ng: usize, cosmo: Cosmology) -> Self {
        assert!(ng.is_power_of_two(), "PM grid must be a power of two");
        PmSolver { ng, cosmo }
    }

    /// Density-contrast grid from particle positions.
    pub fn density_contrast(&self, positions: &[Vec3]) -> Grid3<f64> {
        let mut rho = Grid3::new([self.ng, self.ng, self.ng], 0.0);
        cic::deposit(&mut rho, positions);
        cic::to_density_contrast(&mut rho, positions.len());
        rho
    }

    /// Potential from a density-contrast grid at scale factor `a`.
    pub fn potential(&self, delta: &Grid3<f64>, a: f64) -> Grid3<f64> {
        poisson::solve_potential(delta, self.cosmo.poisson_factor(a))
    }

    /// Acceleration `-∇φ` at position `p`: centered difference of φ,
    /// CIC-interpolated (equivalent to interpolating precomputed gradient
    /// grids, but without materializing them — per-particle work only).
    pub fn acceleration_at(phi: &Grid3<f64>, p: Vec3) -> Vec3 {
        let ng = phi.dims()[0];
        let i0 = p.x.floor();
        let j0 = p.y.floor();
        let k0 = p.z.floor();
        let dx = p.x - i0;
        let dy = p.y - j0;
        let dz = p.z - k0;
        let (i0, j0, k0) = (i0 as isize, j0 as isize, k0 as isize);
        let mut acc = Vec3::ZERO;
        for (di, wi) in [(0isize, 1.0 - dx), (1, dx)] {
            for (dj, wj) in [(0isize, 1.0 - dy), (1, dy)] {
                for (dk, wk) in [(0isize, 1.0 - dz), (1, dz)] {
                    let w = wi * wj * wk;
                    if w == 0.0 {
                        continue;
                    }
                    let (ci, cj, ck) = (i0 + di, j0 + dj, k0 + dk);
                    let v = |a: isize, b: isize, c: isize| phi.data()[phi.idx_wrapped(a, b, c)];
                    acc.x -= w * 0.5 * (v(ci + 1, cj, ck) - v(ci - 1, cj, ck));
                    acc.y -= w * 0.5 * (v(ci, cj + 1, ck) - v(ci, cj - 1, ck));
                    acc.z -= w * 0.5 * (v(ci, cj, ck + 1) - v(ci, cj, ck - 1));
                }
            }
        }
        let _ = ng;
        acc
    }

    /// Advance positions and momenta by one step `a → a + da` in place.
    pub fn step(&self, positions: &mut [Vec3], momenta: &mut [Vec3], a: f64, da: f64) {
        let delta = self.density_contrast(positions);
        let phi = self.potential(&delta, a);
        let kick = self.cosmo.kick_factor(a, da);
        let drift = self.cosmo.drift_factor(a + da, da);
        let ng = self.ng as f64;
        for (x, p) in positions.iter_mut().zip(momenta.iter_mut()) {
            let g = Self::acceleration_at(&phi, *x);
            *p += g * kick;
            *x += *p * drift;
            for d in 0..3 {
                x[d] = x[d].rem_euclid(ng);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ic::{zeldovich, IcParams};
    use crate::power::PowerSpectrum;

    fn lattice(ng: usize) -> Vec<Vec3> {
        (0..ng)
            .flat_map(|k| {
                (0..ng).flat_map(move |j| {
                    (0..ng).map(move |i| Vec3::new(i as f64, j as f64, k as f64))
                })
            })
            .collect()
    }

    #[test]
    fn uniform_lattice_is_a_fixed_point() {
        let ng = 8;
        let solver = PmSolver::new(ng, Cosmology::default());
        let mut pos = lattice(ng);
        let mut mom = vec![Vec3::ZERO; pos.len()];
        let orig = pos.clone();
        for _ in 0..5 {
            solver.step(&mut pos, &mut mom, 0.1, 0.01);
        }
        for (a, b) in pos.iter().zip(&orig) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn momentum_is_conserved() {
        let ic = zeldovich(
            &IcParams {
                np: 8,
                box_size: 8.0,
                seed: 3,
                delta_rms: 0.3,
                spectrum: PowerSpectrum::default(),
            },
            &Cosmology::default(),
            0.1,
        );
        let solver = PmSolver::new(8, Cosmology::default());
        let mut pos = ic.positions.clone();
        let mut mom = ic.momenta.clone();
        let total_before: Vec3 = mom.iter().fold(Vec3::ZERO, |a, &b| a + b);
        let mut a = 0.1;
        for _ in 0..10 {
            solver.step(&mut pos, &mut mom, a, 0.02);
            a += 0.02;
        }
        let total_after: Vec3 = mom.iter().fold(Vec3::ZERO, |a, &b| a + b);
        assert!(
            (total_after - total_before).norm() < 1e-9,
            "Δp = {}",
            (total_after - total_before).norm()
        );
    }

    #[test]
    fn two_clouds_attract_each_other() {
        // Two particles along x: each must be pulled toward the other.
        let ng = 16;
        let solver = PmSolver::new(ng, Cosmology::default());
        let mut pos = vec![Vec3::new(5.0, 8.0, 8.0), Vec3::new(11.0, 8.0, 8.0)];
        let mut mom = vec![Vec3::ZERO; 2];
        solver.step(&mut pos, &mut mom, 0.5, 0.001);
        assert!(mom[0].x > 0.0, "left particle pulled right: {}", mom[0].x);
        assert!(mom[1].x < 0.0, "right particle pulled left: {}", mom[1].x);
        assert!((mom[0].x + mom[1].x).abs() < 1e-12, "antisymmetric forces");
        assert!(mom[0].y.abs() < 1e-12 && mom[0].z.abs() < 1e-12);
    }

    #[test]
    fn clustering_grows_density_variance() {
        let cosmo = Cosmology::default();
        let ic = zeldovich(
            &IcParams {
                np: 16,
                box_size: 16.0,
                seed: 11,
                delta_rms: 0.2,
                spectrum: PowerSpectrum::default(),
            },
            &cosmo,
            0.1,
        );
        let solver = PmSolver::new(16, cosmo);
        let mut pos = ic.positions.clone();
        let mut mom = ic.momenta.clone();
        let var = |p: &[Vec3]| {
            let d = solver.density_contrast(p);
            d.data().iter().map(|v| v * v).sum::<f64>() / d.len() as f64
        };
        let v0 = var(&pos);
        let mut a = 0.1;
        let da = (1.0 - a) / 40.0;
        for _ in 0..40 {
            solver.step(&mut pos, &mut mom, a, da);
            a += da;
        }
        let v1 = var(&pos);
        assert!(
            v1 > 2.0 * v0,
            "density variance should grow: {v0:.4} -> {v1:.4}"
        );
    }

    #[test]
    fn positions_remain_in_box() {
        let ic = zeldovich(
            &IcParams {
                np: 8,
                box_size: 8.0,
                seed: 9,
                delta_rms: 0.5,
                spectrum: PowerSpectrum::default(),
            },
            &Cosmology::default(),
            0.1,
        );
        let solver = PmSolver::new(8, Cosmology::default());
        let mut pos = ic.positions.clone();
        let mut mom = ic.momenta.clone();
        let mut a = 0.1;
        for _ in 0..30 {
            solver.step(&mut pos, &mut mom, a, 0.03);
            a += 0.03;
        }
        for p in &pos {
            for d in 0..3 {
                assert!(p[d] >= 0.0 && p[d] < 8.0, "{p}");
            }
        }
    }
}
