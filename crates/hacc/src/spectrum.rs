//! Matter power spectrum estimator.
//!
//! The paper motivates HACC's scale by the need to predict "the matter
//! density fluctuation power spectrum" (§III-A); this module measures it
//! from the particles: CIC deposit → FFT → shell-average `|δ(k)|²`, with
//! the standard CIC window deconvolution. Used to validate that the
//! initial conditions realize the requested spectrum shape and to track
//! nonlinear power growth over the run.

use fft3d::{fft3_forward, freq, Complex, Grid3};
use geometry::Vec3;

use crate::cic;

/// One shell of the measured spectrum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectrumBin {
    /// Mean wavenumber of the shell (h/Mpc).
    pub k: f64,
    /// Shell-averaged power (Mpc/h)³.
    pub power: f64,
    /// Number of modes in the shell.
    pub modes: u64,
}

/// Measure `P(k)` of unit-mass particles in a periodic box.
///
/// `ng` is the FFT mesh (power of two), `box_size` the physical box edge
/// in Mpc/h. Positions must be in grid units (`[0, ng)`), as used by the
/// simulation. Returns bins of width `2π/box_size` starting at the
/// fundamental mode.
pub fn power_spectrum(positions: &[Vec3], ng: usize, box_size: f64) -> Vec<SpectrumBin> {
    let mut rho = Grid3::new([ng, ng, ng], 0.0);
    cic::deposit(&mut rho, positions);
    cic::to_density_contrast(&mut rho, positions.len());

    let mut f = Grid3::new([ng, ng, ng], Complex::ZERO);
    for (i, &v) in rho.data().iter().enumerate() {
        f.data_mut()[i] = Complex::new(v, 0.0);
    }
    fft3_forward(&mut f);

    let kf = 2.0 * std::f64::consts::PI / box_size; // fundamental mode
    let volume = box_size * box_size * box_size;
    let n3 = (ng * ng * ng) as f64;
    let nbins = ng / 2;
    let mut sums = vec![0.0f64; nbins];
    let mut ksum = vec![0.0f64; nbins];
    let mut counts = vec![0u64; nbins];

    let pi = std::f64::consts::PI;
    for kz in 0..ng {
        for ky in 0..ng {
            for kx in 0..ng {
                if (kx, ky, kz) == (0, 0, 0) {
                    continue;
                }
                let fx = freq(kx, ng) as f64;
                let fy = freq(ky, ng) as f64;
                let fz = freq(kz, ng) as f64;
                let kmag_int = (fx * fx + fy * fy + fz * fz).sqrt();
                let bin = (kmag_int - 0.5).round() as usize;
                if bin >= nbins {
                    continue;
                }
                // CIC window: W(k) = Π sinc²(π f_d / ng); deconvolve |δ|²/W²
                let sinc = |fd: f64| {
                    let x = pi * fd / ng as f64;
                    if x.abs() < 1e-12 {
                        1.0
                    } else {
                        x.sin() / x
                    }
                };
                let w = (sinc(fx) * sinc(fy) * sinc(fz)).powi(2);
                let p = f[(kx, ky, kz)].norm2() / (n3 * n3) * volume / (w * w);
                sums[bin] += p;
                ksum[bin] += kmag_int * kf;
                counts[bin] += 1;
            }
        }
    }

    (0..nbins)
        .filter(|&b| counts[b] > 0)
        .map(|b| SpectrumBin {
            k: ksum[b] / counts[b] as f64,
            power: sums[b] / counts[b] as f64,
            modes: counts[b],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosmology::Cosmology;
    use crate::ic::{zeldovich, IcParams};
    use crate::power::PowerSpectrum;

    fn lattice(ng: usize) -> Vec<Vec3> {
        (0..ng * ng * ng)
            .map(|i| {
                Vec3::new(
                    (i % ng) as f64,
                    ((i / ng) % ng) as f64,
                    (i / (ng * ng)) as f64,
                )
            })
            .collect()
    }

    #[test]
    fn uniform_lattice_has_no_power() {
        let ng = 16;
        let bins = power_spectrum(&lattice(ng), ng, ng as f64);
        for b in &bins {
            assert!(b.power.abs() < 1e-20, "k={} P={}", b.k, b.power);
        }
    }

    #[test]
    fn bins_cover_expected_k_range() {
        let ng = 16;
        let bins = power_spectrum(&lattice(ng), ng, 16.0);
        let kf = 2.0 * std::f64::consts::PI / 16.0;
        // first shell averages modes with |k| in [1, 2) fundamentals
        assert!(
            bins[0].k >= kf && bins[0].k < 2.0 * kf,
            "first bin k = {} (kf = {kf})",
            bins[0].k
        );
        assert!(bins.last().unwrap().k <= kf * (ng / 2) as f64);
        // mode counts grow ~k² for low shells
        assert!(bins[3].modes > bins[0].modes);
    }

    #[test]
    fn single_plane_wave_displacement_peaks_at_its_mode() {
        // displace the lattice sinusoidally along x with wavevector 3·kf:
        // linear density contrast appears at bin near k = 3 kf
        let ng = 32;
        let amp = 0.05;
        let pts: Vec<Vec3> = lattice(ng)
            .into_iter()
            .map(|q| {
                let phase = 2.0 * std::f64::consts::PI * 3.0 * q.x / ng as f64;
                let mut p = q;
                p.x = (q.x + amp * phase.sin()).rem_euclid(ng as f64);
                p
            })
            .collect();
        let bins = power_spectrum(&pts, ng, ng as f64);
        let peak = bins
            .iter()
            .max_by(|a, b| a.power.partial_cmp(&b.power).unwrap())
            .unwrap();
        let kf = 2.0 * std::f64::consts::PI / ng as f64;
        assert!(
            (peak.k - 3.0 * kf).abs() < 0.6 * kf,
            "peak at k={} expected {}",
            peak.k,
            3.0 * kf
        );
    }

    #[test]
    fn ic_realization_follows_input_spectrum_shape() {
        // Compare the measured IC spectrum against the (rescaled) input
        // shape over mid-range bins, where the box has many modes and the
        // CIC/mesh corrections are benign.
        let ng = 32;
        let spectrum = PowerSpectrum::default();
        let ic = zeldovich(
            &IcParams {
                np: ng,
                box_size: ng as f64,
                seed: 17,
                delta_rms: 0.05, // near-linear so Zel'dovich ↔ δ mapping holds
                spectrum,
            },
            &Cosmology::default(),
            1.0,
        );
        let bins = power_spectrum(&ic.positions, ng, ng as f64);
        // fit single amplitude over bins 2..8 and check shape residuals
        let mid: Vec<&SpectrumBin> = bins.iter().skip(2).take(6).collect();
        let mut num = 0.0;
        let mut den = 0.0;
        for b in &mid {
            let model = spectrum.eval(b.k);
            num += b.power * model;
            den += model * model;
        }
        let amp = num / den;
        assert!(amp > 0.0);
        for b in &mid {
            let model = amp * spectrum.eval(b.k);
            let ratio = b.power / model;
            assert!(
                (0.5..2.0).contains(&ratio),
                "k={:.3}: measured {:.3e} vs model {:.3e} (ratio {ratio:.2})",
                b.k,
                b.power,
                model
            );
        }
    }

    #[test]
    fn clustering_grows_small_scale_power() {
        use crate::stepper::PmSolver;
        let ng = 16;
        let params = IcParams {
            np: ng,
            box_size: ng as f64,
            seed: 4,
            delta_rms: 0.3,
            spectrum: PowerSpectrum::default(),
        };
        let cosmo = Cosmology::default();
        let ic = zeldovich(&params, &cosmo, 0.1);
        let before = power_spectrum(&ic.positions, ng, ng as f64);
        let solver = PmSolver::new(ng, cosmo);
        let (mut pos, mut mom) = (ic.positions, ic.momenta);
        let mut a = 0.1;
        for _ in 0..30 {
            solver.step(&mut pos, &mut mom, a, 0.03);
            a += 0.03;
        }
        let after = power_spectrum(&pos, ng, ng as f64);
        // total power grows
        let total_before: f64 = before.iter().map(|b| b.power * b.modes as f64).sum();
        let total_after: f64 = after.iter().map(|b| b.power * b.modes as f64).sum();
        assert!(
            total_after > 3.0 * total_before,
            "{total_before} -> {total_after}"
        );
    }
}
