//! Initial matter power spectrum.
//!
//! `P(k) = A kⁿ T²(k)` with the BBKS (Bardeen–Bond–Kaiser–Szalay) transfer
//! function. The absolute normalization `A` is irrelevant here because the
//! initial-condition generator rescales the realized density field to a
//! requested RMS (see [`crate::ic`]); only the *shape* matters, and BBKS
//! gives the familiar turnover that concentrates power on the large scales
//! where voids form.

/// BBKS transfer function of the shape variable `q = k / Γ` (k in h/Mpc).
pub fn bbks_transfer(q: f64) -> f64 {
    if q <= 0.0 {
        return 1.0;
    }
    let x = 2.34 * q;
    // (ln(1+x)/x) * [1 + 3.89q + (16.1q)² + (5.46q)³ + (6.71q)⁴]^{-1/4}
    let ln_term = if x < 1e-8 { 1.0 } else { (1.0 + x).ln() / x };
    let poly = 1.0 + 3.89 * q + (16.1 * q).powi(2) + (5.46 * q).powi(3) + (6.71 * q).powi(4);
    ln_term * poly.powf(-0.25)
}

/// Power-spectrum shape parameters.
#[derive(Debug, Clone, Copy)]
pub struct PowerSpectrum {
    /// Primordial spectral index n_s.
    pub spectral_index: f64,
    /// BBKS shape parameter Γ (≈ Ωm·h; 0.21 is the classic CDM value).
    pub gamma: f64,
}

impl Default for PowerSpectrum {
    fn default() -> Self {
        PowerSpectrum {
            spectral_index: 1.0,
            gamma: 0.21,
        }
    }
}

impl PowerSpectrum {
    /// Un-normalized `P(k)` (k in h/Mpc).
    pub fn eval(&self, k: f64) -> f64 {
        if k <= 0.0 {
            return 0.0;
        }
        let t = bbks_transfer(k / self.gamma);
        k.powf(self.spectral_index) * t * t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_limits() {
        // T -> 1 on large scales
        assert!((bbks_transfer(1e-9) - 1.0).abs() < 1e-6);
        // strictly decreasing and small on small scales
        assert!(bbks_transfer(0.1) > bbks_transfer(1.0));
        assert!(bbks_transfer(10.0) < 0.01);
    }

    #[test]
    fn spectrum_has_a_turnover() {
        let p = PowerSpectrum::default();
        assert_eq!(p.eval(0.0), 0.0);
        // rises on large scales (P ~ k), falls on small scales (P ~ k^{-3} ln²k)
        assert!(p.eval(0.02) > p.eval(0.002));
        assert!(p.eval(0.05) > p.eval(2.0));
        // peak near k ≈ 0.05·(Γ/0.21)
        let peak_region = p.eval(0.04);
        assert!(peak_region > p.eval(0.004) && peak_region > p.eval(0.8));
    }

    #[test]
    fn spectral_index_changes_large_scale_slope() {
        let p1 = PowerSpectrum {
            spectral_index: 1.0,
            gamma: 0.21,
        };
        let p2 = PowerSpectrum {
            spectral_index: 2.0,
            gamma: 0.21,
        };
        let ratio_small_k = p2.eval(1e-4) / p1.eval(1e-4);
        assert!((ratio_small_k - 1e-4).abs() / 1e-4 < 1e-3);
    }
}
