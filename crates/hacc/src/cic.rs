//! Cloud-in-cell (CIC) mass deposit and force interpolation.
//!
//! Positions are in grid units (`[0, ng)` per dimension, cell size 1) with
//! periodic wrapping. Using the same trilinear kernel for deposit and for
//! force interpolation makes the scheme momentum-conserving: a particle
//! exerts no force on itself and pairwise forces are antisymmetric.

use fft3d::Grid3;
use geometry::Vec3;

/// The 8 cells and weights a position contributes to.
#[inline]
fn cic_stencil(p: Vec3, ng: usize) -> [(isize, isize, isize, f64); 8] {
    let i0 = p.x.floor();
    let j0 = p.y.floor();
    let k0 = p.z.floor();
    let dx = p.x - i0;
    let dy = p.y - j0;
    let dz = p.z - k0;
    let (i0, j0, k0) = (i0 as isize, j0 as isize, k0 as isize);
    let _ = ng;
    [
        (i0, j0, k0, (1.0 - dx) * (1.0 - dy) * (1.0 - dz)),
        (i0 + 1, j0, k0, dx * (1.0 - dy) * (1.0 - dz)),
        (i0, j0 + 1, k0, (1.0 - dx) * dy * (1.0 - dz)),
        (i0 + 1, j0 + 1, k0, dx * dy * (1.0 - dz)),
        (i0, j0, k0 + 1, (1.0 - dx) * (1.0 - dy) * dz),
        (i0 + 1, j0, k0 + 1, dx * (1.0 - dy) * dz),
        (i0, j0 + 1, k0 + 1, (1.0 - dx) * dy * dz),
        (i0 + 1, j0 + 1, k0 + 1, dx * dy * dz),
    ]
}

/// Deposit unit-mass particles onto an `ng³` grid (adds to `rho`).
pub fn deposit(rho: &mut Grid3<f64>, positions: &[Vec3]) {
    let ng = rho.dims()[0];
    debug_assert_eq!(rho.dims(), [ng, ng, ng]);
    for &p in positions {
        for (i, j, k, w) in cic_stencil(p, ng) {
            let idx = rho.idx_wrapped(i, j, k);
            rho.data_mut()[idx] += w;
        }
    }
}

/// Convert a mass grid (unit-mass particles) into density contrast
/// `δ = ρ/ρ̄ − 1` given the total particle count.
pub fn to_density_contrast(rho: &mut Grid3<f64>, nparticles: usize) {
    let mean = nparticles as f64 / rho.len() as f64;
    for v in rho.data_mut() {
        *v = *v / mean - 1.0;
    }
}

/// Interpolate a vector field (three scalar grids) at `p` with the CIC
/// kernel.
pub fn gather(gx: &Grid3<f64>, gy: &Grid3<f64>, gz: &Grid3<f64>, p: Vec3) -> Vec3 {
    let ng = gx.dims()[0];
    let mut out = Vec3::ZERO;
    for (i, j, k, w) in cic_stencil(p, ng) {
        let idx = gx.idx_wrapped(i, j, k);
        out.x += gx.data()[idx] * w;
        out.y += gy.data()[idx] * w;
        out.z += gz.data()[idx] * w;
    }
    out
}

/// Interpolate a scalar grid at `p` with the CIC kernel.
pub fn gather_scalar(g: &Grid3<f64>, p: Vec3) -> f64 {
    let ng = g.dims()[0];
    let mut out = 0.0;
    for (i, j, k, w) in cic_stencil(p, ng) {
        out += g.data()[g.idx_wrapped(i, j, k)] * w;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deposit_conserves_mass() {
        let mut rho = Grid3::new([8, 8, 8], 0.0);
        let pos = vec![
            Vec3::new(0.5, 0.5, 0.5),
            Vec3::new(3.2, 4.7, 1.1),
            Vec3::new(7.9, 7.9, 7.9), // wraps
            Vec3::new(0.0, 0.0, 0.0), // exactly on a node
        ];
        deposit(&mut rho, &pos);
        let total: f64 = rho.data().iter().sum();
        assert!((total - 4.0).abs() < 1e-12);
    }

    #[test]
    fn particle_on_node_deposits_to_single_cell() {
        let mut rho = Grid3::new([4, 4, 4], 0.0);
        deposit(&mut rho, &[Vec3::new(2.0, 3.0, 1.0)]);
        assert!((rho[(2, 3, 1)] - 1.0).abs() < 1e-15);
        let total: f64 = rho.data().iter().sum();
        assert!((total - 1.0).abs() < 1e-15);
    }

    #[test]
    fn particle_at_cell_center_splits_evenly() {
        let mut rho = Grid3::new([4, 4, 4], 0.0);
        deposit(&mut rho, &[Vec3::splat(1.5)]);
        for di in 0..2 {
            for dj in 0..2 {
                for dk in 0..2 {
                    assert!((rho[(1 + di, 1 + dj, 1 + dk)] - 0.125).abs() < 1e-15);
                }
            }
        }
    }

    #[test]
    fn density_contrast_of_uniform_lattice_is_zero() {
        let ng = 4;
        let mut rho = Grid3::new([ng, ng, ng], 0.0);
        let pos: Vec<Vec3> = (0..ng)
            .flat_map(|i| {
                (0..ng).flat_map(move |j| {
                    (0..ng).map(move |k| Vec3::new(i as f64, j as f64, k as f64))
                })
            })
            .collect();
        deposit(&mut rho, &pos);
        to_density_contrast(&mut rho, pos.len());
        for v in rho.data() {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn gather_matches_deposit_kernel() {
        // A field linear in x is reproduced exactly by CIC interpolation.
        let ng = 8;
        let mut gx = Grid3::new([ng, ng, ng], 0.0);
        let gy = Grid3::new([ng, ng, ng], 0.0);
        let gz = Grid3::new([ng, ng, ng], 0.0);
        for k in 0..ng {
            for j in 0..ng {
                for i in 0..ng {
                    gx[(i, j, k)] = i as f64;
                }
            }
        }
        // away from the wrap seam, interpolation is exact
        let v = gather(&gx, &gy, &gz, Vec3::new(3.25, 2.5, 4.75));
        assert!((v.x - 3.25).abs() < 1e-12);
        assert_eq!(v.y, 0.0);
        assert_eq!(v.z, 0.0);
        assert!((gather_scalar(&gx, Vec3::new(5.5, 0.0, 0.0)) - 5.5).abs() < 1e-12);
    }

    #[test]
    fn periodic_wrap_in_gather() {
        let ng = 4;
        let mut g = Grid3::new([ng, ng, ng], 0.0);
        g[(0, 0, 0)] = 1.0;
        // halfway between cell 3 and cell 0 (wrapped)
        let v = gather_scalar(&g, Vec3::new(3.5, 0.0, 0.0));
        assert!((v - 0.5).abs() < 1e-12);
    }
}
