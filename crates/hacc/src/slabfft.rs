//! Distributed slab-decomposed FFT Poisson solver.
//!
//! HACC's spectral solver distributes the PM grid across ranks; the basic
//! `sim` path instead reduces the grid to rank 0 (a serial bottleneck
//! documented in DESIGN.md). This module removes that bottleneck with the
//! classic slab algorithm:
//!
//! 1. each rank owns a contiguous range of z-planes (a *z-slab*),
//! 2. forward-FFT the x and y lines of the slab locally,
//! 3. transpose (personalized all-to-all) so each rank owns a contiguous
//!    range of x-planes with *all* z — then FFT the z lines locally,
//! 4. apply the discrete Green's function (each rank knows its global x
//!    range),
//! 5. inverse z FFT, transpose back, inverse x/y FFT, normalize.
//!
//! The result is the potential, again as z-slabs. Output is bit-identical
//! to the serial [`crate::poisson::solve_potential`] because the same
//! radix-2 line transforms run in the same order along each axis.

use diy::comm::World;
use fft3d::{freq, Complex, Fft};

/// Contiguous z-plane range owned by `rank` of `nranks` for an `ng` grid.
pub fn slab_range(ng: usize, nranks: usize, rank: usize) -> std::ops::Range<usize> {
    let lo = rank * ng / nranks;
    let hi = (rank + 1) * ng / nranks;
    lo..hi
}

/// A z-slab of complex grid data: planes `zrange` of an `ng³` grid, stored
/// x-fastest (`idx = x + ng*(y + ng*(z - z0))`).
pub struct Slab {
    pub ng: usize,
    pub z0: usize,
    pub data: Vec<Complex>,
}

impl Slab {
    pub fn new(ng: usize, zrange: std::ops::Range<usize>) -> Self {
        Slab {
            ng,
            z0: zrange.start,
            data: vec![Complex::ZERO; ng * ng * zrange.len()],
        }
    }

    pub fn nz(&self) -> usize {
        self.data.len() / (self.ng * self.ng)
    }

    #[inline]
    pub fn idx(&self, x: usize, y: usize, zlocal: usize) -> usize {
        x + self.ng * (y + self.ng * zlocal)
    }
}

/// Transform x and y lines of a z-slab in place.
fn transform_xy(slab: &mut Slab, inverse: bool) {
    let ng = slab.ng;
    let plan = Fft::new(ng);
    let mut line = vec![Complex::ZERO; ng];
    for zl in 0..slab.nz() {
        // x lines (contiguous)
        for y in 0..ng {
            let base = slab.idx(0, y, zl);
            line.copy_from_slice(&slab.data[base..base + ng]);
            plan.transform(&mut line, inverse);
            slab.data[base..base + ng].copy_from_slice(&line);
        }
        // y lines
        for x in 0..ng {
            for (y, slot) in line.iter_mut().enumerate() {
                *slot = slab.data[slab.idx(x, y, zl)];
            }
            plan.transform(&mut line, inverse);
            for (y, &v) in line.iter().enumerate() {
                let i = slab.idx(x, y, zl);
                slab.data[i] = v;
            }
        }
    }
}

/// An x-slab: planes `xrange` with all y, z (`idx = (x-x0) + nx*(y + ng*z)`).
pub struct XSlab {
    pub ng: usize,
    pub x0: usize,
    pub nx: usize,
    pub data: Vec<Complex>,
}

impl XSlab {
    #[inline]
    pub fn idx(&self, xlocal: usize, y: usize, z: usize) -> usize {
        xlocal + self.nx * (y + self.ng * z)
    }
}

/// Transpose z-slabs to x-slabs (collective).
fn transpose_forward(world: &mut World, slab: &Slab) -> XSlab {
    let ng = slab.ng;
    let nranks = world.nranks();
    // pack one buffer per destination: all (x in dest range, y, local z)
    let outgoing: Vec<Vec<u8>> = (0..nranks)
        .map(|dest| {
            let xr = slab_range(ng, nranks, dest);
            let mut buf = Vec::with_capacity(xr.len() * ng * slab.nz() * 16);
            for zl in 0..slab.nz() {
                for y in 0..ng {
                    for x in xr.clone() {
                        let c = slab.data[slab.idx(x, y, zl)];
                        buf.extend_from_slice(&c.re.to_le_bytes());
                        buf.extend_from_slice(&c.im.to_le_bytes());
                    }
                }
            }
            buf
        })
        .collect();
    let incoming = world.all_to_all(outgoing);

    let xr = slab_range(ng, nranks, world.rank());
    let mut xs = XSlab {
        ng,
        x0: xr.start,
        nx: xr.len(),
        data: vec![Complex::ZERO; xr.len() * ng * ng],
    };
    for (src, buf) in incoming.iter().enumerate() {
        let zr = slab_range(ng, nranks, src);
        let mut off = 0;
        for z in zr {
            for y in 0..ng {
                for xl in 0..xs.nx {
                    let re = f64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
                    let im = f64::from_le_bytes(buf[off + 8..off + 16].try_into().unwrap());
                    off += 16;
                    let i = xs.idx(xl, y, z);
                    xs.data[i] = Complex::new(re, im);
                }
            }
        }
    }
    xs
}

/// Transpose x-slabs back to z-slabs (collective).
fn transpose_backward(world: &mut World, xs: &XSlab) -> Slab {
    let ng = xs.ng;
    let nranks = world.nranks();
    let outgoing: Vec<Vec<u8>> = (0..nranks)
        .map(|dest| {
            let zr = slab_range(ng, nranks, dest);
            let mut buf = Vec::with_capacity(zr.len() * ng * xs.nx * 16);
            for z in zr {
                for y in 0..ng {
                    for xl in 0..xs.nx {
                        let c = xs.data[xs.idx(xl, y, z)];
                        buf.extend_from_slice(&c.re.to_le_bytes());
                        buf.extend_from_slice(&c.im.to_le_bytes());
                    }
                }
            }
            buf
        })
        .collect();
    let incoming = world.all_to_all(outgoing);

    let zr = slab_range(ng, nranks, world.rank());
    let mut slab = Slab::new(ng, zr.clone());
    for (src, buf) in incoming.iter().enumerate() {
        let xr = slab_range(ng, nranks, src);
        let mut off = 0;
        for zl in 0..slab.nz() {
            for y in 0..ng {
                for x in xr.clone() {
                    let re = f64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
                    let im = f64::from_le_bytes(buf[off + 8..off + 16].try_into().unwrap());
                    off += 16;
                    let i = slab.idx(x, y, zl);
                    slab.data[i] = Complex::new(re, im);
                }
            }
        }
    }
    slab
}

/// Transform the z lines of an x-slab in place.
fn transform_z(xs: &mut XSlab, inverse: bool) {
    let ng = xs.ng;
    let plan = Fft::new(ng);
    let mut line = vec![Complex::ZERO; ng];
    for xl in 0..xs.nx {
        for y in 0..ng {
            for (z, slot) in line.iter_mut().enumerate() {
                *slot = xs.data[xs.idx(xl, y, z)];
            }
            plan.transform(&mut line, inverse);
            for (z, &v) in line.iter().enumerate() {
                let i = xs.idx(xl, y, z);
                xs.data[i] = v;
            }
        }
    }
}

/// Distributed Poisson solve: input is this rank's z-slab of the (real)
/// density contrast; output is the same slab of the potential.
/// `rhs_factor` as in [`crate::poisson::solve_potential`]. Collective.
pub fn solve_potential_slab(
    world: &mut World,
    delta_slab: &[f64],
    ng: usize,
    rhs_factor: f64,
) -> Vec<f64> {
    let zr = slab_range(ng, world.nranks(), world.rank());
    assert_eq!(delta_slab.len(), ng * ng * zr.len());
    let mut slab = Slab::new(ng, zr);
    for (c, &v) in slab.data.iter_mut().zip(delta_slab) {
        *c = Complex::new(v, 0.0);
    }

    // forward: xy local, transpose, z local
    transform_xy(&mut slab, false);
    let mut xs = transpose_forward(world, &slab);
    transform_z(&mut xs, false);

    // Green's function on the distributed spectrum
    let pi = std::f64::consts::PI;
    let sin2 = |idx: usize| {
        let t = (pi * freq(idx, ng) as f64 / ng as f64).sin();
        t * t
    };
    for xl in 0..xs.nx {
        let x = xs.x0 + xl;
        for y in 0..ng {
            for z in 0..ng {
                let denom = 4.0 * (sin2(x) + sin2(y) + sin2(z));
                let i = xs.idx(xl, y, z);
                if denom == 0.0 {
                    xs.data[i] = Complex::ZERO;
                } else {
                    xs.data[i] = xs.data[i].scale(-rhs_factor / denom);
                }
            }
        }
    }

    // inverse: z local, transpose back, xy local, normalize by 1/N³
    transform_z(&mut xs, true);
    let mut slab = transpose_backward(world, &xs);
    transform_xy(&mut slab, true);
    let scale = 1.0 / (ng * ng * ng) as f64;
    slab.data.iter().map(|c| c.re * scale).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poisson::solve_potential;
    use diy::comm::Runtime;
    use fft3d::Grid3;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_delta(ng: usize, seed: u64) -> Grid3<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut g = Grid3::new([ng, ng, ng], 0.0);
        for v in g.data_mut() {
            *v = rng.gen_range(-1.0..1.0);
        }
        let mean: f64 = g.data().iter().sum::<f64>() / g.len() as f64;
        for v in g.data_mut() {
            *v -= mean;
        }
        g
    }

    #[test]
    fn slab_ranges_cover_grid() {
        for (ng, nranks) in [(8usize, 1usize), (8, 2), (8, 3), (16, 5), (16, 16)] {
            let mut total = 0;
            let mut prev_end = 0;
            for r in 0..nranks {
                let range = slab_range(ng, nranks, r);
                assert_eq!(range.start, prev_end);
                prev_end = range.end;
                total += range.len();
            }
            assert_eq!(total, ng, "ng={ng} nranks={nranks}");
        }
    }

    #[test]
    fn distributed_solve_matches_serial_exactly() {
        let ng = 8;
        let delta = random_delta(ng, 3);
        let factor = 1.5;
        let serial = solve_potential(&delta, factor);

        for nranks in [1usize, 2, 3, 4] {
            let delta_ref = &delta;
            let results = Runtime::run(nranks, move |world| {
                let zr = slab_range(ng, world.nranks(), world.rank());
                let mut local = Vec::with_capacity(ng * ng * zr.len());
                for z in zr.clone() {
                    for y in 0..ng {
                        for x in 0..ng {
                            local.push(delta_ref[(x, y, z)]);
                        }
                    }
                }
                (zr.start, solve_potential_slab(world, &local, ng, factor))
            });
            for (z0, phi_slab) in results {
                let mut i = 0;
                let nz = phi_slab.len() / (ng * ng);
                for zl in 0..nz {
                    for y in 0..ng {
                        for x in 0..ng {
                            let expect = serial[(x, y, z0 + zl)];
                            let got = phi_slab[i];
                            i += 1;
                            assert!(
                                (got - expect).abs() < 1e-12,
                                "nranks={nranks} ({x},{y},{}): {got} vs {expect}",
                                z0 + zl
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn transposes_are_inverses() {
        let ng = 8;
        Runtime::run(3, |world| {
            let zr = slab_range(ng, world.nranks(), world.rank());
            let mut slab = Slab::new(ng, zr.clone());
            // unique value per global cell
            for zl in 0..slab.nz() {
                for y in 0..ng {
                    for x in 0..ng {
                        let i = slab.idx(x, y, zl);
                        let gid = x + ng * (y + ng * (zr.start + zl));
                        slab.data[i] = Complex::new(gid as f64, -(gid as f64));
                    }
                }
            }
            let orig = slab.data.clone();
            let xs = transpose_forward(world, &slab);
            // check x-slab contents
            for xl in 0..xs.nx {
                for y in 0..ng {
                    for z in 0..ng {
                        let gid = (xs.x0 + xl) + ng * (y + ng * z);
                        assert_eq!(xs.data[xs.idx(xl, y, z)].re, gid as f64);
                    }
                }
            }
            let back = transpose_backward(world, &xs);
            assert_eq!(back.data, orig);
        });
    }
}
