//! Background cosmology in code units.
//!
//! Code units: lengths in grid cells, time in 1/H₀, and a critical-density
//! matter-only (Einstein–de Sitter) universe. In these units the comoving
//! Poisson equation is `∇²φ = (3/2) Ωm δ / a` and the Hubble rate is
//! `H(a) = a^{-3/2}`. EdS keeps the growth function trivial (`D(a) = a`),
//! which both simplifies the Zel'dovich setup and makes tests exact.

/// Background parameters (Einstein–de Sitter: Ωm = 1).
#[derive(Debug, Clone, Copy)]
pub struct Cosmology {
    /// Matter density parameter (1.0 for EdS; kept explicit so the Poisson
    /// factor is visible in formulas).
    pub omega_m: f64,
}

impl Default for Cosmology {
    fn default() -> Self {
        Cosmology { omega_m: 1.0 }
    }
}

impl Cosmology {
    /// Hubble rate `H(a)` in units of H₀.
    pub fn hubble(&self, a: f64) -> f64 {
        (self.omega_m / (a * a * a)).sqrt()
    }

    /// `da/dt` in code units.
    pub fn a_dot(&self, a: f64) -> f64 {
        a * self.hubble(a)
    }

    /// Linear growth factor, normalized so `D(1) = 1` (EdS: `D = a`).
    pub fn growth(&self, a: f64) -> f64 {
        a
    }

    /// Kick coefficient: `dp/da = -∇φ / (da/dt)`, so a momentum update over
    /// `da` multiplies the force by this factor.
    pub fn kick_factor(&self, a: f64, da: f64) -> f64 {
        da / self.a_dot(a)
    }

    /// Drift coefficient: `dx/da = p / (a² da/dt)`.
    pub fn drift_factor(&self, a: f64, da: f64) -> f64 {
        da / (a * a * self.a_dot(a))
    }

    /// Zel'dovich momentum per unit displacement at scale factor `a`:
    /// `p = a² ẋ` with `ẋ = H(a) ψ` gives `p = a² H(a) ψ`.
    pub fn zeldovich_momentum_factor(&self, a: f64) -> f64 {
        a * a * self.hubble(a)
    }

    /// Poisson right-hand-side factor: `∇²φ = poisson_factor(a) · δ`.
    pub fn poisson_factor(&self, a: f64) -> f64 {
        1.5 * self.omega_m / a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eds_relations() {
        let c = Cosmology::default();
        assert_eq!(c.hubble(1.0), 1.0);
        assert!((c.hubble(0.25) - 8.0).abs() < 1e-12); // a^{-3/2}
        assert!((c.a_dot(0.25) - 2.0).abs() < 1e-12); // a^{-1/2}
        assert_eq!(c.growth(0.3), 0.3);
        assert!((c.zeldovich_momentum_factor(0.25) - 0.5).abs() < 1e-12); // sqrt(a)
        assert!((c.poisson_factor(0.5) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn kick_and_drift_scale_with_da() {
        let c = Cosmology::default();
        let a = 0.5;
        assert!((c.kick_factor(a, 0.02) - 2.0 * c.kick_factor(a, 0.01)).abs() < 1e-15);
        assert!((c.drift_factor(a, 0.02) - 2.0 * c.drift_factor(a, 0.01)).abs() < 1e-15);
        // drift = kick / a²
        assert!((c.drift_factor(a, 0.01) - c.kick_factor(a, 0.01) / (a * a)).abs() < 1e-15);
    }
}
