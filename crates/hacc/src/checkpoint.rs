//! HACC-style particle checkpoints.
//!
//! §III-C2 compares the tessellation output against "a HACC checkpoint
//! that saves only particle data [using] 40 bytes per particle". This
//! module implements that exact record — per particle:
//!
//! ```text
//! position   3 × f32   12 B
//! velocity   3 × f32   12 B
//! potential      f32    4 B
//! id             u64    8 B
//! mask           u32    4 B
//!                      ----
//!                      40 B
//! ```
//!
//! written collectively through the same single-file block I/O as the
//! tessellation, so checkpoints can be produced in situ at selected steps.

use std::io;
use std::path::Path;

use diy::codec::{CodecError, Decode, Encode, Reader};
use diy::comm::World;
use geometry::Vec3;

use crate::sim::{Particle, Simulation};

/// Exact HACC record size.
pub const BYTES_PER_PARTICLE: usize = 40;

/// One checkpoint record (f32 precision, as HACC stores).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointRecord {
    pub pos: [f32; 3],
    pub vel: [f32; 3],
    pub phi: f32,
    pub id: u64,
    pub mask: u32,
}

impl CheckpointRecord {
    pub fn from_particle(p: &Particle) -> Self {
        CheckpointRecord {
            pos: [p.pos.x as f32, p.pos.y as f32, p.pos.z as f32],
            vel: [p.mom.x as f32, p.mom.y as f32, p.mom.z as f32],
            phi: 0.0,
            id: p.id,
            mask: 0,
        }
    }

    pub fn position(&self) -> Vec3 {
        Vec3::new(self.pos[0] as f64, self.pos[1] as f64, self.pos[2] as f64)
    }
}

impl Encode for CheckpointRecord {
    fn encode(&self, buf: &mut Vec<u8>) {
        for v in self.pos.iter().chain(&self.vel) {
            v.encode(buf);
        }
        self.phi.encode(buf);
        self.id.encode(buf);
        self.mask.encode(buf);
    }
}

impl Decode for CheckpointRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(CheckpointRecord {
            pos: [f32::decode(r)?, f32::decode(r)?, f32::decode(r)?],
            vel: [f32::decode(r)?, f32::decode(r)?, f32::decode(r)?],
            phi: f32::decode(r)?,
            id: u64::decode(r)?,
            mask: u32::decode(r)?,
        })
    }
}

/// Collectively write a checkpoint of the live simulation (one I/O block
/// per owned decomposition block). Returns total file bytes.
pub fn write_checkpoint(world: &mut World, sim: &Simulation, path: &Path) -> io::Result<u64> {
    let blocks: Vec<(u64, Vec<u8>)> = sim
        .blocks
        .iter()
        .map(|(&gid, particles)| {
            // raw records, no per-block length prefix: the block length
            // divided by 40 is the particle count
            let mut buf = Vec::with_capacity(particles.len() * BYTES_PER_PARTICLE);
            for p in particles {
                CheckpointRecord::from_particle(p).encode(&mut buf);
            }
            (gid, buf)
        })
        .collect();
    diy::io::write_blocks(world, path, &blocks)
}

/// Serial read of all records (any rank count may have written them).
pub fn read_checkpoint(path: &Path) -> io::Result<Vec<CheckpointRecord>> {
    let mut out = Vec::new();
    for (_, bytes) in diy::io::read_all_blocks(path)? {
        if bytes.len() % BYTES_PER_PARTICLE != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "checkpoint block is not a whole number of records",
            ));
        }
        let mut r = Reader::new(&bytes);
        while !r.is_empty() {
            out.push(
                CheckpointRecord::decode(&mut r)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
            );
        }
    }
    out.sort_by_key(|rec| rec.id);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimParams;
    use diy::comm::Runtime;

    #[test]
    fn record_is_exactly_40_bytes() {
        let rec = CheckpointRecord {
            pos: [1.0, 2.0, 3.0],
            vel: [4.0, 5.0, 6.0],
            phi: 7.0,
            id: 8,
            mask: 9,
        };
        assert_eq!(rec.to_bytes().len(), BYTES_PER_PARTICLE);
        assert_eq!(CheckpointRecord::from_bytes(&rec.to_bytes()).unwrap(), rec);
    }

    #[test]
    fn checkpoint_roundtrip_at_40_bytes_per_particle() {
        let dir = std::env::temp_dir().join("hacc-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.bin");
        let params = SimParams::paper_like(8);
        let path2 = path.clone();
        let sizes = Runtime::run(2, move |w| {
            let mut sim = Simulation::init(w, params, 4);
            sim.run_steps(w, 3);
            write_checkpoint(w, &sim, &path2).unwrap()
        });
        let n = 8usize * 8 * 8;
        // payload = exactly 40 B/particle (+ header/footer framing)
        let payload = n * BYTES_PER_PARTICLE;
        assert!(sizes[0] as usize >= payload);
        assert!((sizes[0] as usize - payload) < 256 + 24 * 8, "framing only");

        let records = read_checkpoint(&path).unwrap();
        assert_eq!(records.len(), n);
        // ids complete and sorted
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            // positions within the box at f32 precision
            let p = r.position();
            for d in 0..3 {
                assert!((-1e-3..8.001).contains(&p[d]), "{p}");
            }
        }
    }
}
