//! Particle-mesh N-body cosmology simulation — the HACC stand-in.
//!
//! The paper runs its tessellation in situ with HACC, a multi-method
//! petascale N-body framework. This crate reproduces the part of HACC the
//! tessellation actually consumes: a periodic-box dark-matter-only
//! simulation whose particles start near a regular lattice (1 Mpc/h
//! spacing) and evolve gravitationally into halos, filaments, and voids.
//!
//! Components:
//!
//! * [`cosmology`] — an Einstein–de Sitter background in code units
//!   (lengths in grid cells, time in 1/H₀), where the growth factor is
//!   simply `D(a) = a`.
//! * [`power`] — an initial power spectrum `P(k) ∝ kⁿ T²(k)` with a
//!   BBKS-like transfer function.
//! * [`ic`] — Zel'dovich initial conditions from a Gaussian random field.
//! * [`cic`] — cloud-in-cell deposit and force interpolation.
//! * [`poisson`] — FFT Poisson solver (discrete 7-point Green's function).
//! * [`stepper`] — serial kick–drift integrator.
//! * [`sim`] — the distributed simulation: particles owned per diy block,
//!   density merged with a tree reduction, potential broadcast, particles
//!   migrated between blocks after every drift.
//!
//! Fidelity note (see `DESIGN.md`): this is a first-order symplectic PM
//! integrator, qualitatively — not quantitatively — matching HACC. The
//! paper's experiments consume only the *morphology* of the particle
//! distribution (cell volume distributions, voids), which PM dynamics
//! reproduce well at laptop scale.

pub mod checkpoint;
pub mod cic;
pub mod cosmology;
pub mod ic;
pub mod poisson;
pub mod power;
pub mod sim;
pub mod slabfft;
pub mod spectrum;
pub mod stepper;

pub use cosmology::Cosmology;
pub use sim::{Particle, SimParams, Simulation, PHASE_SIM};
pub use stepper::PmSolver;
