//! FFT-based Poisson solver on the periodic PM grid.
//!
//! Solves `∇²φ = rhs_factor · δ` with the *discrete* 7-point Laplacian
//! Green's function: the eigenvalue of the standard second-difference
//! operator for mode `k` is `-4 Σ_d sin²(k_d/2)` (grid spacing 1), so
//!
//! ```text
//! φ(k) = - rhs_factor · δ(k) / (4 Σ_d sin²(π f_d / ng))
//! ```
//!
//! Using the discrete rather than continuum Green's function makes the
//! spectral solve exactly consistent with the finite-difference gradient
//! used for forces.

use fft3d::{fft3_forward, fft3_inverse, freq, Complex, Grid3};

/// Solve the Poisson equation; `delta` holds the density contrast and is
/// replaced by the potential φ. `rhs_factor` is usually
/// [`crate::Cosmology::poisson_factor`].
pub fn solve_potential(delta: &Grid3<f64>, rhs_factor: f64) -> Grid3<f64> {
    let [ng, _, _] = delta.dims();
    let mut f = Grid3::new([ng, ng, ng], Complex::ZERO);
    for (idx, &v) in delta.data().iter().enumerate() {
        f.data_mut()[idx] = Complex::new(v, 0.0);
    }
    fft3_forward(&mut f);

    let pi = std::f64::consts::PI;
    for k in 0..ng {
        for j in 0..ng {
            for i in 0..ng {
                let denom = {
                    let s = |idx: usize| {
                        let t = (pi * freq(idx, ng) as f64 / ng as f64).sin();
                        t * t
                    };
                    4.0 * (s(i) + s(j) + s(k))
                };
                let g = &mut f[(i, j, k)];
                if denom == 0.0 {
                    *g = Complex::ZERO; // zero mode: mean potential is free
                } else {
                    *g = g.scale(-rhs_factor / denom);
                }
            }
        }
    }

    fft3_inverse(&mut f);
    let mut phi = Grid3::new([ng, ng, ng], 0.0);
    for (idx, v) in f.data().iter().enumerate() {
        phi.data_mut()[idx] = v.re;
    }
    phi
}

/// Acceleration grids `g = -∇φ` via centered differences (periodic).
pub fn gradient_force(phi: &Grid3<f64>) -> [Grid3<f64>; 3] {
    let [ng, _, _] = phi.dims();
    let mut gx = Grid3::new([ng, ng, ng], 0.0);
    let mut gy = Grid3::new([ng, ng, ng], 0.0);
    let mut gz = Grid3::new([ng, ng, ng], 0.0);
    for k in 0..ng {
        for j in 0..ng {
            for i in 0..ng {
                let ii = i as isize;
                let jj = j as isize;
                let kk = k as isize;
                let d = |a: usize, b: usize| phi.data()[a] - phi.data()[b];
                gx[(i, j, k)] = -0.5
                    * d(
                        phi.idx_wrapped(ii + 1, jj, kk),
                        phi.idx_wrapped(ii - 1, jj, kk),
                    );
                gy[(i, j, k)] = -0.5
                    * d(
                        phi.idx_wrapped(ii, jj + 1, kk),
                        phi.idx_wrapped(ii, jj - 1, kk),
                    );
                gz[(i, j, k)] = -0.5
                    * d(
                        phi.idx_wrapped(ii, jj, kk + 1),
                        phi.idx_wrapped(ii, jj, kk - 1),
                    );
            }
        }
    }
    [gx, gy, gz]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Apply the discrete 7-point Laplacian.
    fn laplacian(phi: &Grid3<f64>) -> Grid3<f64> {
        let [ng, _, _] = phi.dims();
        let mut out = Grid3::new([ng, ng, ng], 0.0);
        for k in 0..ng {
            for j in 0..ng {
                for i in 0..ng {
                    let (ii, jj, kk) = (i as isize, j as isize, k as isize);
                    let p = |a: isize, b: isize, c: isize| phi.data()[phi.idx_wrapped(a, b, c)];
                    out[(i, j, k)] = p(ii + 1, jj, kk)
                        + p(ii - 1, jj, kk)
                        + p(ii, jj + 1, kk)
                        + p(ii, jj - 1, kk)
                        + p(ii, jj, kk + 1)
                        + p(ii, jj, kk - 1)
                        - 6.0 * p(ii, jj, kk);
                }
            }
        }
        out
    }

    #[test]
    fn solution_satisfies_discrete_poisson() {
        // random zero-mean source
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let ng = 8;
        let mut delta = Grid3::new([ng, ng, ng], 0.0);
        for v in delta.data_mut() {
            *v = rng.gen_range(-1.0..1.0);
        }
        let mean: f64 = delta.data().iter().sum::<f64>() / delta.len() as f64;
        for v in delta.data_mut() {
            *v -= mean;
        }
        let factor = 1.5;
        let phi = solve_potential(&delta, factor);
        let lap = laplacian(&phi);
        for (l, d) in lap.data().iter().zip(delta.data()) {
            assert!((l - factor * d).abs() < 1e-9, "{l} vs {}", factor * d);
        }
    }

    #[test]
    fn uniform_density_gives_zero_force() {
        let ng = 8;
        let delta = Grid3::new([ng, ng, ng], 0.0);
        let phi = solve_potential(&delta, 1.5);
        let [gx, gy, gz] = gradient_force(&phi);
        for g in [&gx, &gy, &gz] {
            for v in g.data() {
                assert!(v.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn point_mass_attracts_from_all_sides() {
        // Overdensity at the center: force on either side along x points
        // toward the center.
        let ng = 16;
        let mut delta = Grid3::new([ng, ng, ng], -1.0 / (ng * ng * ng - 1) as f64);
        delta[(8, 8, 8)] = 1.0;
        let phi = solve_potential(&delta, 1.5);
        let [gx, _, _] = gradient_force(&phi);
        assert!(
            gx[(10, 8, 8)] < 0.0,
            "right of mass pulls -x: {}",
            gx[(10, 8, 8)]
        );
        assert!(
            gx[(6, 8, 8)] > 0.0,
            "left of mass pulls +x: {}",
            gx[(6, 8, 8)]
        );
        // symmetric magnitudes
        assert!((gx[(10, 8, 8)] + gx[(6, 8, 8)]).abs() < 1e-10);
        // force decays with distance
        assert!(gx[(10, 8, 8)].abs() > gx[(13, 8, 8)].abs());
    }

    #[test]
    fn forces_sum_to_zero() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let ng = 8;
        let mut delta = Grid3::new([ng, ng, ng], 0.0);
        for v in delta.data_mut() {
            *v = rng.gen_range(-0.5..0.5);
        }
        let phi = solve_potential(&delta, 1.5);
        for g in gradient_force(&phi) {
            let total: f64 = g.data().iter().sum();
            assert!(total.abs() < 1e-9);
        }
    }
}
