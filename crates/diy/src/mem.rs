//! Process-wide memory accounting: a counting wrapper around the system
//! allocator plus Linux peak-RSS sampling.
//!
//! The counting allocator is installed as the workspace's
//! `#[global_allocator]` (see the crate root), so every binary and test
//! linking `diy` gets allocation counters for free. The counters are
//! process-global relaxed atomics — a handful of uncontended atomic ops
//! per allocation, which the `bench_memory` gate holds under 5% of the
//! tessellation workload. Because the accounting is process-wide, the
//! per-rank values sampled into [`crate::metrics::MemStats`] are merged
//! across ranks with an elementwise *max*, not a sum.
//!
//! `set_enabled(false)` turns the wrapper into a plain pass-through (one
//! relaxed load per call), which is how the accounting overhead is
//! A/B-measured in-process: a global allocator cannot be uninstalled, but
//! its counting can. Toggling mid-run lets `live_bytes` drift (frees of
//! blocks allocated while disabled are not symmetric), so the gauge is
//! clamped at zero on read and [`reset_peak`] re-bases the high-water
//! mark; the monotonic totals (`alloc_count`, `alloc_bytes_total`) are
//! unaffected.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering::Relaxed};

static ENABLED: AtomicBool = AtomicBool::new(true);
static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
// Signed: toggling `ENABLED` makes alloc/free accounting asymmetric, so
// the live gauge may transiently go negative; reads clamp at zero.
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
static PEAK_LIVE: AtomicI64 = AtomicI64::new(0);

/// Counting allocator: forwards to [`System`], tracking allocation count,
/// cumulative bytes, live bytes, and the live-byte high-water mark.
pub struct CountingAlloc;

#[inline]
fn on_alloc(size: usize) {
    ALLOC_COUNT.fetch_add(1, Relaxed);
    ALLOC_BYTES.fetch_add(size as u64, Relaxed);
    let live = LIVE_BYTES.fetch_add(size as i64, Relaxed) + size as i64;
    PEAK_LIVE.fetch_max(live, Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() && ENABLED.load(Relaxed) {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() && ENABLED.load(Relaxed) {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        if ENABLED.load(Relaxed) {
            LIVE_BYTES.fetch_sub(layout.size() as i64, Relaxed);
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() && ENABLED.load(Relaxed) {
            ALLOC_COUNT.fetch_add(1, Relaxed);
            let grown = new_size.saturating_sub(layout.size());
            ALLOC_BYTES.fetch_add(grown as u64, Relaxed);
            let delta = new_size as i64 - layout.size() as i64;
            let live = LIVE_BYTES.fetch_add(delta, Relaxed) + delta;
            PEAK_LIVE.fetch_max(live, Relaxed);
        }
        p
    }
}

/// Point-in-time allocator counters (see [`stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocations (and growing reallocations) since process start.
    pub alloc_count: u64,
    /// Cumulative bytes allocated since process start.
    pub alloc_bytes_total: u64,
    /// Bytes currently live (clamped at zero; see module docs).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` since process start or the last
    /// [`reset_peak`].
    pub peak_live_bytes: u64,
}

/// Snapshot the process-wide allocator counters.
pub fn stats() -> AllocStats {
    AllocStats {
        alloc_count: ALLOC_COUNT.load(Relaxed),
        alloc_bytes_total: ALLOC_BYTES.load(Relaxed),
        live_bytes: LIVE_BYTES.load(Relaxed).max(0) as u64,
        peak_live_bytes: PEAK_LIVE.load(Relaxed).max(0) as u64,
    }
}

/// Re-base the live-byte high-water mark to the current live gauge, so a
/// subsequent [`stats`] measures the peak of one phase in isolation.
pub fn reset_peak() {
    PEAK_LIVE.store(LIVE_BYTES.load(Relaxed), Relaxed);
}

/// Enable or disable counting (the allocator always forwards to the
/// system allocator either way). Returns the previous setting. Intended
/// for in-process overhead A/B measurement only; see the module docs for
/// the `live_bytes` drift caveat.
pub fn set_enabled(on: bool) -> bool {
    ENABLED.swap(on, Relaxed)
}

/// `(VmRSS, VmHWM)` in kilobytes from `/proc/self/status`, or `(0, 0)`
/// where that file is unavailable or unparseable (non-Linux hosts).
/// `VmHWM` is the process's resident-set high-water mark and is
/// monotonic for the life of the process — phase-local peaks need the
/// resettable allocator gauge instead.
pub fn proc_status_kb() -> (u64, u64) {
    let Ok(text) = std::fs::read_to_string("/proc/self/status") else {
        return (0, 0);
    };
    let field = |key: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(key))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    (field("VmRSS:"), field("VmHWM:"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The counters are process-global and other unit tests allocate
    // concurrently, so these tests (a) serialize against each other and
    // (b) assert with margins far below their own allocation sizes.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn allocations_move_the_counters() {
        let _guard = SERIAL.lock().unwrap();
        let before = stats();
        let v: Vec<u8> = std::hint::black_box(vec![7u8; 8 << 20]);
        let during = stats();
        assert!(during.alloc_count > before.alloc_count);
        assert!(during.alloc_bytes_total >= before.alloc_bytes_total + (8 << 20));
        assert!(during.peak_live_bytes >= 8 << 20);
        assert!(during.live_bytes >= 8 << 20);
        drop(v);
        // monotonic totals never decrease
        let after = stats();
        assert!(after.alloc_bytes_total >= during.alloc_bytes_total);
    }

    #[test]
    fn reset_peak_rebases_to_live() {
        let _guard = SERIAL.lock().unwrap();
        let v: Vec<u8> = std::hint::black_box(vec![2u8; 32 << 20]);
        let spike = stats().peak_live_bytes;
        assert!(spike >= 32 << 20);
        drop(v);
        reset_peak();
        let rebased = stats().peak_live_bytes;
        assert!(
            rebased + (16 << 20) <= spike,
            "reset_peak left the mark at {rebased} (spike was {spike})"
        );
    }

    #[test]
    fn disabled_counting_freezes_the_totals() {
        let _guard = SERIAL.lock().unwrap();
        let was = set_enabled(false);
        let before = stats();
        let v: Vec<u8> = std::hint::black_box(vec![3u8; 8 << 20]);
        let during = stats();
        drop(v);
        set_enabled(was);
        // concurrent test threads may record their own small allocations,
        // but this thread's 8 MiB must be invisible
        assert!(
            during.alloc_bytes_total < before.alloc_bytes_total + (4 << 20),
            "disabled counting still recorded bytes"
        );
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn proc_status_reports_nonzero_rss() {
        let (rss, hwm) = proc_status_kb();
        assert!(rss > 0, "VmRSS");
        assert!(hwm >= rss, "VmHWM {hwm} < VmRSS {rss}");
    }
}
