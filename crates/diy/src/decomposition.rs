//! Regular block decomposition of a 3D domain with periodic neighborhoods.
//!
//! The global domain is split into a `dims[0] × dims[1] × dims[2]` grid of
//! blocks. Each block knows its 26-neighborhood; when a dimension is
//! periodic, blocks on one edge of the domain are linked to blocks on the
//! opposite edge (*periodic boundary neighbors*, one of the two features the
//! paper added to DIY). Each neighbor link carries the coordinate
//! translation to apply to data sent across the periodic seam.

use geometry::{Aabb, Vec3};

/// One neighbor link of a block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Global id of the neighboring block.
    pub gid: u64,
    /// Direction of the link in block-grid steps (components in -1..=1).
    pub dir: [i32; 3],
    /// Translation to add to a point's coordinates when sending it to this
    /// neighbor. Zero unless the link crosses a periodic boundary.
    pub xform: Vec3,
    /// `true` when the link wraps around a periodic boundary.
    pub periodic: bool,
}

impl Neighbor {
    /// Compact key for the periodic image this link applies: the sign of
    /// the translation per dimension (all zero for non-wrapping links).
    /// Two links to the same block with the same image deliver data at the
    /// same coordinates, so (gid, image, item id) identifies a shipment.
    pub fn image(&self) -> [i8; 3] {
        let sign = |v: f64| {
            if v > 0.0 {
                1i8
            } else if v < 0.0 {
                -1
            } else {
                0
            }
        };
        [sign(self.xform.x), sign(self.xform.y), sign(self.xform.z)]
    }
}

/// A regular decomposition of `domain` into a grid of blocks.
#[derive(Debug, Clone)]
pub struct Decomposition {
    pub domain: Aabb,
    pub dims: [usize; 3],
    pub periodic: [bool; 3],
}

impl Decomposition {
    /// Decompose `domain` into exactly `nblocks` blocks using a near-cubic
    /// factorization (mirrors DIY's regular decomposer).
    pub fn regular(domain: Aabb, nblocks: usize, periodic: [bool; 3]) -> Self {
        assert!(nblocks > 0, "need at least one block");
        let dims = factor3(nblocks);
        Decomposition {
            domain,
            dims,
            periodic,
        }
    }

    /// Decompose with explicit per-dimension block counts.
    pub fn with_dims(domain: Aabb, dims: [usize; 3], periodic: [bool; 3]) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "block grid dims must be positive"
        );
        Decomposition {
            domain,
            dims,
            periodic,
        }
    }

    pub fn nblocks(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Grid coordinates of block `gid` (x fastest).
    pub fn coords(&self, gid: u64) -> [usize; 3] {
        let g = gid as usize;
        assert!(g < self.nblocks(), "gid {gid} out of range");
        [
            g % self.dims[0],
            (g / self.dims[0]) % self.dims[1],
            g / (self.dims[0] * self.dims[1]),
        ]
    }

    /// Global id of the block at grid coordinates `c`.
    pub fn gid(&self, c: [usize; 3]) -> u64 {
        debug_assert!(c[0] < self.dims[0] && c[1] < self.dims[1] && c[2] < self.dims[2]);
        (c[0] + self.dims[0] * (c[1] + self.dims[1] * c[2])) as u64
    }

    /// Spatial bounds of block `gid`.
    ///
    /// Computed from the global bounds so adjacent blocks share exact
    /// boundary coordinates (no accumulation of rounding across the grid).
    pub fn block_bounds(&self, gid: u64) -> Aabb {
        let c = self.coords(gid);
        let lo = self.domain.min;
        let e = self.domain.extent();
        let f = |d: usize, i: usize| lo[d] + e[d] * (i as f64) / (self.dims[d] as f64);
        Aabb::new(
            Vec3::new(f(0, c[0]), f(1, c[1]), f(2, c[2])),
            Vec3::new(f(0, c[0] + 1), f(1, c[1] + 1), f(2, c[2] + 1)),
        )
    }

    /// The block owning point `p` (after periodic wrapping in periodic
    /// dimensions; non-periodic dimensions clamp to the domain).
    pub fn block_of_point(&self, p: Vec3) -> u64 {
        let e = self.domain.extent();
        let mut c = [0usize; 3];
        for d in 0..3 {
            let mut x = p[d];
            if self.periodic[d] {
                x = self.domain.min[d] + (x - self.domain.min[d]).rem_euclid(e[d]);
            }
            let t = ((x - self.domain.min[d]) / e[d] * self.dims[d] as f64).floor();
            c[d] = (t as isize).clamp(0, self.dims[d] as isize - 1) as usize;
        }
        self.gid(c)
    }

    /// All neighbor links of block `gid`: the (up to) 26 surrounding grid
    /// cells, including periodic wrap-around links. With small grids a
    /// neighbor may be the block itself (self-link across the periodic
    /// seam) or the same block may appear under several distinct
    /// translations; each `(gid, xform)` pair is reported once.
    pub fn neighbors(&self, gid: u64) -> Vec<Neighbor> {
        let c = self.coords(gid);
        let e = self.domain.extent();
        let mut out = Vec::with_capacity(26);
        for dz in -1i32..=1 {
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    let dir = [dx, dy, dz];
                    let mut nc = [0usize; 3];
                    let mut xform = Vec3::ZERO;
                    let mut wraps = false;
                    let mut valid = true;
                    for d in 0..3 {
                        let raw = c[d] as i32 + dir[d];
                        if raw < 0 {
                            if !self.periodic[d] {
                                valid = false;
                                break;
                            }
                            nc[d] = self.dims[d] - 1;
                            // Crossing the lower boundary: data moves up by L.
                            xform[d] = e[d];
                            wraps = true;
                        } else if raw as usize >= self.dims[d] {
                            if !self.periodic[d] {
                                valid = false;
                                break;
                            }
                            nc[d] = 0;
                            // Crossing the upper boundary: data moves down by L.
                            xform[d] = -e[d];
                            wraps = true;
                        } else {
                            nc[d] = raw as usize;
                        }
                    }
                    if !valid {
                        continue;
                    }
                    let n = Neighbor {
                        gid: self.gid(nc),
                        dir,
                        xform,
                        periodic: wraps,
                    };
                    // With 1 or 2 blocks in a dimension, different directions
                    // can alias to the same (gid, xform); keep one.
                    if !out
                        .iter()
                        .any(|o: &Neighbor| o.gid == n.gid && (o.xform - n.xform).norm() < 1e-12)
                    {
                        out.push(n);
                    }
                }
            }
        }
        out
    }
}

/// Near-cubic factorization of `n` into three factors, largest spread
/// minimized (greedy over the prime factorization, matching DIY's decomposer
/// closely enough for benchmarking).
pub fn factor3(n: usize) -> [usize; 3] {
    let mut best = [n, 1, 1];
    let mut best_score = usize::MAX;
    // Enumerate all factorizations a*b*c = n with a <= b <= c.
    let mut a = 1;
    while a * a * a <= n {
        if n.is_multiple_of(a) {
            let m = n / a;
            let mut b = a;
            while b * b <= m {
                if m.is_multiple_of(b) {
                    let c = m / b;
                    let score = c - a; // minimize spread
                    if score < best_score {
                        best_score = score;
                        best = [a, b, c];
                    }
                }
                b += 1;
            }
        }
        a += 1;
    }
    best
}

/// Assignment of blocks to ranks (contiguous ranges, DIY's default).
#[derive(Debug, Clone, Copy)]
pub struct Assignment {
    pub nblocks: usize,
    pub nranks: usize,
}

impl Assignment {
    pub fn new(nblocks: usize, nranks: usize) -> Self {
        assert!(nranks > 0 && nblocks > 0);
        assert!(
            nblocks >= nranks,
            "need at least one block per rank ({nblocks} blocks, {nranks} ranks)"
        );
        Assignment { nblocks, nranks }
    }

    /// The rank that owns block `gid`.
    pub fn rank_of_block(&self, gid: u64) -> usize {
        let g = gid as usize;
        assert!(g < self.nblocks);
        // Inverse of the contiguous ranges produced by `blocks_of_rank`.
        ((g + 1) * self.nranks - 1) / self.nblocks
    }

    /// The contiguous range of block gids owned by `rank`.
    pub fn blocks_of_rank(&self, rank: usize) -> std::ops::Range<u64> {
        assert!(rank < self.nranks);
        let lo = (rank * self.nblocks) / self.nranks;
        let hi = ((rank + 1) * self.nblocks) / self.nranks;
        lo as u64..hi as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorization_is_near_cubic() {
        assert_eq!(factor3(1), [1, 1, 1]);
        assert_eq!(factor3(8), [2, 2, 2]);
        assert_eq!(factor3(64), [4, 4, 4]);
        assert_eq!(factor3(12), [2, 2, 3]);
        assert_eq!(factor3(7), [1, 1, 7]); // prime: nothing better exists
        let f = factor3(24);
        assert_eq!(f.iter().product::<usize>(), 24);
        assert_eq!(f, [2, 3, 4]);
    }

    #[test]
    fn coords_gid_roundtrip() {
        let dec = Decomposition::with_dims(Aabb::cube(8.0), [2, 3, 4], [true; 3]);
        for gid in 0..dec.nblocks() as u64 {
            assert_eq!(dec.gid(dec.coords(gid)), gid);
        }
    }

    #[test]
    fn block_bounds_tile_the_domain() {
        let dec = Decomposition::regular(Aabb::cube(10.0), 8, [true; 3]);
        assert_eq!(dec.dims, [2, 2, 2]);
        let total: f64 = (0..8).map(|g| dec.block_bounds(g).volume()).sum();
        assert!((total - 1000.0).abs() < 1e-9);
        // shared boundary coordinates are exact
        let b0 = dec.block_bounds(0);
        let b1 = dec.block_bounds(1);
        assert_eq!(b0.max.x, b1.min.x);
    }

    #[test]
    fn block_of_point_matches_bounds() {
        let dec = Decomposition::with_dims(Aabb::cube(9.0), [3, 3, 3], [true; 3]);
        for gid in 0..dec.nblocks() as u64 {
            let c = dec.block_bounds(gid).center();
            assert_eq!(dec.block_of_point(c), gid);
        }
        // periodic wrap
        assert_eq!(
            dec.block_of_point(Vec3::new(-0.5, 0.5, 0.5)),
            dec.block_of_point(Vec3::new(8.5, 0.5, 0.5))
        );
    }

    #[test]
    fn interior_block_has_26_neighbors() {
        let dec = Decomposition::with_dims(Aabb::cube(4.0), [4, 4, 4], [false; 3]);
        let center = dec.gid([1, 1, 1]);
        assert_eq!(dec.neighbors(center).len(), 26);
        // corner block of a non-periodic domain has only 7
        assert_eq!(dec.neighbors(dec.gid([0, 0, 0])).len(), 7);
    }

    #[test]
    fn periodic_corner_has_26_neighbors_with_transforms() {
        let dec = Decomposition::with_dims(Aabb::cube(4.0), [4, 4, 4], [true; 3]);
        let ns = dec.neighbors(dec.gid([0, 0, 0]));
        assert_eq!(ns.len(), 26);
        let wrapped: Vec<_> = ns.iter().filter(|n| n.periodic).collect();
        // 26 - 7 interior links wrap
        assert_eq!(wrapped.len(), 19);
        // the (-1,-1,-1) link goes to block (3,3,3) and shifts data up by L
        let diag = ns.iter().find(|n| n.dir == [-1, -1, -1]).unwrap();
        assert_eq!(diag.gid, dec.gid([3, 3, 3]));
        assert_eq!(diag.xform, Vec3::splat(4.0));
    }

    #[test]
    fn two_block_periodic_dimension_keeps_distinct_transforms() {
        // With 2 blocks in x, block 0's +x and -x neighbors are both block 1,
        // but with different transforms; both links must be kept.
        let dec = Decomposition::with_dims(Aabb::cube(2.0), [2, 1, 1], [true, false, false]);
        let ns = dec.neighbors(0);
        let to_b1: Vec<_> = ns.iter().filter(|n| n.gid == 1).collect();
        assert_eq!(to_b1.len(), 2);
        let xs: Vec<f64> = to_b1.iter().map(|n| n.xform.x).collect();
        assert!(xs.contains(&0.0) && (xs.contains(&2.0) || xs.contains(&-2.0)));
    }

    #[test]
    fn single_block_periodic_has_self_links() {
        let dec = Decomposition::with_dims(Aabb::cube(5.0), [1, 1, 1], [true; 3]);
        let ns = dec.neighbors(0);
        assert!(!ns.is_empty());
        assert!(ns.iter().all(|n| n.gid == 0 && n.periodic));
        // 26 directions alias to (self, xform) pairs; the 26 distinct
        // translations survive deduplication
        assert_eq!(ns.len(), 26);
    }

    #[test]
    fn assignment_is_contiguous_and_consistent() {
        for (nb, nr) in [(8, 4), (10, 3), (16, 16), (7, 2), (64, 5)] {
            let a = Assignment::new(nb, nr);
            let mut seen = 0u64;
            for r in 0..nr {
                for g in a.blocks_of_rank(r) {
                    assert_eq!(a.rank_of_block(g), r, "nb={nb} nr={nr} g={g}");
                    seen += 1;
                }
            }
            assert_eq!(seen, nb as u64);
        }
    }

    #[test]
    #[should_panic]
    fn more_ranks_than_blocks_rejected() {
        let _ = Assignment::new(2, 4);
    }
}
