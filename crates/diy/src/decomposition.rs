//! Block decomposition of a 3D domain with periodic neighborhoods.
//!
//! Two schemes share one API surface:
//!
//! * **Regular** — the global domain is split into a
//!   `dims[0] × dims[1] × dims[2]` grid of equal blocks (DIY's regular
//!   decomposer).
//! * **K-d** — recursive median cuts over a particle sample, splitting the
//!   longest axis so each side receives a particle count proportional to
//!   its block budget. On clustered snapshots this bounds the per-block
//!   particle count, which is what bounds the slowest rank.
//!
//! Each block knows its neighborhood; when a dimension is periodic, blocks
//! on one edge of the domain are linked to blocks on the opposite edge
//! (*periodic boundary neighbors*, one of the two features the paper added
//! to DIY). Each neighbor link carries the coordinate translation to apply
//! to data sent across the periodic seam. Neighbor links are computed from
//! axis-aligned box adjacency under periodic images, so both schemes — and
//! any future irregular one — share the same code path.

use geometry::{Aabb, Vec3};

/// One neighbor link of a block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Global id of the neighboring block.
    pub gid: u64,
    /// Direction of the link per dimension (components in -1..=1): the
    /// side of this block the neighbor touches, 0 when they overlap in
    /// that dimension.
    pub dir: [i32; 3],
    /// Translation to add to a point's coordinates when sending it to this
    /// neighbor. Zero unless the link crosses a periodic boundary.
    pub xform: Vec3,
    /// `true` when the link wraps around a periodic boundary.
    pub periodic: bool,
}

impl Neighbor {
    /// Compact key for the periodic image this link applies: the sign of
    /// the translation per dimension (all zero for non-wrapping links).
    /// Two links to the same block with the same image deliver data at the
    /// same coordinates, so (gid, image, item id) identifies a shipment.
    pub fn image(&self) -> [i8; 3] {
        let sign = |v: f64| {
            if v > 0.0 {
                1i8
            } else if v < 0.0 {
                -1
            } else {
                0
            }
        };
        [sign(self.xform.x), sign(self.xform.y), sign(self.xform.z)]
    }
}

/// One node of the k-d cut tree. Leaves are numbered left-to-right, so
/// gid order is a spatial order and contiguous rank ranges stay coherent.
#[derive(Debug, Clone, Copy)]
enum KdNode {
    Leaf(u64),
    Split {
        axis: u8,
        cut: f64,
        left: u32,
        right: u32,
    },
}

/// Scheme-specific block geometry.
#[derive(Debug, Clone)]
enum SchemeData {
    Regular {
        dims: [usize; 3],
    },
    Kd {
        nodes: Vec<KdNode>,
        leaves: Vec<Aabb>,
    },
}

/// A decomposition of `domain` into blocks (regular grid or k-d tree).
#[derive(Debug, Clone)]
pub struct Decomposition {
    pub domain: Aabb,
    pub periodic: [bool; 3],
    scheme: SchemeData,
}

impl Decomposition {
    /// Decompose `domain` into exactly `nblocks` blocks using a near-cubic
    /// factorization (mirrors DIY's regular decomposer).
    pub fn regular(domain: Aabb, nblocks: usize, periodic: [bool; 3]) -> Self {
        assert!(nblocks > 0, "need at least one block");
        let dims = factor3(nblocks);
        Decomposition {
            domain,
            periodic,
            scheme: SchemeData::Regular { dims },
        }
    }

    /// Regular decomposition with explicit per-dimension block counts.
    pub fn with_dims(domain: Aabb, dims: [usize; 3], periodic: [bool; 3]) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "block grid dims must be positive"
        );
        Decomposition {
            domain,
            periodic,
            scheme: SchemeData::Regular { dims },
        }
    }

    /// Particle-count-balanced k-d decomposition: recursive median cuts
    /// over `points` (subsampled to at most `max_sample` when non-zero),
    /// always splitting the longest axis of the current box. A split of a
    /// `n`-block budget sends `n/2` blocks left, so arbitrary (not just
    /// power-of-two) block counts balance. Degenerate levels — empty
    /// samples or duplicate coordinates straddling the median — fall back
    /// to a volume-proportional cut.
    pub fn kd(
        domain: Aabb,
        nblocks: usize,
        periodic: [bool; 3],
        points: &[Vec3],
        max_sample: usize,
    ) -> Self {
        assert!(nblocks > 0, "need at least one block");
        let e = domain.extent();
        let stride = if max_sample > 0 && points.len() > max_sample {
            points.len().div_ceil(max_sample)
        } else {
            1
        };
        let mut sample: Vec<Vec3> = points
            .iter()
            .step_by(stride)
            .map(|&p| {
                let mut q = p;
                for d in 0..3 {
                    if periodic[d] {
                        q[d] = domain.min[d] + (q[d] - domain.min[d]).rem_euclid(e[d]);
                    } else {
                        q[d] = q[d].clamp(domain.min[d], domain.max[d]);
                    }
                }
                q
            })
            .collect();
        let mut nodes = Vec::with_capacity(2 * nblocks);
        let mut leaves = Vec::with_capacity(nblocks);
        build_kd(&mut sample, domain, nblocks, &mut nodes, &mut leaves);
        Decomposition {
            domain,
            periodic,
            scheme: SchemeData::Kd { nodes, leaves },
        }
    }

    pub fn nblocks(&self) -> usize {
        match &self.scheme {
            SchemeData::Regular { dims } => dims[0] * dims[1] * dims[2],
            SchemeData::Kd { leaves, .. } => leaves.len(),
        }
    }

    /// One word naming the scheme (for labels and reports).
    pub fn scheme_name(&self) -> &'static str {
        match &self.scheme {
            SchemeData::Regular { .. } => "regular",
            SchemeData::Kd { .. } => "kd",
        }
    }

    /// Grid dims of a regular decomposition (`None` for k-d).
    pub fn grid_dims(&self) -> Option<[usize; 3]> {
        match &self.scheme {
            SchemeData::Regular { dims } => Some(*dims),
            SchemeData::Kd { .. } => None,
        }
    }

    fn dims(&self) -> [usize; 3] {
        self.grid_dims()
            .expect("grid coordinates only exist for regular decompositions")
    }

    /// Grid coordinates of block `gid` (x fastest; regular scheme only).
    pub fn coords(&self, gid: u64) -> [usize; 3] {
        let dims = self.dims();
        let g = gid as usize;
        assert!(g < self.nblocks(), "gid {gid} out of range");
        [
            g % dims[0],
            (g / dims[0]) % dims[1],
            g / (dims[0] * dims[1]),
        ]
    }

    /// Global id of the block at grid coordinates `c` (regular scheme only).
    pub fn gid(&self, c: [usize; 3]) -> u64 {
        let dims = self.dims();
        debug_assert!(c[0] < dims[0] && c[1] < dims[1] && c[2] < dims[2]);
        (c[0] + dims[0] * (c[1] + dims[1] * c[2])) as u64
    }

    /// Spatial bounds of block `gid`.
    ///
    /// Regular bounds are computed from the global bounds so adjacent
    /// blocks share exact boundary coordinates (no accumulation of
    /// rounding across the grid); k-d leaves inherit their cut planes
    /// verbatim, which gives the same exact-sharing property.
    pub fn block_bounds(&self, gid: u64) -> Aabb {
        match &self.scheme {
            SchemeData::Regular { dims } => {
                let c = self.coords(gid);
                let lo = self.domain.min;
                let e = self.domain.extent();
                let f = |d: usize, i: usize| lo[d] + e[d] * (i as f64) / (dims[d] as f64);
                Aabb::new(
                    Vec3::new(f(0, c[0]), f(1, c[1]), f(2, c[2])),
                    Vec3::new(f(0, c[0] + 1), f(1, c[1] + 1), f(2, c[2] + 1)),
                )
            }
            SchemeData::Kd { leaves, .. } => leaves[gid as usize],
        }
    }

    /// Smallest block edge length over all blocks (the adaptive ghost
    /// radius cap: 1-ring adjacency only reaches one block deep).
    pub fn min_block_extent(&self) -> f64 {
        (0..self.nblocks() as u64)
            .map(|g| {
                let e = self.block_bounds(g).extent();
                e.x.min(e.y).min(e.z)
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// The block owning point `p` (after periodic wrapping in periodic
    /// dimensions; non-periodic dimensions clamp to the domain).
    pub fn block_of_point(&self, p: Vec3) -> u64 {
        let e = self.domain.extent();
        match &self.scheme {
            SchemeData::Regular { dims } => {
                let mut c = [0usize; 3];
                for d in 0..3 {
                    let mut x = p[d];
                    if self.periodic[d] {
                        x = self.domain.min[d] + (x - self.domain.min[d]).rem_euclid(e[d]);
                    }
                    let t = ((x - self.domain.min[d]) / e[d] * dims[d] as f64).floor();
                    c[d] = (t as isize).clamp(0, dims[d] as isize - 1) as usize;
                }
                self.gid(c)
            }
            SchemeData::Kd { nodes, .. } => {
                let mut q = p;
                for d in 0..3 {
                    if self.periodic[d] {
                        q[d] = self.domain.min[d] + (q[d] - self.domain.min[d]).rem_euclid(e[d]);
                    }
                }
                let mut i = 0usize;
                loop {
                    match nodes[i] {
                        KdNode::Leaf(g) => return g,
                        KdNode::Split {
                            axis,
                            cut,
                            left,
                            right,
                        } => {
                            i = if q[axis as usize] < cut {
                                left as usize
                            } else {
                                right as usize
                            };
                        }
                    }
                }
            }
        }
    }

    /// All neighbor links of block `gid`, computed from axis-aligned box
    /// proximity: block `b` under periodic image `s ∈ {-1,0,1}³` is a
    /// neighbor iff translating this block's bounds by `s·L` brings the two
    /// boxes within [`min_block_extent`](Self::min_block_extent) on every
    /// axis (strictly, so a regular grid — whose smallest positive gap per
    /// axis is a full block extent — keeps exactly its 26-neighborhood,
    /// including self-links across the seam of small grids, where the same
    /// block appears under several distinct translations). The slack
    /// matters for irregular k-d blocks: at a T-junction, a block can sit
    /// within the ghost radius of `gid` *without touching it* (a thin gap
    /// on one axis), and the ghost exchange can only reach blocks that are
    /// linked here. Since the adaptive ghost cap is `min_block_extent`,
    /// proximity below that bound is exactly the set a maximal halo can
    /// ever need.
    pub fn neighbors(&self, gid: u64) -> Vec<Neighbor> {
        let a = self.block_bounds(gid);
        let e = self.domain.extent();
        let reach = self.min_block_extent();
        let tol = [1e-9 * e[0], 1e-9 * e[1], 1e-9 * e[2]];
        let range = |d: usize| {
            if self.periodic[d] {
                -1i32..=1
            } else {
                0..=0
            }
        };
        let mut out = Vec::with_capacity(26);
        for sz in range(2) {
            for sy in range(1) {
                for sx in range(0) {
                    let s = [sx, sy, sz];
                    let shift = Vec3::new(sx as f64 * e[0], sy as f64 * e[1], sz as f64 * e[2]);
                    'blocks: for b in 0..self.nblocks() as u64 {
                        if b == gid && s == [0, 0, 0] {
                            continue;
                        }
                        let bb = self.block_bounds(b);
                        let mut dir = [0i32; 3];
                        for d in 0..3 {
                            let lo = a.min[d] + shift[d];
                            let hi = a.max[d] + shift[d];
                            // Strict: gap == reach (a regular grid's
                            // 2-ring) stays out; gap < reach (a k-d
                            // T-junction sliver) is in.
                            if lo >= bb.max[d] + reach - tol[d] || hi <= bb.min[d] - reach + tol[d]
                            {
                                continue 'blocks;
                            }
                            dir[d] = if hi <= bb.min[d] + tol[d] {
                                1
                            } else if lo >= bb.max[d] - tol[d] {
                                -1
                            } else {
                                0
                            };
                        }
                        out.push(Neighbor {
                            gid: b,
                            dir,
                            // Data sent to `b` lands at `p + s·L` in its frame.
                            xform: shift,
                            periodic: s != [0, 0, 0],
                        });
                    }
                }
            }
        }
        out
    }
}

/// Recursive k-d construction; leaves are pushed in left-to-right order so
/// `leaves[gid]` indexes them directly. Returns the node index.
fn build_kd(
    pts: &mut [Vec3],
    bbox: Aabb,
    n: usize,
    nodes: &mut Vec<KdNode>,
    leaves: &mut Vec<Aabb>,
) -> usize {
    if n == 1 {
        let gid = leaves.len() as u64;
        leaves.push(bbox);
        nodes.push(KdNode::Leaf(gid));
        return nodes.len() - 1;
    }
    let n1 = n / 2;
    let e = bbox.extent();
    let axis = if e.x >= e.y && e.x >= e.z {
        0
    } else if e.y >= e.z {
        1
    } else {
        2
    };
    let cut = choose_cut(pts, axis, &bbox, n1, n);
    let split = partition_lt(pts, axis, cut);
    let idx = nodes.len();
    nodes.push(KdNode::Leaf(u64::MAX)); // placeholder, patched below
    let mut lo_box = bbox;
    lo_box.max[axis] = cut;
    let mut hi_box = bbox;
    hi_box.min[axis] = cut;
    let (lpts, rpts) = pts.split_at_mut(split);
    let left = build_kd(lpts, lo_box, n1, nodes, leaves) as u32;
    let right = build_kd(rpts, hi_box, n - n1, nodes, leaves) as u32;
    nodes[idx] = KdNode::Split {
        axis: axis as u8,
        cut,
        left,
        right,
    };
    idx
}

/// Cut coordinate sending a `n1/n` share of `pts` strictly left, chosen
/// between the two straddling order statistics. Falls back to the
/// volume-proportional cut when the sample is too small or duplicate
/// coordinates make a clean median impossible.
fn choose_cut(pts: &mut [Vec3], axis: usize, bbox: &Aabb, n1: usize, n: usize) -> f64 {
    let fallback = bbox.min[axis] + bbox.extent()[axis] * n1 as f64 / n as f64;
    let len = pts.len();
    let k = len * n1 / n;
    if k == 0 || k >= len {
        return fallback;
    }
    pts.select_nth_unstable_by(k, |a, b| a[axis].total_cmp(&b[axis]));
    let pivot = pts[k][axis];
    let left_max = pts[..k]
        .iter()
        .map(|p| p[axis])
        .fold(f64::NEG_INFINITY, f64::max);
    let cut = 0.5 * (left_max + pivot);
    if left_max < cut && cut <= pivot && cut > bbox.min[axis] && cut < bbox.max[axis] {
        cut
    } else {
        fallback
    }
}

/// In-place stable-count partition by `p[axis] < cut`; returns the split
/// index. The explicit `<` comparison must match `block_of_point`'s walk.
fn partition_lt(pts: &mut [Vec3], axis: usize, cut: f64) -> usize {
    let mut i = 0;
    for j in 0..pts.len() {
        if pts[j][axis] < cut {
            pts.swap(i, j);
            i += 1;
        }
    }
    i
}

/// Near-cubic factorization of `n` into three factors, largest spread
/// minimized (greedy over the prime factorization, matching DIY's decomposer
/// closely enough for benchmarking).
pub fn factor3(n: usize) -> [usize; 3] {
    let mut best = [n, 1, 1];
    let mut best_score = usize::MAX;
    // Enumerate all factorizations a*b*c = n with a <= b <= c.
    let mut a = 1;
    while a * a * a <= n {
        if n.is_multiple_of(a) {
            let m = n / a;
            let mut b = a;
            while b * b <= m {
                if m.is_multiple_of(b) {
                    let c = m / b;
                    let score = c - a; // minimize spread
                    if score < best_score {
                        best_score = score;
                        best = [a, b, c];
                    }
                }
                b += 1;
            }
        }
        a += 1;
    }
    best
}

/// Which decomposition scheme to build, with its parameters. Parsed from
/// the `TESS_DECOMP` env knob (`regular` | `kd` | `kd:<max_sample>`) or
/// the framework's `decomp` config directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecompScheme {
    Regular,
    /// K-d median cuts over at most `sample` points (0 = use all points).
    Kd {
        sample: usize,
    },
}

impl DecompScheme {
    /// Default subsample cap for the k-d builder: enough for a stable
    /// median at any practical block count, cheap to sort.
    pub const DEFAULT_KD_SAMPLE: usize = 1 << 16;

    /// Parse `regular`, `kd`, or `kd:<max_sample>`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim() {
            "regular" => Some(DecompScheme::Regular),
            "kd" => Some(DecompScheme::Kd {
                sample: Self::DEFAULT_KD_SAMPLE,
            }),
            rest => {
                let sample = rest.strip_prefix("kd:")?.parse().ok()?;
                Some(DecompScheme::Kd { sample })
            }
        }
    }

    /// Scheme from the `TESS_DECOMP` env var; unset/empty means regular.
    pub fn from_env() -> Self {
        match std::env::var("TESS_DECOMP") {
            Ok(v) if !v.trim().is_empty() => Self::parse(&v)
                .unwrap_or_else(|| panic!("invalid TESS_DECOMP={v:?} (regular|kd|kd:<sample>)")),
            _ => DecompScheme::Regular,
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            DecompScheme::Regular => "regular",
            DecompScheme::Kd { .. } => "kd",
        }
    }

    /// Build the decomposition this scheme describes. `points` is only
    /// consulted by the k-d scheme.
    pub fn build(
        &self,
        domain: Aabb,
        nblocks: usize,
        periodic: [bool; 3],
        points: &[Vec3],
    ) -> Decomposition {
        match *self {
            DecompScheme::Regular => Decomposition::regular(domain, nblocks, periodic),
            DecompScheme::Kd { sample } => {
                Decomposition::kd(domain, nblocks, periodic, points, sample)
            }
        }
    }
}

/// Assignment of blocks to ranks: contiguous gid ranges delimited by
/// `cuts`. `new` gives DIY's uniform split; `weighted` places the cuts to
/// minimize the heaviest rank's total block weight (particle counts), so
/// placement stays balanced even when per-block costs aren't.
#[derive(Debug, Clone)]
pub struct Assignment {
    pub nblocks: usize,
    pub nranks: usize,
    /// `nranks + 1` fenceposts: rank `r` owns gids `cuts[r]..cuts[r+1]`.
    cuts: Vec<u64>,
}

impl Assignment {
    pub fn new(nblocks: usize, nranks: usize) -> Self {
        assert!(nranks > 0 && nblocks > 0);
        assert!(
            nblocks >= nranks,
            "need at least one block per rank ({nblocks} blocks, {nranks} ranks)"
        );
        let cuts = (0..=nranks)
            .map(|r| (r * nblocks / nranks) as u64)
            .collect();
        Assignment {
            nblocks,
            nranks,
            cuts,
        }
    }

    /// Optimal contiguous partition of `weights` into `nranks` non-empty
    /// bins minimizing the maximum bin weight (binary search on the answer
    /// with a greedy feasibility check).
    pub fn weighted(weights: &[u64], nranks: usize) -> Self {
        let nblocks = weights.len();
        assert!(nranks > 0 && nblocks > 0);
        assert!(
            nblocks >= nranks,
            "need at least one block per rank ({nblocks} blocks, {nranks} ranks)"
        );
        let feasible = |m: u128| -> Option<Vec<u64>> {
            let mut cuts = vec![0u64];
            let mut i = 0usize;
            for r in 0..nranks {
                let bins_left = nranks - r - 1;
                // every bin takes at least one block, and must leave one
                // block per remaining bin
                let mut sum = weights[i] as u128;
                i += 1;
                while i < nblocks - bins_left && sum + weights[i] as u128 <= m {
                    sum += weights[i] as u128;
                    i += 1;
                }
                if sum > m {
                    return None;
                }
                cuts.push(i as u64);
            }
            (i == nblocks).then_some(cuts)
        };
        let mut lo = weights.iter().copied().max().unwrap_or(0) as u128;
        let mut hi = weights.iter().map(|&w| w as u128).sum::<u128>().max(lo);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if feasible(mid).is_some() {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let cuts = feasible(lo).expect("total weight is always feasible");
        Assignment {
            nblocks,
            nranks,
            cuts,
        }
    }

    /// The rank that owns block `gid`.
    pub fn rank_of_block(&self, gid: u64) -> usize {
        assert!((gid as usize) < self.nblocks);
        self.cuts.partition_point(|&c| c <= gid) - 1
    }

    /// The contiguous range of block gids owned by `rank`.
    pub fn blocks_of_rank(&self, rank: usize) -> std::ops::Range<u64> {
        assert!(rank < self.nranks);
        self.cuts[rank]..self.cuts[rank + 1]
    }
}

/// Per-block and per-rank particle counts for a (decomposition,
/// assignment) pair — the balance report the schemes are judged by.
#[derive(Debug, Clone)]
pub struct BalanceStats {
    /// Particle count per block gid.
    pub block_particles: Vec<u64>,
    /// Particle count per rank under the assignment.
    pub rank_particles: Vec<u64>,
}

impl BalanceStats {
    pub fn measure(dec: &Decomposition, asn: &Assignment, points: &[Vec3]) -> Self {
        let mut block_particles = vec![0u64; dec.nblocks()];
        for &p in points {
            block_particles[dec.block_of_point(p) as usize] += 1;
        }
        let mut rank_particles = vec![0u64; asn.nranks];
        for (gid, &n) in block_particles.iter().enumerate() {
            rank_particles[asn.rank_of_block(gid as u64)] += n;
        }
        BalanceStats {
            block_particles,
            rank_particles,
        }
    }

    fn max_over_mean(counts: &[u64]) -> f64 {
        let max = counts.iter().copied().max().unwrap_or(0) as f64;
        let sum: u64 = counts.iter().sum();
        if sum == 0 {
            return 1.0;
        }
        max * counts.len() as f64 / sum as f64
    }

    /// Max/mean particle count over ranks (1.0 = perfectly balanced).
    pub fn rank_imbalance(&self) -> f64 {
        Self::max_over_mean(&self.rank_particles)
    }

    /// Max/mean particle count over blocks.
    pub fn block_imbalance(&self) -> f64 {
        Self::max_over_mean(&self.block_particles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorization_is_near_cubic() {
        assert_eq!(factor3(1), [1, 1, 1]);
        assert_eq!(factor3(8), [2, 2, 2]);
        assert_eq!(factor3(64), [4, 4, 4]);
        assert_eq!(factor3(12), [2, 2, 3]);
        assert_eq!(factor3(7), [1, 1, 7]); // prime: nothing better exists
        let f = factor3(24);
        assert_eq!(f.iter().product::<usize>(), 24);
        assert_eq!(f, [2, 3, 4]);
    }

    #[test]
    fn coords_gid_roundtrip() {
        let dec = Decomposition::with_dims(Aabb::cube(8.0), [2, 3, 4], [true; 3]);
        for gid in 0..dec.nblocks() as u64 {
            assert_eq!(dec.gid(dec.coords(gid)), gid);
        }
    }

    #[test]
    fn block_bounds_tile_the_domain() {
        let dec = Decomposition::regular(Aabb::cube(10.0), 8, [true; 3]);
        assert_eq!(dec.grid_dims(), Some([2, 2, 2]));
        let total: f64 = (0..8).map(|g| dec.block_bounds(g).volume()).sum();
        assert!((total - 1000.0).abs() < 1e-9);
        // shared boundary coordinates are exact
        let b0 = dec.block_bounds(0);
        let b1 = dec.block_bounds(1);
        assert_eq!(b0.max.x, b1.min.x);
    }

    #[test]
    fn block_of_point_matches_bounds() {
        let dec = Decomposition::with_dims(Aabb::cube(9.0), [3, 3, 3], [true; 3]);
        for gid in 0..dec.nblocks() as u64 {
            let c = dec.block_bounds(gid).center();
            assert_eq!(dec.block_of_point(c), gid);
        }
        // periodic wrap
        assert_eq!(
            dec.block_of_point(Vec3::new(-0.5, 0.5, 0.5)),
            dec.block_of_point(Vec3::new(8.5, 0.5, 0.5))
        );
    }

    #[test]
    fn interior_block_has_26_neighbors() {
        let dec = Decomposition::with_dims(Aabb::cube(4.0), [4, 4, 4], [false; 3]);
        let center = dec.gid([1, 1, 1]);
        assert_eq!(dec.neighbors(center).len(), 26);
        // corner block of a non-periodic domain has only 7
        assert_eq!(dec.neighbors(dec.gid([0, 0, 0])).len(), 7);
    }

    #[test]
    fn periodic_corner_has_26_neighbors_with_transforms() {
        let dec = Decomposition::with_dims(Aabb::cube(4.0), [4, 4, 4], [true; 3]);
        let ns = dec.neighbors(dec.gid([0, 0, 0]));
        assert_eq!(ns.len(), 26);
        let wrapped: Vec<_> = ns.iter().filter(|n| n.periodic).collect();
        // 26 - 7 interior links wrap
        assert_eq!(wrapped.len(), 19);
        // the (-1,-1,-1) link goes to block (3,3,3) and shifts data up by L
        let diag = ns.iter().find(|n| n.dir == [-1, -1, -1]).unwrap();
        assert_eq!(diag.gid, dec.gid([3, 3, 3]));
        assert_eq!(diag.xform, Vec3::splat(4.0));
    }

    #[test]
    fn two_block_periodic_dimension_keeps_distinct_transforms() {
        // With 2 blocks in x, block 0's +x and -x neighbors are both block 1,
        // but with different transforms; both links must be kept.
        let dec = Decomposition::with_dims(Aabb::cube(2.0), [2, 1, 1], [true, false, false]);
        let ns = dec.neighbors(0);
        let to_b1: Vec<_> = ns.iter().filter(|n| n.gid == 1).collect();
        assert_eq!(to_b1.len(), 2);
        let xs: Vec<f64> = to_b1.iter().map(|n| n.xform.x).collect();
        assert!(xs.contains(&0.0) && (xs.contains(&2.0) || xs.contains(&-2.0)));
    }

    #[test]
    fn single_block_periodic_has_self_links() {
        let dec = Decomposition::with_dims(Aabb::cube(5.0), [1, 1, 1], [true; 3]);
        let ns = dec.neighbors(0);
        assert!(!ns.is_empty());
        assert!(ns.iter().all(|n| n.gid == 0 && n.periodic));
        // the 26 periodic images each contribute one distinct translation
        assert_eq!(ns.len(), 26);
    }

    /// A clustered set: most points in one octant, so a balanced k-d tree
    /// must cut unevenly in space.
    fn clumpy(n: usize) -> Vec<Vec3> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                if i % 8 != 0 {
                    // dense corner clump
                    Vec3::new(1.0 + t, 1.5 + (t * 7.0) % 1.0, 1.0 + (t * 3.0) % 1.0)
                } else {
                    // sparse far field
                    Vec3::new(8.0 + t, 9.0 - t, 7.0 + (t * 5.0) % 2.0)
                }
            })
            .collect()
    }

    #[test]
    fn kd_blocks_tile_the_domain_and_balance_particles() {
        let domain = Aabb::cube(10.0);
        let pts = clumpy(4000);
        for nblocks in [1usize, 2, 3, 5, 8, 16] {
            let dec = Decomposition::kd(domain, nblocks, [true; 3], &pts, 0);
            assert_eq!(dec.nblocks(), nblocks);
            let total: f64 = (0..nblocks as u64)
                .map(|g| dec.block_bounds(g).volume())
                .sum();
            assert!(
                (total - domain.volume()).abs() < 1e-6 * domain.volume(),
                "nblocks={nblocks}: volumes sum to {total}"
            );
            // every point lands in a block whose bounds contain it
            for &p in &pts {
                let g = dec.block_of_point(p);
                assert!(dec.block_bounds(g).contains(p), "{p:?} outside block {g}");
            }
            // particle balance: no block holds more than ~2x its share
            let asn = Assignment::new(nblocks, nblocks.min(4));
            let bal = BalanceStats::measure(&dec, &asn, &pts);
            assert!(
                bal.block_imbalance() < 2.0,
                "nblocks={nblocks}: block imbalance {}",
                bal.block_imbalance()
            );
        }
    }

    #[test]
    fn kd_beats_regular_balance_on_clustered_points() {
        let domain = Aabb::cube(10.0);
        let pts = clumpy(4000);
        let reg = Decomposition::regular(domain, 8, [true; 3]);
        let kd = Decomposition::kd(domain, 8, [true; 3], &pts, 0);
        let asn = Assignment::new(8, 4);
        let reg_bal = BalanceStats::measure(&reg, &asn, &pts);
        let kd_bal = BalanceStats::measure(&kd, &asn, &pts);
        assert!(
            kd_bal.rank_imbalance() < 1.25,
            "kd rank imbalance {}",
            kd_bal.rank_imbalance()
        );
        assert!(
            reg_bal.rank_imbalance() > kd_bal.rank_imbalance(),
            "regular {} vs kd {}",
            reg_bal.rank_imbalance(),
            kd_bal.rank_imbalance()
        );
    }

    #[test]
    fn kd_degenerate_inputs_fall_back_to_volume_cuts() {
        let domain = Aabb::cube(4.0);
        // no points at all: pure volume cuts, still a partition
        let dec = Decomposition::kd(domain, 8, [true; 3], &[], 0);
        let total: f64 = (0..8).map(|g| dec.block_bounds(g).volume()).sum();
        assert!((total - domain.volume()).abs() < 1e-9);
        // all points identical: median cut impossible everywhere
        let dup = vec![Vec3::splat(1.0); 100];
        let dec = Decomposition::kd(domain, 4, [false; 3], &dup, 0);
        let total: f64 = (0..4).map(|g| dec.block_bounds(g).volume()).sum();
        assert!((total - domain.volume()).abs() < 1e-9);
        let g = dec.block_of_point(Vec3::splat(1.0));
        assert!(dec.block_bounds(g).contains(Vec3::splat(1.0)));
    }

    #[test]
    fn kd_neighbors_are_symmetric_with_periodic_images() {
        let domain = Aabb::cube(10.0);
        let pts = clumpy(500);
        let dec = Decomposition::kd(domain, 8, [true, false, true], &pts, 0);
        for a in 0..dec.nblocks() as u64 {
            for n in dec.neighbors(a) {
                let back = dec.neighbors(n.gid);
                assert!(
                    back.iter()
                        .any(|m| m.gid == a && (m.xform + n.xform).norm() < 1e-9),
                    "link {a}->{} xform {:?} has no inverse",
                    n.gid,
                    n.xform
                );
            }
        }
    }

    #[test]
    fn decomp_scheme_parses() {
        assert_eq!(DecompScheme::parse("regular"), Some(DecompScheme::Regular));
        assert_eq!(
            DecompScheme::parse("kd"),
            Some(DecompScheme::Kd {
                sample: DecompScheme::DEFAULT_KD_SAMPLE
            })
        );
        assert_eq!(
            DecompScheme::parse("kd:4096"),
            Some(DecompScheme::Kd { sample: 4096 })
        );
        assert_eq!(DecompScheme::parse("hilbert"), None);
        assert_eq!(DecompScheme::parse("kd:x"), None);
    }

    #[test]
    fn assignment_is_contiguous_and_consistent() {
        for (nb, nr) in [(8, 4), (10, 3), (16, 16), (7, 2), (64, 5)] {
            let a = Assignment::new(nb, nr);
            let mut seen = 0u64;
            for r in 0..nr {
                for g in a.blocks_of_rank(r) {
                    assert_eq!(a.rank_of_block(g), r, "nb={nb} nr={nr} g={g}");
                    seen += 1;
                }
            }
            assert_eq!(seen, nb as u64);
        }
    }

    #[test]
    fn weighted_assignment_minimizes_the_heaviest_rank() {
        // one hot block: uniform ranges would pair it with others
        let w = [100u64, 1, 1, 1, 1, 1, 1, 1];
        let a = Assignment::weighted(&w, 4);
        let bin = |r: usize| -> u64 { a.blocks_of_rank(r).map(|g| w[g as usize]).sum() };
        let max: u64 = (0..4).map(bin).max().unwrap();
        assert_eq!(max, 100, "hot block must sit alone");
        // every rank still owns at least one block, all blocks covered
        let total: u64 = (0..4).map(|r| a.blocks_of_rank(r).count() as u64).sum();
        assert_eq!(total, 8);
        assert!((0..4).all(|r| a.blocks_of_rank(r).count() >= 1));

        // uniform weights reduce to the uniform split
        let u = Assignment::weighted(&[5u64; 8], 4);
        let n = Assignment::new(8, 4);
        for g in 0..8u64 {
            assert_eq!(u.rank_of_block(g), n.rank_of_block(g));
        }

        // zero-weight tail still yields non-empty bins
        let z = Assignment::weighted(&[7, 0, 0, 0], 4);
        assert!((0..4).all(|r| z.blocks_of_rank(r).count() == 1));
    }

    #[test]
    #[should_panic]
    fn more_ranks_than_blocks_rejected() {
        let _ = Assignment::new(2, 4);
    }
}
